#!/usr/bin/env python3
"""Repo-invariant AST lint (run in CI next to ruff).

Three invariants that ruff's default rule set does not pin:

1. **No bare ``except:``** anywhere under ``src/repro/`` — a handler
   must name what it catches (``except Exception:`` included, since it
   at least survives ``KeyboardInterrupt``/``SystemExit``).
2. **No ``print()`` in ``src/repro/``** — library code reports through
   return values, typed exceptions, and the obs event stream.  The CLI
   module is the one deliberate exemption: stdout *is* its interface.
3. **Typed raises in ``src/repro/spice/``** — every ``raise`` uses a
   named error class, never generic ``Exception``/``RuntimeError``/
   ``BaseException`` (domain classes like ``ConvergenceError`` may
   *subclass* RuntimeError; raising the bare builtin is what loses the
   type information).  A bare re-raising ``raise`` is fine.

Exit status 1 and one ``path:line: message`` per finding on stdout.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
SPICE = SRC / "spice"

#: print() is the CLI's interface; everything else in src/repro must
#: not write to stdout directly.
PRINT_EXEMPT = {SRC / "cli.py"}

#: Generic exception classes that erase the error type at spice raise
#: sites (typed subclasses of these are fine — they have names).
GENERIC_RAISES = {"Exception", "BaseException", "RuntimeError"}


def _raised_name(node):
    """Class name of a ``raise X`` / ``raise X(...)`` statement, or
    None for bare re-raises and non-name expressions."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def check_file(path):
    """Yield ``(lineno, message)`` violations for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    in_spice = SPICE in path.parents or path.parent == SPICE
    allow_print = path in PRINT_EXEMPT
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield node.lineno, "bare 'except:' — name the exception(s)"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not allow_print
        ):
            yield (
                node.lineno,
                "print() in library code — use typed errors or obs events",
            )
        elif isinstance(node, ast.Raise) and in_spice:
            name = _raised_name(node)
            if name in GENERIC_RAISES:
                yield (
                    node.lineno,
                    f"raise {name} in spice/ — use a typed error class",
                )


def run(root=SRC):
    """Check every ``*.py`` under ``root``; returns the violation list."""
    violations = []
    for path in sorted(Path(root).rglob("*.py")):
        for lineno, message in check_file(path):
            violations.append((path, lineno, message))
    return violations


def main():
    violations = run()
    for path, lineno, message in violations:
        print(f"{path.relative_to(REPO_ROOT)}:{lineno}: {message}")
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariants clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
