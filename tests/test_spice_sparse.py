"""Sparse MNA core: COO recording, frozen patterns, the shared-pattern
family LU, and dense/sparse strategy equivalence on every study family.

The equivalence contract (the acceptance property of the sparse
strategy): identical assembled matrices, identical accepted time grids,
and solutions agreeing to 1e-12 — the strategies differ only in solver
round-off (LAPACK vs SuperLU), never in step control or stamping.
"""

import numpy as np
import pytest

from repro.engine.scenario import SPICE_TEMPLATES, SpiceScenario
from repro.spice import Circuit, sine, transient, transient_batch
from repro.spice.assembler import (
    MATRIX_MODES,
    SPARSE_AUTO_THRESHOLD,
    COORecorder,
    PivotBreakdownError,
    SharedPatternLU,
    SparsePattern,
    pattern_from_circuit,
    splu_factor,
)
from repro.spice.components import Capacitor

EQ_TOL = 1e-12


# ---------------------------------------------------------------------------
# Circuit builders
# ---------------------------------------------------------------------------
def rc_ladder(sections=8, r=1e3, c=1e-9, diode_taps=False):
    """RC ladder driven by a sine; ``diode_taps`` adds a rectifying
    diode per section so the circuit exercises the Newton path."""
    ckt = Circuit(f"ladder{sections}")
    ckt.add_vsource("V1", "n0", "0", sine(1.0, 1e6))
    for k in range(sections):
        ckt.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", r)
        ckt.add_capacitor(f"C{k}", f"n{k + 1}", "0", c, ic=0.0)
        if diode_taps:
            ckt.add_diode(f"D{k}", f"n{k + 1}", "vo")
    if diode_taps:
        ckt.add_capacitor("Co", "vo", "0", 10e-9, ic=0.0)
        ckt.add_resistor("RL", "vo", "0", 10e3)
    return ckt


def rlc_circuit():
    ckt = Circuit("rlc")
    ckt.add_vsource("V1", "in", "0", sine(1.0, 1e6))
    ckt.add_resistor("R1", "in", "mid", 50.0)
    ckt.add_inductor("L1", "mid", "out", 10e-6, ic=0.0)
    ckt.add_capacitor("C1", "out", "0", 2.5e-9, ic=0.0)
    return ckt


def clamp_circuit():
    ckt = Circuit("clamp")
    ckt.add_vsource("V1", "in", "0", sine(5.0, 1e6))
    ckt.add_resistor("R1", "in", "out", 1e3)
    ckt.add_diode("D1", "out", "m1")
    ckt.add_diode("D2", "m1", "m2")
    ckt.add_diode("D3", "m2", "0")
    ckt.add_capacitor("C1", "out", "0", 1e-9, ic=0.0)
    return ckt


def mosfet_circuit():
    ckt = Circuit("nmos")
    ckt.add_vsource("VDD", "vdd", "0", 3.0)
    ckt.add_vsource("VG", "g", "0", sine(1.5, 1e6, offset=1.5))
    ckt.add_resistor("RD", "vdd", "d", 10e3)
    ckt.add_mosfet("M1", "d", "g", "0")
    return ckt


def regression_circuits():
    """(label, circuit builder, output node) for the non-template
    regression circuits of the equivalence suite."""
    return [
        ("rlc", rlc_circuit, "out"),
        ("clamp", clamp_circuit, "out"),
        ("ladder", lambda: rc_ladder(12, diode_taps=True), "vo"),
    ]


# ---------------------------------------------------------------------------
# COO recording
# ---------------------------------------------------------------------------
class TestCOORecorder:
    def test_reads_zero_and_records_increments(self):
        rec = COORecorder()
        assert rec[3, 4] == 0.0
        rec[0, 1] = 2.5
        rec[2, 2] = -1.0
        rows, cols, vals = rec.triplets()
        assert rows.tolist() == [0, 2]
        assert cols.tolist() == [1, 2]
        assert vals.tolist() == [2.5, -1.0]

    def test_ground_slots_dropped(self):
        rec = COORecorder()
        rec[-1, 0] = 1.0
        rec[0, -1] = 1.0
        rec[1, 1] = 3.0
        rows, cols, vals = rec.triplets()
        assert rows.tolist() == [1]
        assert vals.tolist() == [3.0]

    def test_duplicates_kept_for_in_order_summation(self):
        rec = COORecorder()
        rec[0, 0] = 1.0
        rec[0, 0] = 2.0
        rows, _cols, vals = rec.triplets()
        assert rows.tolist() == [0, 0]
        assert vals.tolist() == [1.0, 2.0]


# ---------------------------------------------------------------------------
# Frozen patterns
# ---------------------------------------------------------------------------
class TestSparsePattern:
    def test_union_deduplicates_positions(self):
        patt = SparsePattern(3, [0, 0, 1, 2], [0, 0, 1, 2])
        assert patt.nnz == 3
        assert patt.n == 3

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SparsePattern(3, [], [])

    def test_plan_accumulate_matches_dense_addition(self):
        rows = [0, 1, 1, 2, 0]
        cols = [0, 1, 1, 2, 2]
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        patt = SparsePattern(3, rows, cols)
        plan = patt.plan(rows, cols)
        data = patt.accumulate(plan, vals)
        dense = np.zeros((3, 3))
        for i, j, v in zip(rows, cols, vals):
            dense[i, j] += v
        assert np.array_equal(patt.densify(data), dense)

    def test_plan_outside_pattern_is_typed_error(self):
        patt = SparsePattern(3, [0, 1], [0, 1])
        with pytest.raises(ValueError, match="outside the frozen"):
            patt.plan([2], [0])

    def test_csc_view_round_trips(self):
        rows = [0, 1, 2, 0]
        cols = [0, 1, 2, 2]
        patt = SparsePattern(3, rows, cols)
        data = patt.accumulate(patt.plan(rows, cols),
                               np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.array_equal(patt.csc(data).toarray(), patt.densify(data))
        # The CSC workspace is reused: the second call must overwrite
        # in place, not allocate.
        first = patt.csc(data)
        second = patt.csc(data * 2.0)
        assert first is second

    def test_pattern_from_circuit_matches_dense_stamps(self):
        ckt = rc_ladder(6)
        ckt.build()
        patt = pattern_from_circuit(ckt)
        n = ckt.n_unknowns
        dense = np.zeros((n, n))
        data = np.zeros(patt.nnz)
        for comp in ckt.components:
            comp.stamp_tran_matrix(dense, 1e-9, "be")
            r, c, v = comp.sparse_stamps(1e-9, "be")
            patt.accumulate(patt.plan(r, c), v, out=data)
        # Same component order, same per-position addition order: the
        # assembled values are bitwise identical, not just close.
        assert np.array_equal(patt.densify(data), dense)


# ---------------------------------------------------------------------------
# Shared-pattern family LU
# ---------------------------------------------------------------------------
class TestSharedPatternLU:
    def _family_data(self, n_cells=4, sections=6, seed=0):
        ckt = rc_ladder(sections)
        ckt.build()
        patt = pattern_from_circuit(ckt)
        rng = np.random.default_rng(seed)
        data = np.empty((n_cells, patt.nnz))
        for i in range(n_cells):
            d = np.zeros(patt.nnz)
            for comp in ckt.components:
                r, c, v = comp.sparse_stamps(1e-9 * (1 + i), "be")
                patt.accumulate(patt.plan(r, c), v, out=d)
            # Value jitter keeps cells distinct without moving positions.
            data[i] = d * (1.0 + 0.1 * rng.random(patt.nnz))
        return patt, data

    def test_factor_solve_matches_dense_reference(self):
        patt, data = self._family_data()
        lu = SharedPatternLU(patt, data[0])
        work = lu.factor(data)
        rng = np.random.default_rng(1)
        b = rng.standard_normal((data.shape[0], patt.n))
        x = lu.solve(work, b)
        for i in range(data.shape[0]):
            ref = np.linalg.solve(patt.densify(data[i]), b[i])
            assert np.max(np.abs(x[i] - ref)) < 1e-9

    def test_every_cell_walks_the_representative_pattern(self):
        patt, data = self._family_data(n_cells=3)
        lu = SharedPatternLU(patt, data[0])
        # Factoring any subset works against the one symbolic analysis.
        w1 = lu.factor(data[1:2])
        w2 = lu.factor(data)
        assert np.array_equal(w1[0], w2[1])

    def test_singular_representative_is_runtime_error(self):
        patt = SparsePattern(2, [0, 0, 1, 1], [0, 1, 0, 1])
        singular = patt.accumulate(
            patt.plan([0, 0, 1, 1], [0, 1, 0, 1]),
            np.array([1.0, 2.0, 2.0, 4.0]))
        with pytest.raises(RuntimeError):
            SharedPatternLU(patt, singular)

    def test_pivot_breakdown_raises_typed_error(self):
        patt = SparsePattern(2, [0, 0, 1, 1], [0, 1, 0, 1])
        pos = patt.plan([0, 0, 1, 1], [0, 1, 0, 1])
        good = patt.accumulate(pos, np.array([4.0, 1.0, 1.0, 3.0]))
        bad = patt.accumulate(pos, np.array([4.0, 2.0, 2.0, 1.0]))
        lu = SharedPatternLU(patt, good)
        # The second cell is singular under the static order: factor()
        # must flag it instead of returning Inf/NaN factors.
        with pytest.raises(PivotBreakdownError, match="pivot"):
            lu.factor(np.stack([good, bad]))

    def test_splu_factor_solves_on_frozen_pattern(self):
        patt, data = self._family_data(n_cells=1)
        lu = splu_factor(patt, data[0])
        b = np.arange(1.0, patt.n + 1.0)
        ref = np.linalg.solve(patt.densify(data[0]), b)
        assert np.max(np.abs(lu.solve(b) - ref)) < 1e-9


# ---------------------------------------------------------------------------
# Strategy selection
# ---------------------------------------------------------------------------
class TestMatrixModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="matrix mode"):
            transient(rlc_circuit(), 1e-6, 1e-9, method="adaptive",
                      use_ic=True, matrix="banded")
        with pytest.raises(ValueError, match="matrix mode"):
            transient_batch([rlc_circuit()], 1e-6, 1e-9, matrix="banded")

    @pytest.mark.parametrize("method", ["trap", "be"])
    def test_sparse_rejected_on_fixed_step_reference(self, method):
        with pytest.raises(ValueError, match="dense parity reference"):
            transient(rlc_circuit(), 1e-6, 1e-9, method=method,
                      use_ic=True, matrix="sparse")
        with pytest.raises(ValueError, match="dense parity reference"):
            transient_batch([rlc_circuit()], 1e-6, 1e-9, method=method,
                            matrix="sparse")

    def test_auto_keeps_small_circuits_dense(self):
        stats = {}
        transient(clamp_circuit(), 0.5e-6, 1e-9, method="adaptive",
                  use_ic=True, matrix="auto", stats_out=stats)
        assert stats["factorizations"] > 0
        assert stats["pattern_reuses"] == 0

    def test_auto_picks_sparse_above_threshold(self):
        sections = SPARSE_AUTO_THRESHOLD + 8
        stats = {}
        transient(rc_ladder(sections), 0.2e-6, 1e-9, method="adaptive",
                  use_ic=True, matrix="auto", stats_out=stats)
        assert stats["pattern_reuses"] > 0

    def test_auto_keeps_non_diode_nonlinearity_dense(self):
        stats = {}
        transient(mosfet_circuit(), 0.2e-6, 1e-9, method="adaptive",
                  use_ic=True, matrix="auto", stats_out=stats)
        assert stats["pattern_reuses"] == 0

    def test_forced_sparse_rejects_non_diode_nonlinearity(self):
        with pytest.raises(ValueError, match="other than diodes"):
            transient(mosfet_circuit(), 0.2e-6, 1e-9, method="adaptive",
                      use_ic=True, matrix="sparse")
        with pytest.raises(ValueError, match="other than diodes"):
            transient_batch([mosfet_circuit()], 0.2e-6, 1e-9,
                            matrix="sparse")

    def test_mode_tuple_is_closed(self):
        assert MATRIX_MODES == ("auto", "dense", "sparse")


# ---------------------------------------------------------------------------
# Dense/sparse equivalence (single-circuit strategy objects)
# ---------------------------------------------------------------------------
class TestDenseSparseEquivalence:
    """Satellite contract: same matrices, same accepted grids, solutions
    to 1e-12 — on every netlist-template family and the regression
    circuits."""

    @staticmethod
    def _run_pair(build, t_stop=1e-6, dt=2e-9):
        dense = transient(build(), t_stop, dt, method="adaptive",
                          use_ic=True, matrix="dense")
        sparse = transient(build(), t_stop, dt, method="adaptive",
                           use_ic=True, matrix="sparse")
        return dense, sparse

    @pytest.mark.parametrize("template", sorted(SPICE_TEMPLATES))
    def test_templates_agree(self, template):
        def build():
            circuit, _node = SpiceScenario(template=template).build()
            return circuit

        dense, sparse = self._run_pair(build)
        assert np.array_equal(dense.t, sparse.t), "accepted grids differ"
        assert np.max(np.abs(dense.x - sparse.x)) <= EQ_TOL

    @pytest.mark.parametrize(
        "label,build,node",
        regression_circuits(),
        ids=[r[0] for r in regression_circuits()])
    def test_regression_circuits_agree(self, label, build, node):
        dense, sparse = self._run_pair(build)
        assert np.array_equal(dense.t, sparse.t), "accepted grids differ"
        assert np.max(np.abs(dense.x - sparse.x)) <= EQ_TOL
        assert np.max(np.abs(dense.voltage(node).v
                             - sparse.voltage(node).v)) <= EQ_TOL

    @pytest.mark.parametrize("template", sorted(SPICE_TEMPLATES))
    def test_assembled_matrices_bitwise_identical(self, template):
        """The linear base matrix assembled on the frozen pattern is
        bitwise the dense stamped matrix (accumulation order matches
        the dense += order exactly)."""
        circuit, _node = SpiceScenario(template=template).build()
        circuit.build()
        n = circuit.n_unknowns
        for dt, method in ((2e-9, "trap"), (1e-9, "be")):
            dense = np.zeros((n, n))
            patt = pattern_from_circuit(circuit)
            data = np.zeros(patt.nnz)
            for comp in circuit.components:
                if not comp.linear_stamps:
                    continue
                comp.stamp_tran_matrix(dense, dt, method)
                r, c, v = comp.sparse_stamps(dt, method)
                patt.accumulate(patt.plan(r, c), v, out=data)
            assert np.array_equal(patt.densify(data), dense)

    def test_sparse_stats_report_reuse(self):
        stats = {}
        transient(rc_ladder(12, diode_taps=True), 0.5e-6, 1e-9,
                  method="adaptive", use_ic=True, matrix="sparse",
                  stats_out=stats)
        assert stats["accepted_steps"] > 0
        assert stats["factorizations"] > 0
        assert stats["pattern_reuses"] > 0


# ---------------------------------------------------------------------------
# Hoisted step kernels keep overridden hooks on the scalar path
# ---------------------------------------------------------------------------
class TestHoistedKernelResidualPath:
    def test_subclassed_component_keeps_scalar_hooks(self):
        calls = {"update": 0, "rhs": 0}

        class InstrumentedCapacitor(Capacitor):
            def update_state(self, x, states, dt, method):
                calls["update"] += 1
                super().update_state(x, states, dt, method)

            def stamp_tran_rhs(self, rhs, states, dt, method, t):
                calls["rhs"] += 1
                super().stamp_tran_rhs(rhs, states, dt, method, t)

        def build():
            ckt = rc_ladder(10, diode_taps=True)
            cap = ckt["C3"]
            sub = InstrumentedCapacitor(
                "C3", cap.node_names[0], cap.node_names[1],
                cap.capacitance, ic=0.0)
            ckt.components[ckt.components.index(cap)] = sub
            return ckt

        dense = transient(build(), 0.5e-6, 2e-9, method="adaptive",
                          use_ic=True, matrix="dense")
        calls["update"] = calls["rhs"] = 0
        sparse = transient(build(), 0.5e-6, 2e-9, method="adaptive",
                           use_ic=True, matrix="sparse")
        # The override ran on the sparse path (not bypassed by the
        # hoisted kernels), and the answers still agree.
        assert calls["update"] > 0
        assert calls["rhs"] > 0
        assert np.array_equal(dense.t, sparse.t)
        assert np.max(np.abs(dense.x - sparse.x)) <= EQ_TOL


# ---------------------------------------------------------------------------
# Lockstep families on the block-shared sparse kernel
# ---------------------------------------------------------------------------
class TestBatchSparse:
    @staticmethod
    def _rectifiers(n=4):
        from repro.power import build_rectifier_circuit

        return [build_rectifier_circuit(v_in_amplitude=1.2 + 0.2 * i)
                for i in range(n)]

    def test_family_matches_dense_batch(self):
        t_stop, dt = 1e-6, 2e-9
        dense = transient_batch(self._rectifiers(), t_stop, dt,
                                use_ic=True, matrix="dense")
        sparse = transient_batch(self._rectifiers(), t_stop, dt,
                                 use_ic=True, matrix="sparse")
        assert np.array_equal(dense.t, sparse.t), "accepted grids differ"
        # The family kernel accumulates N cells of solver round-off on
        # a shared grid; one decade of headroom over the single-circuit
        # 1e-12 contract keeps the bound meaningful without flaking.
        assert np.max(np.abs(dense.x - sparse.x)) <= 1e-11
        assert dense.stats["newton_iters"] == sparse.stats["newton_iters"]

    def test_counters_distinguish_strategies(self):
        t_stop, dt = 0.5e-6, 2e-9
        dense = transient_batch(self._rectifiers(), t_stop, dt,
                                use_ic=True, matrix="dense")
        sparse = transient_batch(self._rectifiers(), t_stop, dt,
                                 use_ic=True, matrix="sparse")
        assert dense.stats["pattern_reuses"] == 0
        assert dense.stats["factorizations"] > 0
        assert sparse.stats["pattern_reuses"] > 0
        assert sparse.stats["factorizations"] > 0

    def test_auto_keeps_small_families_dense(self):
        fam = transient_batch(self._rectifiers(2), 0.25e-6, 2e-9,
                              use_ic=True, matrix="auto")
        assert fam.stats["pattern_reuses"] == 0

    def test_auto_picks_sparse_for_large_cells(self):
        circuits = [rc_ladder(SPARSE_AUTO_THRESHOLD + 8, diode_taps=True)
                    for _ in range(2)]
        fam = transient_batch(circuits, 0.1e-6, 1e-9, use_ic=True,
                              matrix="auto")
        assert fam.stats["pattern_reuses"] > 0

    def test_linear_family_sparse_parity(self):
        def ladders():
            return [rc_ladder(8, r=500.0 * (1 + i)) for i in range(3)]

        dense = transient_batch(ladders(), 1e-6, 2e-9, use_ic=True,
                                matrix="dense")
        sparse = transient_batch(ladders(), 1e-6, 2e-9, use_ic=True,
                                 matrix="sparse")
        assert np.array_equal(dense.t, sparse.t)
        assert np.max(np.abs(dense.x - sparse.x)) <= EQ_TOL
