"""Incremental recomputation: StudyDiff deltas and run_delta replay.

The load-bearing properties:

* a study identical to its predecessor recomputes nothing;
* reordering axis values (same cell set) recomputes nothing — cell
  identity is the content address, not the grid position;
* moving one axis value recomputes exactly the affected cells, and
  the delta result is bitwise-identical to a cold run of the grid;
* unchanged cells replay from the store (and a cleared store is
  reported as replay misses, never silently recomputed-as-replayed).
"""

import numpy as np
import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import (
    DeltaReport,
    ResultStore,
    ScenarioBatch,
    StudyDiff,
    SweepOrchestrator,
    control_cell_keys,
)

T_STOP = 5e-3


@pytest.fixture(scope="module")
def system():
    return RemotePoweringSystem(distance=10e-3)


@pytest.fixture(scope="module")
def controller():
    return AdaptivePowerController()


def grid(distances_mm, loads_ua=(352.0, 800.0)):
    return ScenarioBatch.from_axes(
        distance=[d * 1e-3 for d in distances_mm],
        i_load=[i * 1e-6 for i in loads_ua],
    )


def keys_of(batch, system, controller):
    return control_cell_keys(batch, system, controller, T_STOP)


class TestStudyDiff:
    def test_identical_studies_change_nothing(self, system, controller):
        keys = keys_of(grid([8.0, 10.0, 12.0]), system, controller)
        diff = StudyDiff.between(keys, keys)
        assert diff.n_changed == 0
        assert diff.n_unchanged == len(keys)
        assert diff.n_removed == 0
        assert diff.unchanged_indices == tuple(range(len(keys)))

    def test_axis_reorder_changes_nothing(self, system, controller):
        prev = keys_of(grid([8.0, 10.0, 12.0]), system, controller)
        now = keys_of(grid([12.0, 8.0, 10.0]), system, controller)
        assert prev != now  # genuinely permuted...
        diff = StudyDiff.between(prev, now)
        assert diff.n_changed == 0  # ...but no cell is new
        assert diff.n_unchanged == len(now)
        assert diff.n_removed == 0

    def test_one_moved_value_affects_exactly_its_cells(self, system, controller):
        batch_prev = grid([8.0, 10.0, 12.0])
        batch_now = grid([8.0, 10.0, 14.0])
        diff = StudyDiff.between(
            keys_of(batch_prev, system, controller),
            keys_of(batch_now, system, controller),
        )
        assert diff.n_changed == 2  # the two loads at 14 mm
        assert diff.n_unchanged == 4
        assert diff.n_removed == 2  # the two cells at 12 mm
        for i in diff.changed_indices:
            assert batch_now.scenarios[i].distance == pytest.approx(14e-3)
        for i in diff.unchanged_indices:
            assert batch_now.scenarios[i].distance < 14e-3

    def test_removed_axis_value_only(self, system, controller):
        prev = keys_of(grid([8.0, 10.0, 12.0]), system, controller)
        now = keys_of(grid([8.0, 10.0]), system, controller)
        diff = StudyDiff.between(prev, now)
        assert diff.n_changed == 0
        assert diff.n_unchanged == len(now)
        assert diff.n_removed == 2
        assert len(diff.removed_keys) == 2

    def test_empty_previous_study_changes_everything(self, system, controller):
        now = keys_of(grid([8.0, 10.0]), system, controller)
        diff = StudyDiff.between([], now)
        assert diff.n_changed == len(now)
        assert diff.n_unchanged == 0

    def test_controller_change_invalidates_every_cell(self, system, controller):
        batch = grid([8.0, 10.0])
        retuned = AdaptivePowerController(v_high=controller.v_high + 0.1)
        prev = keys_of(batch, system, controller)
        now = keys_of(batch, system, retuned)
        diff = StudyDiff.between(prev, now)
        assert diff.n_changed == len(now)  # the controller is in the key
        assert diff.n_unchanged == 0

    def test_as_dict_round_trips_counts(self, system, controller):
        prev = keys_of(grid([8.0, 10.0, 12.0]), system, controller)
        now = keys_of(grid([8.0, 10.0, 14.0]), system, controller)
        doc = StudyDiff.between(prev, now).as_dict()
        assert doc["n_cells"] == 6
        assert doc["n_changed"] == 2
        assert doc["n_unchanged"] == 4
        assert doc["n_removed"] == 2
        assert sorted(doc["changed_indices"]) == list(doc["changed_indices"])


class TestRunDelta:
    def test_requires_a_store(self, system, controller):
        orchestrator = SweepOrchestrator()
        with pytest.raises(ValueError, match="store"):
            orchestrator.run_delta(
                "control",
                grid([8.0]),
                [],
                system=system,
                controller=controller,
                t_stop=T_STOP,
            )

    def test_unknown_mode_is_a_typed_error(self, system, controller, tmp_path):
        orchestrator = SweepOrchestrator(store=ResultStore(tmp_path / "cache"))
        with pytest.raises(ValueError, match="unknown sweep mode"):
            orchestrator.run_delta("tides", grid([8.0]), [])
        with pytest.raises(ValueError, match="unknown sweep mode"):
            orchestrator.cell_keys(
                "tides", grid([8.0]), system=system, controller=controller
            )

    def test_delta_computes_only_changed_cells(self, system, controller, tmp_path):
        store = ResultStore(tmp_path / "cache")
        orchestrator = SweepOrchestrator(store=store)
        batch_prev = grid([8.0, 10.0, 12.0])
        batch_now = grid([8.0, 10.0, 14.0])
        prev_keys = keys_of(batch_prev, system, controller)

        orchestrator.run_control(batch_prev, system, controller, T_STOP)
        assert orchestrator.stats.n_computed == 6  # cold

        result, report = orchestrator.run_delta(
            "control",
            batch_now,
            prev_keys,
            system=system,
            controller=controller,
            t_stop=T_STOP,
        )
        assert isinstance(report, DeltaReport)
        assert report.n_cells == 6
        assert report.n_changed == 2
        assert report.n_replayed == 4
        assert report.n_replay_miss == 0
        assert orchestrator.stats.n_computed == 2  # only the delta ran
        assert orchestrator.stats.n_cached == 4
        assert orchestrator.stats.delta == report.as_dict()

        # Parity: the merged cold+replayed result is bitwise-identical
        # to a from-scratch run of the new grid.
        cold = SweepOrchestrator().run_control(batch_now, system, controller, T_STOP)
        assert np.array_equal(result.v_rect, cold.v_rect)
        assert np.array_equal(result.p_delivered, cold.p_delivered)

    def test_identical_study_recomputes_nothing(self, system, controller, tmp_path):
        orchestrator = SweepOrchestrator(store=ResultStore(tmp_path / "cache"))
        batch = grid([8.0, 10.0])
        keys = keys_of(batch, system, controller)
        orchestrator.run_control(batch, system, controller, T_STOP)
        _, report = orchestrator.run_delta(
            "control",
            batch,
            keys,
            system=system,
            controller=controller,
            t_stop=T_STOP,
        )
        assert report.n_changed == 0
        assert report.n_replayed == len(batch)
        assert orchestrator.stats.n_computed == 0

    def test_cleared_store_reports_replay_misses(self, system, controller, tmp_path):
        store = ResultStore(tmp_path / "cache")
        orchestrator = SweepOrchestrator(store=store)
        batch = grid([8.0, 10.0])
        keys = keys_of(batch, system, controller)
        orchestrator.run_control(batch, system, controller, T_STOP)
        store.clear()
        _, report = orchestrator.run_delta(
            "control",
            batch,
            keys,
            system=system,
            controller=controller,
            t_stop=T_STOP,
        )
        assert report.n_changed == 0
        assert report.n_replayed == 0
        assert report.n_replay_miss == len(batch)  # recomputed, honestly

    def test_cell_keys_match_module_function(self, system, controller):
        batch = grid([8.0, 10.0])
        orchestrator = SweepOrchestrator()
        assert orchestrator.cell_keys(
            "control", batch, system=system, controller=controller, t_stop=T_STOP
        ) == keys_of(batch, system, controller)
