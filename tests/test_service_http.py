"""JSON-over-HTTP front-end: routes, typed status codes, parity.

The server is the stdlib asyncio-streams front-end `repro serve`
exposes; every test binds port 0 (a free port) and drives it through
:class:`HttpServiceClient` or raw bytes.
"""

import asyncio
import json

import numpy as np
import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import ScenarioBatch, SweepOrchestrator
from repro.service import (
    HttpServiceClient,
    JobNotFoundError,
    QueueFullError,
    ServiceHTTPServer,
    SimRequest,
    SimRequestError,
    SimulationService,
)


@pytest.fixture(scope="module")
def system():
    return RemotePoweringSystem(distance=10e-3)


@pytest.fixture(scope="module")
def controller():
    return AdaptivePowerController()


def sweep_payload(distance, t_stop=5e-3):
    return {"kind": "sweep", "t_stop": t_stop,
            "axes": {"distance": [distance], "i_load": [352e-6]}}


def serve(system, controller, coro_fn, *, start_service=True,
          **service_kwargs):
    """Run ``coro_fn(client, service)`` against a live server on a
    free port."""

    async def main():
        service_kwargs.setdefault("window", 5e-3)
        service = SimulationService(system=system,
                                    controller=controller,
                                    **service_kwargs)
        server = ServiceHTTPServer(service, port=0)
        host, port = await server.start()
        client = HttpServiceClient(host, port, poll_interval=0.01)
        try:
            if start_service:
                await service.start()
            return await coro_fn(client, service)
        finally:
            await service.stop()
            await server.stop()

    return asyncio.run(main())


class TestRoutes:
    def test_submit_poll_result_matches_direct_run(self, system,
                                                   controller):
        async def scenario(client, service):
            job_id = await client.submit(sweep_payload(8e-3))
            doc = await client.job(job_id)
            assert doc["state"] in ("queued", "running", "done")
            result = await client.result(job_id)
            return result

        result = serve(system, controller, scenario)
        req = SimRequest.from_payload(sweep_payload(8e-3))
        ref = SweepOrchestrator().run_control(
            ScenarioBatch(req.scenarios), system, controller,
            req.t_stop)
        # JSON floats round-trip bitwise, so over-the-wire equals the
        # direct engine arrays exactly.
        assert np.array_equal(
            np.array(result["cells"][0]["v_rect"]), ref.v_rect[0])
        assert np.array_equal(
            np.array(result["cells"][0]["p_delivered"]),
            ref.p_delivered[0])

    def test_health_and_stats(self, system, controller):
        async def scenario(client, service):
            assert (await client.health())["ok"] is True
            await client.result(await client.submit(
                sweep_payload(9e-3)))
            return await client.stats()

        doc = serve(system, controller, scenario)
        assert doc["submitted"] == 1
        assert doc["jobs"]["done"] == 1
        assert doc["latency"]["p90_s"] > 0.0

    def test_cancel_route(self, system, controller):
        async def scenario(client, service):
            # Service not started: the job stays queued, so the
            # cancel must win and its cells must never run.
            job_id = await client.submit(sweep_payload(8e-3))
            assert await client.cancel(job_id) is True
            doc = await client.job(job_id)
            assert doc["state"] == "cancelled"
            await service.start()
            ok = await client.submit(sweep_payload(12e-3))
            await client.result(ok)
            assert service.scheduler.stats.cells_requested == 1
            # Cancelling a terminal job reports False, not an error.
            assert await client.cancel(job_id) is False
            return True

        assert serve(system, controller, scenario,
                     start_service=False)


class TestErrorMapping:
    def test_bad_payloads_are_400(self, system, controller):
        async def scenario(client, service):
            with pytest.raises(SimRequestError):
                await client.submit({"kind": "nope"})
            with pytest.raises(SimRequestError):  # typed axis error
                await client.submit(
                    {"kind": "sweep", "axes": {"bogus": [1.0]}})
            with pytest.raises(SimRequestError):
                await client.submit(
                    {"kind": "sweep",
                     "axes": {"distance": [-5.0]}})
            return await client.stats()

        doc = serve(system, controller, scenario)
        assert doc["submitted"] == 0

    def test_unknown_job_is_404(self, system, controller):
        async def scenario(client, service):
            with pytest.raises(JobNotFoundError):
                await client.job("feedfacecafe")
            return True

        assert serve(system, controller, scenario)

    def test_queue_full_is_429(self, system, controller):
        async def scenario(client, service):
            await client.submit(sweep_payload(8e-3))
            await client.submit(sweep_payload(9e-3))
            with pytest.raises(QueueFullError):
                await client.submit(sweep_payload(10e-3))
            return await client.stats()

        # Dispatcher off: nothing drains, so the bound must hold.
        doc = serve(system, controller, scenario,
                    start_service=False, max_pending=2)
        assert doc["rejected"] == 1
        assert doc["queue_depth"] == 2

    def test_unknown_route_is_404_and_bad_json_is_400(self, system,
                                                      controller):
        async def scenario(client, service):
            status, doc = await _raw(client,
                                     b"GET /teapot HTTP/1.1\r\n\r\n")
            assert status == 404
            body = b"{definitely not json"
            head = (f"POST /submit HTTP/1.1\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                    ).encode() + body
            status, doc = await _raw(client, head)
            assert status == 400
            assert doc["error"] == "bad_json"
            return True

        assert serve(system, controller, scenario)


async def _raw(client, payload):
    """Send raw bytes to the server, return (status, json body)."""
    reader, writer = await asyncio.open_connection(client.host,
                                                   client.port)
    writer.write(payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, body = raw.partition(b"\r\n\r\n")
    status = int(header.split()[1])
    return status, json.loads(body) if body else {}


class TestMalformedHeaders:
    def test_negative_content_length_is_400(self, system, controller):
        async def scenario(client, service):
            head = (b"POST /submit HTTP/1.1\r\n"
                    b"Content-Length: -1\r\n\r\n")
            status, doc = await _raw(client, head)
            assert status == 400
            assert doc["error"] == "bad_request"
            return True

        assert serve(system, controller, scenario)

    def test_http_priority_field_reaches_the_job(self, system,
                                                 controller):
        async def scenario(client, service):
            job_id = await client.submit(
                {**sweep_payload(8e-3), "priority": 7})
            doc = await client.job(job_id)
            assert doc["priority"] == 7
            return True

        assert serve(system, controller, scenario,
                     start_service=False)

    def test_silent_connection_gets_408_not_a_stuck_task(self, system,
                                                         controller):
        async def scenario(client, service):
            # Send nothing: the server must answer 408 on its own
            # read timeout rather than parking the handler forever.
            reader, writer = await asyncio.open_connection(
                client.host, client.port)
            raw = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            await writer.wait_closed()
            status = int(raw.split()[1])
            assert status == 408
            return True

        async def main():
            service = SimulationService(system=system,
                                        controller=controller,
                                        window=5e-3)
            server = ServiceHTTPServer(service, port=0,
                                       read_timeout=0.2)
            host, port = await server.start()
            client = HttpServiceClient(host, port)
            try:
                return await scenario(client, service)
            finally:
                await server.stop()

        assert asyncio.run(main())
