"""Tests for mutual inductance, tissue, two-port link, and matching."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.link import (
    CapacitiveMatch,
    CircularSpiral,
    InductiveLink,
    RectangularSpiral,
    TISSUE_LIBRARY,
    TissueLayer,
    coil_mutual_inductance,
    coupling_coefficient,
    design_l_match,
    mutual_inductance_loops,
)

MU0 = 4e-7 * math.pi


@pytest.fixture(scope="module")
def coils():
    return (CircularSpiral.ironic_transmitter(),
            RectangularSpiral.ironic_receiver())


@pytest.fixture(scope="module")
def link(coils):
    return InductiveLink(coils[0], coils[1], 5e6)


class TestMutualInductance:
    def test_matches_dipole_limit_at_large_distance(self):
        """Far field: M -> mu0*pi*r1^2*r2^2 / (2*z^3)."""
        r1, r2, z = 10e-3, 2e-3, 200e-3
        exact = mutual_inductance_loops(r1, r2, z)
        dipole = MU0 * math.pi * r1**2 * r2**2 / (2.0 * z**3)
        assert exact == pytest.approx(dipole, rel=0.01)

    def test_symmetry_in_radii(self):
        assert mutual_inductance_loops(10e-3, 5e-3, 7e-3) == pytest.approx(
            mutual_inductance_loops(5e-3, 10e-3, 7e-3), rel=1e-12)

    def test_monotone_decreasing_with_distance(self):
        values = [mutual_inductance_loops(10e-3, 5e-3, z)
                  for z in np.linspace(1e-3, 50e-3, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            mutual_inductance_loops(-1e-3, 5e-3, 1e-3)
        with pytest.raises(ValueError):
            mutual_inductance_loops(1e-3, 5e-3, -1e-3)

    @given(st.floats(min_value=1e-3, max_value=30e-3),
           st.floats(min_value=1e-3, max_value=30e-3),
           st.floats(min_value=0.5e-3, max_value=100e-3))
    @settings(max_examples=50)
    def test_always_positive_and_bounded(self, r1, r2, z):
        """0 < M < sqrt(L1*L2) equivalent: M below the coincident bound."""
        m = mutual_inductance_loops(r1, r2, z)
        assert m > 0
        m_closer = mutual_inductance_loops(r1, r2, z * 0.5)
        assert m_closer >= m

    def test_coil_mutual_positive(self, coils):
        tx, rx = coils
        assert coil_mutual_inductance(tx, rx, 6e-3) > 0

    def test_misalignment_reduces_coupling(self, coils):
        tx, rx = coils
        aligned = coil_mutual_inductance(tx, rx, 6e-3)
        offset = coil_mutual_inductance(tx, rx, 6e-3, lateral_offset=8e-3)
        far = coil_mutual_inductance(tx, rx, 6e-3, lateral_offset=60e-3)
        assert aligned > offset > far >= 0

    def test_coupling_coefficient_in_unit_interval(self, coils):
        tx, rx = coils
        for d in (2e-3, 6e-3, 17e-3, 40e-3):
            k = coupling_coefficient(tx, rx, d)
            assert 0 < k < 1


class TestTissue:
    def test_library_has_paper_phantom(self):
        assert "sirloin" in TISSUE_LIBRARY
        assert "muscle" in TISSUE_LIBRARY

    def test_muscle_skin_depth_large_at_5mhz(self):
        """Key physics behind the paper's tissue~=air result: skin depth
        of muscle at 5 MHz is ~30 cm, far beyond implant depths."""
        delta = TISSUE_LIBRARY["muscle"].skin_depth(5e6)
        assert 0.2 < delta < 0.5

    def test_sirloin_slab_barely_attenuates_at_5mhz(self):
        layer = TissueLayer("sirloin", 17e-3)
        assert layer.power_factor(5e6) > 0.85

    def test_attenuation_grows_with_frequency(self):
        layer = TissueLayer("muscle", 17e-3)
        assert layer.power_factor(5e6) > layer.power_factor(500e6)

    def test_air_layer_is_transparent(self):
        layer = TissueLayer("air", 50e-3)
        assert layer.field_attenuation(5e6) == 1.0
        assert layer.eddy_loss_factor(5e6) == 0.0

    def test_unknown_tissue_helpful_error(self):
        with pytest.raises(KeyError, match="available"):
            TissueLayer("bone_marrow", 1e-3)

    def test_eddy_loss_small_but_positive(self):
        layer = TissueLayer("sirloin", 17e-3)
        loss = layer.eddy_loss_factor(5e6, loop_radius=5e-3)
        assert 0 < loss < 0.2

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ValueError):
            TissueLayer("muscle", 0.0)


class TestInductiveLink:
    def test_paper_anchor_6mm_15mw(self, link):
        """E3: calibrated drive delivers 15 mW at 6 mm (paper Sec III-B)."""
        i = link.calibrate_drive(15e-3, 6e-3)
        assert link.available_power(i, 6e-3) == pytest.approx(15e-3, rel=1e-6)

    def test_paper_anchor_10mm_about_5mw(self, link):
        """E5: ~5 mW to a matched load at 10 mm (paper Sec IV-C)."""
        i = link.calibrate_drive(15e-3, 6e-3)
        p10 = link.available_power(i, 10e-3)
        assert 4e-3 < p10 < 7e-3

    def test_paper_anchor_17mm_tissue(self, coils):
        """E3: ~1.17 mW through 17 mm of sirloin; tissue ~= air."""
        tx, rx = coils
        air = InductiveLink(tx, rx, 5e6)
        meat = InductiveLink(tx, rx, 5e6, [TissueLayer("sirloin", 17e-3)])
        i = air.calibrate_drive(15e-3, 6e-3)
        p_air = air.available_power(i, 17e-3)
        p_meat = meat.available_power(i, 17e-3)
        assert 0.7e-3 < p_air < 1.7e-3
        # Tissue costs little at 5 MHz (paper: 1.17 mW vs similar in air).
        assert p_meat > 0.75 * p_air

    def test_delivered_at_matched_load_is_available(self, link):
        i = 0.2
        p_av = link.available_power(i, 6e-3)
        p_match = link.delivered_power(i, 6e-3, link.optimal_series_load())
        assert p_match == pytest.approx(p_av, rel=1e-9)

    def test_mismatched_load_delivers_less(self, link):
        i = 0.2
        p_match = link.delivered_power(i, 6e-3, link.optimal_series_load())
        assert link.delivered_power(i, 6e-3, 10.0) < p_match
        assert link.delivered_power(i, 6e-3, 10e3) < p_match

    def test_efficiency_below_unity_and_decreasing(self, link):
        etas = [link.max_efficiency(d)
                for d in (3e-3, 6e-3, 10e-3, 17e-3, 30e-3)]
        assert all(0 < e < 1 for e in etas)
        assert all(a > b for a, b in zip(etas, etas[1:]))

    def test_optimal_efficiency_load_exceeds_coil_resistance(self, link):
        assert link.optimal_efficiency_load(6e-3) > link.r_rx

    def test_efficiency_peaks_at_optimal_load(self, link):
        """Delivered/input efficiency is maximal near R_opt (ablation)."""
        i = 0.1
        r_opt = link.optimal_efficiency_load(6e-3)

        def eta(r_load):
            return link.operating_point(i, 6e-3, r_load).efficiency

        assert eta(r_opt) >= eta(r_opt / 5)
        assert eta(r_opt) >= eta(r_opt * 5)

    def test_reflected_impedance_scales(self, link):
        z6 = link.reflected_impedance(6e-3, complex(50, 0))
        z17 = link.reflected_impedance(17e-3, complex(50, 0))
        assert z6.real > z17.real > 0

    def test_reflected_impedance_rejects_zero(self, link):
        with pytest.raises(ValueError):
            link.reflected_impedance(6e-3, 0)

    def test_operating_point_consistency(self, link):
        pt = link.operating_point(0.2, 6e-3)
        assert pt.delivered_power <= pt.available_power * (1 + 1e-9)
        assert pt.coupling == pytest.approx(link.coupling(6e-3))
        row = pt.as_row()
        assert row[0] == pytest.approx(6.0)

    def test_distance_sweep_ordering(self, link):
        pts = link.distance_sweep(0.2, [4e-3, 8e-3, 16e-3])
        powers = [p.available_power for p in pts]
        assert powers[0] > powers[1] > powers[2]

    def test_kq_product_drives_efficiency(self, link):
        """eta = kq/(1+sqrt(1+kq))^2 identity."""
        kq = link.kq_product(6e-3)
        eta = link.max_efficiency(6e-3)
        assert eta == pytest.approx(kq / (1 + math.sqrt(1 + kq)) ** 2)


class TestMatching:
    def test_design_matches_rectifier_150ohm(self, link):
        """E5: CA/CB match the coil to the rectifier's ~150 ohm input."""
        m = design_l_match(link.r_rx, link.omega * link.l_rx, 150.0, 5e6)
        assert m.match_error() < 1e-9
        assert m.c_series > 0 and m.c_parallel > 0

    def test_capacitor_values_practical(self, link):
        """Capacitors must be SMD-practical (pF..nF)."""
        m = design_l_match(link.r_rx, link.omega * link.l_rx, 150.0, 5e6)
        assert 1e-12 < m.c_series < 100e-9
        assert 1e-12 < m.c_parallel < 100e-9

    def test_input_impedance_at_design_point(self, link):
        m = design_l_match(link.r_rx, link.omega * link.l_rx, 150.0, 5e6)
        z = m.input_impedance()
        assert z.real == pytest.approx(link.r_rx, rel=1e-6)
        assert z.imag == pytest.approx(-link.omega * link.l_rx, rel=1e-6)

    def test_off_frequency_mismatch(self, link):
        m = design_l_match(link.r_rx, link.omega * link.l_rx, 150.0, 5e6)
        z_design = m.input_impedance()
        z_off = m.input_impedance(6e6)
        assert abs(z_off - z_design) > 1.0

    def test_q_factor_formula(self):
        m = CapacitiveMatch(1e-9, 1e-9, 5e6, 10.0, 100.0, 160.0)
        assert m.q_factor() == pytest.approx(math.sqrt(160.0 / 10.0 - 1.0))

    def test_rejects_downward_transformation(self):
        with pytest.raises(ValueError, match="r_load"):
            design_l_match(200.0, 150.0, 50.0, 5e6)

    def test_rejects_capacitive_source(self):
        with pytest.raises(ValueError, match="x_source"):
            design_l_match(5.0, -10.0, 150.0, 5e6)

    @given(st.floats(min_value=2.0, max_value=30.0),
           st.floats(min_value=60.0, max_value=500.0))
    @settings(max_examples=30)
    def test_match_error_always_tiny(self, r_src, r_load):
        """Property: designed match is exact for any feasible pair."""
        x_src = 2 * math.pi * 5e6 * 4.5e-6  # the paper's coil reactance
        m = design_l_match(r_src, x_src, r_load, 5e6)
        assert m.match_error() < 1e-6
