"""Tests for sensor drift and recalibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sensor import CLODX
from repro.sensor.stability import (
    CalibrationState,
    DriftModel,
    Recalibrator,
)

DAY = 86400.0


class TestDriftModel:
    def test_fresh_sensor_unchanged(self):
        aged = DriftModel().aged_enzyme(CLODX, 0.0)
        assert aged.j_max == pytest.approx(CLODX.j_max)
        assert aged.km == pytest.approx(CLODX.km)

    def test_half_life(self):
        model = DriftModel(activity_half_life=10 * DAY, fouling_rate=0.0)
        aged = model.aged_enzyme(CLODX, 10 * DAY)
        assert aged.j_max == pytest.approx(CLODX.j_max / 2)

    def test_fouling_raises_km(self):
        model = DriftModel(fouling_rate=0.05)
        aged = model.aged_enzyme(CLODX, 10 * DAY)
        assert aged.km == pytest.approx(CLODX.km * 1.5)

    def test_sensitivity_loss_grows_with_age(self):
        model = DriftModel()
        losses = [model.sensitivity_loss(CLODX, d * DAY)
                  for d in (0, 3, 7, 14)]
        assert losses[0] == pytest.approx(0.0)
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_week_old_sensor_degrades_noticeably(self):
        loss = DriftModel().sensitivity_loss(CLODX, 7 * DAY)
        assert 0.2 < loss < 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftModel(activity_half_life=-1.0)
        with pytest.raises(ValueError):
            DriftModel(fouling_rate=-0.1)
        with pytest.raises(ValueError):
            DriftModel().aged_enzyme(CLODX, -5.0)


class TestRecalibration:
    @pytest.fixture
    def setup(self):
        model = DriftModel()
        aged = model.aged_enzyme(CLODX, 7 * DAY)
        recal = Recalibrator(CLODX, area_cm2=0.25)
        return aged, recal

    def test_uncalibrated_error_is_large(self, setup):
        aged, recal = setup
        err = recal.readout_error(aged, CalibrationState(), 0.8)
        assert abs(err) > 0.15

    def test_one_point_calibration_fixes_gain_drift(self):
        """Pure activity decay (gain error) is fully corrected by a
        single-point calibration."""
        model = DriftModel(fouling_rate=0.0)
        aged = model.aged_enzyme(CLODX, 7 * DAY)
        recal = Recalibrator(CLODX, area_cm2=0.25)
        i_ref = aged.current_density(0.8) * 0.25
        cal = recal.one_point(0.8, i_ref)
        err = recal.readout_error(aged, cal, 0.8)
        assert abs(err) < 1e-6
        # And it transfers to other concentrations reasonably.
        assert abs(recal.readout_error(aged, cal, 0.4)) < 0.05

    def test_two_point_beats_one_point_under_fouling(self, setup):
        aged, recal = setup
        area = 0.25
        i1 = aged.current_density(0.3) * area
        i2 = aged.current_density(1.0) * area
        cal1 = recal.one_point(1.0, i2)
        cal2 = recal.two_point(0.3, i1, 1.0, i2)
        err1 = abs(recal.readout_error(aged, cal1, 0.5))
        err2 = abs(recal.readout_error(aged, cal2, 0.5))
        assert err2 <= err1 + 1e-9

    def test_two_point_exact_at_its_anchors(self, setup):
        aged, recal = setup
        area = 0.25
        i1 = aged.current_density(0.3) * area
        i2 = aged.current_density(1.0) * area
        cal = recal.two_point(0.3, i1, 1.0, i2)
        assert abs(recal.readout_error(aged, cal, 0.3)) < 1e-6
        assert abs(recal.readout_error(aged, cal, 1.0)) < 1e-6

    def test_two_point_validation(self, setup):
        _, recal = setup
        with pytest.raises(ValueError):
            recal.two_point(1.0, 1e-6, 0.3, 2e-6)
        with pytest.raises(ValueError):
            recal.two_point(0.3, 2e-6, 1.0, 1e-6)

    def test_one_point_validation(self, setup):
        _, recal = setup
        with pytest.raises(ValueError):
            recal.one_point(0.0, 1e-6)
        with pytest.raises(ValueError):
            recal.one_point(0.5, 0.0)

    def test_concentration_inverse_of_zero(self, setup):
        _, recal = setup
        assert recal.concentration_from_current(0.0) == 0.0

    @given(st.floats(min_value=0.2, max_value=2.0))
    @settings(max_examples=20)
    def test_calibrated_error_bounded_property(self, concentration):
        """After two-point recalibration at 0.3/1.0 mM, a week-old
        sensor reads within 10% anywhere in 0.2-2 mM."""
        model = DriftModel()
        aged = model.aged_enzyme(CLODX, 7 * DAY)
        recal = Recalibrator(CLODX, area_cm2=0.25)
        i1 = aged.current_density(0.3) * 0.25
        i2 = aged.current_density(1.0) * 0.25
        cal = recal.two_point(0.3, i1, 1.0, i2)
        assert abs(recal.readout_error(aged, cal, concentration)) < 0.10
