"""Transient-analysis tests against closed-form circuit responses."""

import numpy as np
import pytest

from repro.spice import Circuit, sine, square, transient


def rc_charge_circuit(vstep=1.0, r=1e3, c=1e-6):
    ckt = Circuit("rc")
    ckt.add_vsource("V1", "in", "0", vstep)
    ckt.add_resistor("R1", "in", "out", r)
    ckt.add_capacitor("C1", "out", "0", c, ic=0.0)
    return ckt


class TestLinearTransient:
    @pytest.mark.parametrize("method", ["be", "trap"])
    def test_rc_step_response(self, method):
        r, c = 1e3, 1e-6
        tau = r * c
        ckt = rc_charge_circuit(r=r, c=c)
        res = transient(ckt, t_stop=5 * tau, dt=tau / 100,
                        method=method, use_ic=True)
        vout = res.voltage("out")
        expected = 1.0 - np.exp(-vout.t / tau)
        tol = 0.002 if method == "trap" else 0.02
        assert np.max(np.abs(vout.v - expected)) < tol

    def test_rc_final_value(self):
        ckt = rc_charge_circuit(vstep=2.75)
        res = transient(ckt, t_stop=10e-3, dt=10e-6, use_ic=True)
        assert res.voltage("out").v[-1] == pytest.approx(2.75, rel=1e-3)

    def test_rl_current_rise(self):
        r, l = 10.0, 1e-3
        tau = l / r
        ckt = Circuit("rl")
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "a", r)
        ckt.add_inductor("L1", "a", "0", l)
        res = transient(ckt, t_stop=5 * tau, dt=tau / 100, use_ic=True)
        i = res.branch_current("L1")
        expected = (1.0 / r) * (1.0 - np.exp(-i.t / tau))
        assert np.max(np.abs(i.v - expected)) < 0.01 / r

    def test_lc_resonance_frequency(self):
        """Undriven LC tank rings at f0 = 1/(2*pi*sqrt(LC))."""
        l, c = 10e-6, 100e-12  # f0 ~ 5.03 MHz (the paper's band)
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        ckt = Circuit("lc")
        ckt.add_capacitor("C1", "a", "0", c, ic=1.0)
        ckt.add_inductor("L1", "a", "0", l)
        ckt.add_resistor("Rbig", "a", "0", 1e9)  # keeps matrix regular
        res = transient(ckt, t_stop=10 / f0, dt=1 / (f0 * 200),
                        method="trap", use_ic=True)
        v = res.voltage("a")
        # Count zero crossings: 2 per period.
        crossings = np.sum(np.diff(np.sign(v.v)) != 0)
        periods = crossings / 2.0
        measured_f0 = periods / v.duration
        assert measured_f0 == pytest.approx(f0, rel=0.02)

    def test_trap_energy_conservation_lc(self):
        """Trapezoidal integration conserves LC tank energy to ~0.1%."""
        l, c = 1e-3, 1e-6
        ckt = Circuit("lc_energy")
        ckt.add_capacitor("C1", "a", "0", c, ic=1.0)
        ckt.add_inductor("L1", "a", "0", l)
        ckt.add_resistor("Rbig", "a", "0", 1e12)
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        res = transient(ckt, t_stop=5 / f0, dt=1 / (f0 * 400),
                        method="trap", use_ic=True)
        v = res.voltage("a").v
        i = res.branch_current("L1").v
        energy = 0.5 * c * v**2 + 0.5 * l * i**2
        assert np.max(np.abs(energy - energy[0])) / energy[0] < 2e-3

    def test_sine_steady_state_amplitude(self):
        """RC low-pass driven at its corner: |H| = 1/sqrt(2)."""
        r, c = 1e3, 1e-6
        fc = 1.0 / (2 * np.pi * r * c)
        ckt = Circuit("rc_sine")
        ckt.add_vsource("V1", "in", "0", sine(1.0, fc))
        ckt.add_resistor("R1", "in", "out", r)
        ckt.add_capacitor("C1", "out", "0", c)
        res = transient(ckt, t_stop=20 / fc, dt=1 / (fc * 200), use_ic=True)
        tail = res.voltage("out").clip_time(10 / fc, 20 / fc)
        amplitude = 0.5 * tail.peak_to_peak()
        assert amplitude == pytest.approx(1 / np.sqrt(2), rel=0.02)

    def test_transformer_voltage_ratio(self):
        """Tightly coupled 1:2 transformer steps voltage up by ~2."""
        ckt = Circuit("xfmr")
        ckt.add_vsource("V1", "in", "0", sine(1.0, 1e5))
        ckt.add_resistor("Rs", "in", "p", 1.0)
        l1 = ckt.add_inductor("L1", "p", "0", 1e-3)
        l2 = ckt.add_inductor("L2", "s", "0", 4e-3)  # n = sqrt(L2/L1) = 2
        ckt.add_coupling("K1", l1, l2, 0.9999)
        ckt.add_resistor("RL", "s", "0", 10e3)
        res = transient(ckt, t_stop=100e-6, dt=0.05e-6, use_ic=True)
        tail_in = res.voltage("p").clip_time(50e-6, 100e-6)
        tail_out = res.voltage("s").clip_time(50e-6, 100e-6)
        ratio = tail_out.peak_to_peak() / tail_in.peak_to_peak()
        assert ratio == pytest.approx(2.0, rel=0.03)

    def test_store_every_decimates_output(self):
        ckt = rc_charge_circuit()
        res_full = transient(ckt, t_stop=1e-3, dt=1e-6, use_ic=True)
        ckt2 = rc_charge_circuit()
        res_dec = transient(ckt2, t_stop=1e-3, dt=1e-6, use_ic=True,
                            store_every=10)
        assert len(res_dec.t) < len(res_full.t) / 5
        # Same physics on shared time points.
        assert res_dec.voltage("out").v[-1] == pytest.approx(
            res_full.voltage("out").v[-1], rel=1e-6)


class TestNonlinearTransient:
    def test_halfwave_rectifier(self):
        """Peak detector: output settles near Vpeak - Vdiode."""
        ckt = Circuit("halfwave")
        ckt.add_vsource("V1", "in", "0", sine(3.0, 1e5))
        ckt.add_diode("D1", "in", "out")
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        ckt.add_resistor("RL", "out", "0", 1e6)
        res = transient(ckt, t_stop=200e-6, dt=0.1e-6, use_ic=True)
        v_final = res.voltage("out").v[-1]
        assert 2.2 < v_final < 2.9

    def test_rectifier_output_never_negative(self):
        ckt = Circuit("hw2")
        ckt.add_vsource("V1", "in", "0", sine(2.0, 1e6))
        ckt.add_diode("D1", "in", "out")
        ckt.add_capacitor("C1", "out", "0", 100e-9)
        ckt.add_resistor("RL", "out", "0", 10e3)
        res = transient(ckt, t_stop=20e-6, dt=0.02e-6, use_ic=True)
        assert res.voltage("out").min() > -0.05

    def test_diode_clamp_limits_voltage(self):
        """Series stack of clamping diodes caps the output (paper's
        rectifier uses 4 clamps for Vo <= 3 V)."""
        ckt = Circuit("clamp")
        ckt.add_vsource("V1", "in", "0", sine(10.0, 1e5))
        ckt.add_resistor("Rs", "in", "out", 100.0)
        previous = "out"
        for k in range(4):
            nxt = "0" if k == 3 else f"m{k}"
            ckt.add_diode(f"DC{k}", previous, nxt, i_s=1e-12)
            previous = nxt
        res = transient(ckt, t_stop=40e-6, dt=0.05e-6, use_ic=True)
        # Four diode drops at high current ~= 0.75 each -> clamps near 3 V.
        assert res.voltage("out").max() < 3.4

    def test_nmos_switch_inverter(self):
        """NMOS with resistive load inverts a square gate drive."""
        ckt = Circuit("inv")
        ckt.add_vsource("VDD", "vdd", "0", 3.0)
        ckt.add_vsource("VG", "g", "0", square(0.0, 3.0, 1e5))
        ckt.add_resistor("RD", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "g", "0", vto=0.5, kp=500e-6, w=50e-6, l=1e-6)
        res = transient(ckt, t_stop=30e-6, dt=0.05e-6, use_ic=True)
        v_d = res.voltage("d")
        v_g = res.voltage("g")
        # When gate is fully high the drain is pulled low and vice versa
        # (samples inside the gate transition are excluded).
        gate_high = v_g.v > 2.5
        gate_low = v_g.v < 0.5
        assert np.all(v_d.v[gate_high] < 0.5)
        assert np.all(v_d.v[gate_low] > 2.5)

    def test_switch_chops_signal(self):
        ckt = Circuit("chop")
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_vsource("VC", "c", "0", square(0.0, 1.0, 1e5))
        ckt.add_resistor("R1", "in", "a", 1e3)
        ckt.add_switch("S1", "a", "0", "c", "0", r_on=1.0)
        res = transient(ckt, t_stop=30e-6, dt=0.1e-6, use_ic=True)
        v_a = res.voltage("a")
        assert v_a.max() > 0.95
        assert v_a.min() < 0.01


class TestStoreEverySemantics:
    """Satellite: the stored grid is the first point, every k-th
    accepted step, and always the final point."""

    @pytest.mark.parametrize("method", ["trap", "be", "adaptive"])
    def test_first_and_final_points_always_stored(self, method):
        kwargs = {"max_dt": 1e-6} if method == "adaptive" else {}
        res = transient(rc_charge_circuit(), t_stop=1e-4, dt=1e-6,
                        method=method, use_ic=True, store_every=7,
                        **kwargs)
        assert res.t[0] == 0.0
        assert res.t[-1] == pytest.approx(1e-4, rel=1e-12)

    def test_every_kth_accepted_step_on_fixed_grid(self):
        # 100 uniform accepted steps, store_every=10: points at steps
        # 0, 10, 20, ..., 100 (the final point is also a multiple).
        res = transient(rc_charge_circuit(), t_stop=1e-4, dt=1e-6,
                        use_ic=True, store_every=10)
        expected = np.concatenate([[0.0], (np.arange(1, 11)) * 1e-5])
        assert np.allclose(res.t, expected, rtol=1e-9)

    def test_non_dividing_final_step_still_stored_once(self):
        # 100 steps, store_every=7: 0, 7e-6, ..., 98e-6, then 100e-6.
        res = transient(rc_charge_circuit(), t_stop=1e-4, dt=1e-6,
                        use_ic=True, store_every=7)
        assert res.t[0] == 0.0
        assert np.all(np.diff(res.t) > 0)  # final point appended once
        assert res.t[-1] == pytest.approx(1e-4, rel=1e-12)
        assert res.t[-2] == pytest.approx(98e-6, rel=1e-9)
        assert len(res.t) == 2 + 14

    def test_rejects_bad_store_every(self):
        with pytest.raises(ValueError, match="store_every"):
            transient(rc_charge_circuit(), 1e-4, 1e-6, store_every=0)


class TestAdaptiveBackend:
    """Tentpole: LTE-controlled adaptive integration with linear-part
    factorization reuse, checked against the fixed-step parity
    reference on linear, rectifier, and stiff clamp circuits."""

    def test_rc_linear_bypass_grows_steps_and_stays_accurate(self):
        r, c = 1e3, 1e-6
        tau = r * c
        ckt = rc_charge_circuit(r=r, c=c)
        res = transient(ckt, t_stop=5 * tau, dt=tau / 100,
                        method="adaptive", use_ic=True)
        v = res.voltage("out")
        expected = 1.0 - np.exp(-v.t / tau)
        # Far fewer accepted steps than the 500-step fixed grid, still
        # inside the default LTE budget.
        assert len(res.t) < 100
        assert np.max(np.abs(v.v - expected)) < 2e-3

    def test_rc_same_grid_matches_fixed_to_solver_tolerance(self):
        ckt = rc_charge_circuit()
        fixed = transient(ckt, t_stop=2e-3, dt=5e-6, use_ic=True)
        ckt2 = rc_charge_circuit()
        adaptive = transient(ckt2, t_stop=2e-3, dt=5e-6,
                             method="adaptive", use_ic=True,
                             max_dt=5e-6, atol=1e30, rtol=1e30)
        assert len(fixed.t) == len(adaptive.t)
        dev = np.max(np.abs(fixed.voltage("out").v
                            - adaptive.voltage("out").v))
        assert dev < 1e-9

    def test_rectifier_same_grid_parity(self):
        from repro.power import build_rectifier_circuit

        period = 1.0 / 5e6
        fixed = transient(build_rectifier_circuit(), 2e-6, period / 100,
                          method="trap", use_ic=True)
        adaptive = transient(build_rectifier_circuit(), 2e-6,
                             period / 100, method="adaptive",
                             use_ic=True, max_dt=period / 100,
                             atol=1e30, rtol=1e30)
        assert len(fixed.t) == len(adaptive.t)
        nn = fixed.circuit.n_nodes
        dev = np.max(np.abs(fixed.x[:, :nn] - adaptive.x[:, :nn]))
        assert dev < 1e-6

    def test_stiff_diode_clamp_parity(self):
        def clamp():
            ckt = Circuit("clamp")
            ckt.add_vsource("V1", "in", "0", sine(10.0, 1e5))
            ckt.add_resistor("Rs", "in", "out", 100.0)
            previous = "out"
            for k in range(4):
                nxt = "0" if k == 3 else f"m{k}"
                ckt.add_diode(f"DC{k}", previous, nxt, i_s=1e-12)
                previous = nxt
            return ckt

        fixed = transient(clamp(), 40e-6, 0.05e-6, use_ic=True)
        adaptive = transient(clamp(), 40e-6, 0.05e-6, method="adaptive",
                             use_ic=True, max_dt=0.05e-6,
                             atol=1e30, rtol=1e30)
        assert len(fixed.t) == len(adaptive.t)
        dev = np.max(np.abs(fixed.voltage("out").v
                            - adaptive.voltage("out").v))
        assert dev < 1e-6
        assert adaptive.voltage("out").max() < 3.4

    def test_adaptive_lte_rejects_coarse_initial_step(self):
        """A deliberately huge initial dt must be halved by LTE control,
        not accepted: the LC tank still rings at the right frequency."""
        l, c = 10e-6, 100e-12
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        ckt = Circuit("lc")
        ckt.add_capacitor("C1", "a", "0", c, ic=1.0)
        ckt.add_inductor("L1", "a", "0", l)
        ckt.add_resistor("Rbig", "a", "0", 1e9)
        res = transient(ckt, t_stop=10 / f0, dt=1 / (f0 * 8),
                        method="adaptive", use_ic=True)
        v = res.voltage("a")
        crossings = np.sum(np.diff(np.sign(v.v)) != 0)
        measured = crossings / 2.0 / v.duration
        assert measured == pytest.approx(f0, rel=0.05)
        assert len(res.t) > 81  # finer than the requested 80-step grid

    def test_grown_steps_cannot_skip_a_narrow_pulse(self):
        """Source breakpoints clamp adaptive step growth: a 50 ns pulse
        far into a quiet interval must be resolved, not stepped over
        (the LTE estimate alone cannot see events between samples)."""
        from repro.spice import pulse

        def build():
            ckt = Circuit("pulse_rc")
            ckt.add_vsource("V1", "in", "0",
                            pulse(0.0, 1.0, delay=10e-6, width=50e-9,
                                  period=40e-6))
            ckt.add_resistor("R1", "in", "out", 1e3)
            ckt.add_capacitor("C1", "out", "0", 100e-12, ic=0.0)
            return ckt

        res = transient(build(), 20e-6, 100e-9, method="adaptive",
                        use_ic=True)
        # tau = 100 ns, 50 ns on-time: peak = 1 - exp(-0.5).
        assert res.voltage("out").max() == pytest.approx(
            1.0 - np.exp(-0.5), rel=0.05)

    def test_square_source_edges_survive_step_growth(self):
        from repro.spice import square as square_src

        def chop():
            ckt = Circuit("chop")
            ckt.add_vsource("V1", "in", "0", 1.0)
            ckt.add_vsource("VC", "c", "0", square_src(0.0, 1.0, 1e5))
            ckt.add_resistor("R1", "in", "a", 1e3)
            ckt.add_switch("S1", "a", "0", "c", "0", r_on=1.0)
            return ckt

        fixed = transient(chop(), 30e-6, 0.1e-6, use_ic=True)
        adaptive = transient(chop(), 30e-6, 0.1e-6, method="adaptive",
                             use_ic=True)
        vf = fixed.voltage("a")
        va = adaptive.voltage("a")
        dev = np.max(np.abs(np.interp(vf.t, va.t, va.v) - vf.v))
        assert dev < 1e-6

    def test_singular_linear_circuit_raises_typed_error(self):
        """The prefactored linear bypass must report a singular MNA
        matrix as ConvergenceError like the fixed path — scipy's
        lu_factor does not raise on singularity (it returns zero-pivot
        factors that would silently solve to NaN)."""
        from repro.spice.dc import ConvergenceError

        def singular():
            ckt = Circuit("sing")
            ckt.add_vsource("V1", "a", "0", 1.0)
            ckt.add_vsource("V2", "a", "0", 2.0)
            ckt.add_capacitor("C1", "a", "0", 1e-9)
            return ckt

        x0 = np.zeros(3)
        for method in ("trap", "adaptive"):
            # The per-step singularity is retried at halved steps until
            # min_dt, so the surfaced message is either the wrapped
            # "singular MNA matrix" or the step-failure wrapper — never
            # a silent NaN result or an untyped scipy error.
            # check="off" forces the circuit past the static analyzer
            # (which rejects it as SP104 before any factorization —
            # see test_spice_analyze.py) so the runtime guard itself
            # stays exercised.
            with pytest.raises(ConvergenceError,
                               match="singular|step failed"):
                transient(singular(), 1e-6, 1e-7, method=method, x0=x0,
                          check="off")

    def test_callback_and_final_state_on_adaptive(self):
        seen = []
        ckt = rc_charge_circuit()
        res = transient(ckt, t_stop=1e-4, dt=1e-6, use_ic=True,
                        method="adaptive",
                        callback=lambda t, x: seen.append(t))
        assert seen == sorted(seen)
        assert seen[-1] == pytest.approx(1e-4, rel=1e-12)
        assert res.final_state().shape == (ckt.n_unknowns,)


class TestTransientBranchCurrentErrors:
    """Satellite: TransientResult.branch_current raises typed errors
    matching the device_current style."""

    def _res(self):
        return transient(rc_charge_circuit(), 1e-5, 1e-6, use_ic=True)

    def test_resistor_suggests_device_current(self):
        with pytest.raises(ValueError, match="device_current"):
            self._res().branch_current("R1")

    def test_unknown_name_is_value_error(self):
        with pytest.raises(ValueError, match="no component named"):
            self._res().branch_current("nope")


class TestTransientValidation:
    def test_rejects_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            transient(rc_charge_circuit(), 1e-3, 1e-6, method="euler")

    def test_rejects_bad_times(self):
        with pytest.raises(ValueError):
            transient(rc_charge_circuit(), t_stop=0.0, dt=1e-6)
        with pytest.raises(ValueError):
            transient(rc_charge_circuit(), t_stop=1e-3, dt=-1.0)

    def test_callback_sees_every_step(self):
        seen = []
        ckt = rc_charge_circuit()
        transient(ckt, t_stop=1e-4, dt=1e-6, use_ic=True,
                  callback=lambda t, x: seen.append(t))
        assert len(seen) == 100
        assert seen == sorted(seen)

    def test_device_current_waveform(self):
        ckt = rc_charge_circuit(vstep=1.0, r=1e3, c=1e-6)
        res = transient(ckt, t_stop=5e-3, dt=5e-6, use_ic=True)
        i_r = res.device_current("R1")
        # Initial current ~ V/R, final ~ 0.
        assert i_r.v[1] == pytest.approx(1e-3, rel=0.05)
        assert abs(i_r.v[-1]) < 1e-5


class TestVectorizedDeviceCurrent:
    """Satellite: components accept the whole (n_steps, n_unknowns)
    solution array, so device_current needs no per-step Python loop —
    the vectorized result must match the historical per-step one."""

    def _assert_matches_per_step(self, res, name):
        comp = res.circuit[name]
        vectorized = res.device_current(name).v
        per_step = np.array([comp.current(xk) for xk in res.x])
        assert np.allclose(vectorized, per_step, rtol=1e-12, atol=1e-18)

    def test_resistor_matches_per_step(self):
        ckt = rc_charge_circuit()
        res = transient(ckt, t_stop=2e-3, dt=5e-6, use_ic=True)
        self._assert_matches_per_step(res, "R1")

    def test_diode_matches_per_step_all_regions(self):
        """The drive swings the diode through reverse cut-off, the
        exponential region, and (via a stiff source) the linearised
        continuation — every piecewise branch of iv()."""
        ckt = Circuit("regions")
        ckt.add_vsource("V1", "in", "0", sine(3.0, 1e5))
        ckt.add_diode("D1", "in", "out")
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        ckt.add_resistor("RL", "out", "0", 1e6)
        res = transient(ckt, t_stop=100e-6, dt=0.1e-6, use_ic=True)
        self._assert_matches_per_step(res, "D1")
        # The sweep really visited both polarities.
        vd = res.voltage("in").v - res.voltage("out").v
        assert vd.min() < -1.0 and vd.max() > 0.4

    def test_diode_current_covers_every_piecewise_branch(self):
        """Direct component check on a synthetic solution array spanning
        deep reverse cut-off, the exponential region, and the linear
        continuation past the overflow knee."""
        ckt = Circuit("d")
        ckt.add_vsource("V1", "a", "0", 0.0)
        ckt.add_diode("D1", "a", "0")
        ckt.build()
        comp = ckt["D1"]
        vds = np.array([-5.0, -1.0, -0.1, 0.0, 0.3, 0.65, 1.0, 1.2, 3.0])
        x = np.zeros((vds.size, ckt.n_unknowns))
        x[:, ckt.node_index("a")] = vds
        vectorized = comp.current(x)
        per_step = np.array([comp.current(xk) for xk in x])
        assert np.allclose(vectorized, per_step, rtol=1e-12, atol=1e-30)
        # The sweep really crossed the knee and the cut-off floor.
        assert vds.max() > comp.v_max
        assert vds.min() < -20.0 * comp.n * comp.vt

    def test_switch_matches_per_step(self):
        ckt = Circuit("chop")
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_vsource("Vc", "ctl", "0", square(0.0, 1.0, 1e5))
        ckt.add_switch("S1", "in", "out", "ctl", "0", v_threshold=0.5)
        ckt.add_resistor("RL", "out", "0", 1e3)
        res = transient(ckt, t_stop=50e-6, dt=0.5e-6, use_ic=True)
        self._assert_matches_per_step(res, "S1")
        # The chopping means both switch states appear in the run.
        i = res.device_current("S1").v
        assert i.max() > 1e-4 and i.min() < 1e-7

    def test_grounded_component_gives_constant_waveform(self):
        ckt = Circuit("gnd")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        ckt.add_resistor("Rgnd", "0", "0", 1e3)
        res = transient(ckt, t_stop=1e-5, dt=1e-6, use_ic=True)
        i = res.device_current("Rgnd")
        assert np.all(i.v == 0.0)
        assert i.v.shape == res.t.shape
