"""End-to-end tests of the integrated system (the paper's contribution)."""

import math

import numpy as np
import pytest

from repro import PAPER, RemotePoweringSystem
from repro.comms import prbs
from repro.core import ImplantDevice, ImplantState
from repro.link import TissueLayer


@pytest.fixture(scope="module")
def system():
    return RemotePoweringSystem(distance=10e-3)


class TestCalibration:
    def test_15mw_at_6mm(self, system):
        """E3: the calibration anchor itself."""
        assert system.available_power(6e-3) == pytest.approx(
            PAPER.power_at_6mm, rel=1e-6)

    def test_5mw_at_10mm(self, system):
        """E5: ~5 mW to a matched load at 10 mm follows from the
        geometry, not from tuning."""
        assert system.available_power(10e-3) == pytest.approx(
            PAPER.power_matched_10mm, rel=0.25)

    def test_1mw_at_17mm_air(self, system):
        """E3: ~1.17 mW at 17 mm in air."""
        assert system.available_power(17e-3) == pytest.approx(
            PAPER.power_through_17mm_sirloin, rel=0.25)

    def test_tissue_result(self):
        """E3: 17 mm of sirloin ~ 17 mm of air at 5 MHz."""
        meat = RemotePoweringSystem(
            distance=17e-3,
            tissue_layers=[TissueLayer("sirloin", 17e-3)])
        air = RemotePoweringSystem(distance=17e-3)
        p_meat = meat.available_power()
        p_air = air.available_power()
        assert p_meat == pytest.approx(p_air, rel=0.25)
        assert p_meat == pytest.approx(
            PAPER.power_through_17mm_sirloin, rel=0.35)

    def test_power_sweep_monotone(self, system):
        pts = system.power_sweep([4e-3, 6e-3, 10e-3, 14e-3, 20e-3])
        powers = [p for _, p in pts]
        assert all(a > b for a, b in zip(powers, powers[1:]))

    def test_matching_network_values(self, system):
        m = system.matching_network()
        assert m.match_error() < 1e-9
        assert 10e-12 < m.c_series < 10e-9
        assert 10e-12 < m.c_parallel < 10e-9


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return RemotePoweringSystem(distance=10e-3).fig11_transient()

    def test_charge_anchor(self, result):
        """E2: Co reaches 2.75 V at ~270 us."""
        assert result.charge_time_to_2v75 == pytest.approx(
            PAPER.fig11_charge_time, rel=0.15)

    def test_downlink_recovered(self, result):
        """E2: all 18 bits detected at the demodulator output."""
        assert len(result.downlink_sent) == 18
        assert result.downlink_ok

    def test_uplink_recovered(self, result):
        assert result.uplink_ok

    def test_rail_never_below_2v1(self, result):
        """E2: 'the output voltage Vo of the rectifier never goes below
        2.1 V' during either communication."""
        assert result.rail_ok
        assert result.v_min_during_comms >= 2.1

    def test_events_ordered(self, result):
        times = [t for _, t in result.events]
        assert times == sorted(times)

    def test_custom_bit_patterns(self):
        sys2 = RemotePoweringSystem(distance=10e-3)
        dl = prbs(24, seed=3)
        ul = prbs(16, seed=9)
        res = sys2.fig11_transient(downlink_bits=dl, uplink_bits=ul)
        assert res.downlink_received == dl
        assert res.uplink_received == ul
        assert res.rail_ok

    def test_all_zero_downlink_is_worst_case_but_holds(self):
        """Every 0-bit transmits only 1 mW; the rail must still hold."""
        sys2 = RemotePoweringSystem(distance=10e-3)
        res = sys2.fig11_transient(downlink_bits=[0] * 18)
        assert res.rail_ok


class TestLsk:
    def test_shorting_raises_reflected_resistance(self, system):
        assert (system.reflected_resistance(shorted=True)
                > system.reflected_resistance(shorted=False))

    def test_supply_current_drops_when_shorted(self, system):
        i_high, i_low = system.lsk_supply_currents()
        assert i_low < i_high

    def test_contrast_detectable(self, system):
        """The current step must clear several LSB of the sense ADC."""
        contrast = system.lsk_contrast()
        assert contrast > 0.02
        i_high, i_low = system.lsk_supply_currents()
        det = system.lsk_det
        code_step = abs(det.adc_code(i_high * det.r_sense)
                        - det.adc_code(i_low * det.r_sense))
        assert code_step >= 2

    def test_contrast_falls_with_distance(self):
        near = RemotePoweringSystem(distance=6e-3)
        far = RemotePoweringSystem(distance=17e-3)
        assert near.lsk_contrast() > far.lsk_contrast()


class TestMeasurementSession:
    def test_full_lactate_measurement(self, system):
        res = system.measure_lactate(0.8)
        assert res["concentration_reported"] == pytest.approx(0.8,
                                                              rel=0.05)
        assert res["power_available_mw"] > 3.0
        assert res["time_to_ready_us"] > 0

    def test_measurement_fails_at_large_distance(self):
        far = RemotePoweringSystem(distance=40e-3)
        with pytest.raises(RuntimeError):
            far.measure_lactate(0.8)

    def test_startup_time_reasonable(self, system):
        t = system.startup()
        assert 50e-6 < t < 400e-6


class TestImplantStateMachine:
    def test_state_progression(self):
        implant = ImplantDevice()
        assert implant.state is ImplantState.OFF
        implant.update_rail(0.3)
        assert implant.state is ImplantState.OFF
        implant.update_rail(1.5)
        assert implant.state is ImplantState.CHARGING
        implant.update_rail(2.5)
        assert implant.state is ImplantState.READY

    def test_brownout_detection(self):
        implant = ImplantDevice()
        implant.update_rail(2.5)
        assert implant.state is ImplantState.READY
        implant.update_rail(1.9)
        assert implant.state is ImplantState.BROWNOUT

    def test_measure_requires_ready(self):
        implant = ImplantDevice()
        with pytest.raises(RuntimeError, match="cannot measure"):
            implant.measure(1.0)

    def test_measure_when_ready(self):
        implant = ImplantDevice()
        implant.update_rail(2.75)
        code = implant.measure(0.5, n_output_samples=4)
        assert implant.report_concentration(code) == pytest.approx(
            0.5, rel=0.05)

    def test_load_currents_paper_modes(self):
        implant = ImplantDevice()
        low = implant.load_current(measuring=False)
        high = implant.load_current(measuring=True)
        assert low == pytest.approx(352e-6, rel=0.01)   # 350 uA + Iq
        assert high == pytest.approx(1.302e-3, rel=0.01)

    def test_can_measure_power_gate(self):
        implant = ImplantDevice()
        implant.update_rail(2.5)
        assert implant.can_measure(5e-3)
        assert not implant.can_measure(0.5e-3)

    def test_rejects_negative_rail(self):
        with pytest.raises(ValueError):
            ImplantDevice().update_rail(-1.0)


class TestPaperConstants:
    def test_anchor_rows_complete(self):
        rows = PAPER.anchors()
        assert len(rows) >= 8
        names = [r[0] for r in rows]
        assert any("6 mm" in n for n in names)

    def test_derived_identities(self):
        assert PAPER.v_we_bias - PAPER.v_re_bias == pytest.approx(
            PAPER.v_oxidation)
        assert (PAPER.v_supply_sensor + PAPER.regulator_dropout
                == pytest.approx(PAPER.v_rect_minimum))
        assert math.ceil(math.log2(PAPER.adc_full_scale_current
                                   / PAPER.adc_resolution_current)) \
            == PAPER.adc_bits
