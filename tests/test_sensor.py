"""Tests for enzyme kinetics, the cell, potentiostat, and bandgaps."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sensor import (
    CLODX,
    WTLODX,
    ElectronicInterface,
    EnzymeKinetics,
    Potentiostat,
    ReadoutCircuit,
    ThreeElectrodeCell,
    regular_bandgap,
    sub_1v_bandgap,
)


class TestEnzymeKinetics:
    def test_zero_concentration_zero_current(self):
        assert CLODX.current_density(0.0) == 0.0

    def test_enzyme_library_registry(self):
        """The sweep axis resolves presets through ENZYME_LIBRARY."""
        from repro.sensor import ENZYME_LIBRARY

        assert ENZYME_LIBRARY["clodx"] is CLODX
        assert set(ENZYME_LIBRARY) == {"clodx", "wtlodx", "gox"}

    def test_michaelis_menten_half_point(self):
        """At C = Km the response is half of j_max."""
        enz = EnzymeKinetics("test", j_max=10e-6, km=2.0)
        assert enz.current_density(2.0) == pytest.approx(5e-6)

    def test_saturation_at_high_concentration(self):
        assert CLODX.current_density(1000.0) == pytest.approx(
            CLODX.j_max * CLODX.mwcnt_gain, rel=0.01)

    def test_clodx_more_sensitive_than_wtlodx(self):
        """The Fig. 4 ordering: commercial enzyme reads higher."""
        for c in (0.16, 0.4, 1.0):
            assert CLODX.current_density(c) > WTLODX.current_density(c)

    def test_fig4_magnitudes(self):
        """E1 anchors: at 1 mM cLODx ~4.3, wtLODx ~2 uA/cm^2."""
        assert CLODX.current_density(1.0) * 1e6 == pytest.approx(4.3, rel=0.15)
        assert WTLODX.current_density(1.0) * 1e6 == pytest.approx(2.0, rel=0.15)

    def test_mwcnt_gain_scales_current(self):
        plain = EnzymeKinetics("e", j_max=5e-6, km=1.0)
        boosted = plain.with_mwcnt(2.5)
        assert boosted.current_density(1.0) == pytest.approx(
            2.5 * plain.current_density(1.0))
        assert "MWCNT" in boosted.name

    def test_sensitivity_positive_and_decreasing(self):
        s1 = CLODX.sensitivity(0.2)
        s2 = CLODX.sensitivity(2.0)
        s3 = CLODX.sensitivity(20.0)
        assert s1 > s2 > s3 > 0

    def test_linear_range_near_km_fraction(self):
        """MM linear range (10% deviation) ends near Km/9."""
        enz = EnzymeKinetics("e", j_max=1e-6, km=9.0)
        assert enz.linear_range_upper(0.1) == pytest.approx(1.0, rel=0.05)

    def test_rejects_negative_concentration(self):
        with pytest.raises(ValueError):
            CLODX.current_density(-1.0)

    @given(st.floats(min_value=1e-3, max_value=100.0),
           st.floats(min_value=1.01, max_value=10.0))
    @settings(max_examples=50)
    def test_monotone_in_concentration(self, c, factor):
        assert CLODX.current_density(c * factor) > CLODX.current_density(c)

    @given(st.floats(min_value=1e-3, max_value=1000.0))
    @settings(max_examples=50)
    def test_bounded_by_jmax(self, c):
        assert CLODX.current_density(c) < CLODX.j_max * CLODX.mwcnt_gain


class TestCell:
    @pytest.fixture
    def cell(self):
        return ThreeElectrodeCell(CLODX)

    def test_oxidation_wave_gating(self, cell):
        """At 650 mV the wave is fully on; at 200 mV it is off."""
        assert cell.potential_factor(0.65) > 0.95
        assert cell.potential_factor(0.20) < 0.05

    def test_current_scales_with_area(self):
        from repro.sensor import Electrode

        small = ThreeElectrodeCell(CLODX, Electrode(area_cm2=0.1))
        large = ThreeElectrodeCell(CLODX, Electrode(area_cm2=0.5))
        ratio = (large.steady_state_current(1.0)
                 / small.steady_state_current(1.0))
        assert ratio == pytest.approx(5.0, rel=1e-6)

    def test_chronoamperometry_decays_to_steady_state(self, cell):
        wave = cell.chronoamperometry(1.0, 50.0, rng=np.random.default_rng(1))
        i_ss = cell.steady_state_current(1.0)
        early = wave.clip_time(0.1, 1.0).mean()
        late = wave.clip_time(40.0, 50.0).mean()
        assert early > late
        assert late == pytest.approx(i_ss, rel=0.1)

    def test_settled_current_matches_steady_state(self, cell):
        settled = cell.settled_current(0.5)
        assert settled == pytest.approx(
            cell.steady_state_current(0.5), rel=0.1)

    def test_calibration_points_units(self, cell):
        rows = cell.calibration_points([0.16, 1.0])
        assert rows[1][1] == pytest.approx(
            cell.steady_state_current(1.0) / 0.25 * 1e6, rel=1e-9)

    def test_no_potential_no_current(self, cell):
        """Off the oxidation wave the current collapses by >99.9%."""
        on = cell.steady_state_current(1.0, v_we_re=0.65)
        off = cell.steady_state_current(1.0, v_we_re=0.0)
        assert off < 1e-3 * on


class TestPotentiostat:
    def test_nominal_vox_is_650mv(self):
        """E6: 1.2 V - 550 mV = 650 mV between WE and RE."""
        assert Potentiostat().vox_nominal == pytest.approx(0.65)

    def test_applied_vox_close_to_nominal_under_load(self):
        p = Potentiostat()
        vox = p.applied_vox(cell_current=4e-6, r_cell=10e3)
        assert vox == pytest.approx(0.65, abs=1e-3)

    def test_compliance_limit(self):
        p = Potentiostat()
        assert p.within_compliance(4e-6, r_cell=10e3)
        assert not p.within_compliance(4e-6, r_cell=1e9)
        assert p.max_cell_current(1e3) == pytest.approx(
            (1.8 - 0.55) / 1e3)

    def test_offsets_shift_vox(self):
        p = Potentiostat(v_we_offset=5e-3, v_re_offset=-5e-3)
        assert p.applied_vox() == pytest.approx(0.66, abs=1e-4)


class TestReadout:
    def test_transfer_is_linear(self):
        r = ReadoutCircuit(r_sense=400e3)
        assert r.output_voltage(1e-6) == pytest.approx(0.4)
        assert r.output_voltage(2e-6) == pytest.approx(0.8)

    def test_clamps_at_rail(self):
        r = ReadoutCircuit(r_sense=400e3, v_supply=1.8)
        assert r.output_voltage(100e-6) == 1.8

    def test_full_scale_covers_4ua(self):
        """E6: the readout must pass the ADC's 4 uA range."""
        r = ReadoutCircuit(r_sense=400e3)
        assert r.full_scale_current() >= 4e-6 * 0.999

    def test_rejects_negative_current(self):
        with pytest.raises(ValueError):
            ReadoutCircuit().output_voltage(-1e-6)

    def test_inverse_transfer(self):
        r = ReadoutCircuit(r_sense=400e3)
        assert r.current_from_voltage(0.4) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            r.current_from_voltage(2.0)

    def test_mismatch_propagates(self):
        r = ReadoutCircuit(mirror_mismatch=0.01)
        assert r.output_voltage(1e-6) == pytest.approx(
            1e-6 * 400e3 * 1.01)


class TestBandgaps:
    def test_nominal_outputs(self):
        assert regular_bandgap().output() == pytest.approx(1.2, abs=1e-6)
        assert sub_1v_bandgap().output() == pytest.approx(0.55, abs=1e-6)

    def test_vox_from_references(self):
        """E6: the difference of the two references is the 650 mV Vox."""
        vox = regular_bandgap().output() - sub_1v_bandgap().output()
        assert vox == pytest.approx(0.65, abs=1e-6)

    def test_temperature_stability(self):
        """'independent from temperature': < 1 mV over the body range."""
        bg = regular_bandgap()
        outs = [bg.output(t) for t in np.linspace(30, 44, 15)]
        assert max(outs) - min(outs) < 1e-3

    def test_tempco_in_ppm_band(self):
        assert regular_bandgap().tempco_ppm(20, 45) < 100

    def test_supply_insensitivity(self):
        """'independent from ... supply': < 1 mV over 1.6-2.0 V."""
        bg = regular_bandgap()
        assert abs(bg.output(vdd=2.0) - bg.output(vdd=1.6)) < 1e-3

    def test_sub1v_works_at_lower_supply(self):
        low = sub_1v_bandgap()
        assert low.output(vdd=1.1) == pytest.approx(0.55, abs=5e-3)
        regular = regular_bandgap()
        assert regular.output(vdd=1.1) < 1.1  # out of headroom

    def test_curvature_is_parabolic_around_trim(self):
        bg = regular_bandgap()
        v_trim = bg.output(37.0)
        assert bg.output(27.0) < v_trim
        assert bg.output(47.0) < v_trim

    def test_line_regulation_value(self):
        assert regular_bandgap().line_regulation() == pytest.approx(
            1e-3, rel=0.01)


class TestElectronicInterface:
    @pytest.fixture
    def ei(self):
        return ElectronicInterface.for_enzyme(CLODX)

    def test_applied_potential_650mv(self, ei):
        assert ei.applied_potential() == pytest.approx(0.65, abs=2e-3)

    def test_supply_budget_matches_paper(self, ei):
        """E6: 45 uA + 240 uA at 1.8 V."""
        assert ei.supply_current(measuring=True) == pytest.approx(285e-6)
        assert ei.supply_current(measuring=False) == pytest.approx(45e-6)
        assert ei.power() == pytest.approx(285e-6 * 1.8)

    def test_measure_returns_code_in_range(self, ei):
        code = ei.measure(0.5, n_output_samples=4)
        assert 0 <= code <= (1 << 14) - 1

    def test_higher_concentration_higher_code(self, ei):
        assert ei.measure(1.0, n_output_samples=4) > ei.measure(
            0.2, n_output_samples=4)

    def test_concentration_roundtrip(self, ei):
        code = ei.measure(0.8, n_output_samples=4)
        recovered = ei.concentration_from_code(code)
        assert recovered == pytest.approx(0.8, rel=0.05)

    def test_calibration_curve_fig4(self, ei):
        """E1: regenerated curve spans the figure's measured range."""
        curve = ei.calibration_curve()
        logs = curve.log_concentrations()
        assert logs[0] == pytest.approx(-0.8)
        assert logs[-1] == pytest.approx(0.0)
        assert curve.delta_current_ua_cm2[-1] == pytest.approx(4.3, rel=0.2)
        assert curve.sensitivity_per_decade() > 0

    def test_curve_ordering_between_enzymes(self):
        c_curve = ElectronicInterface.for_enzyme(CLODX).calibration_curve()
        w_curve = ElectronicInterface.for_enzyme(WTLODX).calibration_curve()
        for cj, wj in zip(c_curve.delta_current_ua_cm2,
                          w_curve.delta_current_ua_cm2):
            assert cj > wj

    def test_low_supply_shifts_potential(self, ei):
        """Below bandgap headroom the Vox collapses — the system-level
        reason the 2.1 V rectifier rule exists."""
        assert ei.applied_potential(vdd=0.9) < 0.6
