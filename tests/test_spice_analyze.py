"""Static circuit analyzer: diagnostics, pre-flight wiring, CLI lint.

One positive (triggers) and one negative (clean) test per diagnostic
code, the four-layer rejection of a structurally broken circuit
(direct solve, batch family, service request, `repro lint`), and the
no-false-positives sweep over every spice template and example
netlist across the benchmark axis grids.
"""

import importlib.util
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.engine import SPICE_TEMPLATES, SpiceBatch, SweepOrchestrator
from repro.power.rectifier import build_rectifier_circuit
from repro.service import SimRequest, SimRequestError
from repro.spice import (
    CHECK_MODES,
    DIAGNOSTIC_CODES,
    Circuit,
    CircuitLintError,
    CircuitLintWarning,
    analyze_circuit,
    analyze_netlist,
    check_circuit,
    dc_operating_point,
    parse_netlist,
    sine,
    transient,
    transient_batch,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

T_STOP = 1e-6
DT = 1.0 / (5e6 * 100)


def codes(diags):
    return {d.code for d in diags}


def clean_rc():
    """A well-posed RC divider: lints with zero findings."""
    ckt = Circuit("clean rc")
    ckt.add_vsource("V1", "in", "0", sine(1.0, 5e6))
    ckt.add_resistor("R1", "in", "out", 1e3)
    ckt.add_capacitor("C1", "out", "0", 1e-9)
    return ckt


def floating_rectifier():
    """The paper rectifier plus a deliberately floating R island."""
    ckt = build_rectifier_circuit()
    ckt.add_resistor("RF", "fa", "fb", 1e3)
    return ckt


class TestDiagnosticRecords:
    def test_clean_circuit_has_no_findings(self):
        assert analyze_circuit(clean_rc()) == []

    def test_every_emitted_code_is_documented(self):
        ckt = floating_rectifier()
        ckt.add_vsource("VDUP", "src", "0", sine(2.0, 5e6))
        for d in analyze_circuit(ckt):
            assert d.code in DIAGNOSTIC_CODES
            assert d.severity in ("error", "warning")
            assert d.message
            assert d.hint

    def test_errors_sort_before_warnings(self):
        diags = analyze_circuit(floating_rectifier())
        severities = [d.severity for d in diags]
        assert severities == sorted(severities)  # "error" < "warning"

    def test_to_dict_round_trips_json(self):
        diags = analyze_circuit(floating_rectifier())
        doc = json.loads(json.dumps([d.to_dict() for d in diags]))
        assert doc[0]["code"].startswith("SP")

    def test_format_includes_source_and_line(self):
        _, diags = analyze_netlist(
            "float demo\nV1 in 0 1.0\nR1 in 0 1k\nRF fa fb 1k\n",
            source="demo.cir")
        sp101 = [d for d in diags if d.code == "SP101"]
        assert sp101 and sp101[0].line == 4
        assert sp101[0].format(source="demo.cir").startswith("demo.cir:4:")


class TestSP101NoGroundPath:
    def test_floating_island_is_an_error(self):
        diags = analyze_circuit(floating_rectifier())
        sp101 = [d for d in diags if d.code == "SP101"]
        assert sp101 and sp101[0].severity == "error"
        assert {"fa", "fb"} <= set(sp101[0].nodes)
        assert "RF" in sp101[0].components

    def test_grounded_circuit_is_clean(self):
        assert "SP101" not in codes(analyze_circuit(clean_rc()))


class TestSP102VoltageLoop:
    def test_parallel_voltage_sources_warn(self):
        ckt = Circuit("v loop")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_vsource("V2", "a", "0", 2.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        diags = analyze_circuit(ckt)
        sp102 = [d for d in diags if d.code == "SP102"]
        assert sp102 and sp102[0].severity == "warning"
        # The loop-closing branch is named.
        assert set(sp102[0].components) & {"V1", "V2"}

    def test_source_with_series_resistor_is_clean(self):
        assert "SP102" not in codes(analyze_circuit(clean_rc()))

    def test_v_parallel_inductor_warns_but_is_not_an_error(self):
        # Inductor.stamp_dc regularizes this loop with a tiny series
        # resistance, so the pattern has full structural rank: the
        # analyzer must not escalate the loop beyond a warning.
        ckt = Circuit("v-l loop")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_inductor("L1", "a", "0", 1e-6)
        diags = analyze_circuit(ckt)
        assert codes(diags) == {"SP102"}
        assert all(d.severity == "warning" for d in diags)


class TestSP103DCFloating:
    def test_current_source_into_capacitor_warns(self):
        ckt = Circuit("i into c")
        ckt.add_isource("I1", "0", "n1", 1e-6)
        ckt.add_capacitor("C1", "n1", "0", 1e-9)
        diags = analyze_circuit(ckt)
        sp103 = [d for d in diags if d.code == "SP103"]
        assert sp103 and sp103[0].severity == "warning"
        assert "n1" in sp103[0].nodes
        # A legitimate transient circuit (from its initial condition):
        # the error-mode pre-flight must let it through.
        res = transient(ckt, 1e-7, 1e-9, use_ic=True)
        assert np.isfinite(res.x[-1]).all()

    def test_resistive_return_path_is_clean(self):
        ckt = Circuit("i into rc")
        ckt.add_isource("I1", "0", "n1", 1e-6)
        ckt.add_capacitor("C1", "n1", "0", 1e-9)
        ckt.add_resistor("R1", "n1", "0", 1e6)
        assert "SP103" not in codes(analyze_circuit(ckt))


class TestSP104StructuralSingularity:
    def test_parallel_voltage_sources_are_structurally_singular(self):
        ckt = Circuit("parallel v")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_vsource("V2", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        diags = analyze_circuit(ckt)
        sp104 = [d for d in diags if d.code == "SP104"]
        assert sp104 and sp104[0].severity == "error"
        # The unmatched unknowns are named after branch currents.
        assert any("I(" in u for u in sp104[0].nodes)

    def test_nonlinear_devices_complete_the_pattern(self):
        # The rectifier's diodes/switches only stamp through the
        # nonlinear scatter; the analyzer must include those positions
        # or every template would be a false positive.
        circuit = build_rectifier_circuit()
        assert "SP104" not in codes(analyze_circuit(circuit))


class TestSP105DanglingBranches:
    def test_self_looped_resistor_warns(self):
        ckt = clean_rc()
        ckt.add_resistor("RX", "out", "out", 1e3)
        diags = analyze_circuit(ckt)
        sp105 = [d for d in diags if d.code == "SP105"]
        assert sp105 and sp105[0].severity == "warning"
        assert "RX" in sp105[0].components

    def test_self_looped_voltage_source_is_an_error(self):
        ckt = clean_rc()
        ckt.add_vsource("VX", "out", "out", 1.0)
        sp105 = [d for d in analyze_circuit(ckt) if d.code == "SP105"]
        assert sp105 and sp105[0].severity == "error"

    def test_two_terminal_elements_are_clean(self):
        assert "SP105" not in codes(analyze_circuit(clean_rc()))


class TestSP110ImplausibleValues:
    @pytest.mark.parametrize("mutate", [
        lambda c: c.add_resistor("RB", "out", "0", 1e15),
        lambda c: c.add_resistor("RB", "out", "0", 1e-9),
        lambda c: c.add_capacitor("CB", "out", "0", 10.0),
        lambda c: c.add_inductor("LB", "out", "0", 1e4),
        lambda c: c.add_diode("DB", "out", "0", i_s=1.0),
    ])
    def test_out_of_range_value_warns(self, mutate):
        ckt = clean_rc()
        mutate(ckt)
        sp110 = [d for d in analyze_circuit(ckt) if d.code == "SP110"]
        assert sp110 and sp110[0].severity == "warning"

    def test_plausible_values_are_clean(self):
        assert "SP110" not in codes(analyze_circuit(clean_rc()))


class TestCheckModes:
    def test_modes_tuple(self):
        assert CHECK_MODES == ("error", "warn", "off")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="check"):
            check_circuit(clean_rc(), check="strict")

    def test_error_mode_raises_only_on_errors(self):
        with pytest.raises(CircuitLintError) as err:
            check_circuit(floating_rectifier(), check="error")
        assert any(d.code == "SP101" for d in err.value.diagnostics)
        # Warning-severity findings alone do not raise.
        ckt = Circuit("v-l loop")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_inductor("L1", "a", "0", 1e-6)
        check_circuit(ckt, check="error")

    def test_warn_mode_emits_warnings(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            check_circuit(floating_rectifier(), check="warn")
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, CircuitLintWarning)]
        assert any("SP101" in m for m in messages)
        assert any("SP105" in m for m in messages)

    def test_off_mode_skips_analysis(self):
        check_circuit(floating_rectifier(), check="off")


class TestFourLayerRejection:
    """A structurally broken circuit is refused with a named SP1xx
    diagnostic — not a ConvergenceError — at every entry layer."""

    def test_direct_transient_raises_lint_error(self):
        with pytest.raises(CircuitLintError, match="SP101"):
            transient(floating_rectifier(), T_STOP, DT)

    def test_dc_operating_point_raises_lint_error(self):
        with pytest.raises(CircuitLintError, match="SP101"):
            dc_operating_point(floating_rectifier())

    def test_transient_batch_rejects_the_family(self):
        family = [floating_rectifier() for _ in range(3)]
        with pytest.raises(CircuitLintError, match="SP101"):
            transient_batch(family, T_STOP, DT)

    def test_service_request_is_rejected_before_any_worker(self,
                                                           monkeypatch):
        def broken(sc):
            return floating_rectifier(), "vo"

        monkeypatch.setitem(SPICE_TEMPLATES, "broken_floating", broken)
        with pytest.raises(SimRequestError, match="SP101"):
            SimRequest(kind="spice",
                       axes={"template": ["broken_floating"],
                             "amplitude": [1.25]},
                       t_stop=T_STOP, dt=DT)

    def test_cli_lint_exits_2_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "broken.cir"
        bad.write_text("float demo\nV1 in 0 1.0\nR1 in 0 1k\n"
                       "RF fa fb 1k\n")
        assert main(["lint", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "SP101" in out and "broken.cir:4:" in out


class TestCheckOffParity:
    def test_off_mode_is_bitwise_identical_for_valid_circuits(self):
        ref = transient(build_rectifier_circuit(), T_STOP, DT,
                        check="error")
        off = transient(build_rectifier_circuit(), T_STOP, DT,
                        check="off")
        assert np.array_equal(ref.t, off.t)
        assert np.array_equal(ref.x, off.x)

    def test_batch_off_mode_is_bitwise_identical(self):
        def family():
            return [build_rectifier_circuit(v_in_amplitude=a)
                    for a in (1.25, 1.75)]

        ref = transient_batch(family(), T_STOP, DT, check="error")
        off = transient_batch(family(), T_STOP, DT, check="off")
        assert np.array_equal(ref.t, off.t)
        assert np.array_equal(ref.x, off.x)


class TestNoFalsePositives:
    """Every template and example circuit lints clean across the
    benchmark axis grids — error-severity findings are forbidden and
    so are warnings (the shipped circuits are all well-posed)."""

    @pytest.mark.parametrize("template", sorted(SPICE_TEMPLATES))
    @pytest.mark.parametrize("amplitude", [1.25, 1.4, 1.55, 1.75, 2.0])
    @pytest.mark.parametrize("i_load", [200e-6, 352e-6])
    def test_templates_lint_clean(self, template, amplitude, i_load):
        from repro.engine import SpiceScenario

        sc = SpiceScenario(template=template, amplitude=amplitude,
                           i_load=i_load, freq=5e6)
        circuit, _ = sc.build()
        assert analyze_circuit(circuit) == []

    def test_example_netlists_lint_clean(self):
        netlists = sorted(EXAMPLES.glob("*.cir"))
        assert netlists, "examples/ must ship at least one netlist"
        for path in netlists:
            _, diags = analyze_netlist(path.read_text(), source=path.name)
            assert diags == [], f"{path.name}: {codes(diags)}"

    def test_ladder_example_circuit_lints_clean(self):
        spec = importlib.util.spec_from_file_location(
            "ladder_example", EXAMPLES / "ladder_network_sweep.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert analyze_circuit(mod.build_ladder()) == []

    def test_templates_pass_the_error_mode_preflight(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", CircuitLintWarning)
            for name in SPICE_TEMPLATES:
                from repro.engine import SpiceScenario

                circuit, _ = SpiceScenario(template=name).build()
                check_circuit(circuit, check="warn")


class TestObsEvent:
    def test_run_spice_emits_one_circuit_lint_event(self):
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder()
        orch = SweepOrchestrator(recorder=recorder)
        batch = SpiceBatch.from_axes(amplitude=[1.25, 1.75])
        orch.run_spice(batch, T_STOP, DT)
        recorder.close()

        lint = [doc for doc in recorder.events()
                if doc["event"] == "circuit_lint"]
        assert len(lint) == 1
        doc = lint[0]
        assert doc["templates"] == "rectifier"
        assert doc["cells"] == 2
        assert doc["findings"] == doc["errors"] == doc["warnings"] == 0
        assert doc["codes"] == ""


class TestCliLint:
    def test_templates_exit_0(self, capsys):
        args = ["lint"]
        for name in sorted(SPICE_TEMPLATES):
            args += ["--template", name]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_unknown_template_exits_2(self, capsys):
        assert main(["lint", "--template", "flux_capacitor"]) == 2
        assert "unknown template" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.cir")]) == 2
        assert "nope.cir" in capsys.readouterr().err

    def test_no_targets_exits_2(self, capsys):
        assert main(["lint"]) == 2

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "broken.cir"
        bad.write_text("float demo\nV1 in 0 1.0\nR1 in 0 1k\n"
                       "RF fa fb 1k\n")
        assert main(["lint", "--format", "json", str(bad)]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] >= 1
        assert doc["targets"][0]["source"] == str(bad)
        assert any(f["code"] == "SP101"
                   for f in doc["targets"][0]["findings"])

    def test_parse_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "mangled.cir"
        bad.write_text("title\nR1 a 0 1k\nQ9 what is this\n")
        assert main(["lint", str(bad)]) == 2
        assert "mangled.cir" in capsys.readouterr().err


class TestNetlistLineAttribution:
    def test_malformed_card_mid_file_carries_line_and_card(self):
        text = "title\nV1 in 0 1.0\nR1 in out 1k\nC1 out 0 froop\n"
        from repro.spice import NetlistError

        with pytest.raises(NetlistError) as err:
            parse_netlist(text)
        assert err.value.line == 4
        assert "C1" in err.value.card
        assert str(err.value).startswith("line 4:")

    def test_unknown_element_kind_carries_line(self):
        from repro.spice import NetlistError

        with pytest.raises(NetlistError) as err:
            parse_netlist("title\nR1 a 0 1k\nQ9 a b c d\n")
        assert err.value.line == 3

    def test_analyze_netlist_attributes_findings_to_cards(self):
        _, diags = analyze_netlist(
            "title\nV1 in 0 1.0\nR1 in 0 1k\n\nRF fa fb 1k\n",
            source="gap.cir")
        sp101 = [d for d in diags if d.code == "SP101"][0]
        assert sp101.line == 5  # blank line must not shift attribution
