"""Tests for the SPICE-card netlist reader/writer."""

import numpy as np
import pytest

from repro.spice import (
    NetlistError,
    dc_operating_point,
    parse_netlist,
    transient,
    write_netlist,
)

DIVIDER = """simple divider
V1 in 0 DC 10
R1 in out 1k
R2 out 0 3k
.end
"""


class TestParser:
    def test_divider_parses_and_solves(self):
        ckt = parse_netlist(DIVIDER)
        assert ckt.title == "simple divider"
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(7.5)

    def test_engineering_values(self):
        ckt = parse_netlist("eng\nR1 a 0 4.7k\nC1 a 0 100n\nL1 a 0 2.2u\n")
        assert ckt["R1"].resistance == pytest.approx(4700.0)
        assert ckt["C1"].capacitance == pytest.approx(100e-9)
        assert ckt["L1"].inductance == pytest.approx(2.2e-6)

    def test_comments_and_continuations(self):
        text = ("title\n"
                "* a comment\n"
                "R1 a 0\n"
                "+ 1k\n"
                "; trailing-only line\n"
                "V1 a 0 DC 1\n")
        ckt = parse_netlist(text)
        assert ckt["R1"].resistance == pytest.approx(1e3)

    def test_sin_source(self):
        ckt = parse_netlist("s\nV1 in 0 SIN(0 2 1MEG)\nR1 in 0 50\n")
        src = ckt["V1"].source
        assert src(0.25e-6) == pytest.approx(2.0, rel=1e-6)

    def test_pulse_source(self):
        ckt = parse_netlist(
            "p\nV1 g 0 PULSE(0 5 0 1n 1n 99n 200n)\nR1 g 0 1k\n")
        src = ckt["V1"].source
        assert src(50e-9) == pytest.approx(5.0)
        assert src(150e-9) == pytest.approx(0.0)

    def test_capacitor_ic(self):
        ckt = parse_netlist("c\nC1 a 0 1u IC=2.5\nR1 a 0 1k\n")
        assert ckt["C1"].ic == pytest.approx(2.5)

    def test_diode_params(self):
        ckt = parse_netlist("d\nD1 a 0 IS=1e-12 N=1.5\nV1 a 0 DC 1\n")
        assert ckt["D1"].i_s == pytest.approx(1e-12)
        assert ckt["D1"].n == pytest.approx(1.5)

    def test_mosfet_card(self):
        ckt = parse_netlist(
            "m\nM1 d g 0 TYPE=p VTO=0.6 KP=100u W=20u L=2u\n"
            "V1 d 0 DC 1\nV2 g 0 DC 0\n")
        m = ckt["M1"]
        assert m.polarity == "p"
        assert m.beta == pytest.approx(100e-6 * 10)

    def test_switch_card(self):
        ckt = parse_netlist(
            "sw\nS1 a 0 c 0 VT=1.2 RON=5 ROFF=1e8\n"
            "V1 a 0 DC 1\nV2 c 0 DC 3\n")
        s = ckt["S1"]
        assert s.v_threshold == pytest.approx(1.2)
        assert s.r_on == pytest.approx(5.0)

    def test_coupling_card(self):
        text = ("xfmr\nV1 in 0 SIN(0 1 100k)\nRs in p 1\n"
                "L1 p 0 1m\nL2 s 0 4m\nK1 L1 L2 0.99\nRL s 0 10k\n")
        ckt = parse_netlist(text)
        assert ckt["K1"].mutual == pytest.approx(
            0.99 * np.sqrt(1e-3 * 4e-3))

    def test_controlled_sources(self):
        ckt = parse_netlist(
            "cs\nV1 in 0 DC 1\nRin in 0 1MEG\n"
            "E1 out 0 in 0 10\nRl out 0 1k\n"
            "G1 out2 0 in 0 1m\nR2 out2 0 1k\n")
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(10.0)
        assert op.voltage("out2") == pytest.approx(-1.0)

    def test_transient_of_parsed_rc(self):
        ckt = parse_netlist(
            "rc\nV1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1u IC=0\n")
        res = transient(ckt, t_stop=5e-3, dt=10e-6, use_ic=True)
        assert res.voltage("out").v[-1] == pytest.approx(1.0, rel=1e-2)

    def test_coupling_unknown_inductor(self):
        with pytest.raises(NetlistError, match="unknown inductor"):
            parse_netlist("bad\nL1 a 0 1m\nK1 L1 L9 0.5\n")

    def test_unknown_element(self):
        with pytest.raises(NetlistError, match="unknown element"):
            parse_netlist("bad\nQ1 c b e\n")

    def test_empty_netlist(self):
        with pytest.raises(NetlistError, match="empty"):
            parse_netlist("\n\n")

    def test_bad_card_message_names_card(self):
        with pytest.raises(NetlistError, match="bad card"):
            parse_netlist("bad\nR1 a 0\n")

    def test_orphan_continuation(self):
        with pytest.raises(NetlistError, match="continuation"):
            parse_netlist("+ 1k\n")

    def test_directives_ignored(self):
        ckt = parse_netlist("t\n.option reltol=1e-4\nR1 a 0 1k\n")
        assert "R1" in ckt


class TestWriter:
    def test_roundtrip_divider(self):
        ckt = parse_netlist(DIVIDER)
        text = write_netlist(ckt)
        again = parse_netlist(text)
        op1 = dc_operating_point(ckt)
        op2 = dc_operating_point(again)
        assert op2.voltage("out") == pytest.approx(op1.voltage("out"))

    def test_roundtrip_preserves_all_kinds(self):
        text = ("all kinds\n"
                "V1 in 0 DC 3\nI1 0 a DC 1m\nR1 in a 1k\n"
                "C1 a 0 10n IC=0.5\nL1 a b 1u IC=0\nL2 c 0 4u IC=0\n"
                "K1 L1 L2 0.3\nR2 b 0 50\nR3 c 0 50\n"
                "D1 a d IS=1e-13 N=1.1\nR4 d 0 1k\n"
                "M1 e g 0 TYPE=n VTO=0.4 KP=150u W=5u L=1u LAMBDA=0.02\n"
                "R5 in e 10k\nV2 g 0 DC 1\n"
                "S1 f 0 g 0 VT=0.6 RON=2 ROFF=1e7\nR6 in f 1k\n"
                "E1 h 0 a 0 2\nR7 h 0 1k\n"
                "G1 i 0 a 0 2m\nR8 i 0 1k\n")
        ckt = parse_netlist(text)
        rebuilt = parse_netlist(write_netlist(ckt))
        assert len(rebuilt.components) == len(ckt.components)
        op1 = dc_operating_point(ckt)
        op2 = dc_operating_point(rebuilt)
        for node in ckt.node_names():
            assert op2.voltage(node) == pytest.approx(
                op1.voltage(node), abs=1e-9)

    def test_written_text_ends_with_end(self):
        assert write_netlist(parse_netlist(DIVIDER)).strip().endswith(
            ".end")
