"""Tests for the SPICE-card netlist reader/writer."""

import numpy as np
import pytest

from repro.spice import (
    NetlistError,
    dc_operating_point,
    parse_netlist,
    transient,
    write_netlist,
)

DIVIDER = """simple divider
V1 in 0 DC 10
R1 in out 1k
R2 out 0 3k
.end
"""


class TestParser:
    def test_divider_parses_and_solves(self):
        ckt = parse_netlist(DIVIDER)
        assert ckt.title == "simple divider"
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(7.5)

    def test_engineering_values(self):
        ckt = parse_netlist("eng\nR1 a 0 4.7k\nC1 a 0 100n\nL1 a 0 2.2u\n")
        assert ckt["R1"].resistance == pytest.approx(4700.0)
        assert ckt["C1"].capacitance == pytest.approx(100e-9)
        assert ckt["L1"].inductance == pytest.approx(2.2e-6)

    def test_comments_and_continuations(self):
        text = ("title\n"
                "* a comment\n"
                "R1 a 0\n"
                "+ 1k\n"
                "; trailing-only line\n"
                "V1 a 0 DC 1\n")
        ckt = parse_netlist(text)
        assert ckt["R1"].resistance == pytest.approx(1e3)

    def test_sin_source(self):
        ckt = parse_netlist("s\nV1 in 0 SIN(0 2 1MEG)\nR1 in 0 50\n")
        src = ckt["V1"].source
        assert src(0.25e-6) == pytest.approx(2.0, rel=1e-6)

    def test_pulse_source(self):
        ckt = parse_netlist(
            "p\nV1 g 0 PULSE(0 5 0 1n 1n 99n 200n)\nR1 g 0 1k\n")
        src = ckt["V1"].source
        assert src(50e-9) == pytest.approx(5.0)
        assert src(150e-9) == pytest.approx(0.0)

    def test_capacitor_ic(self):
        ckt = parse_netlist("c\nC1 a 0 1u IC=2.5\nR1 a 0 1k\n")
        assert ckt["C1"].ic == pytest.approx(2.5)

    def test_diode_params(self):
        ckt = parse_netlist("d\nD1 a 0 IS=1e-12 N=1.5\nV1 a 0 DC 1\n")
        assert ckt["D1"].i_s == pytest.approx(1e-12)
        assert ckt["D1"].n == pytest.approx(1.5)

    def test_mosfet_card(self):
        ckt = parse_netlist(
            "m\nM1 d g 0 TYPE=p VTO=0.6 KP=100u W=20u L=2u\n"
            "V1 d 0 DC 1\nV2 g 0 DC 0\n")
        m = ckt["M1"]
        assert m.polarity == "p"
        assert m.beta == pytest.approx(100e-6 * 10)

    def test_switch_card(self):
        ckt = parse_netlist(
            "sw\nS1 a 0 c 0 VT=1.2 RON=5 ROFF=1e8\n"
            "V1 a 0 DC 1\nV2 c 0 DC 3\n")
        s = ckt["S1"]
        assert s.v_threshold == pytest.approx(1.2)
        assert s.r_on == pytest.approx(5.0)

    def test_coupling_card(self):
        text = ("xfmr\nV1 in 0 SIN(0 1 100k)\nRs in p 1\n"
                "L1 p 0 1m\nL2 s 0 4m\nK1 L1 L2 0.99\nRL s 0 10k\n")
        ckt = parse_netlist(text)
        assert ckt["K1"].mutual == pytest.approx(
            0.99 * np.sqrt(1e-3 * 4e-3))

    def test_controlled_sources(self):
        ckt = parse_netlist(
            "cs\nV1 in 0 DC 1\nRin in 0 1MEG\n"
            "E1 out 0 in 0 10\nRl out 0 1k\n"
            "G1 out2 0 in 0 1m\nR2 out2 0 1k\n")
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(10.0)
        assert op.voltage("out2") == pytest.approx(-1.0)

    def test_transient_of_parsed_rc(self):
        ckt = parse_netlist(
            "rc\nV1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1u IC=0\n")
        res = transient(ckt, t_stop=5e-3, dt=10e-6, use_ic=True)
        assert res.voltage("out").v[-1] == pytest.approx(1.0, rel=1e-2)

    def test_coupling_unknown_inductor(self):
        with pytest.raises(NetlistError, match="unknown inductor"):
            parse_netlist("bad\nL1 a 0 1m\nK1 L1 L9 0.5\n")

    def test_unknown_element(self):
        with pytest.raises(NetlistError, match="unknown element"):
            parse_netlist("bad\nQ1 c b e\n")

    def test_empty_netlist(self):
        with pytest.raises(NetlistError, match="empty"):
            parse_netlist("\n\n")

    def test_bad_card_message_names_card(self):
        with pytest.raises(NetlistError, match="bad card"):
            parse_netlist("bad\nR1 a 0\n")

    def test_orphan_continuation(self):
        with pytest.raises(NetlistError, match="continuation"):
            parse_netlist("+ 1k\n")

    def test_directives_ignored(self):
        ckt = parse_netlist("t\n.option reltol=1e-4\nR1 a 0 1k\n")
        assert "R1" in ckt


class TestWriter:
    def test_roundtrip_divider(self):
        ckt = parse_netlist(DIVIDER)
        text = write_netlist(ckt)
        again = parse_netlist(text)
        op1 = dc_operating_point(ckt)
        op2 = dc_operating_point(again)
        assert op2.voltage("out") == pytest.approx(op1.voltage("out"))

    def test_roundtrip_preserves_all_kinds(self):
        text = ("all kinds\n"
                "V1 in 0 DC 3\nI1 0 a DC 1m\nR1 in a 1k\n"
                "C1 a 0 10n IC=0.5\nL1 a b 1u IC=0\nL2 c 0 4u IC=0\n"
                "K1 L1 L2 0.3\nR2 b 0 50\nR3 c 0 50\n"
                "D1 a d IS=1e-13 N=1.1\nR4 d 0 1k\n"
                "M1 e g 0 TYPE=n VTO=0.4 KP=150u W=5u L=1u LAMBDA=0.02\n"
                "R5 in e 10k\nV2 g 0 DC 1\n"
                "S1 f 0 g 0 VT=0.6 RON=2 ROFF=1e7\nR6 in f 1k\n"
                "E1 h 0 a 0 2\nR7 h 0 1k\n"
                "G1 i 0 a 0 2m\nR8 i 0 1k\n")
        ckt = parse_netlist(text)
        rebuilt = parse_netlist(write_netlist(ckt))
        assert len(rebuilt.components) == len(ckt.components)
        op1 = dc_operating_point(ckt)
        op2 = dc_operating_point(rebuilt)
        for node in ckt.node_names():
            assert op2.voltage(node) == pytest.approx(
                op1.voltage(node), abs=1e-9)

    def test_written_text_ends_with_end(self):
        assert write_netlist(parse_netlist(DIVIDER)).strip().endswith(
            ".end")

    def test_write_parse_roundtrip_every_component_type(self):
        """A programmatically built circuit holding one of EVERY
        serializable component type survives write -> parse with its
        element values and parameters intact (not just its DC answer)."""
        from repro.spice import Circuit
        from repro.spice import components as comps

        ckt = Circuit("every kind")
        ckt.add_vsource("V1", "in", "0", 3.0)
        ckt.add_isource("I1", "0", "a", 1e-3)
        ckt.add_resistor("R1", "in", "a", 1e3)
        ckt.add_capacitor("C1", "a", "0", 10e-9, ic=0.5)
        ckt.add_capacitor("C2", "a", "0", 4.7e-9)  # no IC
        ckt.add_inductor("L1", "a", "b", 1e-6, ic=2e-3)
        ckt.add_inductor("L2", "c", "0", 4e-6, ic=0.0)
        ckt.add_coupling("K1", "L1", "L2", 0.3)
        ckt.add_resistor("R2", "b", "0", 50.0)
        ckt.add_resistor("R3", "c", "0", 50.0)
        ckt.add_diode("D1", "a", "d", i_s=1e-13, n=1.1)
        ckt.add_resistor("R4", "d", "0", 1e3)
        ckt.add_mosfet("M1", "e", "g", "0", polarity="p", vto=0.4,
                       kp=150e-6, w=5e-6, l=1e-6, lam=0.02)
        ckt.add_resistor("R5", "in", "e", 10e3)
        ckt.add_vsource("V2", "g", "0", 1.0)
        ckt.add_switch("S1", "f", "0", "g", "0", v_threshold=0.6,
                       r_on=2.0, r_off=1e7)
        ckt.add_resistor("R6", "in", "f", 1e3)
        ckt.add_vcvs("E1", "h", "0", "a", "0", 2.0)
        ckt.add_resistor("R7", "h", "0", 1e3)
        ckt.add_vccs("G1", "i", "0", "a", "0", 2e-3)
        ckt.add_resistor("R8", "i", "0", 1e3)

        again = parse_netlist(write_netlist(ckt))
        assert len(again.components) == len(ckt.components)
        # The parser defers K cards until all inductors exist, so match
        # by name rather than position.
        for orig in ckt.components:
            back = again[orig.name]
            assert type(back) is type(orig)
            assert back.node_names == orig.node_names
        assert again["R1"].resistance == 1e3
        assert again["C1"].capacitance == pytest.approx(10e-9)
        assert again["C1"].ic == 0.5
        assert again["C2"].ic is None
        assert again["L1"].inductance == pytest.approx(1e-6)
        assert again["L1"].ic == pytest.approx(2e-3)
        coupling = again["K1"]
        assert coupling.k == pytest.approx(0.3)
        assert {coupling.l1.name, coupling.l2.name} == {"L1", "L2"}
        assert again["V1"].source.dc_value == 3.0
        assert again["I1"].source.dc_value == pytest.approx(1e-3)
        assert again["D1"].i_s == pytest.approx(1e-13)
        assert again["D1"].n == pytest.approx(1.1)
        mos = again["M1"]
        assert (mos.polarity, mos.vto, mos.kp) == ("p", 0.4,
                                                   pytest.approx(150e-6))
        assert (mos.w, mos.l, mos.lam) == (pytest.approx(5e-6),
                                           pytest.approx(1e-6), 0.02)
        sw = again["S1"]
        assert (sw.v_threshold, sw.r_on, sw.r_off) == (0.6, 2.0, 1e7)
        assert again["E1"].gain == 2.0
        assert again["G1"].gm == pytest.approx(2e-3)
        # And the electrical answer survives too.
        op1 = dc_operating_point(ckt)
        op2 = dc_operating_point(again)
        for node in ckt.node_names():
            assert op2.voltage(node) == pytest.approx(
                op1.voltage(node), abs=1e-9)

    def test_unserializable_component_is_typed_error(self):
        from repro.spice import Circuit
        from repro.spice.components import Component

        class Gyrator(Component):
            pass

        ckt = Circuit("custom")
        ckt.add_resistor("R1", "a", "0", 1.0)
        ckt.components.append(Gyrator("X1", ["a", "0"]))
        with pytest.raises(NetlistError, match="Gyrator"):
            write_netlist(ckt)


class TestTypedErrorPaths:
    def test_source_card_missing_value(self):
        with pytest.raises(NetlistError, match="missing a value"):
            parse_netlist("t\nV1 in 0\n")

    def test_sin_arity_error_names_signature(self):
        with pytest.raises(NetlistError, match=r"SIN needs"):
            parse_netlist("t\nV1 in 0 SIN(0 1)\n")

    def test_pulse_arity_error_names_signature(self):
        with pytest.raises(NetlistError, match=r"PULSE needs"):
            parse_netlist("t\nV1 in 0 PULSE(0 1 0)\n")

    def test_short_card_is_netlist_error_not_index_error(self):
        with pytest.raises(NetlistError, match="bad card"):
            parse_netlist("t\nR1 in\n")

    def test_nonnumeric_value_is_netlist_error(self):
        with pytest.raises(NetlistError, match="bad card"):
            parse_netlist("t\nR1 in 0 lots\n")
