"""Tests for the incremental sigma-delta mode."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adc.incremental import IncrementalADC


class TestIncrementalADC:
    def test_dc_conversion_accuracy(self):
        adc = IncrementalADC(n_clocks=256)
        for level in (-0.5, -0.1, 0.0, 0.3, 0.7):
            assert adc.convert(level) == pytest.approx(level, abs=1e-3)

    def test_accuracy_improves_with_clocks(self):
        short = IncrementalADC(n_clocks=64)
        long = IncrementalADC(n_clocks=512)
        assert long.conversion_error() < short.conversion_error()

    def test_theoretical_bits(self):
        adc = IncrementalADC(n_clocks=256)
        # log2(256*257/2) ~ 15 bits.
        assert adc.theoretical_bits == pytest.approx(15.0, abs=0.2)

    def test_clocks_for_bits(self):
        adc = IncrementalADC()
        n = adc.clocks_for_bits(14)
        assert np.log2(n * (n + 1) / 2) >= 14
        assert np.log2((n // 2) * (n // 2 + 1) / 2) < 14

    def test_rejects_overrange(self):
        with pytest.raises(ValueError):
            IncrementalADC().convert(0.95)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            IncrementalADC(n_clocks=4)

    def test_energy_per_conversion(self):
        adc = IncrementalADC(n_clocks=256)
        e = adc.energy_per_conversion()
        # 256 clocks at 1.28 MHz = 200 us at 432 uW -> ~86 nJ.
        assert e == pytest.approx(240e-6 * 1.8 * 200e-6, rel=1e-6)

    def test_duty_cycling_saves_energy_vs_freerunning(self):
        """One incremental conversion costs far less than running the
        free-running converter for a 10 ms reporting period."""
        adc = IncrementalADC(n_clocks=256)
        e_inc = adc.energy_per_conversion()
        e_free = 240e-6 * 1.8 * 10e-3
        assert e_inc < e_free / 10

    @given(st.floats(min_value=-0.75, max_value=0.75))
    @settings(max_examples=25, deadline=None)
    def test_conversion_error_bounded_property(self, level):
        adc = IncrementalADC(n_clocks=256)
        assert abs(adc.convert(level) - level) < 5e-3
