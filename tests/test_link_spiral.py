"""Tests for spiral-inductor geometry/electrical models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.link import CircularSpiral, RectangularSpiral, skin_depth
from repro.link.spiral import _ac_resistance_factor, _circ_loop_inductance


class TestSkinEffect:
    def test_skin_depth_copper_5mhz(self):
        # Copper at 5 MHz: ~29.5 um.
        assert skin_depth(5e6) == pytest.approx(29.5e-6, rel=0.05)

    def test_skin_depth_scales_inverse_sqrt_freq(self):
        assert skin_depth(1e6) / skin_depth(4e6) == pytest.approx(2.0)

    def test_skin_depth_rejects_bad_freq(self):
        with pytest.raises(ValueError):
            skin_depth(0.0)

    def test_ac_factor_thin_conductor_is_unity(self):
        assert _ac_resistance_factor(1e-9, 30e-6) == pytest.approx(1.0, rel=1e-3)

    def test_ac_factor_thick_conductor(self):
        # t >> delta: factor -> t/delta.
        assert _ac_resistance_factor(300e-6, 30e-6) == pytest.approx(10.0, rel=0.01)

    @given(st.floats(min_value=1e-6, max_value=1e-3))
    @settings(max_examples=25)
    def test_ac_factor_at_least_unity(self, thickness):
        assert _ac_resistance_factor(thickness, 29.5e-6) >= 1.0


class TestRectangularSpiral:
    @pytest.fixture
    def rx(self):
        return RectangularSpiral.ironic_receiver()

    def test_paper_geometry_accepted(self, rx):
        assert rx.n_turns == 14
        assert rx.n_layers == 8

    def test_inductance_in_microhenry_range(self, rx):
        # Multi-layer mm-scale coil: single-digit uH.
        assert 0.5e-6 < rx.inductance() < 20e-6

    def test_resistance_reasonable(self, rx):
        assert 0.5 < rx.resistance(5e6) < 50.0

    def test_ac_resistance_exceeds_dc(self, rx):
        assert rx.resistance(5e6) > rx.resistance()

    def test_quality_factor_band(self, rx):
        # Printed multi-layer coils at 5 MHz: Q of order 10.
        assert 3 < rx.quality_factor(5e6) < 60

    def test_self_resonance_above_carrier(self, rx):
        # The design must be operable at 5 MHz.
        assert rx.self_resonance() > 3 * 5e6

    def test_more_turns_more_inductance(self):
        small = RectangularSpiral(38e-3, 2e-3, 7, n_layers=8,
                                  layer_pitch=68e-6, turn_pitch=220e-6)
        big = RectangularSpiral.ironic_receiver()
        assert big.inductance() > small.inductance()

    def test_multilayer_beats_single_layer(self):
        single = RectangularSpiral(38e-3, 2e-3, 2, n_layers=1,
                                   turn_pitch=220e-6)
        stacked = RectangularSpiral(38e-3, 2e-3, 8, n_layers=4,
                                    layer_pitch=68e-6, turn_pitch=220e-6)
        # Same 2 turns/layer footprint; stacking multiplies inductance
        # faster than linearly (mutual coupling between layers).
        assert stacked.inductance() > 4 * single.inductance()

    def test_too_many_turns_rejected(self):
        with pytest.raises(ValueError, match="turns"):
            RectangularSpiral(5e-3, 2e-3, 40, n_layers=1, turn_pitch=220e-6)

    def test_wire_length_scales_with_turns(self, rx):
        # 14 turns of ~80 mm perimeter -> ~1.1 m.
        assert 0.5 < rx.wire_length() < 2.0

    def test_summary_keys(self, rx):
        s = rx.summary(5e6)
        assert {"inductance_h", "resistance_ohm", "q",
                "self_resonance_hz"} <= set(s)


class TestCircularSpiral:
    @pytest.fixture
    def tx(self):
        return CircularSpiral.ironic_transmitter()

    def test_inductance_band(self, tx):
        assert 0.1e-6 < tx.inductance() < 10e-6

    def test_q_healthy_for_class_e(self, tx):
        # The class-E tank needs a reasonably high-Q coil.
        assert tx.quality_factor(5e6) > 30

    def test_single_loop_formula(self):
        # Classic result: 10 mm loop of 0.5 mm wire radius -> ~44 nH.
        l = _circ_loop_inductance(10e-3, 0.5e-3)
        expected = 4e-7 * math.pi * 10e-3 * (math.log(8 * 10 / 0.5) - 2)
        assert l == pytest.approx(expected)

    def test_equivalent_radius_between_bounds(self, tx):
        r_eq = tx.equivalent_radius()
        assert 0 < r_eq <= tx.outer_radius

    def test_too_many_turns_rejected(self):
        with pytest.raises(ValueError):
            CircularSpiral(3e-3, 10, turn_pitch=2e-3)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10)
    def test_inductance_grows_with_turns(self, n):
        """Mutual terms make L grow faster than the added self terms for
        the first few turns; it always grows (inner turns shrink, so the
        asymptotic growth is sub-quadratic but stays well above 1.5x per
        doubling at these geometries)."""
        base = CircularSpiral(16e-3, n, turn_pitch=1.2e-3).inductance()
        double = CircularSpiral(16e-3, 2 * n, turn_pitch=1.2e-3).inductance()
        assert double > 1.5 * base
        if n <= 2:  # outer turns nearly equal radius: near-quadratic
            assert double > 2.0 * base


class TestParameterValidation:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            RectangularSpiral(-1e-3, 2e-3, 4)
        with pytest.raises(ValueError):
            CircularSpiral(10e-3, 0)

    def test_fractional_turns_allowed(self):
        coil = CircularSpiral(16e-3, 2.5, turn_pitch=1.2e-3)
        assert coil.inductance() > 0
