"""Session metrics: schema validation, recorder, JSONL, summaries.

The load-bearing properties:

* validation is strict both ways — a missing required field AND an
  undeclared extra field fail (schema drift breaks the CI gate loudly);
* the JSONL sink round-trips exactly what the recorder emitted, and
  ``read_jsonl`` pins failures to ``path:lineno``;
* empty latency summaries are the explicit ``{"count": 0}`` document,
  never silent ``None`` percentiles;
* the orchestrator/service instrumentation emits real events: a warm
  rerun of an identical study reports a 100 % cache-hit sweep.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import ResultStore, ScenarioBatch, SweepOrchestrator
from repro.obs import (
    EVENT_SCHEMAS,
    METRICS_SCHEMA_VERSION,
    MetricsRecorder,
    MetricsSchemaError,
    distribution,
    latency_summary,
    percentile,
    read_jsonl,
    summarize_events,
    validate_event,
    warm_cache_hit_rate,
)

T_STOP = 5e-3


def chunk_doc(**overrides):
    doc = {
        "event": "chunk",
        "ts": 0.5,
        "seq": 3,
        "session": "abcd1234",
        "mode": "control",
        "cells": 4,
        "elapsed_s": 0.25,
    }
    doc.update(overrides)
    return doc


class TestValidation:
    def test_valid_event_passes_through(self):
        doc = chunk_doc()
        assert validate_event(doc) is doc

    def test_missing_required_field_fails(self):
        doc = chunk_doc()
        del doc["cells"]
        with pytest.raises(MetricsSchemaError, match="missing required field"):
            validate_event(doc)

    def test_undeclared_extra_field_fails(self):
        with pytest.raises(MetricsSchemaError, match="undeclared"):
            validate_event(chunk_doc(surprise=1))

    def test_bool_does_not_satisfy_int(self):
        with pytest.raises(MetricsSchemaError, match="'cells'"):
            validate_event(chunk_doc(cells=True))

    def test_int_satisfies_float(self):
        validate_event(chunk_doc(elapsed_s=1))  # JSON has one number type

    def test_missing_envelope_field_fails(self):
        doc = chunk_doc()
        del doc["ts"]
        with pytest.raises(MetricsSchemaError, match="envelope"):
            validate_event(doc)

    def test_unknown_event_type_fails(self):
        with pytest.raises(MetricsSchemaError, match="unknown event type"):
            validate_event(chunk_doc(event="vibes"))

    def test_every_declared_type_has_flat_scalar_fields(self):
        for kind, schema in EVENT_SCHEMAS.items():
            for name, (accepted, required) in schema.items():
                assert isinstance(name, str), (kind, name)
                assert isinstance(required, bool), (kind, name)


class TestRecorder:
    def test_emit_stamps_the_envelope(self):
        with MetricsRecorder(label="t") as recorder:
            doc = recorder.emit("chunk", mode="control", cells=2, elapsed_s=0.1)
            assert doc["event"] == "chunk"
            assert doc["session"] == recorder.session
            assert doc["ts"] >= 0.0
            first = recorder.events()[0]
            assert first["event"] == "session_start"
            assert first["schema"] == METRICS_SCHEMA_VERSION

    def test_window_bounds_memory_but_not_the_count(self):
        recorder = MetricsRecorder(window=4)
        for _ in range(10):
            recorder.emit("queue", depth=1)
        assert len(recorder.events()) == 4
        assert recorder.n_emitted == 11  # session_start + 10
        seqs = [doc["seq"] for doc in recorder.events()]
        assert seqs == sorted(seqs)  # oldest first
        recorder.close()

    def test_emit_after_close_is_an_error(self):
        recorder = MetricsRecorder()
        recorder.close()
        recorder.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            recorder.emit("queue", depth=0)

    def test_invalid_emit_is_rejected_at_the_source(self):
        with MetricsRecorder() as recorder:
            with pytest.raises(MetricsSchemaError):
                recorder.emit("queue", depth="deep")

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsRecorder(jsonl_path=path, label="rt") as recorder:
            recorder.emit("queue", depth=3)
            recorder.emit("chunk", mode="spice", cells=8, elapsed_s=0.5)
        events = read_jsonl(path)
        assert [doc["event"] for doc in events] == [
            "session_start",
            "queue",
            "chunk",
            "session_end",
        ]
        assert events[-1]["events"] == 4
        assert len({doc["session"] for doc in events}) == 1

    def test_jsonl_appends_across_sessions(self, tmp_path):
        path = tmp_path / "m.jsonl"
        for _ in range(2):
            with MetricsRecorder(jsonl_path=path):
                pass
        events = read_jsonl(path)
        assert len({doc["session"] for doc in events}) == 2
        assert summarize_events(events)["sessions"] == 2

    def test_read_jsonl_pins_the_failing_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(chunk_doc())
        path.write_text(good + "\n" + json.dumps({"event": "chunk"}) + "\n")
        with pytest.raises(MetricsSchemaError, match=r"bad\.jsonl:2:"):
            read_jsonl(path)
        path.write_text("not json\n")
        with pytest.raises(MetricsSchemaError, match=r"not valid JSON"):
            read_jsonl(path)
        path.write_text(json.dumps({"event": "chunk"}) + "\n")
        assert read_jsonl(path, validate=False) == [{"event": "chunk"}]


class TestSummaries:
    def test_percentile(self):
        assert percentile([], 50) is None
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_empty_distributions_are_explicit(self):
        assert distribution([]) == {"count": 0}
        assert latency_summary([]) == {"count": 0}

    def test_latency_summary_keys(self):
        summary = latency_summary([0.1, 0.2, 0.3, 0.4])
        assert summary["count"] == 4
        assert set(summary) == {"count", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"}
        assert summary["max_s"] == pytest.approx(0.4)

    def test_warm_cache_hit_rate_is_the_last_sweep(self):
        assert warm_cache_hit_rate([]) is None

        def sweep(rate):
            return {"event": "sweep", "cache_hit_rate": rate}

        assert warm_cache_hit_rate([sweep(0.0), sweep(1.0)]) == 1.0
        assert warm_cache_hit_rate([sweep(1.0), sweep(0.5)]) == 0.5


class TestOrchestratorIntegration:
    @pytest.fixture(scope="class")
    def system(self):
        return RemotePoweringSystem(distance=10e-3)

    @pytest.fixture(scope="class")
    def controller(self):
        return AdaptivePowerController()

    def batch(self):
        return ScenarioBatch.from_axes(
            distance=[8e-3, 10e-3], i_load=[352e-6, 800e-6]
        )

    def test_sweep_chunk_and_store_events(self, system, controller, tmp_path):
        recorder = MetricsRecorder(jsonl_path=tmp_path / "m.jsonl")
        orchestrator = SweepOrchestrator(
            store=ResultStore(tmp_path / "cache"), recorder=recorder
        )
        orchestrator.run_control(self.batch(), system, controller, T_STOP)
        orchestrator.run_control(self.batch(), system, controller, T_STOP)
        recorder.close()

        events = read_jsonl(tmp_path / "m.jsonl")
        sweeps = [doc for doc in events if doc["event"] == "sweep"]
        assert len(sweeps) == 2
        assert sweeps[0]["n_computed"] == 4
        assert sweeps[0]["cache_hit_rate"] == 0.0
        assert sweeps[1]["n_cached"] == 4  # warm rerun replays everything
        assert warm_cache_hit_rate(events) == 1.0
        assert any(doc["event"] == "chunk" for doc in events)
        assert any(doc["event"] == "store" for doc in events)

        summary = summarize_events(events)
        assert summary["sweeps"]["runs"] == 2
        assert summary["sweeps"]["warm_cache_hit_rate"] == 1.0
        assert summary["chunks"]["count"] >= 1

    def test_delta_run_emits_study_diff(self, system, controller, tmp_path):
        recorder = MetricsRecorder(jsonl_path=tmp_path / "m.jsonl")
        orchestrator = SweepOrchestrator(
            store=ResultStore(tmp_path / "cache"), recorder=recorder
        )
        prev = self.batch()
        now = ScenarioBatch.from_axes(
            distance=[8e-3, 14e-3], i_load=[352e-6, 800e-6]
        )
        prev_keys = orchestrator.cell_keys(
            "control", prev, system=system, controller=controller, t_stop=T_STOP
        )
        orchestrator.run_control(prev, system, controller, T_STOP)
        orchestrator.run_delta(
            "control",
            now,
            prev_keys,
            system=system,
            controller=controller,
            t_stop=T_STOP,
        )
        recorder.close()

        events = read_jsonl(tmp_path / "m.jsonl")
        diffs = [doc for doc in events if doc["event"] == "study_diff"]
        assert len(diffs) == 1
        assert diffs[0]["n_changed"] == 2
        assert diffs[0]["n_replayed"] == 2
        # The acceptance property: the delta sweep computed ONLY the
        # changed cells, and the JSONL solve counts prove it.
        delta_sweep = [doc for doc in events if doc["event"] == "sweep"][-1]
        assert delta_sweep["n_computed"] == diffs[0]["n_changed"]
        assert delta_sweep["n_cached"] == diffs[0]["n_replayed"]

    def test_spice_solve_events_carry_solver_counters(self, tmp_path):
        from repro.engine import SpiceBatch

        recorder = MetricsRecorder()
        orchestrator = SweepOrchestrator(recorder=recorder)
        batch = SpiceBatch.from_axes(i_load=[352e-6, 800e-6])
        orchestrator.run_spice(batch, t_stop=1e-6, dt=1.0 / (5e6 * 100))
        recorder.close()

        solves = [doc for doc in recorder.events() if doc["event"] == "solve"]
        assert solves, "spice chunks must emit solver counters"
        assert sum(doc["cells"] for doc in solves) == len(batch)
        assert all(doc["accepted_steps"] > 0 for doc in solves)
        assert all(doc["newton_iters"] > 0 for doc in solves)
        # Schema v2: every solve event carries the linear-solver
        # counters; factorizations happen on any strategy, reuses only
        # on the sparse one (this tiny family stays dense under auto).
        assert all(doc["factorizations"] > 0 for doc in solves)
        assert all(doc["pattern_reuses"] >= 0 for doc in solves)
        summary = summarize_events(recorder.events())
        assert summary["solver"]["cells"] == len(batch)
        assert summary["solver"]["newton_iters"] > 0
        assert summary["solver"]["factorizations"] > 0
        assert "pattern_reuses" in summary["solver"]

    def test_spice_sparse_run_counts_pattern_reuses(self, tmp_path):
        from repro.engine import SpiceBatch

        recorder = MetricsRecorder()
        orchestrator = SweepOrchestrator(recorder=recorder)
        batch = SpiceBatch.from_axes(i_load=[352e-6, 800e-6])
        orchestrator.run_spice(batch, t_stop=1e-6, dt=1.0 / (5e6 * 100),
                               matrix="sparse")
        recorder.close()

        solves = [doc for doc in recorder.events() if doc["event"] == "solve"]
        assert solves
        assert all(doc["pattern_reuses"] > 0 for doc in solves)
        assert all(doc["factorizations"] > 0 for doc in solves)


class TestServiceMetrics:
    def test_metrics_document_and_event_window(self):
        import asyncio

        from repro.service import SimulationService

        async def main():
            service = SimulationService(window=5e-3)
            async with service:
                job = service.submit(
                    {
                        "kind": "sweep",
                        "t_stop": T_STOP,
                        "axes": {"distance": [8e-3], "i_load": [352e-6]},
                    }
                )
                await service.result(job.id, timeout=30)
            return service

        service = asyncio.run(main())
        doc = service.metrics()
        assert doc["schema"] == METRICS_SCHEMA_VERSION
        assert doc["session"] == service.recorder.session
        assert doc["events_emitted"] > 0
        assert doc["summary"]["jobs"]["count"] == 1
        assert doc["summary"]["jobs"]["by_state"] == {"done": 1}
        assert doc["summary"]["batches"]["count"] == 1

        events = service.metrics_events()
        kinds = {doc["event"] for doc in events}
        assert {"session_start", "queue", "batch", "job"} <= kinds
        for doc in events:
            validate_event(doc)


class TestMetricsReportTool:
    @pytest.fixture(scope="class")
    def tool(self):
        path = Path(__file__).resolve().parent.parent / "benchmarks"
        spec = importlib.util.spec_from_file_location(
            "metrics_report", path / "metrics_report.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def write_session(self, path, hit_rate):
        with MetricsRecorder(jsonl_path=path, label="gate") as recorder:
            recorder.emit(
                "sweep",
                mode="control",
                n_scenarios=4,
                n_cached=int(4 * hit_rate),
                n_computed=4 - int(4 * hit_rate),
                n_chunks=1,
                workers=1,
                parallel=False,
                elapsed_s=0.1,
                cache_hit_rate=hit_rate,
            )

    def test_gate_passes_on_a_warm_session(self, tool, tmp_path, capsys):
        path = tmp_path / "warm.jsonl"
        self.write_session(path, 1.0)
        code = tool.main(
            [str(path), "--min-warm-cache-hit-rate", "0.95", "--require-events",
             "session_start,sweep,session_end"]
        )
        assert code == 0
        assert "metrics gate passed" in capsys.readouterr().out

    def test_gate_fails_on_a_cold_session(self, tool, tmp_path, capsys):
        path = tmp_path / "cold.jsonl"
        self.write_session(path, 0.5)
        assert tool.main([str(path), "--min-warm-cache-hit-rate", "0.95"]) == 1
        assert "warm-cache gate" in capsys.readouterr().err

    def test_gate_fails_on_missing_event_type(self, tool, tmp_path, capsys):
        path = tmp_path / "warm.jsonl"
        self.write_session(path, 1.0)
        assert tool.main([str(path), "--require-events", "solve"]) == 1
        assert "never emitted" in capsys.readouterr().err

    def test_schema_breakage_is_exit_2(self, tool, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"event": "sweep"}\n')
        assert tool.main([str(path)]) == 2
        assert "schema validation FAILED" in capsys.readouterr().err

    def test_json_output_is_the_summary_document(self, tool, tmp_path, capsys):
        path = tmp_path / "warm.jsonl"
        self.write_session(path, 1.0)
        assert tool.main([str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sweeps"]["runs"] == 1
        assert doc["sweeps"]["warm_cache_hit_rate"] == 1.0


class TestAppendTrendTool:
    @pytest.fixture(scope="class")
    def tool(self):
        path = Path(__file__).resolve().parent.parent / "benchmarks"
        spec = importlib.util.spec_from_file_location(
            "append_trend", path / "append_trend.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def write_results(self, path, tool, scale=1.0):
        doc = {
            "benchmarks": [
                {"name": name, "stats": {"min": 0.01 * scale * (k + 1),
                                         "mean": 0.02 * scale * (k + 1)}}
                for k, name in enumerate(tool.DEFAULT_GATE)
            ]
        }
        path.write_text(json.dumps(doc))

    def test_duplicate_snapshot_is_skipped(self, tool, tmp_path, capsys):
        results = tmp_path / "bench.json"
        trend = tmp_path / "trend.jsonl"
        self.write_results(results, tool)
        args = [str(results), str(trend), "--ref", "abc123",
                "--timestamp", "2026-08-07T00:00:00+00:00"]
        assert tool.main(args) == 0
        assert "appended" in capsys.readouterr().out
        # Same commit, same gated minima: the re-run adds nothing.
        assert tool.main(args) == 0
        assert "skipped duplicate" in capsys.readouterr().out
        assert len(trend.read_text().splitlines()) == 1

    def test_changed_minima_or_ref_still_append(self, tool, tmp_path):
        results = tmp_path / "bench.json"
        trend = tmp_path / "trend.jsonl"
        self.write_results(results, tool)
        base = ["--timestamp", "2026-08-07T00:00:00+00:00"]
        assert tool.main([str(results), str(trend), "--ref", "abc"] + base) == 0
        # A different commit appends even with identical minima...
        assert tool.main([str(results), str(trend), "--ref", "def"] + base) == 0
        # ...and the same commit with moved timings appends too.
        self.write_results(results, tool, scale=2.0)
        assert tool.main([str(results), str(trend), "--ref", "abc"] + base) == 0
        rows = [json.loads(line) for line in trend.read_text().splitlines()]
        assert [row["ref"] for row in rows] == ["abc", "def", "abc"]

    def test_torn_trend_row_does_not_block_appends(self, tool, tmp_path):
        results = tmp_path / "bench.json"
        trend = tmp_path / "trend.jsonl"
        self.write_results(results, tool)
        trend.write_text("{not json\n")
        args = [str(results), str(trend), "--ref", "abc",
                "--timestamp", "2026-08-07T00:00:00+00:00"]
        assert tool.main(args) == 0
        assert len(trend.read_text().splitlines()) == 2
