"""The pluggable storage-backend subsystem.

The load-bearing properties:

* contract — every backend (dir / sqlite / mem / tiered) honours the
  same get/put/contains/evict/stats/health surface with identical
  semantics, so callers can swap backends by URI alone;
* round-trip fidelity — arrays come back bitwise-identical, across
  process-visible persistence for the durable backends;
* URI selection — ``open_backend`` maps every scheme (and bare paths)
  to the right backend, with typed errors for malformed specs;
* equivalence — an orchestrator run against ``dir://`` and
  ``sqlite://`` produces identical content-addressed rows.
"""

import os
import sqlite3

import numpy as np
import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import ResultStore, ScenarioBatch, SweepOrchestrator
from repro.storage import (
    BackendURIError,
    DirectoryBackend,
    MemoryBackend,
    SqliteBackend,
    StoreBackend,
    TieredBackend,
    canonical_key,
    open_backend,
)


def rows(i=0):
    return {
        "v": np.linspace(0.0, 1.0 + i, 7),
        "flag": np.array([True, False, True]),
    }


def key_for(i):
    return canonical_key({"cell": i})


BACKENDS = ("dir", "sqlite", "mem", "tiered")


def make_backend(kind, tmp_path, **kwargs):
    if kind == "dir":
        return DirectoryBackend(tmp_path / "dir", **kwargs)
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "sq", **kwargs)
    if kind == "mem":
        return MemoryBackend(**kwargs)
    children = [
        SqliteBackend(tmp_path / f"shard-{k}", **kwargs) for k in range(2)
    ]
    return TieredBackend(children, hot_entries=4)


class TestBackendContract:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_roundtrip_contains_len_stats(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            key = key_for(0)
            assert backend.get(key) is None
            assert not backend.contains(key)
            assert backend.stats.misses == 1
            backend.put(key, rows())
            assert backend.contains(key)
            assert len(backend) == 1
            got = backend.get(key)
            assert np.array_equal(got["v"], rows()["v"])
            assert got["flag"].dtype == np.bool_
            assert backend.stats.hits == 1
            assert backend.stats.writes == 1
            assert backend.stats.as_dict()["lookups"] == 2

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_clear_and_health(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            for i in range(3):
                backend.put(key_for(i), rows(i))
            doc = backend.health()
            assert doc["ok"] is True and doc["writable"] is True
            assert doc["entries"] == 3
            assert doc["backend"] == backend.kind
            backend.clear()
            assert len(backend) == 0

    @pytest.mark.parametrize("kind", ("dir", "sqlite", "mem"))
    def test_lru_eviction_bound(self, kind, tmp_path):
        with make_backend(kind, tmp_path, max_entries=2) as backend:
            for i in range(4):
                backend.put(key_for(i), rows(i))
            assert len(backend) == 2
            assert backend.stats.evictions == 2
            # The most recent writes survive.
            assert backend.get(key_for(3)) is not None

    @pytest.mark.parametrize("kind", ("dir", "sqlite"))
    def test_persistence_across_reopen(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            backend.put(key_for(7), rows(7))
        with make_backend(kind, tmp_path) as reopened:
            got = reopened.get(key_for(7))
            assert got is not None
            assert np.array_equal(got["v"], rows(7)["v"])

    def test_memory_get_returns_copy(self):
        backend = MemoryBackend()
        backend.put(key_for(0), rows())
        got = backend.get(key_for(0))
        got["v"] = np.zeros(1)
        assert np.array_equal(backend.get(key_for(0))["v"], rows()["v"])

    def test_abstract_backend_is_abstract(self):
        backend = StoreBackend()
        with pytest.raises(NotImplementedError):
            backend.get("x")


class TestSqliteBackend:
    def test_lookup_without_directory_scan(self, tmp_path, monkeypatch):
        backend = SqliteBackend(tmp_path / "sq")
        for i in range(5):
            backend.put(key_for(i), rows(i))

        def no_listdir(*a, **k):  # O(1) index lookups must not scan
            raise AssertionError("sqlite backend scanned a directory")

        monkeypatch.setattr(os, "listdir", no_listdir)
        monkeypatch.setattr(os, "scandir", no_listdir)
        assert backend.get(key_for(3)) is not None
        assert backend.contains(key_for(4))
        assert len(backend) == 5
        backend.close()

    def test_stale_index_row_is_a_miss(self, tmp_path):
        backend = SqliteBackend(tmp_path / "sq")
        backend.put(key_for(0), rows())
        os.unlink(backend._path(key_for(0)))
        assert backend.get(key_for(0)) is None
        assert backend.stats.misses == 1
        # The stale row was dropped — contains agrees.
        assert not backend.contains(key_for(0))
        backend.close()

    def test_unindexed_blob_still_served(self, tmp_path):
        # A blob written by a process whose index write was lost: the
        # contains() fallback sees the file.
        backend = SqliteBackend(tmp_path / "sq")
        backend.put(key_for(0), rows())
        with sqlite3.connect(backend.index_path) as conn:
            conn.execute("DELETE FROM cells")
        assert backend.contains(key_for(0))
        backend.close()


class TestTieredBackend:
    def test_sharding_spreads_and_hot_tier_hits(self, tmp_path):
        children = [MemoryBackend(), MemoryBackend()]
        backend = TieredBackend(children, hot_entries=8)
        keys = [key_for(i) for i in range(16)]
        for i, key in enumerate(keys):
            backend.put(key, rows(i))
        assert len(backend) == 16
        assert all(len(child) > 0 for child in children)
        # Hash placement is stable: the owning child holds the row.
        for key in keys:
            assert backend._child(key).contains(key)
        backend.get(keys[0])
        backend.get(keys[0])
        assert backend.hot_hits >= 1

    def test_health_aggregates_children(self, tmp_path):
        backend = TieredBackend(
            [DirectoryBackend(tmp_path / "a"), DirectoryBackend(tmp_path / "b")]
        )
        backend.put(key_for(0), rows())
        doc = backend.health()
        assert doc["ok"] is True
        assert doc["entries"] == 1
        assert len(doc["children"]) == 2

    def test_needs_children(self):
        with pytest.raises(ValueError, match="child"):
            TieredBackend([])


class TestOpenBackend:
    def test_schemes_map_to_backends(self, tmp_path):
        cases = {
            f"dir://{tmp_path}/d": DirectoryBackend,
            f"sqlite://{tmp_path}/s": SqliteBackend,
            f"tiered://{tmp_path}/t?shards=2": TieredBackend,
            "mem://": MemoryBackend,
            str(tmp_path / "bare"): DirectoryBackend,  # bare path
        }
        for spec, cls in cases.items():
            backend = open_backend(spec)
            assert isinstance(backend, cls), spec
            backend.close()

    def test_backend_instance_passes_through(self):
        backend = MemoryBackend()
        assert open_backend(backend) is backend

    def test_uri_roundtrips_for_durable_backends(self, tmp_path):
        for spec in (f"dir://{tmp_path}/d", f"sqlite://{tmp_path}/s"):
            backend = open_backend(spec)
            reopened = open_backend(backend.uri)
            assert type(reopened) is type(backend)
            backend.close()
            reopened.close()

    def test_tiered_params(self, tmp_path):
        backend = open_backend(
            f"tiered://{tmp_path}/t?shards=3&child=sqlite&hot=2"
        )
        assert isinstance(backend, TieredBackend)
        assert len(backend.children) == 3
        assert all(isinstance(c, SqliteBackend) for c in backend.children)
        assert backend.hot is not None
        backend.close()

    def test_max_entries_param(self, tmp_path):
        backend = open_backend(f"dir://{tmp_path}/d?max_entries=2")
        for i in range(4):
            backend.put(key_for(i), rows(i))
        assert len(backend) == 2
        backend.close()

    def test_typed_errors(self, tmp_path):
        with pytest.raises(BackendURIError, match="scheme"):
            open_backend("redis://somewhere")
        with pytest.raises(BackendURIError):
            open_backend(f"dir://{tmp_path}/d?bogus=1")
        with pytest.raises(BackendURIError):
            open_backend("dir://")


class TestResultStoreShim:
    def test_result_store_is_directory_backend(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        assert isinstance(store, DirectoryBackend)
        assert store.uri.startswith("dir://")


class TestOrchestratorEquivalence:
    def test_dir_and_sqlite_backends_identical_rows(self, tmp_path):
        system = RemotePoweringSystem(distance=10e-3)
        controller = AdaptivePowerController()
        batch = ScenarioBatch.from_axes(
            distance=[8e-3, 12e-3], i_load=[352e-6]
        )
        results, backends = [], []
        for spec in (f"dir://{tmp_path}/d", f"sqlite://{tmp_path}/s"):
            orchestrator = SweepOrchestrator(store=spec)
            backends.append(orchestrator.store)
            results.append(
                orchestrator.run_control(batch, system, controller, 5e-3)
            )
        assert np.array_equal(results[0].v_rect, results[1].v_rect)
        # Same content addresses filed on both backends.
        from repro.engine.parallel import control_cell_keys

        keys = control_cell_keys(batch, system, controller, 5e-3)
        for key in keys:
            row_dir = backends[0].get(key)
            row_sql = backends[1].get(key)
            assert row_dir is not None and row_sql is not None
            for name in row_dir:
                assert np.array_equal(row_dir[name], row_sql[name])

    def test_orchestrator_accepts_uri_store(self, tmp_path):
        orchestrator = SweepOrchestrator(store=f"sqlite://{tmp_path}/s")
        assert isinstance(orchestrator.store, SqliteBackend)
