"""Tests for the battery, bluetooth, and patch scenario models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.patch import BluetoothRadio, IronicPatch, LiIonBattery, SCENARIOS


class TestBattery:
    def test_flat_discharge_plateau(self):
        """Ref [5]: nearly constant voltage until ~75-80% discharged."""
        bat = LiIonBattery()
        v_top = bat.open_circuit_voltage(0.8)
        v_mid = bat.open_circuit_voltage(0.5)
        v_knee = bat.open_circuit_voltage(0.25)
        assert abs(v_mid - v_knee) < 0.1
        assert abs(v_top - v_mid) < 0.2
        # Below the knee the voltage collapses quickly.
        assert bat.open_circuit_voltage(0.05) < v_knee - 0.3

    def test_ir_sag(self):
        bat = LiIonBattery(r_internal=0.2)
        assert (bat.open_circuit_voltage() - bat.terminal_voltage(0.1)
                == pytest.approx(0.02))

    def test_energy_density_mass(self):
        """0.2 Wh/g (the paper's figure): a 110 mAh cell ~ 2 g."""
        bat = LiIonBattery(capacity_ah=0.110)
        assert bat.mass_grams() == pytest.approx(
            0.110 * 3.7 / 0.2, rel=1e-6)

    def test_runtime_scaling(self):
        bat = LiIonBattery(capacity_ah=0.1)
        assert bat.runtime_hours(10e-3) == pytest.approx(
            2 * bat.runtime_hours(20e-3))

    def test_discharge_bookkeeping(self):
        bat = LiIonBattery(capacity_ah=0.1, soc=1.0)
        bat.discharge(50e-3, 1.0)
        assert bat.soc == pytest.approx(0.5)
        with pytest.raises(RuntimeError, match="exhausted"):
            bat.discharge(100e-3, 1.0)

    def test_profile_runtime(self):
        bat = LiIonBattery(capacity_ah=0.1)
        hours = bat.profile_runtime_hours([(20e-3, 0.5), (40e-3, 0.5)])
        assert hours == pytest.approx(bat.runtime_hours(30e-3))
        with pytest.raises(ValueError, match="sum to 1"):
            bat.profile_runtime_hours([(20e-3, 0.5)])

    def test_validation(self):
        with pytest.raises(ValueError):
            LiIonBattery(capacity_ah=-1)
        with pytest.raises(ValueError):
            LiIonBattery(soc=1.5)
        with pytest.raises(ValueError):
            LiIonBattery().runtime_hours(0.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_ocv_monotone_in_soc(self, soc):
        bat = LiIonBattery()
        assert (bat.open_circuit_voltage(min(soc + 0.05, 1.0))
                >= bat.open_circuit_voltage(soc) - 1e-9)


class TestBluetooth:
    def test_state_currents_ordered(self):
        bt = BluetoothRadio()
        assert (bt.current(connected=False)
                < bt.current(connected=True)
                < bt.current(connected=True, tx_duty=1.0))

    def test_cannot_tx_disconnected(self):
        with pytest.raises(ValueError):
            BluetoothRadio().current(connected=False, tx_duty=0.5)

    def test_tx_time(self):
        bt = BluetoothRadio(throughput_bps=115200)
        assert bt.tx_time_for_payload(1440) == pytest.approx(0.1)

    def test_energy_per_measurement(self):
        bt = BluetoothRadio()
        e = bt.energy_per_measurement(100)
        assert 0 < e < 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            BluetoothRadio(i_idle=50e-3)  # would exceed connected
        with pytest.raises(ValueError):
            BluetoothRadio().current(True, tx_duty=2.0)
        with pytest.raises(ValueError):
            BluetoothRadio().tx_time_for_payload(-1)


class TestIronicPatch:
    @pytest.fixture
    def patch(self):
        return IronicPatch()

    def test_battery_life_idle_10h(self, patch):
        """E4: ~10 h disconnected and not powering (Section III-B)."""
        assert patch.battery_life_hours("idle") == pytest.approx(10.0,
                                                                 rel=0.1)

    def test_battery_life_connected_3h5(self, patch):
        """E4: ~3.5 h bluetooth-connected."""
        assert patch.battery_life_hours("connected") == pytest.approx(
            3.5, rel=0.12)

    def test_battery_life_powering_1h5(self, patch):
        """E4: ~1.5 h of continuous power transmission."""
        assert patch.battery_life_hours("powering") == pytest.approx(
            1.5, rel=0.1)

    def test_life_ordering(self, patch):
        table = patch.battery_life_table()
        assert table["idle"] > table["connected"] > table["powering"]

    def test_scenarios_registry(self):
        assert set(SCENARIOS) == {"idle", "connected", "powering"}
        assert SCENARIOS["powering"].powering
        assert not SCENARIOS["powering"].bluetooth_connected

    def test_class_e_current_dominates_powering(self, patch):
        assert (patch.class_e_supply_current()
                > patch.scenario_current("idle"))

    def test_mixed_session_life_between_extremes(self, patch):
        mixed = patch.monitoring_session_life(duty_powering=0.3,
                                              duty_connected=0.2)
        assert (patch.battery_life_hours("powering") < mixed
                < patch.battery_life_hours("idle"))

    def test_mixed_session_validation(self, patch):
        with pytest.raises(ValueError):
            patch.monitoring_session_life(0.7, 0.5)

    def test_tx_duty_increases_current(self, patch):
        base = patch.scenario_current("connected")
        busy = patch.scenario_current("connected", tx_duty=0.5)
        assert busy > base
