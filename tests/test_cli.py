"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_power_defaults(self):
        args = build_parser().parse_args(["power"])
        assert args.distances == [6.0, 10.0, 17.0]
        assert args.tissue is None

    def test_measure_args(self):
        args = build_parser().parse_args(
            ["measure", "--distance", "8", "--concentration", "1.2"])
        assert args.distance == 8.0
        assert args.concentration == 1.2

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "--distances", "8", "12", "--loads-ua", "352",
             "--t-stop", "20", "--duty", "0.5"])
        assert args.distances == [8.0, 12.0]
        assert args.loads_ua == [352.0]
        assert args.t_stop == 20.0
        assert args.duty == 0.5

    def test_sweep_defaults_are_a_64_scenario_grid(self):
        args = build_parser().parse_args(["sweep"])
        assert len(args.distances) * len(args.loads_ua) == 64
        assert args.workers is None
        assert args.cache_dir is None
        assert args.axis is None
        assert args.format == "table"

    def test_sweep_orchestration_args(self):
        args = build_parser().parse_args(
            ["sweep", "--workers", "2", "--cache-dir", "/tmp/c",
             "--axis", "temperature=33,37,41",
             "--axis", "tissue=air,muscle", "--format", "json"])
        assert args.workers == 2
        assert args.cache_dir == "/tmp/c"
        assert args.axis == ["temperature=33,37,41",
                             "tissue=air,muscle"]
        assert args.format == "json"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig11" in out

    def test_anchors(self, capsys):
        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "6 mm" in out
        assert "III-B" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "cLODx" in out and "wtLODx" in out

    def test_power(self, capsys):
        assert main(["power", "--distances", "6", "17"]) == 0
        out = capsys.readouterr().out
        assert "15" in out  # the 6 mm anchor

    def test_power_with_tissue(self, capsys):
        assert main(["power", "--distances", "6",
                     "--tissue", "sirloin"]) == 0
        assert "sirloin" in capsys.readouterr().out

    def test_battery(self, capsys):
        assert main(["battery"]) == 0
        out = capsys.readouterr().out
        assert "powering" in out

    def test_fig11_exit_code_reflects_pass(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_measure(self, capsys):
        assert main(["measure", "--concentration", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "concentration_reported" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--distances", "8", "14", "--loads-ua",
                     "352", "1302", "--t-stop", "15"]) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out
        assert "in-window" in out
        assert "OK" in out

    def test_sweep_physical_axes_table(self, capsys):
        assert main(["sweep", "--distances", "10", "--loads-ua",
                     "352", "--t-stop", "10",
                     "--axis", "temperature=33,41",
                     "--axis", "tissue=air,muscle"]) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out
        assert "T (degC)" in out
        assert "muscle" in out

    def test_sweep_workers_and_cache(self, capsys, tmp_path):
        argv = ["sweep", "--distances", "8", "12", "--loads-ua",
                "352", "--t-stop", "10", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache 0 hit / 2 miss" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache 2 hit / 0 miss" in warm

    def test_sweep_json_format(self, capsys):
        import json

        assert main(["sweep", "--distances", "10", "--loads-ua",
                     "352", "--t-stop", "5", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["n_scenarios"] == 1
        assert doc["cells"][0]["verdict"] in ("OK", "MARGINAL")

    def test_sweep_csv_format(self, capsys):
        assert main(["sweep", "--distances", "10", "--loads-ua",
                     "352", "--t-stop", "5", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("distance_mm,")
        assert len(out.strip().splitlines()) == 2

    def test_sweep_bad_load_is_a_clean_typed_error(self, capsys):
        assert main(["sweep", "--loads-ua", "nan",
                     "--t-stop", "5"]) == 2
        err = capsys.readouterr().err
        assert "i_load" in err and "finite" in err
        assert "Traceback" not in err

    def test_sweep_negative_load_rejected(self, capsys):
        assert main(["sweep", "--loads-ua", "-352",
                     "--t-stop", "5"]) == 2
        assert ">= 0" in capsys.readouterr().err

    def test_sweep_unknown_axis_rejected(self, capsys):
        assert main(["sweep", "--axis", "warp=9",
                     "--t-stop", "5"]) == 2
        err = capsys.readouterr().err
        assert "unknown axis" in err

    def test_sweep_malformed_axis_rejected(self, capsys):
        assert main(["sweep", "--axis", "temperature",
                     "--t-stop", "5"]) == 2
        assert "KEY=V1,V2" in capsys.readouterr().err

    def test_sweep_bad_axis_value_rejected(self, capsys):
        assert main(["sweep", "--axis", "temperature=warm",
                     "--t-stop", "5"]) == 2
        assert "not a valid value" in capsys.readouterr().err

    def test_sweep_duplicate_axis_rejected(self, capsys):
        assert main(["sweep", "--axis", "tissue=air",
                     "--axis", "tissue=muscle", "--t-stop", "5"]) == 2
        assert "axis given twice" in capsys.readouterr().err

    def test_sweep_enzyme_axis_changes_output(self, capsys):
        assert main(["sweep", "--distances", "10", "--loads-ua",
                     "352", "--t-stop", "5",
                     "--axis", "enzyme=cLODx,GOx",
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        header = out[0].split(",")
        j_col = header.index("sensor_j_ua_cm2")
        j_values = {row.split(",")[j_col] for row in out[1:]}
        assert len(j_values) == 2  # the chemistry axis is visible

    def test_sweep_unbuildable_coil_rejected_cleanly(self, capsys):
        """In-range turn counts that don't fit the footprint exit 2
        with the axis named (caught at run time, not parse time)."""
        assert main(["sweep", "--distances", "10", "--loads-ua",
                     "352", "--t-stop", "5",
                     "--axis", "rx_turns=34"]) == 2
        err = capsys.readouterr().err
        assert "rx_turns" in err and "footprint" in err


class TestSweepProgress:
    def test_chunk_progress_streams_to_stderr(self, capsys):
        assert main(["sweep", "--distances", "8", "12", "--loads-ua",
                     "352", "1302", "--t-stop", "5", "--workers",
                     "2"]) == 0
        err = capsys.readouterr().err
        assert "sweep: chunk 1/2 done (2/4 cells)" in err
        assert "sweep: chunk 2/2 done (4/4 cells)" in err

    def test_quiet_suppresses_progress(self, capsys):
        assert main(["sweep", "--distances", "8", "12", "--loads-ua",
                     "352", "--t-stop", "5", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "chunk" not in captured.err
        assert "in-window" in captured.out

    def test_cache_summary_line(self, capsys, tmp_path):
        argv = ["sweep", "--distances", "9", "--loads-ua", "352",
                "--t-stop", "5", "--cache-dir",
                str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "sweep: 0/1 cells from cache" in capsys.readouterr().err
        assert main(argv) == 0
        assert "sweep: 1/1 cells from cache" in capsys.readouterr().err


class TestServeParser:
    def test_spice_sweep_table(self, capsys):
        assert main(["sweep", "--study", "spice",
                     "--axis", "amplitude=1.25,1.75",
                     "--axis", "load_ua=200,352",
                     "--spice-t-stop-us", "1"]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        assert "rectifier" in out
        assert "V_out (V)" in out

    def test_spice_sweep_json(self, capsys):
        import json

        assert main(["sweep", "--study", "spice",
                     "--axis", "amplitude=1.4",
                     "--spice-t-stop-us", "1", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["mode"] == "spice"
        assert doc["cells"][0]["template"] == "rectifier"
        assert doc["cells"][0]["v_final"] > 0.0

    def test_spice_sweep_csv(self, capsys):
        assert main(["sweep", "--study", "spice",
                     "--axis", "amplitude=1.4", "--axis",
                     "template=halfwave",
                     "--spice-t-stop-us", "1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("template,")
        assert "halfwave" in out

    def test_spice_sweep_cache(self, capsys, tmp_path):
        argv = ["sweep", "--study", "spice",
                "--axis", "amplitude=1.25,1.75",
                "--spice-t-stop-us", "1",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache 0 hit / 2 miss" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache 2 hit / 0 miss" in warm

    def test_spice_sweep_unknown_axis_is_exit_2(self, capsys):
        assert main(["sweep", "--study", "spice",
                     "--axis", "distance_mm=10"]) == 2
        err = capsys.readouterr().err
        assert "unknown spice axis" in err

    def test_spice_sweep_bad_template_is_exit_2(self, capsys):
        from repro.engine.scenario import SPICE_TEMPLATES

        assert main(["sweep", "--study", "spice",
                     "--axis", "template=bogus"]) == 2
        err = capsys.readouterr().err
        # The typed axis error must name the axis, echo the bad value,
        # and enumerate every known template so the fix is self-evident.
        assert "template" in err
        assert "bogus" in err
        for name in SPICE_TEMPLATES:
            assert name in err

    def test_spice_sweep_matrix_modes(self, capsys):
        for mode in ("dense", "sparse"):
            assert main(["sweep", "--study", "spice",
                         "--axis", "amplitude=1.4",
                         "--spice-t-stop-us", "1",
                         "--spice-matrix", mode]) == 0
            assert capsys.readouterr().out

    def test_spice_sweep_sparse_fixed_step_is_exit_2(self, capsys):
        assert main(["sweep", "--study", "spice",
                     "--axis", "amplitude=1.4",
                     "--spice-method", "trap",
                     "--spice-matrix", "sparse"]) == 2
        assert "adaptive" in capsys.readouterr().err

    def test_spice_sweep_matrix_json_params_and_shared_cache(
            self, capsys, tmp_path):
        # Solver strategy is recorded in the study params but excluded
        # from cell keys: a dense-cold / sparse-warm pair shares the
        # cache fully.
        import json

        base = ["sweep", "--study", "spice",
                "--axis", "amplitude=1.25,1.75",
                "--spice-t-stop-us", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--format", "json"]
        assert main(base + ["--spice-matrix", "dense"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["study"]["params"]["matrix"] == "dense"
        assert cold["stats"]["n_computed"] == 2
        assert main(base + ["--spice-matrix", "sparse"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["study"]["params"]["matrix"] == "sparse"
        assert warm["stats"]["n_cached"] == 2
        assert warm["study"]["cell_keys"] == cold["study"]["cell_keys"]

    def test_spice_sweep_nonpositive_timing_is_exit_2(self, capsys):
        assert main(["sweep", "--study", "spice",
                     "--axis", "amplitude=1.4",
                     "--spice-t-stop-us", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err
        assert main(["sweep", "--study", "spice",
                     "--axis", "amplitude=1.4",
                     "--spice-dt-ns", "-1"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_spice_sweep_fixed_method(self, capsys):
        assert main(["sweep", "--study", "spice",
                     "--axis", "amplitude=1.4",
                     "--spice-t-stop-us", "1",
                     "--spice-method", "trap"]) == 0
        out = capsys.readouterr().out
        assert "trap backend" in out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.workers is None
        assert args.cache_dir is None
        assert args.window_ms == 10.0
        assert args.max_batch == 512
        assert args.max_pending == 512

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--window-ms", "5", "--max-batch", "64",
             "--max-pending", "16", "--cache-dir", "/tmp/c",
             "--workers", "2"])
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.window_ms == 5.0
        assert args.max_batch == 64
        assert args.max_pending == 16
        assert args.cache_dir == "/tmp/c"
        assert args.workers == 2

    def test_serve_bad_cache_dir_is_exit_2(self, capsys, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        assert main(["serve", "--cache-dir",
                     str(blocker / "cache")]) == 2
        assert "cannot use cache dir" in capsys.readouterr().err

    def test_serve_is_listed(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out
        assert "micro-batched" in out
