"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_power_defaults(self):
        args = build_parser().parse_args(["power"])
        assert args.distances == [6.0, 10.0, 17.0]
        assert args.tissue is None

    def test_measure_args(self):
        args = build_parser().parse_args(
            ["measure", "--distance", "8", "--concentration", "1.2"])
        assert args.distance == 8.0
        assert args.concentration == 1.2

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "--distances", "8", "12", "--loads-ua", "352",
             "--t-stop", "20", "--duty", "0.5"])
        assert args.distances == [8.0, 12.0]
        assert args.loads_ua == [352.0]
        assert args.t_stop == 20.0
        assert args.duty == 0.5

    def test_sweep_defaults_are_a_64_scenario_grid(self):
        args = build_parser().parse_args(["sweep"])
        assert len(args.distances) * len(args.loads_ua) == 64


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig11" in out

    def test_anchors(self, capsys):
        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "6 mm" in out
        assert "III-B" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "cLODx" in out and "wtLODx" in out

    def test_power(self, capsys):
        assert main(["power", "--distances", "6", "17"]) == 0
        out = capsys.readouterr().out
        assert "15" in out  # the 6 mm anchor

    def test_power_with_tissue(self, capsys):
        assert main(["power", "--distances", "6",
                     "--tissue", "sirloin"]) == 0
        assert "sirloin" in capsys.readouterr().out

    def test_battery(self, capsys):
        assert main(["battery"]) == 0
        out = capsys.readouterr().out
        assert "powering" in out

    def test_fig11_exit_code_reflects_pass(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_measure(self, capsys):
        assert main(["measure", "--concentration", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "concentration_reported" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--distances", "8", "14", "--loads-ua",
                     "352", "1302", "--t-stop", "15"]) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out
        assert "in-window" in out
        assert "OK" in out
