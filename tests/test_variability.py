"""Tests for the Monte-Carlo engine and the corner studies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.variability import (
    MonteCarlo,
    ParameterSpread,
    YieldResult,
    ask_margin_study,
    charge_time_study,
    vox_accuracy_study,
)


class TestChildSeeds:
    """Chunk-seed threading for the sweep orchestrator."""

    def test_deterministic(self):
        assert MonteCarlo.child_seeds(42, 5) \
            == MonteCarlo.child_seeds(42, 5)

    def test_distinct_per_chunk_and_per_master(self):
        seeds = MonteCarlo.child_seeds(0, 16)
        assert len(set(seeds)) == 16
        assert MonteCarlo.child_seeds(1, 16) != seeds

    def test_none_seed_means_zero(self):
        assert MonteCarlo.child_seeds(None, 3) \
            == MonteCarlo.child_seeds(0, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarlo.child_seeds(0, 0)

    def test_chunked_run_batch_reproducible(self):
        """A chunk re-run in isolation with its child seed reproduces
        its slice of the sharded draw."""
        mc = MonteCarlo([ParameterSpread("x", 1.0, 0.2)], seed=0)
        seeds = MonteCarlo.child_seeds(7, 2)
        first = mc.run_batch(lambda p: {"x": p["x"]}, 10,
                             seed=seeds[0])
        again = mc.run_batch(lambda p: {"x": p["x"]}, 10,
                             seed=seeds[0])
        other = mc.run_batch(lambda p: {"x": p["x"]}, 10,
                             seed=seeds[1])
        assert np.array_equal(first["x"], again["x"])
        assert not np.array_equal(first["x"], other["x"])


class TestParameterSpread:
    def test_gauss_sampling_statistics(self):
        spread = ParameterSpread("x", 10.0, 0.5)
        rng = np.random.default_rng(0)
        samples = np.array([spread.sample(rng) for _ in range(4000)])
        assert samples.mean() == pytest.approx(10.0, abs=0.05)
        assert samples.std() == pytest.approx(0.5, rel=0.1)

    def test_uniform_bounded(self):
        spread = ParameterSpread("x", 5.0, 1.0, distribution="uniform")
        rng = np.random.default_rng(1)
        samples = [spread.sample(rng) for _ in range(500)]
        assert all(4.0 <= s <= 6.0 for s in samples)

    def test_relative_sigma(self):
        spread = ParameterSpread("x", 100.0, 0.05, relative=True)
        rng = np.random.default_rng(2)
        samples = np.array([spread.sample(rng) for _ in range(4000)])
        assert samples.std() == pytest.approx(5.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterSpread("x", 1.0, -0.1)
        with pytest.raises(ValueError):
            ParameterSpread("x", 1.0, 0.1, distribution="cauchy")


class TestMonteCarlo:
    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            MonteCarlo([ParameterSpread("a", 1, 0.1),
                        ParameterSpread("a", 2, 0.1)])
        with pytest.raises(ValueError):
            MonteCarlo([])

    def test_run_collects_metrics(self):
        mc = MonteCarlo([ParameterSpread("a", 2.0, 0.1)], seed=3)
        out = mc.run(lambda p: {"double": 2 * p["a"]}, n_samples=50)
        assert out["double"].shape == (50,)
        assert out["double"].mean() == pytest.approx(4.0, abs=0.1)

    def test_seed_reproducibility(self):
        def eval_(p):
            return {"a": p["a"]}

        a = MonteCarlo([ParameterSpread("a", 1, 0.2)], seed=7).run(
            eval_, 20)
        b = MonteCarlo([ParameterSpread("a", 1, 0.2)], seed=7).run(
            eval_, 20)
        assert np.array_equal(a["a"], b["a"])

    def test_yield_analysis_limits(self):
        mc = MonteCarlo([ParameterSpread("a", 0.0, 1.0)], seed=4)
        res = mc.yield_analysis(lambda p: {"a": p["a"]},
                                {"a": (-1.0, 1.0)}, n_samples=2000)
        # P(|N(0,1)| < 1) ~ 0.68.
        assert res["a"].yield_fraction == pytest.approx(0.68, abs=0.05)

    def test_yield_result_properties(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        r = YieldResult("m", samples, 1.5, None)
        assert r.mean == pytest.approx(2.5)
        assert r.worst_low == 1.0
        assert r.worst_high == 4.0
        assert r.yield_fraction == pytest.approx(0.75)
        assert r.sigma_margin() > 0

    def test_sigma_margin_unconstrained(self):
        r = YieldResult("m", np.array([1.0, 2.0]), None, None)
        assert r.sigma_margin() == float("inf")

    @given(st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=20)
    def test_yield_fraction_is_probability(self, lo):
        r = YieldResult("m", np.random.default_rng(0).normal(0, 1, 100),
                        lo, lo + 1.0)
        assert 0.0 <= r.yield_fraction <= 1.0


class TestStudies:
    def test_vox_accuracy_yield(self):
        """650 mV +/- 30 mV across corners: the bandgap pair holds."""
        res = vox_accuracy_study(n_samples=250)
        vox = res["vox_mv"]
        assert vox.mean == pytest.approx(650.0, abs=5.0)
        assert vox.yield_fraction > 0.9

    def test_charge_time_yield(self):
        """Charging stays under 500 us and equilibrium inside limits."""
        res = charge_time_study(n_samples=80)
        assert res["charge_time_us"].yield_fraction > 0.9
        assert res["v_equilibrium"].yield_fraction > 0.9

    def test_charge_time_sensible_center(self):
        res = charge_time_study(n_samples=80)
        assert 150 < res["charge_time_us"].mean < 450

    def test_ask_margin_yield(self):
        """The demodulator's decision margin survives corners."""
        res = ask_margin_study(n_samples=200)
        margin = res["margin_frac"]
        assert margin.mean > 0.1
        assert margin.yield_fraction > 0.8
        assert margin.worst_low > 0.0  # always decidable

    def test_summary_rows_shape(self):
        res = vox_accuracy_study(n_samples=50)
        row = res["vox_mv"].summary_row()
        assert len(row) == 6
        assert row[0] == "vox_mv"


class TestSeedThreading:
    """Satellite regression: an explicit integer seed threads end-to-end
    and makes every run path reproducible."""

    def test_run_explicit_seed_reproducible(self):
        mc = MonteCarlo([ParameterSpread("a", 1.0, 0.2)], seed=0)
        # Consume some of the instance stream first: the explicit seed
        # must still re-anchor the draws.
        mc.run(lambda p: {"a": p["a"]}, 10)
        a = mc.run(lambda p: {"a": p["a"]}, 20, seed=42)
        b = mc.run(lambda p: {"a": p["a"]}, 20, seed=42)
        assert np.array_equal(a["a"], b["a"])
        c = mc.run(lambda p: {"a": p["a"]}, 20, seed=43)
        assert not np.array_equal(a["a"], c["a"])

    def test_run_batch_sees_identical_draws(self):
        spreads = [ParameterSpread("a", 1.0, 0.2),
                   ParameterSpread("b", 2.0, 0.1)]
        mc = MonteCarlo(spreads, seed=0)
        scalar = mc.run(lambda p: dict(p), 30, seed=9)
        batched = mc.run_batch(lambda p: p, 30, seed=9)
        assert np.array_equal(scalar["a"], batched["a"])
        assert np.array_equal(scalar["b"], batched["b"])

    def test_run_batch_rejects_misshaped_metrics(self):
        mc = MonteCarlo([ParameterSpread("a", 1.0, 0.2)], seed=0)
        with pytest.raises(ValueError, match="shape"):
            mc.run_batch(lambda p: {"bad": p["a"][:-1]}, 10)

    def test_study_reproducible_end_to_end(self):
        a = charge_time_study(n_samples=40, seed=5)
        b = charge_time_study(n_samples=40, seed=5)
        for metric in ("charge_time_us", "v_equilibrium"):
            assert np.array_equal(a[metric].samples, b[metric].samples)
        c = charge_time_study(n_samples=40, seed=6)
        assert not np.array_equal(a["charge_time_us"].samples,
                                  c["charge_time_us"].samples)

    def test_batched_study_matches_per_sample_path(self):
        """The ScenarioBatch-routed study reproduces the seed per-sample
        evaluation (same draws, same physics) within 1e-6 relative."""
        from repro.power import RectifierEnvelopeModel
        from repro.variability.montecarlo import MonteCarlo as MC

        spreads = [
            ParameterSpread("c_out", 250e-9, 0.10, relative=True),
            ParameterSpread("efficiency", 0.9, 0.05),
            ParameterSpread("p_in", 5e-3, 0.15, relative=True),
            ParameterSpread("i_load", 352e-6, 0.10, relative=True),
        ]

        def evaluate(p):
            eff = float(np.clip(p["efficiency"], 0.3, 1.0))
            model = RectifierEnvelopeModel(c_out=max(p["c_out"], 50e-9),
                                           efficiency=eff)
            t_charge = model.charge_time(max(p["p_in"], 1e-4),
                                         max(p["i_load"], 0.0), 2.75)
            trace = model.simulate(lambda t: p["p_in"],
                                   lambda t: p["i_load"], 1.5e-3)
            return {
                "charge_time_us": (t_charge * 1e6 if t_charge is not None
                                   else 1e6),
                "v_equilibrium": float(trace.v_out.v[-1]),
            }

        scalar = MC(spreads, seed=2).run(evaluate, 25)
        study = charge_time_study(n_samples=25, seed=2)
        assert np.allclose(study["charge_time_us"].samples,
                           scalar["charge_time_us"], rtol=1e-6)
        assert np.allclose(study["v_equilibrium"].samples,
                           scalar["v_equilibrium"], rtol=1e-9)
