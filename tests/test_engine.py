"""Tests for the unified simulation engine.

Two layers of guarantees:

* engine-core semantics (grids, ordering, signals, events, traces);
* *parity*: the engine-backed adapters (`RectifierEnvelopeModel.simulate`,
  `AdaptivePowerController.run`, `fig11_transient`,
  `run_measurement_cycle`) must reproduce the seed implementations'
  hand-rolled loops.  The reference integrators are re-implemented here
  verbatim from the seed so the refactor stays pinned to the original
  numerics (documented tolerances: bitwise for the envelope, 1e-9 for
  the control loop).
"""

import math

import numpy as np
import pytest

from repro import PAPER, RemotePoweringSystem
from repro.core import AdaptivePowerController, RegulationWindowError
from repro.engine import (
    SimComponent,
    SimulationEngine,
    SignalSource,
)
from repro.patch.firmware import PatchFirmware, PatchState
from repro.power import RectifierEnvelopeModel


# ---------------------------------------------------------------------------
# Seed reference implementations (copied from the pre-engine code paths)
# ---------------------------------------------------------------------------
def seed_envelope_simulate(model, p_in_func, i_load_func, t_stop, dt=1e-6,
                           v0=0.0, shorted_func=None):
    n = int(math.ceil(t_stop / dt)) + 1
    t = np.linspace(0.0, t_stop, n)
    v = np.empty(n)
    p = np.empty(n)
    i = np.empty(n)
    v[0] = v0
    p[0] = p_in_func(0.0)
    i[0] = i_load_func(0.0)

    def rectified(p_in, v_out):
        if p_in <= 0.0:
            return 0.0
        return model.efficiency * p_in / max(v_out, model.v_min_operate)

    def clamp(v_out):
        if v_out <= 0.0:
            return 0.0
        return model.clamp_i0 * math.exp(
            (v_out - model.clamp_voltage) / model.clamp_slope)

    for k in range(1, n):
        tk = t[k]
        shorted = bool(shorted_func(tk)) if shorted_func else False
        p_in = 0.0 if shorted else float(p_in_func(tk))
        i_load = float(i_load_func(tk))
        i_rect = rectified(p_in, v[k - 1])
        i_clamp = 0.0 if shorted else clamp(v[k - 1])
        dv = (i_rect - i_load - i_clamp) * (t[k] - t[k - 1]) / model.c_out
        v[k] = max(v[k - 1] + dv, 0.0)
        p[k] = p_in
        i[k] = i_load
    return t, v, p, i


def seed_control_run(controller, system, distance_profile, t_stop, v0=2.5,
                     rectifier=None):
    rectifier = rectifier or RectifierEnvelopeModel()
    i_load = system.implant.load_current(measuring=False)
    scale = 1.0
    v_rect = v0
    rows = []
    t = 0.0
    n = max(1, int(round(t_stop / controller.update_period)))
    n_sub = 128
    dt_inner = controller.update_period / n_sub
    v_ceiling = rectifier.clamp_voltage + 0.15
    for _ in range(n):
        d = float(distance_profile(t))
        p = system.link.available_power(system.i_tx * scale, d)
        for _ in range(n_sub):
            i_rect = rectifier.rectified_current(p, v_rect)
            i_clamp = rectifier.clamp_current(v_rect)
            v_rect += (i_rect - i_load - i_clamp) * dt_inner / rectifier.c_out
            v_rect = min(max(v_rect, 0.0), v_ceiling)
        v_rep = controller.quantize_telemetry(v_rect)
        new_scale = controller.next_scale(scale, v_rep)
        rows.append((t, d, v_rect, v_rep, scale, p,
                     new_scale in (controller.min_scale,
                                   controller.max_scale)))
        scale = new_scale
        t += controller.update_period
    return rows


# ---------------------------------------------------------------------------
# Engine core
# ---------------------------------------------------------------------------
class TestEngineCore:
    def test_uniform_grid_matches_envelope_convention(self):
        eng = SimulationEngine.uniform(700e-6, 0.25e-6)
        n = int(math.ceil(700e-6 / 0.25e-6)) + 1
        assert eng.times.size == n
        assert eng.times[0] == 0.0
        assert eng.times[-1] == pytest.approx(700e-6)

    def test_sampled_grid_matches_control_convention(self):
        eng = SimulationEngine.sampled(60e-3, 1e-3)
        assert eng.times.size == 60
        assert eng.times[0] == 0.0
        assert eng.times[-1] == pytest.approx(59e-3)

    def test_rejects_bad_grids(self):
        with pytest.raises(ValueError):
            SimulationEngine([1.0, 1.0])
        with pytest.raises(ValueError):
            SimulationEngine.uniform(-1.0, 1e-6)
        with pytest.raises(ValueError):
            SimulationEngine.uniform(1.0, 0.0)

    def test_runs_exactly_once(self):
        eng = SimulationEngine([0.0, 1.0])
        eng.run()
        with pytest.raises(RuntimeError):
            eng.run()

    def test_components_step_in_registration_order(self):
        order = []

        class Probe(SimComponent):
            def __init__(self, tag):
                self.tag = tag

            def step(self, sim, k, t_prev, t):
                order.append(self.tag)

        eng = SimulationEngine([0.0, 1.0])
        eng.add(Probe("a"))
        eng.add(Probe("b"))
        eng.run()
        assert order == ["a", "b"]

    def test_signal_trace_recording(self):
        eng = SimulationEngine(np.linspace(0.0, 1.0, 5))
        eng.add(SignalSource("x", lambda t: 2.0 * t))
        res = eng.run()
        assert np.allclose(res["x"], 2.0 * res.t)
        wf = res.waveform("x")
        assert wf.v[-1] == pytest.approx(2.0)

    def test_events_dispatch_in_time_order_at_exact_times(self):
        seen = []

        class Listener(SimComponent):
            def handle_event(self, sim, event):
                seen.append((event.name, event.time))

        eng = SimulationEngine(np.linspace(0.0, 1.0, 11))
        eng.add(Listener())
        eng.schedule(0.75, "late")
        eng.schedule(0.25, "early")
        eng.schedule(2.0, "after-the-end")
        res = eng.run()
        assert seen == [("early", 0.25), ("late", 0.75),
                        ("after-the-end", 2.0)]
        assert res.event_times("late") == [0.75]

    def test_record_initial_false_steps_every_instant(self):
        hits = []

        class Counter(SimComponent):
            def step(self, sim, k, t_prev, t):
                hits.append(t)

        eng = SimulationEngine(np.arange(4) * 0.5, record_initial=False)
        eng.add(Counter())
        res = eng.run()
        assert hits == [0.0, 0.5, 1.0, 1.5]
        assert res.t.size == 4


# ---------------------------------------------------------------------------
# Parity: envelope
# ---------------------------------------------------------------------------
class TestEnvelopeParity:
    def test_constant_power_charge_matches_seed_bitwise(self):
        m = RectifierEnvelopeModel()
        trace = m.simulate(lambda t: 5e-3, lambda t: 352e-6, 700e-6)
        t, v, p, i = seed_envelope_simulate(
            m, lambda t: 5e-3, lambda t: 352e-6, 700e-6)
        assert np.array_equal(trace.v_out.t, t)
        assert np.array_equal(trace.v_out.v, v)
        assert np.array_equal(trace.p_in.v, p)
        assert np.array_equal(trace.i_load.v, i)

    def test_lsk_shorted_run_matches_seed_bitwise(self):
        m = RectifierEnvelopeModel()

        def shorted(t):
            return 200e-6 < t < 400e-6 and int(t / 20e-6) % 2 == 0

        def p_in(t):
            return 3e-3 if t < 500e-6 else 1e-3

        trace = m.simulate(p_in, lambda t: 352e-6, 700e-6, dt=0.5e-6,
                           v0=2.0, shorted_func=shorted)
        t, v, p, i = seed_envelope_simulate(
            m, p_in, lambda t: 352e-6, 700e-6, dt=0.5e-6, v0=2.0,
            shorted_func=shorted)
        assert np.array_equal(trace.v_out.v, v)
        assert np.array_equal(trace.p_in.v, p)

    def test_vectorized_currents_match_scalar(self):
        m = RectifierEnvelopeModel()
        v = np.array([0.0, 0.5, 1.0, 2.5, 2.9, 3.1])
        p = np.full_like(v, 5e-3)
        i_rect = m.rectified_current(p, v)
        i_clamp = m.clamp_current(v)
        for k, vk in enumerate(v):
            assert i_rect[k] == pytest.approx(
                m.rectified_current(5e-3, float(vk)), rel=1e-12)
            assert i_clamp[k] == pytest.approx(
                m.clamp_current(float(vk)), rel=1e-12, abs=1e-18)

    def test_validation_still_enforced(self):
        m = RectifierEnvelopeModel()
        with pytest.raises(ValueError):
            m.simulate(lambda t: 1e-3, lambda t: 0.0, t_stop=-1.0)
        with pytest.raises(ValueError):
            m.simulate(lambda t: 1e-3, lambda t: 0.0, t_stop=1.0, dt=0.0)


# ---------------------------------------------------------------------------
# Parity: control loop
# ---------------------------------------------------------------------------
class TestControlParity:
    @pytest.fixture(scope="class")
    def system(self):
        return RemotePoweringSystem(distance=10e-3)

    def test_fixed_distance_matches_seed(self, system):
        ctrl = AdaptivePowerController()
        steps = ctrl.run(system, lambda t: 10e-3, t_stop=60e-3)
        ref = seed_control_run(ctrl, system, lambda t: 10e-3, 60e-3)
        assert len(steps) == len(ref)
        for s, (t, d, v, v_rep, scale, p, sat) in zip(steps, ref):
            assert s.time == pytest.approx(t, abs=1e-12)
            assert s.distance == d
            assert s.v_rect == pytest.approx(v, abs=1e-9)
            assert s.v_reported == pytest.approx(v_rep, abs=1e-9)
            assert s.drive_scale == pytest.approx(scale, abs=1e-9)
            assert s.p_delivered == pytest.approx(p, rel=1e-9)
            assert s.saturated == sat

    def test_step_profile_matches_seed(self, system):
        ctrl = AdaptivePowerController()

        def profile(t):
            return 8e-3 if t < 30e-3 else 14e-3

        steps = ctrl.run(system, profile, t_stop=80e-3)
        ref = seed_control_run(ctrl, system, profile, 80e-3)
        v_engine = np.array([s.v_rect for s in steps])
        v_ref = np.array([r[2] for r in ref])
        assert np.abs(v_engine - v_ref).max() < 1e-9


# ---------------------------------------------------------------------------
# Satellite: regulation statistics degradation
# ---------------------------------------------------------------------------
class TestRegulationStatistics:
    def test_empty_run_raises_typed_error(self):
        with pytest.raises(RegulationWindowError,
                           match="settle window"):
            AdaptivePowerController.regulation_statistics([])

    def test_settle_fraction_one_empty_tail(self):
        system = RemotePoweringSystem(distance=10e-3)
        ctrl = AdaptivePowerController()
        steps = ctrl.run(system, lambda t: 10e-3, t_stop=5e-3)
        with pytest.raises(RegulationWindowError, match="settle"):
            ctrl.regulation_statistics(steps, settle_fraction=1.0)

    def test_typed_error_is_a_value_error(self):
        # Existing callers that caught ValueError keep working.
        assert issubclass(RegulationWindowError, ValueError)

    def test_invalid_settle_fraction_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePowerController.regulation_statistics(
                [], settle_fraction=1.5)

    def test_single_step_run_still_degrades_gracefully(self):
        system = RemotePoweringSystem(distance=10e-3)
        ctrl = AdaptivePowerController()
        steps = ctrl.run(system, lambda t: 10e-3,
                         t_stop=ctrl.update_period)
        frac, v_min, v_max, drive = ctrl.regulation_statistics(steps)
        assert len(steps) == 1
        assert 0.0 <= frac <= 1.0
        assert v_min <= v_max


# ---------------------------------------------------------------------------
# Parity: Fig. 11 and the firmware cycle
# ---------------------------------------------------------------------------
class TestFig11OnEngine:
    @pytest.fixture(scope="class")
    def result(self):
        return RemotePoweringSystem(distance=10e-3).fig11_transient()

    def test_idle_power_holds_until_downlink_start(self):
        """The ASK bit window must not leak before start_time: the last
        sample before t_dl still sees the idle (5 mW) carrier."""
        from repro.comms import Bitstream
        from repro.engine import AskPowerSource, SimulationEngine

        src = AskPowerSource(
            Bitstream([1, 0, 1]), PAPER.downlink_bit_rate,
            power_high=PAPER.power_ask_high,
            power_low=PAPER.power_ask_low,
            power_idle=PAPER.power_matched_10mm,
            start_time=PAPER.fig11_downlink_start)
        t_bit = 1.0 / PAPER.downlink_bit_rate
        t_dl = PAPER.fig11_downlink_start
        assert src.power_at(t_dl - 0.5 * t_bit) == PAPER.power_matched_10mm
        assert src.power_at(t_dl) == PAPER.power_ask_high
        assert src.power_at(t_dl + 1.5 * t_bit) == PAPER.power_ask_low
        assert src.power_at(t_dl + 3.5 * t_bit) == PAPER.power_matched_10mm

    def test_rail_matches_seed_reference(self, result):
        system = RemotePoweringSystem(distance=10e-3)
        t_dl = PAPER.fig11_downlink_start
        t_bit = 1.0 / PAPER.downlink_bit_rate
        bits = result.downlink_sent

        def p_in(t):
            # One deliberate divergence from the seed closure: floor
            # instead of int(), so the bit window no longer leaks one
            # bit-time before the downlink start (latent off-by-one in
            # the seed, fixed in AskPowerSource).
            k = math.floor((t - t_dl) / t_bit)
            if 0 <= k < len(bits):
                return (PAPER.power_ask_high if bits[k]
                        else PAPER.power_ask_low)
            return PAPER.power_matched_10mm

        shorted = system.lsk_mod.shorted_func(
            result.uplink_sent, start_time=PAPER.fig11_uplink_start)
        i_load = system.implant.load_current(measuring=False)
        t, v, _, _ = seed_envelope_simulate(
            system.implant.rectifier, p_in, lambda t: i_load,
            700e-6, dt=0.25e-6, shorted_func=shorted)
        assert np.array_equal(result.v_out.t, t)
        assert np.abs(result.v_out.v - v).max() < 1e-12

    def test_engine_events_cover_the_timeline(self, result):
        names = [name for name, _ in result.events]
        assert names == ["charge to 2.75 V", "downlink start",
                         "downlink end", "uplink start", "uplink end"]
        times = [t for _, t in result.events]
        assert times == sorted(times)


class TestFirmwareCycleOnEngine:
    def test_cycle_log_matches_seed_sequence(self):
        fw = PatchFirmware()
        fw.handle("boot_done")
        fw.handle("bt_connect")
        fw.handle("start_powering", at_time=1.0)
        fw.run_measurement_cycle(t_downlink=1.8e-3, t_uplink=5e-3)
        assert fw.state is PatchState.POWERING
        tail = fw.log[-3:]
        assert [r.event for r in tail] == ["send_frame", "frame_sent",
                                           "uplink_done"]
        assert tail[0].time == pytest.approx(1.0)
        assert tail[1].time == pytest.approx(1.0 + 1.8e-3)
        assert tail[2].time == pytest.approx(1.0 + 1.8e-3 + 5e-3)

    def test_cycle_requires_powering(self):
        fw = PatchFirmware()
        fw.handle("boot_done")
        with pytest.raises(RuntimeError, match="POWERING"):
            fw.run_measurement_cycle()

    def test_cycle_rejects_bad_durations(self):
        fw = PatchFirmware()
        fw.handle("boot_done")
        fw.handle("start_powering")
        with pytest.raises(ValueError):
            fw.run_measurement_cycle(t_downlink=-1.0)
