"""AC small-signal analysis tests against closed-form transfer functions."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_source as dc_src, ac_sweep
from repro.spice.ac import logspace_frequencies


def rc_lowpass(r=1e3, c=1e-6):
    ckt = Circuit("rc_ac")
    ckt.add_vsource("V1", "in", "0", dc_src(0.0, ac_mag=1.0))
    ckt.add_resistor("R1", "in", "out", r)
    ckt.add_capacitor("C1", "out", "0", c)
    return ckt


class TestACLinear:
    def test_rc_corner_frequency(self):
        r, c = 1e3, 1e-6
        fc = 1.0 / (2 * np.pi * r * c)
        res = ac_sweep(rc_lowpass(r, c), np.array([fc]))
        assert res.magnitude("out")[0] == pytest.approx(1 / np.sqrt(2), rel=1e-6)
        assert res.phase_deg("out")[0] == pytest.approx(-45.0, abs=0.01)

    def test_rc_rolloff_20db_per_decade(self):
        r, c = 1e3, 1e-6
        fc = 1.0 / (2 * np.pi * r * c)
        res = ac_sweep(rc_lowpass(r, c), np.array([100 * fc, 1000 * fc]))
        mags = res.magnitude_db("out")
        assert mags[0] - mags[1] == pytest.approx(20.0, abs=0.05)

    def test_rc_matches_analytic_everywhere(self):
        r, c = 2.2e3, 47e-9
        freqs = logspace_frequencies(10.0, 10e6, 10)
        res = ac_sweep(rc_lowpass(r, c), freqs)
        h_sim = res.voltage("out")
        h_ref = 1.0 / (1.0 + 1j * 2 * np.pi * freqs * r * c)
        assert np.allclose(h_sim, h_ref, rtol=1e-9)

    def test_series_rlc_resonance(self):
        """Series RLC: current peaks at f0; output over R reads the peak."""
        r, l, c = 10.0, 10e-6, 100e-12
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        ckt = Circuit("rlc")
        ckt.add_vsource("V1", "in", "0", dc_src(0.0, ac_mag=1.0))
        ckt.add_inductor("L1", "in", "a", l)
        ckt.add_capacitor("C1", "a", "b", c)
        ckt.add_resistor("R1", "b", "0", r)
        freqs = np.linspace(0.5 * f0, 1.5 * f0, 401)
        res = ac_sweep(ckt, freqs)
        assert res.peak_frequency("b") == pytest.approx(f0, rel=0.005)
        # At resonance the full source voltage appears across R.
        at_f0 = ac_sweep(ckt, np.array([f0]))
        assert at_f0.magnitude("b")[0] == pytest.approx(1.0, rel=1e-3)

    def test_parallel_tank_q_factor(self):
        """Loaded parallel LC: -3 dB bandwidth gives Q = f0/BW = R*sqrt(C/L)."""
        r, l, c = 5e3, 10e-6, 100e-12
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        q_expected = r * np.sqrt(c / l)
        ckt = Circuit("tank")
        # Current source drives the tank: V = I * Z_tank.
        ckt.add_isource("I1", "0", "t", dc_src(0.0, ac_mag=1.0))
        ckt.add_inductor("L1", "t", "0", l)
        ckt.add_capacitor("C1", "t", "0", c)
        ckt.add_resistor("R1", "t", "0", r)
        freqs = np.linspace(0.8 * f0, 1.2 * f0, 2001)
        res = ac_sweep(ckt, freqs)
        mag = res.magnitude("t")
        peak = mag.max()
        above = freqs[mag >= peak / np.sqrt(2)]
        bw = above[-1] - above[0]
        assert f0 / bw == pytest.approx(q_expected, rel=0.02)

    def test_transformer_coupling_transfer(self):
        """Coupled coils transfer ratio ~ k*sqrt(L2/L1) when lightly loaded."""
        k = 0.2
        ckt = Circuit("xfmr_ac")
        ckt.add_vsource("V1", "in", "0", dc_src(0.0, ac_mag=1.0))
        l1 = ckt.add_inductor("L1", "in", "0", 2e-6)
        l2 = ckt.add_inductor("L2", "sec", "0", 8e-6)
        ckt.add_coupling("K1", l1, l2, k)
        ckt.add_resistor("RL", "sec", "0", 1e9)
        res = ac_sweep(ckt, np.array([5e6]))
        expected = k * np.sqrt(8e-6 / 2e-6)
        assert res.magnitude("sec")[0] == pytest.approx(expected, rel=1e-3)


class TestACNonlinearLinearised:
    def test_mosfet_common_source_gain(self):
        """CS amp small-signal gain = -gm*(RD || ro)."""
        ckt = Circuit("cs")
        ckt.add_vsource("VDD", "vdd", "0", 3.0)
        ckt.add_vsource("VG", "g", "0", dc_src(1.0, ac_mag=1.0))
        ckt.add_resistor("RD", "vdd", "d", 5e3)
        m = ckt.add_mosfet("M1", "d", "g", "0", vto=0.5, kp=200e-6,
                           w=10e-6, l=1e-6, lam=0.02)
        from repro.spice import dc_operating_point
        op = dc_operating_point(ckt)
        ids, gm, gds, _, _ = m.evaluate(op.x)
        res = ac_sweep(ckt, np.array([1e3]), op=op)
        gain = res.magnitude("d")[0]
        expected = gm / (1.0 / 5e3 + gds)
        assert gain == pytest.approx(expected, rel=1e-6)

    def test_diode_small_signal_resistance(self):
        """rd = nVt/Id at the bias point scales the AC division."""
        ckt = Circuit("dac")
        ckt.add_vsource("V1", "a", "0", dc_src(5.0, ac_mag=1.0))
        ckt.add_resistor("R1", "a", "d", 10e3)
        ckt.add_diode("D1", "d", "0")
        from repro.spice import dc_operating_point
        op = dc_operating_point(ckt)
        i_d = ckt["D1"].current(op.x)
        rd = 0.02585 / i_d
        res = ac_sweep(ckt, np.array([1e3]), op=op)
        assert res.magnitude("d")[0] == pytest.approx(
            rd / (rd + 10e3), rel=1e-3)


class TestACValidation:
    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            ac_sweep(rc_lowpass(), np.array([0.0, 1e3]))

    def test_logspace_frequencies_bounds(self):
        f = logspace_frequencies(10, 1e6, 5)
        assert f[0] == pytest.approx(10)
        assert f[-1] == pytest.approx(1e6)
        assert np.all(np.diff(np.log10(f)) > 0)

    def test_logspace_rejects_bad_range(self):
        with pytest.raises(ValueError):
            logspace_frequencies(100, 10)
