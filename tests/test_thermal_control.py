"""Tests for the thermal model and the adaptive power controller."""

import math

import pytest

from repro.core import AdaptivePowerController, PAPER, \
    RemotePoweringSystem
from repro.link import TISSUE_LIBRARY
from repro.power import (
    ImplantThermalModel,
    field_sar,
    implant_thermal_check,
    link_h_field,
    thermal_headroom,
)
from repro.power.thermal import MAX_TEMP_RISE, SAR_LIMIT_10G


class TestThermalHeadroom:
    def test_full_budget_at_and_below_core(self):
        assert thermal_headroom(37.0) == MAX_TEMP_RISE
        assert thermal_headroom(20.0) == MAX_TEMP_RISE

    def test_fever_eats_the_budget_degree_for_degree(self):
        assert thermal_headroom(37.5) \
            == pytest.approx(MAX_TEMP_RISE - 0.5)
        # At core + limit and beyond there is no budget at all.
        assert thermal_headroom(37.0 + MAX_TEMP_RISE + 2.0) < 0.0

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            thermal_headroom(37.0, limit=0.0)


class TestThermalModel:
    def test_slab_equivalent_radius(self):
        model = ImplantThermalModel.for_slab(38e-3, 2e-3, 0.544e-3)
        # Surface area ~ 2*(76 + 20.7 + 1.1) mm^2 -> r ~ 3.9 mm.
        assert model.r_eq == pytest.approx(3.9e-3, rel=0.1)

    def test_temperature_rise_linear_in_power(self):
        model = ImplantThermalModel()
        assert model.temperature_rise(20e-3) == pytest.approx(
            2 * model.temperature_rise(10e-3))

    def test_paper_operating_point_is_cool(self):
        """The implant dissipating the full 5 mW warms tissue well under
        the 1 degC chronic limit — the paper's 'low thermal dissipation'
        requirement is satisfied with margin."""
        model = ImplantThermalModel.for_slab(38e-3, 2e-3, 0.544e-3)
        rise = model.temperature_rise(5e-3)
        assert rise < 0.25

    def test_15mw_still_within_limit(self):
        model = ImplantThermalModel.for_slab(38e-3, 2e-3, 0.544e-3)
        assert model.temperature_rise(15e-3) < MAX_TEMP_RISE

    def test_max_dissipation_inverse(self):
        model = ImplantThermalModel()
        p_max = model.max_dissipation(1.0)
        assert model.temperature_rise(p_max) == pytest.approx(1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            ImplantThermalModel().temperature_rise(-1e-3)


class TestFieldSar:
    def test_h_field_falls_with_distance(self):
        h6 = link_h_field(0.9, 16e-3, 6e-3)
        h17 = link_h_field(0.9, 16e-3, 17e-3)
        assert h6 > h17 > 0

    def test_sar_at_operating_point_negligible(self):
        """5 MHz, sub-ampere drive: SAR orders below the 2 W/kg limit —
        the physical reason low-MHz links are standard for implants."""
        h = link_h_field(0.23 * 4, 16e-3, 6e-3)  # 4-turn, calibrated I
        sar = field_sar(TISSUE_LIBRARY["muscle"], h, 5e6)
        assert sar < 0.01 * SAR_LIMIT_10G

    def test_sar_scales_with_frequency_squared(self):
        t = TISSUE_LIBRARY["muscle"]
        assert field_sar(t, 10.0, 10e6) == pytest.approx(
            4 * field_sar(t, 10.0, 5e6))

    def test_full_audit_passes_at_paper_point(self):
        report = implant_thermal_check(
            p_received=5e-3, p_delivered_to_load=0.63e-3,
            i_tx_amplitude=0.23, coil_radius=16e-3, coil_turns=4,
            distance=10e-3, tissue=TISSUE_LIBRARY["muscle"])
        assert report.ok
        assert report.temp_rise < MAX_TEMP_RISE
        assert report.sar < SAR_LIMIT_10G

    def test_audit_rejects_impossible_power(self):
        with pytest.raises(ValueError):
            implant_thermal_check(1e-3, 2e-3, 0.2, 16e-3, 4, 10e-3,
                                  TISSUE_LIBRARY["muscle"])


class TestAdaptiveControl:
    @pytest.fixture(scope="class")
    def system(self):
        return RemotePoweringSystem(distance=10e-3)

    def test_holds_window_at_fixed_distance(self, system):
        ctrl = AdaptivePowerController()
        steps = ctrl.run(system, lambda t: 10e-3, t_stop=60e-3)
        frac, v_min, v_max, _ = ctrl.regulation_statistics(steps)
        assert frac > 0.95
        assert v_min >= PAPER.v_rect_minimum

    def test_tracks_distance_step(self, system):
        """Implant moves 8 -> 14 mm mid-run: the loop raises drive and
        keeps the rail alive where a fixed drive would sag."""
        ctrl = AdaptivePowerController()

        def profile(t):
            return 8e-3 if t < 30e-3 else 14e-3

        steps = ctrl.run(system, profile, t_stop=120e-3)
        frac, v_min, _, _ = ctrl.regulation_statistics(steps,
                                                       settle_fraction=0.5)
        assert v_min >= PAPER.v_rect_minimum
        # Drive rose from its settled pre-step level to a higher settled
        # post-step level (the loop compensated the weaker coupling).
        settled_before = [s.drive_scale for s in steps
                          if 20e-3 < s.time < 29e-3]
        settled_after = [s.drive_scale for s in steps if s.time > 90e-3]
        assert min(settled_after) > max(settled_before)

    def test_backs_off_when_close(self, system):
        """Implant at 5 mm: without control the rail would pin at the
        clamp; the loop reduces drive."""
        ctrl = AdaptivePowerController()
        steps = ctrl.run(system, lambda t: 5e-3, t_stop=120e-3)
        tail = steps[len(steps) // 2:]
        assert all(s.drive_scale < 1.0 for s in tail)
        _, _, v_max, _ = ctrl.regulation_statistics(steps)
        assert v_max < 3.2

    def test_saturates_at_extreme_distance(self, system):
        ctrl = AdaptivePowerController(max_scale=1.5)
        steps = ctrl.run(system, lambda t: 30e-3, t_stop=100e-3)
        assert steps[-1].drive_scale == pytest.approx(1.5, rel=1e-6)
        assert steps[-1].saturated

    def test_control_law_dead_zone(self):
        ctrl = AdaptivePowerController(v_low=2.3, v_high=2.9)
        assert ctrl.next_scale(1.0, 2.5) == 1.0
        assert ctrl.next_scale(1.0, 2.0) > 1.0
        assert ctrl.next_scale(1.0, 3.1) < 1.0

    def test_telemetry_quantization(self):
        ctrl = AdaptivePowerController(telemetry_bits=6)
        v = ctrl.quantize_telemetry(2.5)
        assert v == pytest.approx(2.5, abs=3.3 / 63)
        assert ctrl.quantize_telemetry(10.0) == pytest.approx(3.3)
        assert ctrl.quantize_telemetry(-1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePowerController(v_low=2.9, v_high=2.3)
        with pytest.raises(ValueError):
            AdaptivePowerController(min_scale=3.0, max_scale=1.0)
        with pytest.raises(ValueError):
            AdaptivePowerController(telemetry_bits=2)
