"""DC operating-point tests against hand-solvable circuits."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_operating_point


class TestLinearDC:
    def test_voltage_divider(self):
        ckt = Circuit("divider")
        ckt.add_vsource("V1", "in", "0", 10.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_resistor("R2", "out", "0", 3e3)
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(7.5)
        assert op.branch_current("V1") == pytest.approx(-10.0 / 4e3)

    def test_ground_voltage_is_zero(self):
        ckt = Circuit("g")
        ckt.add_vsource("V1", "a", "0", 5.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltage("0") == 0.0
        assert op.voltage("gnd") == 0.0

    def test_current_source_into_resistor(self):
        ckt = Circuit("isrc")
        ckt.add_isource("I1", "0", "a", 1e-3)  # pushes 1 mA into node a
        ckt.add_resistor("R1", "a", "0", 2e3)
        op = dc_operating_point(ckt)
        assert op.voltage("a") == pytest.approx(2.0)

    def test_superposition_of_two_sources(self):
        ckt = Circuit("sup")
        ckt.add_vsource("V1", "a", "0", 6.0)
        ckt.add_isource("I1", "0", "b", 3e-3)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_resistor("R2", "b", "0", 1e3)
        op = dc_operating_point(ckt)
        # Node b: (6-Vb)/1k + 3mA = Vb/1k  ->  Vb = 4.5
        assert op.voltage("b") == pytest.approx(4.5)

    def test_inductor_is_dc_short(self):
        ckt = Circuit("ldc")
        ckt.add_vsource("V1", "a", "0", 2.0)
        ckt.add_inductor("L1", "a", "b", 1e-3)
        ckt.add_resistor("R1", "b", "0", 100.0)
        op = dc_operating_point(ckt)
        assert op.voltage("b") == pytest.approx(2.0)
        assert op.branch_current("L1") == pytest.approx(0.02)

    def test_capacitor_is_dc_open(self):
        ckt = Circuit("cdc")
        ckt.add_vsource("V1", "a", "0", 2.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_capacitor("C1", "b", "0", 1e-9)
        op = dc_operating_point(ckt)
        assert op.voltage("b") == pytest.approx(2.0, abs=1e-6)

    def test_vcvs_gain(self):
        ckt = Circuit("vcvs")
        ckt.add_vsource("V1", "in", "0", 0.5)
        ckt.add_resistor("Rin", "in", "0", 1e6)
        ckt.add_vcvs("E1", "out", "0", "in", "0", 10.0)
        ckt.add_resistor("Rl", "out", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(5.0)

    def test_vccs_transconductance(self):
        ckt = Circuit("vccs")
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_resistor("Rin", "in", "0", 1e6)
        # gm = 1 mS pulling current out of node out into ground
        ckt.add_vccs("G1", "out", "0", "in", "0", 1e-3)
        ckt.add_resistor("Rl", "out", "0", 2e3)
        op = dc_operating_point(ckt)
        # I(out->0) = 1m * 1 V flows out of node "out": V = -I*R
        assert op.voltage("out") == pytest.approx(-2.0)

    def test_opamp_buffer(self):
        ckt = Circuit("buffer")
        ckt.add_vsource("V1", "in", "0", 1.3)
        ckt.add_resistor("Rin", "in", "0", 1e6)
        ckt.add_opamp("OP1", "out", "in", "out", gain=1e6)
        ckt.add_resistor("Rl", "out", "0", 10e3)
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(1.3, rel=1e-4)


class TestNonlinearDC:
    def test_diode_forward_drop(self):
        ckt = Circuit("dfwd")
        ckt.add_vsource("V1", "a", "0", 5.0)
        ckt.add_resistor("R1", "a", "d", 1e3)
        ckt.add_diode("D1", "d", "0")
        op = dc_operating_point(ckt)
        vd = op.voltage("d")
        assert 0.5 < vd < 0.8
        # KCL: resistor current equals diode current
        i_r = (5.0 - vd) / 1e3
        d1 = ckt["D1"]
        assert d1.current(op.x) == pytest.approx(i_r, rel=1e-4)

    def test_diode_reverse_blocks(self):
        ckt = Circuit("drev")
        ckt.add_vsource("V1", "a", "0", -5.0)
        ckt.add_resistor("R1", "a", "d", 1e3)
        ckt.add_diode("D1", "d", "0")
        op = dc_operating_point(ckt)
        assert op.voltage("d") == pytest.approx(-5.0, abs=1e-3)

    def test_diode_exponential_slope(self):
        """Shockley law: delta-V across bias points equals Vt*ln(I2/I1)."""
        import math

        drops, currents = [], []
        for vin in (1.0, 10.0):
            ckt = Circuit("dslope")
            ckt.add_vsource("V1", "a", "0", vin)
            ckt.add_resistor("R1", "a", "d", 1e3)
            ckt.add_diode("D1", "d", "0", i_s=1e-14, n=1.0)
            op = dc_operating_point(ckt)
            drops.append(op.voltage("d"))
            currents.append((vin - op.voltage("d")) / 1e3)
        delta = drops[1] - drops[0]
        expected = 0.02585 * math.log(currents[1] / currents[0])
        assert delta == pytest.approx(expected, rel=1e-3)

    def test_nmos_saturation_current(self):
        ckt = Circuit("nmos")
        ckt.add_vsource("VG", "g", "0", 1.5)
        ckt.add_vsource("VD", "vdd", "0", 3.0)
        ckt.add_resistor("RD", "vdd", "d", 1e3)
        ckt.add_mosfet("M1", "d", "g", "0", polarity="n",
                       vto=0.5, kp=200e-6, w=10e-6, l=1e-6, lam=0.0)
        op = dc_operating_point(ckt)
        # beta = 2 mA/V^2 ; Vov = 1.0 ; Idsat = 1 mA ; Vd = 3 - 1 = 2 V (sat ok)
        assert op.voltage("d") == pytest.approx(2.0, rel=1e-3)

    def test_nmos_triode_region(self):
        ckt = Circuit("nmos_tri")
        ckt.add_vsource("VG", "g", "0", 3.0)
        ckt.add_vsource("VD", "vdd", "0", 3.0)
        ckt.add_resistor("RD", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "g", "0", polarity="n",
                       vto=0.5, kp=200e-6, w=10e-6, l=1e-6, lam=0.0)
        op = dc_operating_point(ckt)
        vd = op.voltage("d")
        assert vd < 3.0 - 0.5  # device in triode
        beta = 200e-6 * 10
        ids = beta * ((3.0 - 0.5) * vd - 0.5 * vd * vd)
        assert ids == pytest.approx((3.0 - vd) / 10e3, rel=1e-3)

    def test_pmos_mirror_symmetry(self):
        """A PMOS with source at VDD conducts like the NMOS mirror image."""
        ckt = Circuit("pmos")
        ckt.add_vsource("VDD", "vdd", "0", 3.0)
        ckt.add_vsource("VG", "g", "0", 1.5)  # Vsg = 1.5
        ckt.add_resistor("RD", "d", "0", 1e3)
        ckt.add_mosfet("M1", "d", "g", "vdd", polarity="p",
                       vto=0.5, kp=200e-6, w=10e-6, l=1e-6, lam=0.0)
        op = dc_operating_point(ckt)
        # |Vov| = 1.0, Idsat = 1 mA into RD -> Vd = 1 V (sat: Vsd = 2 > 1)
        assert op.voltage("d") == pytest.approx(1.0, rel=1e-3)

    def test_mosfet_cutoff(self):
        ckt = Circuit("cutoff")
        ckt.add_vsource("VG", "g", "0", 0.2)
        ckt.add_vsource("VD", "vdd", "0", 3.0)
        ckt.add_resistor("RD", "vdd", "d", 1e3)
        ckt.add_mosfet("M1", "d", "g", "0", vto=0.5)
        op = dc_operating_point(ckt)
        assert op.voltage("d") == pytest.approx(3.0, abs=1e-3)

    def test_switch_open_and_closed(self):
        for ctrl, expected in ((0.0, 5.0), (1.0, 0.025)):
            ckt = Circuit("sw")
            ckt.add_vsource("V1", "a", "0", 5.0)
            ckt.add_vsource("VC", "c", "0", ctrl)
            ckt.add_resistor("R1", "a", "b", 1e3)
            ckt.add_switch("S1", "b", "0", "c", "0",
                           v_threshold=0.5, r_on=5.0, r_off=1e9)
            op = dc_operating_point(ckt)
            assert op.voltage("b") == pytest.approx(expected, rel=0.01)


class TestNewtonConvergence:
    """Regression for the branch-current convergence criterion.

    The seed criterion ``i_tol * max(1, |I|max/i_tol)`` collapses to
    ``max(i_tol, |I|max)`` — a 100% relative tolerance.  A voltage
    source directly across a diode is the canonical trigger: the damped
    Newton update's current step equals the damping limit, the updated
    branch current is a hair above it, and the broken check accepted a
    current of -1 A when the true current is -83 A.
    """

    def test_diode_branch_current_converges_to_tolerance(self):
        vin, i_s = 0.65, 1e-9
        ckt = Circuit("vd")
        ckt.add_vsource("V1", "a", "0", vin)
        ckt.add_diode("D1", "a", "0", i_s=i_s)
        op = dc_operating_point(ckt)
        i_true = -ckt["D1"].iv(vin)[0]
        assert abs(i_true) > 50.0  # a genuinely stiff operating point
        # Seed behaviour: branch current -1.0 (98.8% error).  The
        # absolute+relative criterion converges to ~1e-6 relative.
        assert op.branch_current("V1") == pytest.approx(i_true, rel=1e-5)

    def test_moderate_diode_branch_current_still_exact(self):
        ckt = Circuit("vd2")
        ckt.add_vsource("V1", "a", "0", 0.55)
        ckt.add_diode("D1", "a", "0", i_s=1e-12)
        op = dc_operating_point(ckt)
        i_true = -ckt["D1"].iv(0.55)[0]
        assert op.branch_current("V1") == pytest.approx(i_true, rel=1e-9)

    def test_newton_converged_criterion(self):
        from repro.spice.dc import newton_converged

        nn = 1
        # A current update equal to the current magnitude must NOT pass
        # (the seed criterion accepted exactly this shape).
        dx = np.array([0.0, 1.0])
        x = np.array([0.65, -1.000001])
        assert not newton_converged(dx, x, nn)
        # A current update within i_tol + i_reltol*|I| passes.
        dx = np.array([1e-8, 5e-7])
        x = np.array([0.65, -1.0])
        assert newton_converged(dx, x, nn)
        # Voltage updates above v_tol never pass.
        assert not newton_converged(np.array([1e-3, 0.0]), x, nn)


class TestBranchCurrentErrors:
    """Satellite: branch_current must raise a typed ValueError naming
    the component and suggesting device_current — never a bare
    KeyError — for branchless components and unknown names."""

    def _op(self):
        ckt = Circuit("bc")
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "0", 1e3)
        return dc_operating_point(ckt)

    def test_resistor_suggests_device_current(self):
        with pytest.raises(ValueError, match="device_current"):
            self._op().branch_current("R1")

    def test_unknown_name_is_value_error(self):
        with pytest.raises(ValueError, match="no component named 'nope'"):
            self._op().branch_current("nope")

    def test_voltage_source_still_works(self):
        assert self._op().branch_current("V1") == pytest.approx(-1e-3)


class TestDCRobustness:
    def test_diode_bridge_converges(self):
        """Full-bridge rectifier DC solve (4 diodes) via gmin stepping."""
        ckt = Circuit("bridge")
        ckt.add_vsource("V1", "inp", "inn", 3.0)
        ckt.add_diode("D1", "inp", "pos")
        ckt.add_diode("D2", "inn", "pos")
        ckt.add_diode("D3", "neg", "inp")
        ckt.add_diode("D4", "neg", "inn")
        ckt.add_resistor("RL", "pos", "neg", 1e3)
        ckt.add_resistor("Rgnd", "inn", "0", 1.0)
        op = dc_operating_point(ckt)
        v_load = op.voltage("pos") - op.voltage("neg")
        assert 1.4 < v_load < 2.1  # 3 V minus two diode drops

    def test_duplicate_name_rejected(self):
        ckt = Circuit("dup")
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            ckt.add_resistor("R1", "b", "0", 1.0)

    def test_unknown_node_raises(self):
        ckt = Circuit("unk")
        ckt.add_resistor("R1", "a", "0", 1.0)
        ckt.add_vsource("V1", "a", "0", 1.0)
        dc_operating_point(ckt)
        with pytest.raises(KeyError):
            ckt.node_index("nope")

    def test_singular_circuit_raises(self):
        """Two ideal V sources in parallel with different values."""
        ckt = Circuit("sing")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_vsource("V2", "a", "0", 2.0)
        with pytest.raises(Exception):
            dc_operating_point(ckt)
