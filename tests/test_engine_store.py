"""ResultStore: content addressing, round trips, LRU eviction."""

import os
import time

import numpy as np
import pytest

from repro.engine import ResultStore, canonical_key
from repro.engine.store import STORE_SCHEMA_VERSION


class TestCanonicalKey:
    def test_stable_and_order_insensitive(self):
        a = canonical_key({"x": 1.0, "y": [1, 2], "z": "muscle"})
        b = canonical_key({"z": "muscle", "y": [1, 2], "x": 1.0})
        assert a == b
        assert len(a) == 64

    def test_value_changes_change_the_key(self):
        base = {"x": 1.0, "schema": STORE_SCHEMA_VERSION}
        assert canonical_key(base) != canonical_key({**base, "x": 1.1})
        assert canonical_key(base) != canonical_key(
            {**base, "schema": STORE_SCHEMA_VERSION + 1})

    def test_numpy_scalars_and_arrays_fingerprint(self):
        a = canonical_key({"x": np.float64(2.5),
                           "trace": np.array([1.0, 2.0])})
        b = canonical_key({"x": 2.5, "trace": [1.0, 2.0]})
        assert a == b

    def test_unfingerprintable_values_raise(self):
        with pytest.raises(TypeError, match="fingerprint"):
            canonical_key({"f": lambda t: t})


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = canonical_key({"cell": 1})
        arrays = {
            "v": np.linspace(0.0, 3.3, 7),
            "sat": np.array([True, False, True]),
            "t": np.array([np.nan, 1.0]),
        }
        store.put(key, arrays)
        got = store.get(key)
        assert set(got) == set(arrays)
        for name in arrays:
            assert np.array_equal(arrays[name], got[name],
                                  equal_nan=(name == "t"))
        assert got["sat"].dtype == np.bool_
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_tilde_root_is_expanded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        store = ResultStore("~/.sweep-cache")
        assert store.root == str(tmp_path / ".sweep-cache")
        assert os.path.isdir(store.root)

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_corrupt_cell_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = canonical_key({"cell": 2})
        store.put(key, {"v": np.ones(3)})
        path = store._path(key)
        with open(path, "wb") as fh:
            fh.write(b"not an npz")
        assert store.get(key) is None
        assert store.stats.misses == 1

    def test_overwrite_same_key(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = canonical_key({"cell": 3})
        store.put(key, {"v": np.zeros(2)})
        store.put(key, {"v": np.ones(2)})
        assert np.array_equal(store.get(key)["v"], np.ones(2))
        assert len(store) == 1

    def test_len_and_clear(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        for k in range(3):
            store.put(canonical_key({"cell": k}), {"v": np.ones(1)})
        assert len(store) == 3
        store.clear()
        assert len(store) == 0


class TestEviction:
    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        store = ResultStore(tmp_path / "cache", max_entries=3)
        keys = [canonical_key({"cell": k}) for k in range(5)]
        now = time.time()
        for i, key in enumerate(keys):
            store.put(key, {"v": np.full(1, float(i))})
            # Backdate each cell (oldest first) so LRU order is
            # unambiguous even on coarse-resolution filesystems; a
            # just-written cell is always newest, so eviction takes
            # the oldest backdated one.
            path = store._path(key)
            if os.path.exists(path):
                os.utime(path, (now - 100 + i, now - 100 + i))
        assert len(store) == 3
        assert store.stats.evictions == 2
        # The two oldest cells are gone; the newest three survive.
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is None
        for key in keys[2:]:
            assert store.get(key) is not None

    def test_hit_refreshes_lru_position(self, tmp_path):
        store = ResultStore(tmp_path / "cache", max_entries=2)
        a, b, c = (canonical_key({"cell": k}) for k in "abc")
        store.put(a, {"v": np.zeros(1)})
        os.utime(store._path(a), (time.time() - 30, time.time() - 30))
        store.put(b, {"v": np.zeros(1)})
        os.utime(store._path(b), (time.time() - 20, time.time() - 20))
        assert store.get(a) is not None   # touch: a becomes newest
        store.put(c, {"v": np.zeros(1)})  # evicts b, not a
        assert store.get(a) is not None
        assert store.get(b) is None

    def test_max_entries_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "cache", max_entries=0)
