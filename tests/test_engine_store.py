"""ResultStore: content addressing, round trips, LRU eviction."""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.engine import ResultStore, canonical_key
from repro.engine.store import STORE_SCHEMA_VERSION

N_CONCURRENT_CELLS = 24


def _store_worker(root, worker, n_rounds):
    """Hammer a shared cache dir: interleaved puts/gets with a tight
    eviction bound (module-level so multiprocessing can spawn it)."""
    store = ResultStore(root, max_entries=8)
    for r in range(n_rounds):
        for k in range(N_CONCURRENT_CELLS):
            key = canonical_key({"cell": k})
            got = store.get(key)
            if got is not None:
                # Any readable cell must carry the exact pattern some
                # worker wrote — a torn write would fail here.
                assert np.array_equal(got["v"], np.full(32, float(k))), (
                    worker, r, k)
            store.put(key, {"v": np.full(32, float(k))})
    return store.stats.evictions


class TestCanonicalKey:
    def test_stable_and_order_insensitive(self):
        a = canonical_key({"x": 1.0, "y": [1, 2], "z": "muscle"})
        b = canonical_key({"z": "muscle", "y": [1, 2], "x": 1.0})
        assert a == b
        assert len(a) == 64

    def test_value_changes_change_the_key(self):
        base = {"x": 1.0, "schema": STORE_SCHEMA_VERSION}
        assert canonical_key(base) != canonical_key({**base, "x": 1.1})
        assert canonical_key(base) != canonical_key(
            {**base, "schema": STORE_SCHEMA_VERSION + 1})

    def test_numpy_scalars_and_arrays_fingerprint(self):
        a = canonical_key({"x": np.float64(2.5),
                           "trace": np.array([1.0, 2.0])})
        b = canonical_key({"x": 2.5, "trace": [1.0, 2.0]})
        assert a == b

    def test_unfingerprintable_values_raise(self):
        with pytest.raises(TypeError, match="fingerprint"):
            canonical_key({"f": lambda t: t})

    def test_nonfinite_floats_are_canonicalized(self):
        # NaN/inf must produce stable keys (not invalid-JSON tokens),
        # and the three non-finite classes must not collide.
        nan = canonical_key({"x": float("nan")})
        inf = canonical_key({"x": float("inf")})
        ninf = canonical_key({"x": float("-inf")})
        assert len({nan, inf, ninf}) == 3
        assert nan == canonical_key({"x": np.float64("nan")})
        assert inf == canonical_key({"x": np.float64("inf")})

    def test_nonfinite_floats_do_not_collide_with_strings(self):
        # A payload that legitimately contains the *string* "NaN" must
        # hash differently from one containing the float.
        assert canonical_key({"x": float("nan")}) != canonical_key({"x": "NaN"})
        assert canonical_key({"x": float("inf")}) != canonical_key(
            {"x": "Infinity"})

    def test_nonfinite_values_inside_arrays_and_lists(self):
        a = canonical_key({"trace": np.array([1.0, np.nan, np.inf])})
        b = canonical_key({"trace": [1.0, float("nan"), float("inf")]})
        assert a == b
        assert a != canonical_key({"trace": [1.0, 2.0, float("inf")]})


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = canonical_key({"cell": 1})
        arrays = {
            "v": np.linspace(0.0, 3.3, 7),
            "sat": np.array([True, False, True]),
            "t": np.array([np.nan, 1.0]),
        }
        store.put(key, arrays)
        got = store.get(key)
        assert set(got) == set(arrays)
        for name in arrays:
            assert np.array_equal(arrays[name], got[name],
                                  equal_nan=(name == "t"))
        assert got["sat"].dtype == np.bool_
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_tilde_root_is_expanded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        store = ResultStore("~/.sweep-cache")
        assert store.root == str(tmp_path / ".sweep-cache")
        assert os.path.isdir(store.root)

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_corrupt_cell_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = canonical_key({"cell": 2})
        store.put(key, {"v": np.ones(3)})
        path = store._path(key)
        with open(path, "wb") as fh:
            fh.write(b"not an npz")
        assert store.get(key) is None
        assert store.stats.misses == 1

    def test_overwrite_same_key(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = canonical_key({"cell": 3})
        store.put(key, {"v": np.zeros(2)})
        store.put(key, {"v": np.ones(2)})
        assert np.array_equal(store.get(key)["v"], np.ones(2))
        assert len(store) == 1

    def test_len_and_clear(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        for k in range(3):
            store.put(canonical_key({"cell": k}), {"v": np.ones(1)})
        assert len(store) == 3
        store.clear()
        assert len(store) == 0

    def test_len_and_clear_see_other_writers(self, tmp_path):
        """len()/clear() report directory truth, not this instance's
        index — cells written by a concurrent process are counted and
        dropped too."""
        a = ResultStore(tmp_path / "cache")
        a.put(canonical_key({"cell": "mine"}), {"v": np.ones(1)})
        b = ResultStore(tmp_path / "cache")     # a second "process"
        b.put(canonical_key({"cell": "theirs"}), {"v": np.ones(1)})
        assert len(a) == 2
        a.clear()
        assert len(b) == 0
        assert b.get(canonical_key({"cell": "theirs"})) is None


class TestEviction:
    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        store = ResultStore(tmp_path / "cache", max_entries=3)
        keys = [canonical_key({"cell": k}) for k in range(5)]
        now = time.time()
        for i, key in enumerate(keys):
            store.put(key, {"v": np.full(1, float(i))})
            # Backdate each cell (oldest first) so LRU order is
            # unambiguous even on coarse-resolution filesystems; a
            # just-written cell is always newest, so eviction takes
            # the oldest backdated one.
            path = store._path(key)
            if os.path.exists(path):
                os.utime(path, (now - 100 + i, now - 100 + i))
        assert len(store) == 3
        assert store.stats.evictions == 2
        # The two oldest cells are gone; the newest three survive.
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is None
        for key in keys[2:]:
            assert store.get(key) is not None

    def test_hit_refreshes_lru_position(self, tmp_path):
        store = ResultStore(tmp_path / "cache", max_entries=2)
        a, b, c = (canonical_key({"cell": k}) for k in "abc")
        store.put(a, {"v": np.zeros(1)})
        os.utime(store._path(a), (time.time() - 30, time.time() - 30))
        store.put(b, {"v": np.zeros(1)})
        os.utime(store._path(b), (time.time() - 20, time.time() - 20))
        assert store.get(a) is not None   # touch: a becomes newest
        store.put(c, {"v": np.zeros(1)})  # evicts b, not a
        assert store.get(a) is not None
        assert store.get(b) is None

    def test_max_entries_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "cache", max_entries=0)

    def test_fresh_instance_rebuilds_lru_order_from_mtimes(self, tmp_path):
        # The in-memory index is rebuilt once per instance from file
        # mtimes, so a *new* store over an existing directory must
        # evict the mtime-oldest cells, exactly as the scanning
        # implementation did.
        writer = ResultStore(tmp_path / "cache")
        keys = [canonical_key({"cell": k}) for k in range(4)]
        now = time.time()
        for i, key in enumerate(keys):
            writer.put(key, {"v": np.full(1, float(i))})
            os.utime(writer._path(key), (now - 100 + i, now - 100 + i))
        store = ResultStore(tmp_path / "cache", max_entries=3)
        store.put(canonical_key({"cell": 99}), {"v": np.zeros(1)})
        assert store.stats.evictions == 2
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is None
        for key in keys[2:]:
            assert store.get(key) is not None

    def test_put_does_not_rescan_the_directory(self, tmp_path, monkeypatch):
        # O(1) amortized puts: after the one-time index build, further
        # puts (including evicting ones) never call os.listdir again.
        store = ResultStore(tmp_path / "cache", max_entries=4)
        store.put(canonical_key({"cell": 0}), {"v": np.zeros(1)})
        calls = []
        real_listdir = os.listdir
        monkeypatch.setattr(
            os, "listdir", lambda *a: calls.append(a) or real_listdir(*a))
        for k in range(1, 10):
            store.put(canonical_key({"cell": k}), {"v": np.zeros(1)})
        assert calls == []
        assert store.stats.evictions == 6
        assert len(store) == 4


class TestConcurrentAccess:
    def test_two_processes_share_one_cache_dir(self, tmp_path):
        """Two workers on one --cache-dir: atomic temp-file + rename
        writes mean every surviving cell is complete, and evicting a
        cell the other process already removed is a silent no-op (no
        double-evict crash, no corrupt entries)."""
        root = str(tmp_path / "shared-cache")
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_store_worker, args=(root, w, 6))
            for w in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        # Every cell left on disk must load cleanly and carry the
        # exact pattern of its key (no torn/interleaved writes) ...
        pattern = {canonical_key({"cell": k}): k
                   for k in range(N_CONCURRENT_CELLS)}
        survivors = 0
        checker = ResultStore(root)
        for key, k in pattern.items():
            got = checker.get(key)
            if got is None:
                continue
            survivors += 1
            assert np.array_equal(got["v"], np.full(32, float(k)))
        # ... no stray temp files survive, and the per-process bound
        # kept the directory from growing without limit.
        stray = [name for shard in os.listdir(root)
                 if os.path.isdir(os.path.join(root, shard))
                 for name in os.listdir(os.path.join(root, shard))
                 if not name.endswith(".npz")]
        assert stray == []
        assert 1 <= survivors <= 16  # 2 workers x max_entries=8
