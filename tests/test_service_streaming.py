"""Streaming results, the multi-worker serving tier, and shutdown.

The load-bearing properties:

* streamed chunks concatenate to *exactly* the final result document
  (the scheduler publishes the same per-cell docs it later assembles,
  so parity is structural, and JSON floats round-trip bitwise);
* late subscribers replay the full chunk history;
* several scheduler workers sharing one backend compute each distinct
  cell once (cross-worker dedup by content address);
* drain finishes in-flight jobs, rejects new submits with the typed
  503 error, and reports its accounting;
* ``/healthz`` carries the storage-backend probe and degrades to 503;
* the HTTP client surfaces transport failures (reset mid-response,
  malformed bodies) as typed errors and retries 429 backpressure.
"""

import asyncio
import json

import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.obs import MetricsRecorder
from repro.service import (
    HttpServiceClient,
    InFlightIndex,
    LoadGenerator,
    QueueFullError,
    ServiceClient,
    ServiceError,
    ServiceHTTPServer,
    ServiceUnavailableError,
    SimulationService,
)


@pytest.fixture(scope="module")
def system():
    return RemotePoweringSystem(distance=10e-3)


@pytest.fixture(scope="module")
def controller():
    return AdaptivePowerController()


def sweep_payload(*distances, t_stop=5e-3):
    return {"kind": "sweep", "t_stop": t_stop,
            "axes": {"distance": list(distances), "i_load": [352e-6]}}


def make_service(system, controller, **kwargs):
    kwargs.setdefault("window", 5e-3)
    return SimulationService(system=system, controller=controller,
                             **kwargs)


def reassemble(chunks):
    """Index -> cell doc map from a chunk sequence."""
    cells = {}
    for chunk in chunks:
        for idx, doc in zip(chunk["cell_indices"], chunk["cells"]):
            cells[idx] = doc
    return cells


class TestStreamingInProcess:
    def test_chunks_concatenate_to_final_result(self, system, controller):
        async def scenario():
            service = make_service(system, controller, stream_chunk=1)
            client = ServiceClient(service)
            await service.start()
            try:
                job_id = await client.submit(
                    sweep_payload(8e-3, 10e-3, 12e-3))
                chunks = [c async for c in client.iter_results(job_id)]
                result = await client.result(job_id)
                stats = service.stats()
            finally:
                await service.stop()
            return chunks, result, stats

        chunks, result, stats = asyncio.run(scenario())
        # stream_chunk=1 slices the 3-cell sweep into 3 publishes.
        assert len(chunks) == 3
        for seq, chunk in enumerate(chunks):
            assert set(chunk) == {"job_id", "kind", "seq",
                                  "cell_indices", "cells"}
            assert chunk["seq"] == seq
            assert chunk["kind"] == "sweep"
        cells = reassemble(chunks)
        assert [cells[i] for i in range(3)] == result["cells"]
        assert stats["batching"]["chunks_streamed"] == 3

    def test_late_subscriber_replays_all_chunks(self, system, controller):
        async def scenario():
            service = make_service(system, controller, stream_chunk=1)
            client = ServiceClient(service)
            await service.start()
            try:
                job_id = await client.submit(sweep_payload(8e-3, 12e-3))
                result = await client.result(job_id)  # job terminal now
                chunks = [c async for c in client.iter_results(job_id)]
            finally:
                await service.stop()
            return chunks, result

        chunks, result = asyncio.run(scenario())
        assert len(chunks) == 2
        cells = reassemble(chunks)
        assert [cells[i] for i in range(2)] == result["cells"]

    def test_stream_events_emitted(self, system, controller):
        recorder = MetricsRecorder(label="stream-test")
        async def scenario():
            service = make_service(system, controller, stream_chunk=1,
                                   recorder=recorder)
            client = ServiceClient(service)
            await service.start()
            try:
                await client.result(await client.submit(
                    sweep_payload(8e-3, 12e-3)))
            finally:
                await service.stop()

        asyncio.run(scenario())
        streams = [e for e in recorder.events() if e["event"] == "stream"]
        assert len(streams) == 2
        assert all(e["kind"] == "sweep" and e["cells"] == 1
                   for e in streams)


class TestStreamingHTTP:
    def test_http_stream_matches_polled_result(self, system, controller):
        async def scenario():
            service = make_service(system, controller, stream_chunk=1)
            server = ServiceHTTPServer(service, port=0)
            host, port = await server.start()
            client = HttpServiceClient(host, port, poll_interval=0.01)
            await service.start()
            try:
                job_id = await client.submit(
                    sweep_payload(8e-3, 10e-3, 12e-3))
                chunks = [c async for c in client.iter_results(job_id)]
                result = await client.result(job_id)
            finally:
                await service.stop()
                await server.stop()
            return chunks, result

        chunks, result = asyncio.run(scenario())
        assert len(chunks) == 3
        cells = reassemble(chunks)
        # Both sides went through JSON, and JSON floats round-trip
        # bitwise — so streamed cells equal the buffered result exactly.
        assert [cells[i] for i in range(3)] == result["cells"]

    def test_http_stream_for_unknown_job_is_typed_404(self, system,
                                                      controller):
        from repro.service import JobNotFoundError

        async def scenario():
            service = make_service(system, controller)
            server = ServiceHTTPServer(service, port=0)
            host, port = await server.start()
            client = HttpServiceClient(host, port)
            try:
                with pytest.raises(JobNotFoundError):
                    async for _ in client.iter_results("feedfacecafe"):
                        pass
            finally:
                await server.stop()
            return True

        assert asyncio.run(scenario())


class TestInFlightIndex:
    def test_claim_release_partition(self):
        async def scenario():
            index = InFlightIndex()
            owned, foreign = index.claim(["a", "b"])
            assert owned == ["a", "b"] and foreign == {}
            # A second worker claiming an overlapping set waits on the
            # owner's futures for the overlap.
            owned2, foreign2 = index.claim(["b", "c"])
            assert owned2 == ["c"]
            assert set(foreign2) == {"b"}
            assert not foreign2["b"].done()
            index.release(["a", "b"])
            assert foreign2["b"].done()
            # Released keys are claimable again.
            owned3, _ = index.claim(["a"])
            assert owned3 == ["a"]
            index.release(["a", "c"])

        asyncio.run(scenario())


class TestMultiWorker:
    def test_two_scheduler_workers_dedup_across_jobs(self, system,
                                                     controller,
                                                     tmp_path):
        recorder = MetricsRecorder(label="mw-test")

        async def scenario():
            service = make_service(
                system, controller,
                store=f"sqlite://{tmp_path}/cells",
                scheduler_workers=2,
                recorder=recorder,
            )
            client = ServiceClient(service)
            await service.start()
            try:
                distances = [8e-3, 9e-3, 10e-3, 11e-3]
                # 8 jobs over 4 distinct single-cell payloads.
                job_ids = [
                    await client.submit(sweep_payload(distances[k % 4]))
                    for k in range(8)
                ]
                results = [await client.result(j) for j in job_ids]
                stats = service.stats()
            finally:
                await service.stop()
            return results, stats

        results, stats = asyncio.run(scenario())
        # Identical payloads produced identical documents...
        for k in range(4):
            assert results[k] == results[k + 4]
        # ...and each distinct cell was computed exactly once across
        # both workers (in-batch dedup, in-flight claims, or the
        # shared backend — whichever path, never twice).
        batching = stats["batching"]
        assert batching["cells_requested"] == 8
        assert batching["cells_computed"] == 4
        assert (batching["cells_deduped"] + batching["cells_cached"]) == 4
        assert stats["scheduler_workers"] == 2
        assert stats["store_backend"]["kind"] == "sqlite"
        # Worker-tagged scheduler events from both identities are
        # schema-valid by construction (the recorder validates).
        workers = {e.get("worker") for e in recorder.events()
                   if e["event"] == "batch"}
        assert workers <= {0, 1} and workers


class TestDrain:
    def test_drain_finishes_inflight_then_rejects(self, system,
                                                  controller):
        async def scenario():
            service = make_service(system, controller)
            client = ServiceClient(service)
            await service.start()
            job_id = await client.submit(sweep_payload(8e-3))
            stats = await service.drain(timeout=10.0)
            health = service.health()
            with pytest.raises(ServiceUnavailableError):
                await client.submit(sweep_payload(9e-3))
            result = await client.result(job_id)
            await service.stop()
            return stats, health, result

        stats, health, result = asyncio.run(scenario())
        assert stats["drained_jobs"] == 1
        assert stats["drain_clean"] is True
        assert stats["drain_elapsed_s"] >= 0.0
        assert stats["rejected_during_drain"] == 0
        assert health["draining"] is True
        assert len(result["cells"]) == 1

    def test_drain_timeout_cancels_stuck_jobs(self, system, controller):
        async def scenario():
            # Never started: the queued job cannot make progress, so
            # the bounded drain must cancel it rather than hang.
            service = make_service(system, controller)
            client = ServiceClient(service)
            job_id = await client.submit(sweep_payload(8e-3))
            stats = await service.drain(timeout=0.1)
            state = service.job(job_id).state.value
            return stats, state

        stats, state = asyncio.run(scenario())
        assert stats["drain_clean"] is False
        assert stats["drained_jobs"] == 0
        assert state == "cancelled"

    def test_session_end_carries_drain_stats(self, system, controller):
        recorder = MetricsRecorder(label="drain-test")

        async def scenario():
            service = make_service(system, controller,
                                   recorder=recorder)
            await service.start()
            stats = await service.drain(timeout=1.0)
            await service.stop()
            return stats

        stats = asyncio.run(scenario())
        recorder.close(**stats)
        end = recorder.events()[-1]
        assert end["event"] == "session_end"
        assert end["drained_jobs"] == 0
        assert end["drain_clean"] is True


class TestHealthz:
    def test_health_carries_backend_probe(self, system, controller,
                                          tmp_path):
        service = make_service(system, controller,
                               store=f"dir://{tmp_path}/cells")
        doc = service.health()
        assert doc["ok"] is True
        assert doc["backend"]["backend"] == "dir"
        assert doc["backend"]["writable"] is True
        assert doc["draining"] is False

    def test_healthz_degrades_to_503_on_probe_failure(self, system,
                                                      controller,
                                                      tmp_path):
        async def scenario():
            service = make_service(system, controller,
                                   store=f"dir://{tmp_path}/cells")
            server = ServiceHTTPServer(service, port=0)
            host, port = await server.start()
            client = HttpServiceClient(host, port)
            try:
                assert (await client.health())["ok"] is True

                def broken_probe():
                    raise OSError("disk gone")

                service.store._writable_probe = broken_probe
                doc = await client.health()  # accepts the 503 reply
                assert doc["ok"] is False
                assert "disk gone" in doc["backend"]["error"]
                # And the raw status code really is 503.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                assert raw.split()[1] == b"503"
            finally:
                await server.stop()
            return True

        assert asyncio.run(scenario())


# -- stub servers for client failure paths ------------------------------

async def _stub(handler):
    """One-shot HTTP stub: parse request head, delegate the reply."""

    async def handle(reader, writer):
        request_line = (await reader.readline()).decode("latin-1")
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        try:
            await handler(request_line, writer)
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def _response(status, doc):
    body = json.dumps(doc).encode()
    return (f"HTTP/1.1 {status} X\r\nContent-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode() + body


class TestHttpClientFailurePaths:
    def test_connection_reset_mid_response_is_service_error(self):
        async def scenario():
            async def handler(request_line, writer):
                # Promise a long body, deliver a fragment, then reset.
                writer.write(b"HTTP/1.1 200 OK\r\n"
                             b"Content-Length: 4096\r\n\r\n{\"par")
                await writer.drain()
                writer.transport.abort()  # RST, not FIN

            server, port = await _stub(handler)
            client = HttpServiceClient("127.0.0.1", port)
            try:
                with pytest.raises(ServiceError):
                    await client.stats()
            finally:
                server.close()
                await server.wait_closed()
            return True

        assert asyncio.run(scenario())

    def test_malformed_json_body_is_service_error(self):
        async def scenario():
            async def handler(request_line, writer):
                body = b"<html>gateway error</html>"
                writer.write(
                    (f"HTTP/1.1 200 OK\r\n"
                     f"Content-Length: {len(body)}\r\n"
                     f"Connection: close\r\n\r\n").encode() + body)
                await writer.drain()

            server, port = await _stub(handler)
            client = HttpServiceClient("127.0.0.1", port)
            try:
                with pytest.raises(ServiceError, match="malformed"):
                    await client.stats()
            finally:
                server.close()
                await server.wait_closed()
            return True

        assert asyncio.run(scenario())

    def test_load_generator_retries_429_backpressure(self):
        async def scenario():
            state = {"submits": 0}

            async def handler(request_line, writer):
                method, path = request_line.split()[:2]
                if method == "POST" and path == "/submit":
                    state["submits"] += 1
                    if state["submits"] == 1:  # first attempt: full
                        writer.write(_response(429, {
                            "error": "queue_full",
                            "message": "queue is full"}))
                    else:
                        writer.write(_response(200, {
                            "job_id": "j1", "state": "queued",
                            "n_cells": 1}))
                elif path == "/job/j1":
                    writer.write(_response(200, {
                        "job_id": "j1", "state": "done",
                        "result": {"ok": True}}))
                else:
                    writer.write(_response(404, {
                        "error": "not_found", "message": path}))
                await writer.drain()

            server, port = await _stub(handler)
            client = HttpServiceClient("127.0.0.1", port,
                                       poll_interval=0.01)
            load = LoadGenerator(client, [{"kind": "sweep"}],
                                 concurrency=1, retry_backoff=0.01,
                                 timeout=10.0)
            try:
                summary = await load.run()
            finally:
                server.close()
                await server.wait_closed()
            return summary, state

        summary, state = asyncio.run(scenario())
        assert state["submits"] == 2
        assert summary["completed"] == 1
        assert summary["rejected_retried"] == 1
        assert summary["failed"] == 0

    def test_typed_429_from_submit(self):
        async def scenario():
            async def handler(request_line, writer):
                writer.write(_response(429, {
                    "error": "queue_full", "message": "full up"}))
                await writer.drain()

            server, port = await _stub(handler)
            client = HttpServiceClient("127.0.0.1", port)
            try:
                with pytest.raises(QueueFullError, match="full up"):
                    await client.submit({"kind": "sweep"})
            finally:
                server.close()
                await server.wait_closed()
            return True

        assert asyncio.run(scenario())
