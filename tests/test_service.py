"""Simulation service: requests, queue, micro-batching scheduler.

The load-bearing properties:

* coalescing — concurrent requests land in ONE engine batch;
* dedup — identical cells across requests are computed once (by the
  same content address the ResultStore files results under);
* parity — service responses are bitwise-identical to a direct
  ``SweepOrchestrator`` run of the same cells;
* backpressure — the bounded queue rejects with a typed error, and a
  cancelled queued job never runs its cells.
"""

import asyncio

import numpy as np
import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import (
    ScenarioAxisError,
    ScenarioBatch,
    SweepOrchestrator,
)
from repro.service import (
    JobCancelledError,
    JobFailedError,
    JobQueue,
    JobState,
    QueueFullError,
    ServiceClient,
    SimRequest,
    SimRequestError,
    SimulationService,
)
from repro.service.jobs import Job


@pytest.fixture(scope="module")
def system():
    return RemotePoweringSystem(distance=10e-3)


@pytest.fixture(scope="module")
def controller():
    return AdaptivePowerController()


def sweep_payload(distance, i_load=352e-6, t_stop=5e-3):
    return {"kind": "sweep", "t_stop": t_stop,
            "axes": {"distance": [distance], "i_load": [i_load]}}


def make_service(system, controller, **kwargs):
    kwargs.setdefault("window", 5e-3)
    return SimulationService(system=system, controller=controller,
                            **kwargs)


class TestSimRequest:
    def test_unknown_kind_is_typed(self):
        with pytest.raises(SimRequestError, match="kind"):
            SimRequest(kind="figure-eight", axes={"distance": [8e-3]})

    def test_axes_validated_by_engine_machinery(self):
        with pytest.raises(ScenarioAxisError, match="bogus"):
            SimRequest(kind="sweep", axes={"bogus": [1.0]})
        with pytest.raises(ScenarioAxisError, match="tissue"):
            SimRequest(kind="sweep",
                       axes={"distance": [8e-3], "tissue": ["granite"]})

    def test_missing_axes_and_cell_cap(self):
        with pytest.raises(SimRequestError, match="axis"):
            SimRequest(kind="sweep", axes={})
        with pytest.raises(SimRequestError, match="bound"):
            SimRequest(kind="battery",
                       axes={"i_load": [i * 1e-6
                                        for i in range(1, 1100)]})

    def test_nonpositive_engine_params(self):
        with pytest.raises(SimRequestError, match="t_stop"):
            SimRequest(kind="sweep", axes={"distance": [8e-3]},
                       t_stop=-1.0)
        with pytest.raises(SimRequestError, match="t_stop"):
            SimRequest(kind="sweep", axes={"distance": [8e-3]},
                       t_stop=30.0)  # over the per-request horizon cap

    def test_step_budget_bounds_tiny_dt(self):
        """A microscopic dt cannot buy unbounded integration work: the
        per-cell step budget rejects it at validation time."""
        with pytest.raises(SimRequestError, match="steps per"):
            SimRequest(kind="transient", axes={"i_load": [352e-6]},
                       t_stop=1.0, dt=1e-12)
        with pytest.raises(SimRequestError, match="steps per"):
            SimRequest(kind="battery", axes={"i_load": [352e-6]},
                       dt=1e-9)
        with pytest.raises(SimRequestError, match="steps per"):
            SimRequest(kind="montecarlo", dt=1e-9,
                       spreads=({"name": "c_out", "nominal": 250e-9,
                                 "sigma": 0.1, "relative": True},))
        # Wide-but-coarse transient traces hit the response budget.
        with pytest.raises(SimRequestError, match="trace budget"):
            SimRequest(kind="transient",
                       axes={"i_load": [i * 1e-6
                                        for i in range(1, 101)]},
                       t_stop=0.1, dt=1e-6)
        # The stock battery defaults stay legal (1e6-step search).
        assert SimRequest(kind="battery",
                          axes={"i_load": [352e-6]}).n_cells == 1

    def test_from_payload_rejects_junk(self):
        with pytest.raises(SimRequestError, match="kind"):
            SimRequest.from_payload({"axes": {"distance": [8e-3]}})
        with pytest.raises(SimRequestError, match="unknown request"):
            SimRequest.from_payload({"kind": "sweep", "frobnicate": 1,
                                     "axes": {"distance": [8e-3]}})
        with pytest.raises(SimRequestError, match="JSON object"):
            SimRequest.from_payload([1, 2, 3])

    def test_kind_irrelevant_fields_rejected_not_dropped(self):
        """Fields another kind consumes must error, not silently
        vanish — a montecarlo request with 'axes' would otherwise run
        every sample at nominal load and return a 200."""
        with pytest.raises(SimRequestError, match="do not apply"):
            SimRequest.from_payload(
                {"kind": "montecarlo",
                 "axes": {"i_load": [200e-6]},
                 "spreads": [{"name": "c_out", "nominal": 250e-9,
                              "sigma": 0.1, "relative": True}]})
        with pytest.raises(SimRequestError, match="do not apply"):
            SimRequest.from_payload(
                {"kind": "sweep", "axes": {"distance": [8e-3]},
                 "n_samples": 64})
        with pytest.raises(SimRequestError, match="do not apply"):
            SimRequest.from_payload(
                {"kind": "battery", "axes": {"i_load": [352e-6]},
                 "t_stop": 0.02})
        # Direct construction gets the same guard for the sharp case.
        with pytest.raises(SimRequestError, match="ignored"):
            SimRequest(kind="montecarlo",
                       axes={"i_load": [200e-6]},
                       spreads=({"name": "c_out", "nominal": 250e-9,
                                 "sigma": 0.1},))

    def test_payload_round_trip(self):
        req = SimRequest.from_payload(sweep_payload(8e-3))
        again = SimRequest.from_payload(req.as_payload())
        assert again.n_cells == req.n_cells == 1
        assert again.group_key() == req.group_key()

    def test_montecarlo_spreads_validated(self):
        with pytest.raises(SimRequestError, match="spread"):
            SimRequest(kind="montecarlo", spreads=())
        with pytest.raises(SimRequestError, match="sigma"):
            SimRequest(kind="montecarlo",
                       spreads=({"name": "c_out", "nominal": 250e-9,
                                 "sigma": -1.0},))
        with pytest.raises(SimRequestError, match="parameter"):
            SimRequest(kind="montecarlo",
                       spreads=({"name": "phase_of_moon",
                                 "nominal": 1.0, "sigma": 0.1},))

    def test_cell_keys_match_store_addresses(self, system, controller):
        """Service dedup keys ARE the orchestrator's store keys."""
        from repro.engine import control_cell_keys

        req = SimRequest.from_payload(sweep_payload(8e-3))
        batch = ScenarioBatch(req.scenarios)
        assert req.cell_keys(system, controller) == control_cell_keys(
            batch, system, controller, req.t_stop)


class TestJobQueue:
    def _job(self, priority=0):
        return Job(request=SimRequest.from_payload(sweep_payload(8e-3)),
                   priority=priority)

    def test_priority_pops_first_fifo_within_level(self):
        q = JobQueue(max_pending=8)
        a, b, c, d = (self._job(p) for p in (0, 5, 5, 0))
        for job in (a, b, c, d):
            q.push(job)
        assert [q.pop_nowait() for _ in range(4)] == [b, c, a, d]
        assert q.pop_nowait() is None

    def test_bounded_queue_rejects_with_typed_error(self):
        q = JobQueue(max_pending=2)
        q.push(self._job())
        q.push(self._job())
        with pytest.raises(QueueFullError, match="queue full"):
            q.push(self._job())
        assert q.rejected == 1
        assert q.depth == 2  # nothing was enqueued past the bound

    def test_cancelled_jobs_are_skipped_on_pop(self):
        q = JobQueue(max_pending=8)
        a, b = self._job(), self._job()
        q.push(a)
        q.push(b)
        a.state = JobState.CANCELLED
        q.discard(a)
        assert q.depth == 1
        assert q.pop_nowait() is b
        assert q.pop_nowait() is None

    def test_ghost_entries_are_compacted(self):
        """Submit+cancel churn must not grow the heap without bound:
        ghost entries that pops never reach are compacted away."""
        q = JobQueue(max_pending=4)
        for _ in range(500):
            job = self._job(priority=-1)
            q.push(job)
            job.state = JobState.CANCELLED
            q.discard(job)
        assert q.depth == 0
        assert len(q._heap) <= 100
        # The queue still works after compaction.
        live = self._job()
        q.push(live)
        assert q.pop_nowait() is live


def run(coro):
    return asyncio.run(coro)


class TestScheduling:
    def test_concurrent_requests_coalesce_and_dedupe(self, system,
                                                     controller):
        """8 co-arriving requests (2 distinct cells) -> one batch, one
        computation per distinct cell, bitwise parity with a direct
        orchestrator run."""

        async def main():
            service = make_service(system, controller)
            client = ServiceClient(service)
            async with service:
                payloads = [sweep_payload(8e-3), sweep_payload(12e-3)] * 4
                ids = [await client.submit(p) for p in payloads]
                return [await client.result(i) for i in ids], service

        results, service = run(main())
        stats = service.scheduler.stats
        assert stats.batches == 1
        assert stats.cells_requested == 8
        assert stats.cells_deduped == 6
        assert stats.cells_computed == 2
        # Duplicate requests got byte-identical rows.
        assert results[0]["cells"][0] == results[2]["cells"][0]
        assert results[1]["cells"][0] == results[3]["cells"][0]
        # And the service answer is bitwise the direct engine answer.
        req = SimRequest.from_payload(sweep_payload(8e-3))
        ref = SweepOrchestrator().run_control(
            ScenarioBatch(req.scenarios), system, controller,
            req.t_stop)
        got = np.array(results[0]["cells"][0]["v_rect"])
        assert np.array_equal(ref.v_rect[0], got)
        assert np.array_equal(np.array(results[0]["times"]), ref.times)

    def test_mixed_kinds_group_separately(self, system, controller):
        async def main():
            service = make_service(system, controller)
            client = ServiceClient(service)
            async with service:
                sweep_id = await client.submit(sweep_payload(8e-3))
                battery_id = await client.submit(
                    {"kind": "battery", "axes": {"i_load": [352e-6]},
                     "p_in": 5e-3})
                transient_id = await client.submit(
                    {"kind": "transient",
                     "axes": {"i_load": [352e-6]},
                     "p_in": 5e-3, "t_stop": 2e-3, "dt": 1e-5})
                docs = [await client.result(i)
                        for i in (sweep_id, battery_id, transient_id)]
                return docs, service

        (sweep_doc, battery_doc, transient_doc), service = run(main())
        assert service.scheduler.stats.batches == 1  # one window ...
        assert sweep_doc["kind"] == "sweep"
        # ... but three engine groups, each matching its direct twin.
        batch = ScenarioBatch(SimRequest.from_payload(
            {"kind": "battery", "axes": {"i_load": [352e-6]},
             "p_in": 5e-3}).scenarios)
        t_ref = SweepOrchestrator().charge_times(batch, 5e-3, 2.75)
        assert battery_doc["cells"][0]["t_charge"] == t_ref[0]
        env_ref = SweepOrchestrator().run_envelope(batch, 5e-3, 2e-3,
                                                   dt=1e-5)
        got = np.array(transient_doc["cells"][0]["v_rect"])
        assert np.array_equal(env_ref.v_rect[0], got)
        assert transient_doc["cells"][0]["v_final"] == \
            env_ref.v_rect[0, -1]

    def test_montecarlo_requests_dedupe_and_match_direct(self, system,
                                                         controller):
        payload = {"kind": "montecarlo", "n_samples": 24, "seed": 11,
                   "spreads": [{"name": "c_out", "nominal": 250e-9,
                                "sigma": 0.1, "relative": True}]}

        async def main():
            service = make_service(system, controller)
            client = ServiceClient(service)
            async with service:
                a = await client.submit(payload)
                b = await client.submit(payload)
                return (await client.result(a),
                        await client.result(b), service)

        doc_a, doc_b, service = run(main())
        assert doc_a["samples"] == doc_b["samples"]
        assert service.scheduler.stats.cells_deduped == 24
        req = SimRequest.from_payload(payload)
        from repro.variability import MonteCarlo

        direct = SweepOrchestrator().run_montecarlo(
            MonteCarlo(list(req.spreads), seed=req.seed),
            req.mc_kernel(), n_samples=req.n_samples, seed=req.seed)
        assert np.array_equal(np.array(doc_a["samples"]),
                              direct["t_charge"])
        assert doc_a["reached_target"] == int(
            np.isfinite(direct["t_charge"]).sum())

    def test_priority_runs_first(self, system, controller):
        async def main():
            service = make_service(system, controller, window=0.0,
                                   max_batch=1)
            low = service.submit(sweep_payload(8e-3), priority=0)
            high = service.submit(sweep_payload(12e-3), priority=5)
            async with service:
                await service.result(low.id)
                await service.result(high.id)
            return low, high

        low, high = run(main())
        # max_batch=1 -> one batch per job; the high-priority job's
        # batch fully completes before the low one starts.
        assert high.finished_at <= low.started_at

    def test_cancelled_queued_job_never_runs(self, system, controller):
        async def main():
            service = make_service(system, controller)
            victim = service.submit(sweep_payload(8e-3))
            assert service.cancel(victim.id) is True
            async with service:
                survivor = service.submit(sweep_payload(12e-3))
                await service.result(survivor.id)
                with pytest.raises(JobCancelledError):
                    await service.result(victim.id)
            return service, victim

        service, victim = run(main())
        assert victim.state is JobState.CANCELLED
        # The victim's cell never entered any batch.
        assert service.scheduler.stats.cells_requested == 1
        assert service.cancel(victim.id) is False  # already terminal

    def test_job_cancelled_mid_batch_stays_cancelled(self, system,
                                                     controller):
        """A job cancelled after collection (while an earlier group of
        the same micro-batch computes) must stay cancelled — its cells
        never dispatch and its state machine never leaves CANCELLED."""

        async def main():
            service = make_service(system, controller)
            survivor = service.submit(sweep_payload(8e-3))
            victim = service.submit(
                {"kind": "battery", "axes": {"i_load": [352e-6]},
                 "p_in": 5e-3})
            # Simulate the dispatcher having collected both jobs, then
            # a cancel landing before the victim's group runs.
            group = [service.queue.pop_nowait(),
                     service.queue.pop_nowait()]
            assert service.cancel(victim.id) is True
            await service.scheduler._execute(group)
            return service, survivor, victim

        service, survivor, victim = run(main())
        assert survivor.state is JobState.DONE
        assert victim.state is JobState.CANCELLED
        assert victim.result is None
        # Only the survivor's cell was ever dispatched.
        assert service.scheduler.stats.cells_requested == 1
        assert service.scheduler.stats.jobs_done == 1

    def test_engine_failure_is_a_typed_job_error(self, system,
                                                 controller):
        """A cell that passes validation but fails in the engine
        (coil turns beyond the paper footprint) fails its job — it
        does not kill the scheduler, and later jobs still run."""

        async def main():
            service = make_service(system, controller)
            client = ServiceClient(service)
            async with service:
                bad = await client.submit(
                    {"kind": "sweep", "t_stop": 5e-3,
                     "axes": {"distance": [8e-3], "rx_turns": [34.0]}})
                with pytest.raises(JobFailedError,
                                   match="rx_turns"):
                    await client.result(bad)
                ok = await client.submit(sweep_payload(8e-3))
                doc = await client.result(ok)
            return doc, service

        doc, service = run(main())
        assert doc["cells"][0]["in_window"] >= 0.0
        assert service.scheduler.stats.jobs_failed == 1
        assert service.scheduler.stats.jobs_done == 1

    def test_served_sweep_with_worker_processes(self, system,
                                                controller):
        """`serve --workers N` dispatches from an executor thread —
        the pool must not fork the multi-threaded process (the
        non-main-thread path picks forkserver/spawn), and the merged
        arrays stay bitwise-identical to the serial run."""

        async def main():
            service = make_service(system, controller, workers=2)
            client = ServiceClient(service)
            async with service:
                job_id = await client.submit(
                    {"kind": "sweep", "t_stop": 5e-3,
                     "axes": {"distance": [8e-3, 10e-3, 12e-3, 14e-3],
                              "i_load": [352e-6]}})
                return await client.result(job_id), service

        doc, service = run(main())
        assert service.orchestrator.stats.parallel
        req = SimRequest.from_payload(
            {"kind": "sweep", "t_stop": 5e-3,
             "axes": {"distance": [8e-3, 10e-3, 12e-3, 14e-3],
                      "i_load": [352e-6]}})
        ref = ScenarioBatch(req.scenarios).run_control(
            system, controller, 5e-3)
        for i in range(4):
            assert np.array_equal(
                np.array(doc["cells"][i]["v_rect"]), ref.v_rect[i])

    def test_store_serves_repeat_batches(self, system, controller,
                                         tmp_path):
        from repro.engine import ResultStore

        async def main():
            service = make_service(
                system, controller,
                store=ResultStore(tmp_path / "cache"))
            client = ServiceClient(service)
            async with service:
                first = await client.result(
                    await client.submit(sweep_payload(8e-3)))
                # Let the first batch fully retire, then repeat it.
                second = await client.result(
                    await client.submit(sweep_payload(8e-3)))
            return first, second, service

        first, second, service = run(main())
        assert first["cells"][0]["v_rect"] == second["cells"][0]["v_rect"]
        stats = service.scheduler.stats
        assert stats.cells_cached >= 1      # second batch hit the store
        assert stats.cells_computed == 1    # only the first computed


class TestServiceSurface:
    def test_backpressure_is_bounded_and_typed(self, system,
                                               controller):
        async def main():
            service = make_service(system, controller, max_pending=2)
            service.submit(sweep_payload(8e-3))
            service.submit(sweep_payload(9e-3))
            with pytest.raises(QueueFullError):
                service.submit(sweep_payload(10e-3))
            assert service.queue.depth == 2
            assert service.stats()["rejected"] == 1
            # Draining the queue frees capacity again.
            async with service:
                for job in list(service._jobs.values()):
                    await service.result(job.id)
            service.submit(sweep_payload(11e-3))
            return service

        service = run(main())
        assert service.queue.depth == 1

    def test_stats_document(self, system, controller):
        async def main():
            service = make_service(system, controller)
            client = ServiceClient(service)
            async with service:
                ids = [await client.submit(sweep_payload(8e-3 + k * 1e-3))
                       for k in range(3)]
                for job_id in ids:
                    await client.result(job_id)
                return await client.stats()

        doc = run(main())
        assert doc["submitted"] == 3
        assert doc["jobs"]["done"] == 3
        assert doc["queue_depth"] == 0
        assert doc["latency"]["count"] == 3
        assert doc["latency"]["p50_s"] > 0.0
        assert doc["latency"]["p99_s"] >= doc["latency"]["p50_s"]
        assert doc["batching"]["batches"] >= 1
        assert 0.0 <= doc["batching"]["dedup_rate"] <= 1.0

    def test_unknown_job_is_typed(self, system, controller):
        from repro.service import JobNotFoundError

        service = make_service(system, controller)
        with pytest.raises(JobNotFoundError):
            service.job("no-such-job")


class TestShutdownAndRecovery:
    def test_stop_requeues_in_flight_jobs(self, system, controller):
        """Stopping mid-collection-window must not strand the popped
        job: it goes back to the queue and a restarted scheduler
        serves it."""

        async def main():
            # A long window parks the dispatcher in collection with
            # the job already popped.
            service = make_service(system, controller, window=30.0)
            await service.start()
            job = service.submit(sweep_payload(8e-3))
            await asyncio.sleep(0.05)   # let the dispatcher pop it
            assert service.queue.depth == 0
            await service.stop()
            assert job.state is JobState.QUEUED
            assert service.queue.depth == 1
            service.scheduler.window = 5e-3
            await service.start()
            result = await service.result(job.id, timeout=10.0)
            await service.stop()
            return job, result

        job, result = run(main())
        assert job.state is JobState.DONE
        assert result["cells"][0]["in_window"] >= 0.0

    def test_payload_priority_matches_http_semantics(self, system,
                                                     controller):
        """An in-body "priority" field prioritizes on the in-process
        path exactly as it does over HTTP."""
        service = make_service(system, controller)
        job = service.submit({**sweep_payload(8e-3), "priority": 5})
        assert job.priority == 5
        # An explicit argument wins over the body field.
        job2 = service.submit({**sweep_payload(9e-3), "priority": 5},
                              priority=2)
        assert job2.priority == 2
        with pytest.raises(SimRequestError, match="priority"):
            service.submit({**sweep_payload(10e-3),
                            "priority": "high"})

    def test_load_generator_gives_up_at_its_deadline(self, system,
                                                     controller):
        """A never-started service must make the closed-loop client
        fail its requests at the timeout, not hang forever."""
        from repro.service import LoadGenerator

        async def main():
            service = make_service(system, controller, max_pending=1)
            generator = LoadGenerator(
                ServiceClient(service),
                [sweep_payload(8e-3), sweep_payload(9e-3)],
                concurrency=2, retry_backoff=0.02, timeout=0.3)
            return await asyncio.wait_for(generator.run(), timeout=5.0)

        summary = run(main())
        assert summary["completed"] == 0
        assert summary["failed"] == 2
        assert summary["rejected_retried"] >= 1

    def test_load_generator_survives_a_dead_http_service(self):
        """Connection errors from an unreachable HTTP service count
        as failed requests — run() still returns its summary."""
        from repro.service import HttpServiceClient, LoadGenerator

        async def main():
            # Bind-and-close to get a port with no listener.
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            generator = LoadGenerator(
                HttpServiceClient("127.0.0.1", port),
                [sweep_payload(8e-3)] * 3, concurrency=2, timeout=2.0)
            return await asyncio.wait_for(generator.run(), timeout=10.0)

        summary = run(main())
        assert summary["completed"] == 0
        assert summary["failed"] == 3
