"""Tests for the sigma-delta ADC chain."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adc import (
    Decimator,
    IdealQuantizer,
    SensorADC,
    SigmaDeltaModulator,
    enob_from_snr,
    sine_snr,
    sinc_decimate,
    sqnr_theoretical,
)
from repro.adc.quantizer import dnl_inl
from repro.adc.sigma_delta import longest_run


class TestModulator:
    @pytest.fixture
    def dsm(self):
        return SigmaDeltaModulator()

    def test_output_is_binary(self, dsm):
        bits = dsm.modulate(np.zeros(512))
        assert set(np.unique(bits)) <= {-1.0, 1.0}

    def test_dc_tracking(self, dsm):
        """The bitstream average equals the DC input (the DSM law)."""
        levels = [-0.5, -0.1, 0.0, 0.3, 0.6]
        means = dsm.dc_transfer(levels, n_samples=8192)
        assert np.allclose(means, levels, atol=0.01)

    def test_rejects_overrange_input(self, dsm):
        with pytest.raises(ValueError):
            dsm.modulate(np.array([1.5]))

    def test_rejects_2d_input(self, dsm):
        with pytest.raises(ValueError):
            dsm.modulate(np.zeros((4, 4)))

    def test_stable_at_80_percent(self, dsm):
        assert dsm.is_stable_for(0.8)

    def test_idle_tones_at_zero_have_short_runs(self, dsm):
        bits = dsm.modulate(np.zeros(4096))
        assert longest_run(bits[256:]) < 16

    def test_leaky_integrator_accepted(self):
        dsm = SigmaDeltaModulator(integrator_leak=0.001)
        means = dsm.dc_transfer([0.4], n_samples=8192)
        assert means[0] == pytest.approx(0.4, abs=0.02)

    def test_leak_validation(self):
        with pytest.raises(ValueError):
            SigmaDeltaModulator(integrator_leak=0.5)

    def test_needs_two_gains(self):
        with pytest.raises(ValueError):
            SigmaDeltaModulator(gains=(0.5,))

    def test_longest_run_helper(self):
        assert longest_run(np.array([1, 1, 1, -1, -1, 1])) == 3
        assert longest_run(np.array([])) == 0
        assert longest_run(np.array([1, 1])) == 2

    @given(st.floats(min_value=-0.7, max_value=0.7))
    @settings(max_examples=20, deadline=None)
    def test_dc_tracking_property(self, level):
        dsm = SigmaDeltaModulator()
        bits = dsm.modulate(np.full(6000, level))
        assert np.mean(bits[500:]) == pytest.approx(level, abs=0.02)


class TestDecimator:
    def test_sinc_dc_gain_unity(self):
        out = sinc_decimate(np.ones(4096), osr=64)
        assert np.allclose(out, 1.0, atol=1e-12)

    def test_decimation_ratio(self):
        out = sinc_decimate(np.ones(64 * 32), osr=64, order=3)
        assert 25 <= out.size <= 32

    def test_rejects_bad_osr(self):
        with pytest.raises(ValueError):
            sinc_decimate(np.ones(100), osr=1)

    def test_code_mapping_extremes(self):
        dec = Decimator(osr=64, n_bits=14)
        assert dec.to_codes(np.array([-1.0]))[0] == 0
        assert dec.to_codes(np.array([1.0]))[0] == (1 << 14) - 1
        assert dec.to_codes(np.array([0.0]))[0] == pytest.approx(
            (1 << 13), abs=1)

    def test_codes_clip(self):
        dec = Decimator(osr=64, n_bits=8)
        assert dec.to_codes(np.array([2.0]))[0] == 255

    def test_noise_suppression(self):
        """Decimating a DSM stream recovers the DC input far better than
        raw averaging over the same window length."""
        dsm = SigmaDeltaModulator()
        bits = dsm.modulate(np.full(256 * 40, 0.37))
        dec_out = sinc_decimate(bits, osr=256)
        assert np.abs(np.median(dec_out) - 0.37) < 1e-3

    def test_latency(self):
        assert Decimator(osr=128, order=3).latency_samples() == 192


class TestSnrAnalysis:
    def test_ideal_quantizer_snr_matches_6db_per_bit(self):
        """Classic check: an N-bit quantized sine shows ~6.02N+1.76 dB."""
        n = 8192
        cycles = 131  # coprime with n
        t = np.arange(n)
        sine = 0.999 * np.sin(2 * np.pi * cycles * t / n)
        q = IdealQuantizer(10, v_min=-1.0, v_max=1.0)
        quantized = q.reconstruct(q.quantize(sine))
        snr = sine_snr(quantized, cycles / n)
        assert snr == pytest.approx(6.02 * 10 + 1.76, abs=3.0)

    def test_enob_conversion(self):
        assert enob_from_snr(6.02 * 14 + 1.76) == pytest.approx(14.0)

    def test_sqnr_theory_monotone_in_osr(self):
        assert sqnr_theoretical(2, 256) > sqnr_theoretical(2, 64)

    def test_sqnr_theory_supports_14bit_claim(self):
        """E6: a 2nd-order DSM at OSR 256 has >20 dB margin over the
        86 dB needed for 14 bits — the paper's architecture is sized
        correctly."""
        needed = 6.02 * 14 + 1.76
        assert sqnr_theoretical(2, 256) > needed + 20

    def test_modulator_plus_decimator_enob(self):
        """End-to-end spectral test: >= 12.5 ENOB (SNDR) on a -4.4 dBFS
        sine at OSR 256.

        Note the metric: sine-wave SNDR includes the 1-bit modulator's
        harmonic tones, so it reads below the DC resolution the paper
        sizes the converter by (ceil(log2(4 uA/250 pA)) = 14 bits) —
        that DC spec is asserted in TestSensorADC.

        The record must be coherent with the *analysed slice* of the
        decimated output, so the run is padded and the first 1024 output
        samples (an integer number of sine cycles) are analysed.
        """
        osr = 256
        n_fft = 1024
        cycles = 23
        pad = 8
        n_mod = (n_fft + pad) * osr
        freq_norm_out = cycles / n_fft          # cycles per output sample
        t = np.arange(n_mod)
        u = 0.6 * np.sin(2 * np.pi * freq_norm_out / osr * t)
        dsm = SigmaDeltaModulator()
        bits = dsm.modulate(u)
        out = sinc_decimate(bits, osr=osr)[:n_fft]
        assert out.size == n_fft
        snr = sine_snr(out, freq_norm_out)
        assert enob_from_snr(snr) >= 12.5

    def test_sine_snr_validation(self):
        with pytest.raises(ValueError):
            sine_snr(np.zeros(16), 0.1)
        with pytest.raises(ValueError):
            sine_snr(np.zeros(1024), 0.0001)  # inside DC exclusion


class TestIdealQuantizer:
    def test_code_count(self):
        q = IdealQuantizer(4, 0.0, 1.5)
        assert q.n_codes == 16
        assert q.quantize(1.5) == 15
        assert q.quantize(0.0) == 0

    def test_roundtrip_error_below_half_lsb(self):
        q = IdealQuantizer(10, 0.0, 1.8)
        v = np.linspace(0, 1.8, 777)
        err = np.abs(q.reconstruct(q.quantize(v)) - v)
        assert err.max() <= q.lsb / 2 + 1e-12

    def test_quantization_noise_rms(self):
        q = IdealQuantizer(12, 0.0, 1.8)
        assert q.quantization_noise_rms() == pytest.approx(
            q.lsb / np.sqrt(12))

    def test_dnl_inl_of_ideal_transitions(self):
        lsb = 0.01
        transitions = np.arange(100) * lsb
        dnl, inl = dnl_inl(transitions, lsb)
        assert np.allclose(dnl, 0.0, atol=1e-9)
        assert np.allclose(inl, 0.0, atol=1e-9)

    def test_dnl_detects_wide_code(self):
        lsb = 0.01
        transitions = list(np.arange(10) * lsb)
        transitions[5] += 0.5 * lsb  # code 4 is 1.5 LSB wide
        dnl, _ = dnl_inl(transitions, lsb)
        assert dnl.max() == pytest.approx(0.5, abs=1e-9)


class TestSensorADC:
    @pytest.fixture(scope="class")
    def adc(self):
        return SensorADC(osr=256)

    def test_required_bits_is_14(self):
        """E6: ceil(log2(4 uA / 250 pA)) = 14."""
        assert SensorADC.required_bits() == 14

    def test_required_bits_general(self):
        assert SensorADC.required_bits(1e-6, 1e-9) == 10

    def test_effective_resolution_meets_spec(self, adc):
        """E6: worst-case reconstruction error <= 250 pA."""
        assert adc.effective_resolution() <= 250e-12

    def test_codes_monotone_in_current(self, adc):
        codes = [adc.convert(i) for i in (0.5e-6, 1e-6, 2e-6, 3.5e-6)]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes)

    def test_rejects_out_of_range(self, adc):
        with pytest.raises(ValueError):
            adc.convert(5e-6)
        with pytest.raises(ValueError):
            adc.convert(-1e-9)

    def test_code_roundtrip(self, adc):
        code = adc.convert(1.7e-6)
        assert adc.current_from_code(code) == pytest.approx(
            1.7e-6, abs=250e-12)

    def test_power_consumption_spec(self, adc):
        """E6: 240 uA at 1.8 V."""
        assert adc.power_consumption() == pytest.approx(240e-6 * 1.8)

    def test_noise_degrades_resolution(self, adc):
        noisy = SensorADC(osr=256, seed=5)
        res = noisy.effective_resolution(
            test_currents=[1e-6, 2e-6], noise_rms_current=5e-9)
        clean = adc.effective_resolution(test_currents=[1e-6, 2e-6])
        assert res >= clean
