"""Tests for the ASK downlink, LSK uplink, and the link protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comms import (
    AskDemodulator,
    AskModulator,
    Bitstream,
    FrameError,
    LinkProtocol,
    LskDetector,
    LskModulator,
    ask_ber_theory,
    prbs,
)

FIG11_BITS = Bitstream([1, 0, 1, 1, 0, 0, 1, 0, 1, 0,
                        0, 1, 1, 0, 1, 0, 1, 1])  # 18 bits as in Fig. 11


class TestAskModulator:
    def test_power_levels_match_paper(self):
        """E5: 5 mW idle, ~3 mW logic-1, ~1 mW logic-0 (Section IV-C).

        With high_scale = sqrt(3/5) and depth = 1 - sqrt(1/3), the level
        powers relative to idle are 3/5 and 1/5 exactly.
        """
        depth = 1.0 - np.sqrt(1.0 / 3.0)
        mod = AskModulator(depth=depth, amplitude=1.0)
        p_idle = mod.amplitude ** 2
        p_high = mod.amplitude_for_bit(1) ** 2
        p_low = mod.amplitude_for_bit(0) ** 2
        assert p_high / p_idle == pytest.approx(3.0 / 5.0, rel=1e-9)
        assert p_low / p_idle == pytest.approx(1.0 / 5.0, rel=1e-9)

    def test_depth_from_divider(self):
        mod = AskModulator.from_divider(r7=1e3, r8=2e3)
        assert mod.depth == pytest.approx(1.0 / 3.0)

    def test_zero_depth_constant_envelope(self):
        mod = AskModulator(depth=0.0)
        env = mod.envelope([1, 0, 1, 0])
        assert env.peak_to_peak() < 1e-9 * mod.amplitude + \
            (mod.amplitude - mod.amplitude_for_bit(1)) + 1e-12

    def test_envelope_levels(self):
        mod = AskModulator(depth=0.4, amplitude=2.0, high_scale=1.0)
        env = mod.envelope([1, 0], delay=10e-6)
        t_bit = mod.bit_period
        assert env.value_at(10e-6 + 0.5 * t_bit) == pytest.approx(2.0)
        assert env.value_at(10e-6 + 1.5 * t_bit) == pytest.approx(1.2)

    def test_waveform_is_modulated_carrier(self):
        mod = AskModulator(depth=0.42, bit_rate=100e3)
        w = mod.waveform([1, 0], delay=0.0)
        # Peak in the first bit > peak in the second bit.
        b1 = w.clip_time(1e-6, 9e-6).abs().max()
        b2 = w.clip_time(11e-6, 19e-6).abs().max()
        assert b2 < b1 * 0.7

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            AskModulator(depth=1.5)


class TestAskDemodulator:
    def test_fig11_18bit_downlink_recovery(self):
        """E2/E8: the paper's 18-bit, 100 kbps downlink is recovered
        error-free at the phi1 decision instants."""
        mod = AskModulator(depth=0.42, bit_rate=100e3)
        w = mod.waveform(FIG11_BITS, delay=30e-6, idle_time=20e-6)
        demod = AskDemodulator(bit_rate=100e3)
        bits, samples, threshold = demod.demodulate(
            w, len(FIG11_BITS), 30e-6)
        assert bits == FIG11_BITS
        assert len(samples) == 18

    def test_clean_channel_ber_zero(self):
        mod = AskModulator(depth=0.42)
        bits = prbs(64)
        w = mod.waveform(bits, delay=10e-6)
        demod = AskDemodulator()
        assert demod.bit_error_rate(bits, w, 10e-6) == 0.0

    def test_noisy_channel_has_errors_at_low_snr(self):
        mod = AskModulator(depth=0.42)
        bits = prbs(128)
        w = mod.waveform(bits, delay=10e-6, noise_rms=0.5,
                         rng=np.random.default_rng(42))
        demod = AskDemodulator()
        ber = demod.bit_error_rate(bits, w, 10e-6)
        assert ber > 0.0

    def test_deeper_modulation_more_robust(self):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        bits = prbs(256)
        shallow = AskModulator(depth=0.15).waveform(
            bits, delay=10e-6, noise_rms=0.25, rng=rng_a)
        deep = AskModulator(depth=0.8).waveform(
            bits, delay=10e-6, noise_rms=0.25, rng=rng_b)
        demod = AskDemodulator()
        assert (demod.bit_error_rate(bits, deep, 10e-6)
                <= demod.bit_error_rate(bits, shallow, 10e-6))

    def test_fixed_threshold_mode(self):
        mod = AskModulator(depth=0.5, amplitude=1.0, high_scale=1.0)
        w = mod.waveform([1, 0, 1], delay=5e-6)
        demod = AskDemodulator(threshold=0.75)
        bits, _, thr = demod.demodulate(w, 3, 5e-6)
        assert thr == 0.75
        assert bits == [1, 0, 1]

    def test_envelope_detection_tracks_peaks(self):
        mod = AskModulator(depth=0.0)
        w = mod.waveform([1] * 4, delay=0.0)
        env = AskDemodulator().detect_envelope(w)
        level = mod.amplitude_for_bit(1)
        assert np.allclose(env.v, level, rtol=0.05)


class TestAskBerTheory:
    def test_ber_decreases_with_snr(self):
        bers = [ask_ber_theory(0.42, snr) for snr in (1, 3, 10, 30)]
        assert all(a > b for a, b in zip(bers, bers[1:]))

    def test_ber_decreases_with_depth(self):
        assert ask_ber_theory(0.8, 5.0) < ask_ber_theory(0.2, 5.0)

    def test_ber_bounds(self):
        assert 0.0 <= ask_ber_theory(0.42, 100.0) < 1e-12
        assert ask_ber_theory(0.01, 0.01) == pytest.approx(0.5, abs=0.01)

    @given(st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=50)
    def test_ber_is_probability(self, depth, snr):
        assert 0.0 <= ask_ber_theory(depth, snr) <= 0.5


class TestLskUplink:
    def test_shorted_during_zero_bits(self):
        mod = LskModulator(bit_rate=66.6e3)
        shorted = mod.shorted_func([1, 0, 1], start_time=0.0)
        t_bit = mod.bit_period
        assert not shorted(0.5 * t_bit)
        assert shorted(1.5 * t_bit)
        assert not shorted(2.5 * t_bit)
        assert not shorted(10 * t_bit)  # idle after the stream

    def test_vup_waveform_levels(self):
        mod = LskModulator()
        w = mod.vup_waveform([1, 0], v_high=1.8)
        t_bit = mod.bit_period
        assert w.value_at(0.5 * t_bit) == pytest.approx(1.8)
        assert w.value_at(1.5 * t_bit) == pytest.approx(0.0)

    def test_supply_current_contrast(self):
        """Not-shorted -> high current; shorted -> low (paper III-A)."""
        mod = LskModulator()
        w = mod.supply_current_waveform([1, 0, 1], i_high=80e-3,
                                        i_low=50e-3)
        t_bit = mod.bit_period
        assert w.value_at(0.8 * t_bit) > 70e-3
        assert w.value_at(1.8 * t_bit) < 60e-3

    def test_supply_current_rejects_no_contrast(self):
        with pytest.raises(ValueError):
            LskModulator().supply_current_waveform([1], 50e-3, 60e-3)

    def test_detector_recovers_pattern(self):
        mod = LskModulator(bit_rate=66.6e3)
        bits = prbs(48)
        w = mod.supply_current_waveform(bits, i_high=80e-3, i_low=50e-3,
                                        start_time=0.0)
        det = LskDetector(r_sense=1.0)
        got, _ = det.detect(w, len(bits), 0.0, bit_rate=66.6e3)
        assert got == bits

    def test_detector_with_noise(self):
        mod = LskModulator(bit_rate=66.6e3)
        bits = prbs(64)
        w = mod.supply_current_waveform(
            bits, i_high=80e-3, i_low=50e-3, noise_rms=3e-3,
            rng=np.random.default_rng(3))
        det = LskDetector()
        got, _ = det.detect(w, len(bits), 0.0, bit_rate=66.6e3)
        assert bits.hamming_distance(got) <= 2

    def test_max_bit_rate_explains_66kbps(self):
        """E8: the threshold-check latency caps the uplink near 66.6 kbps
        — below the 100 kbps downlink, as the paper explains."""
        det = LskDetector(sample_time=2e-6, compute_time=5e-6)
        rate = det.max_bit_rate(samples_per_bit=2)
        assert 55e3 < rate < 80e3
        assert rate < 100e3

    def test_adc_code_saturates(self):
        det = LskDetector(adc_bits=10, adc_vref=3.3)
        assert det.adc_code(-1.0) == 0
        assert det.adc_code(10.0) == 1023
        assert det.adc_code(1.65) == pytest.approx(512, abs=1)

    def test_rejects_tiny_adc(self):
        with pytest.raises(ValueError):
            LskDetector(adc_bits=2)


class TestLinkProtocol:
    def test_clean_exchange(self):
        proto = LinkProtocol()
        cmd, rsp, log = proto.exchange(b"\x01start", b"\x10ok")
        assert cmd.payload == b"\x01start"
        assert rsp.payload == b"\x10ok"
        assert log.retries == 0
        assert log.total_time > 0

    def test_uplink_slower_than_downlink(self):
        """Same payload takes longer up than down (100 vs 66.6 kbps)."""
        proto = LinkProtocol()
        _, _, log = proto.exchange(b"x" * 10, b"x" * 10)
        assert log.uplink_time > log.downlink_time

    def test_ber_causes_retries(self):
        proto = LinkProtocol(ber=5e-3, max_retries=10, seed=1)
        _, _, log = proto.exchange(b"payload" * 8, b"payload" * 8)
        assert log.crc_failures >= 0  # usually > 0 at this BER/length

    def test_hopeless_channel_raises(self):
        proto = LinkProtocol(ber=0.4, max_retries=2, seed=2)
        with pytest.raises(FrameError, match="failed after"):
            proto.exchange(b"data" * 20, b"data" * 20)

    def test_measurement_session_chunks(self):
        proto = LinkProtocol()
        data, log = proto.measurement_session(n_samples=300,
                                              bytes_per_sample=2)
        assert len(data) == 600
        assert log.uplink_bits > log.downlink_bits

    def test_throughput_below_line_rate(self):
        proto = LinkProtocol()
        data, log = proto.measurement_session(n_samples=100)
        tput = log.throughput(len(data))
        assert 0 < tput < 66.6e3  # framing + turnaround overhead

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkProtocol(ber=1.5)
        with pytest.raises(ValueError):
            LinkProtocol(turnaround=-1e-6)
        with pytest.raises(ValueError):
            LinkProtocol(downlink_rate=0)
