"""Tests for the DC sweep analysis."""

import numpy as np
import pytest

from repro.spice import Circuit
from repro.spice.sweep import dc_sweep, operating_point_report
from repro.spice.dc import dc_operating_point


def diode_circuit():
    ckt = Circuit("dsw")
    ckt.add_vsource("V1", "in", "0", 0.0)
    ckt.add_resistor("R1", "in", "d", 1e3)
    ckt.add_diode("D1", "d", "0")
    return ckt


class TestDCSweep:
    def test_linear_transfer(self):
        ckt = Circuit("div")
        ckt.add_vsource("V1", "in", "0", 0.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_resistor("R2", "out", "0", 1e3)
        res = dc_sweep(ckt, "V1", np.linspace(0, 10, 11))
        assert np.allclose(res.voltage("out"), np.linspace(0, 5, 11))

    def test_transfer_gain_of_divider(self):
        ckt = Circuit("div2")
        ckt.add_vsource("V1", "in", "0", 0.0)
        ckt.add_resistor("R1", "in", "out", 3e3)
        ckt.add_resistor("R2", "out", "0", 1e3)
        res = dc_sweep(ckt, "V1", np.linspace(0, 4, 21))
        assert np.allclose(res.transfer_gain("out"), 0.25, atol=1e-9)

    def test_diode_knee_sweep(self):
        res = dc_sweep(diode_circuit(), "V1", np.linspace(0, 3, 61))
        i_d = res.device_current("D1")
        # Monotone current, negligible below 0.3 V, conducting by 2 V.
        assert np.all(np.diff(i_d) >= -1e-12)
        assert i_d[6] < 1e-8      # 0.3 V
        assert i_d[-1] > 1e-3     # 3 V through 1k

    def test_find_crossing(self):
        res = dc_sweep(diode_circuit(), "V1", np.linspace(0, 3, 121))
        v_half = res.find_crossing("d", 0.55)
        assert v_half is not None
        assert 0.5 < v_half < 1.2

    def test_find_crossing_none(self):
        res = dc_sweep(diode_circuit(), "V1", np.linspace(0, 0.1, 5))
        assert res.find_crossing("d", 5.0) is None

    def test_current_source_sweep(self):
        ckt = Circuit("isw")
        ckt.add_isource("I1", "0", "a", 0.0)
        ckt.add_resistor("R1", "a", "0", 2e3)
        res = dc_sweep(ckt, "I1", np.linspace(0, 1e-3, 5))
        assert res.voltage("a")[-1] == pytest.approx(2.0)

    def test_source_restored_after_sweep(self):
        ckt = diode_circuit()
        dc_sweep(ckt, "V1", [0.0, 1.0, 2.0])
        op = dc_operating_point(ckt)
        assert op.voltage("in") == pytest.approx(0.0, abs=1e-9)

    def test_mosfet_output_family_point(self):
        """Sweep VDS at fixed VGS: triode -> saturation plateau."""
        ckt = Circuit("mos_out")
        ckt.add_vsource("VD", "d", "0", 0.0)
        ckt.add_vsource("VG", "g", "0", 1.5)
        ckt.add_mosfet("M1", "d", "g", "0", vto=0.5, kp=200e-6,
                       w=10e-6, l=1e-6, lam=0.0)
        res = dc_sweep(ckt, "VD", np.linspace(0.01, 3, 30))
        i_d = -res.branch_current("VD")  # source supplies the drain
        # Saturation: last two currents nearly equal; early slope steep.
        assert i_d[-1] == pytest.approx(i_d[-2], rel=1e-6)
        assert i_d[2] < 0.9 * i_d[-1]

    def test_rejects_non_source(self):
        ckt = diode_circuit()
        with pytest.raises(TypeError):
            dc_sweep(ckt, "R1", [1.0])

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            dc_sweep(diode_circuit(), "V1", [])

    def test_len(self):
        res = dc_sweep(diode_circuit(), "V1", [0, 1, 2])
        assert len(res) == 3


class TestDegenerateGrids:
    """Satellite: single-point sweeps must fail with a typed error (or
    return a well-defined null result), not a raw numpy IndexError."""

    def _sweep(self, n):
        ckt = Circuit("deg")
        ckt.add_vsource("V1", "in", "0", 0.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_resistor("R2", "out", "0", 1e3)
        return dc_sweep(ckt, "V1", np.linspace(1.0, 2.0, n))

    def test_transfer_gain_single_point_raises_typed_error(self):
        with pytest.raises(ValueError, match="at least 2 sweep points"):
            self._sweep(1).transfer_gain("out")

    def test_transfer_gain_two_points_works(self):
        gain = self._sweep(2).transfer_gain("out")
        assert gain.shape == (2,)
        assert np.allclose(gain, 0.5)

    def test_find_crossing_single_point_returns_none(self):
        assert self._sweep(1).find_crossing("out", 0.75) is None

    def test_find_crossing_two_points_works(self):
        res = self._sweep(2)
        crossing = res.find_crossing("out", 0.75)
        assert crossing == pytest.approx(1.5)


class TestReport:
    def test_report_contains_nodes_and_currents(self):
        ckt = diode_circuit()
        op = dc_operating_point(ckt)
        text = operating_point_report(op, currents_of=["D1", "V1"])
        assert "V(d)" in text
        assert "I(D1)" in text
        assert "I(V1)" in text
