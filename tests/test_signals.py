"""Tests for the Waveform container and signal measurements."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.signals import (
    Waveform,
    crossing_times,
    duty_cycle,
    envelope_peaks,
    envelope_rectify,
    moving_average,
    rise_time,
    settling_time,
    slice_levels,
)


def make_sine(freq=1e3, amp=1.0, n=2048, periods=10):
    t = np.linspace(0, periods / freq, n)
    return Waveform(t, amp * np.sin(2 * np.pi * freq * t))


class TestWaveformBasics:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Waveform([0, 1, 2], [0, 1])

    def test_rejects_non_monotonic_time(self):
        with pytest.raises(ValueError):
            Waveform([0, 2, 1], [0, 0, 0])

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            Waveform([0], [1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_duration(self):
        w = Waveform([1.0, 3.0], [0, 0])
        assert w.duration == 2.0

    def test_value_at_interpolates(self):
        w = Waveform([0, 1], [0, 10])
        assert w.value_at(0.25) == pytest.approx(2.5)
        assert w(0.25) == pytest.approx(2.5)

    def test_constant_factory(self):
        w = Waveform.constant(3.3, 0, 1e-3)
        assert w.mean() == pytest.approx(3.3)
        assert w.peak_to_peak() == 0.0

    def test_from_function(self):
        w = Waveform.from_function(lambda t: 2 * t, 0, 1, 101)
        assert w.value_at(0.5) == pytest.approx(1.0)

    def test_copy_is_independent(self):
        w = make_sine()
        w2 = w.copy()
        w2.v[:] = 0
        assert w.max() > 0.9


class TestWaveformStats:
    def test_sine_mean_is_zero(self):
        assert abs(make_sine().mean()) < 1e-3

    def test_sine_rms(self):
        assert make_sine(amp=2.0).rms() == pytest.approx(2 / np.sqrt(2), rel=1e-3)

    def test_peak_to_peak(self):
        assert make_sine(amp=1.5).peak_to_peak() == pytest.approx(3.0, rel=1e-3)

    def test_integral_of_constant(self):
        w = Waveform.constant(2.0, 0.0, 3.0)
        assert w.integral() == pytest.approx(6.0)

    def test_argmax_time(self):
        w = make_sine(freq=1.0, n=4001, periods=1)
        assert w.argmax_time() == pytest.approx(0.25, abs=1e-3)

    @given(st.floats(min_value=0.1, max_value=10),
           st.floats(min_value=-5, max_value=5))
    @settings(max_examples=25)
    def test_rms_of_dc_offset_sine(self, amp, offset):
        """RMS^2 = offset^2 + amp^2/2 for a sine with DC offset."""
        w = make_sine(amp=amp) + offset
        expected = np.sqrt(offset**2 + amp**2 / 2)
        assert w.rms() == pytest.approx(expected, rel=5e-3)


class TestWaveformTransforms:
    def test_clip_time_window(self):
        w = make_sine(freq=1e3, periods=10)
        clipped = w.clip_time(2e-3, 5e-3)
        assert clipped.t_start == pytest.approx(2e-3)
        assert clipped.t_stop == pytest.approx(5e-3)

    def test_clip_time_bad_window(self):
        with pytest.raises(ValueError):
            make_sine().clip_time(1e-3, 1e-3)

    def test_resample_count(self):
        w = make_sine().resample(n_samples=100)
        assert len(w) == 100

    def test_resample_needs_one_arg(self):
        with pytest.raises(ValueError):
            make_sine().resample()
        with pytest.raises(ValueError):
            make_sine().resample(n_samples=10, dt=1e-6)

    def test_shift_time(self):
        w = make_sine().shift_time(1.0)
        assert w.t_start == pytest.approx(1.0)

    def test_derivative_of_ramp(self):
        w = Waveform.from_function(lambda t: 3 * t, 0, 1, 100)
        d = w.derivative()
        assert np.allclose(d.v, 3.0)

    def test_arithmetic(self):
        w = make_sine(amp=1.0)
        s = (w * 2 + 1) - w
        assert s.max() == pytest.approx(2.0, rel=1e-3)
        neg = -w
        assert neg.min() == pytest.approx(-w.max())

    def test_waveform_minus_waveform_resamples(self):
        a = Waveform([0, 1, 2], [0, 1, 2])
        b = Waveform([0, 2], [0, 2])
        diff = a - b
        assert np.allclose(diff.v, 0.0)

    def test_abs(self):
        assert make_sine().abs().min() >= 0.0


class TestEnvelope:
    def test_peak_envelope_of_am_carrier(self):
        fc, fm = 1e6, 1e4
        t = np.linspace(0, 5 / fm, 60000)
        modulation = 1.0 + 0.5 * np.sin(2 * np.pi * fm * t)
        w = Waveform(t, modulation * np.sin(2 * np.pi * fc * t))
        env = envelope_peaks(w, fc)
        assert env.max() == pytest.approx(1.5, rel=0.02)
        assert env.min() == pytest.approx(0.5, rel=0.05)

    def test_peak_envelope_constant_carrier(self):
        w = make_sine(freq=1e6, amp=2.0, n=40000, periods=40)
        env = envelope_peaks(w, 1e6)
        assert np.allclose(env.v, 2.0, rtol=0.01)

    def test_envelope_rejects_short_waveform(self):
        w = make_sine(freq=1e3, periods=1)
        with pytest.raises(ValueError):
            envelope_peaks(w, 1e3)

    def test_envelope_rejects_bad_freq(self):
        with pytest.raises(ValueError):
            envelope_peaks(make_sine(), -1.0)

    def test_rectify_envelope_settles_to_amplitude(self):
        w = make_sine(freq=1e6, amp=1.0, n=80000, periods=80)
        env = envelope_rectify(w, 1e6)
        tail = env.clip_time(40e-6, 80e-6)
        assert tail.mean() == pytest.approx(1.0, rel=0.05)

    def test_moving_average_smooths(self):
        w = make_sine(freq=1e3, amp=1.0, periods=20, n=8000) + 2.0
        smooth = moving_average(w, 5e-3)  # 5 periods
        tail = smooth.clip_time(10e-3, 20e-3)
        assert tail.peak_to_peak() < 0.1
        assert tail.mean() == pytest.approx(2.0, rel=0.02)


class TestMeasurements:
    def test_crossing_times_of_sine(self):
        w = make_sine(freq=1e3, periods=3, n=3001)
        rising = crossing_times(w, 0.0, "rising")
        assert rising.size == 3
        assert rising[1] - rising[0] == pytest.approx(1e-3, rel=1e-3)

    def test_crossing_direction_filter(self):
        w = make_sine(freq=1e3, periods=2, n=2001)
        both = crossing_times(w, 0.5)
        rising = crossing_times(w, 0.5, "rising")
        falling = crossing_times(w, 0.5, "falling")
        assert both.size == rising.size + falling.size

    def test_crossing_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            crossing_times(make_sine(), 0.0, "sideways")

    def test_rise_time_of_exponential(self):
        tau = 1e-3
        w = Waveform.from_function(
            lambda t: 1 - np.exp(-t / tau), 0, 8 * tau, 4000)
        # 10-90% rise of a first-order system = tau*ln(9) ~= 2.197*tau
        assert rise_time(w) == pytest.approx(2.197 * tau, rel=0.01)

    def test_rise_time_none_for_flat(self):
        assert rise_time(Waveform.constant(1.0, 0, 1, 10)) is None

    def test_settling_time(self):
        tau = 1e-3
        w = Waveform.from_function(
            lambda t: 1 - np.exp(-t / tau), 0, 10 * tau, 8000)
        ts = settling_time(w, final_value=1.0, tolerance=0.01)
        assert ts == pytest.approx(tau * np.log(100), rel=0.05)

    def test_slice_levels(self):
        w = Waveform([0, 1, 2, 3], [0.0, 1.0, 0.2, 0.9])
        bits = slice_levels(w, 0.5, [0, 1, 2, 3])
        assert bits == [0, 1, 0, 1]

    def test_duty_cycle_of_square(self):
        t = np.linspace(0, 1, 10001)
        v = (np.mod(t * 10, 1.0) < 0.3).astype(float)
        assert duty_cycle(Waveform(t, v), 0.5) == pytest.approx(0.3, abs=0.01)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20)
    def test_duty_cycle_matches_threshold_fraction(self, duty):
        t = np.linspace(0, 1, 20001)
        v = (np.mod(t * 5, 1.0) < duty).astype(float)
        assert duty_cycle(Waveform(t, v), 0.5) == pytest.approx(duty, abs=0.01)
