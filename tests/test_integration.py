"""Cross-module integration tests: the subsystems working against each
other rather than in isolation."""

import numpy as np
import pytest

from repro import PAPER, RemotePoweringSystem
from repro.link import CircularSpiral, InductiveLink, RectangularSpiral
from repro.link.resonator import (
    design_resonator,
    receiver_voltage,
    rectifier_input_amplitude,
)
from repro.signals import Waveform
from repro.spice import (
    Circuit,
    ac_sweep,
    dc_source,
    dc_sweep,
    parse_netlist,
    transient,
)


@pytest.fixture(scope="module")
def link():
    tx = CircularSpiral.ironic_transmitter()
    rx = RectangularSpiral.ironic_receiver()
    return InductiveLink(tx, rx, PAPER.carrier_freq)


class TestResonator:
    def test_parallel_gain_is_loaded_q(self, link):
        design = design_resonator(link.l_rx, link.r_rx, link.freq, 150.0,
                                  topology="parallel")
        assert design.voltage_gain() == pytest.approx(design.loaded_q())
        # Lightly loaded, the same tank multiplies by a large Q.
        light = design_resonator(link.l_rx, link.r_rx, link.freq, 10e3,
                                 topology="parallel")
        assert light.voltage_gain() > 5.0

    def test_series_gain_below_unity(self, link):
        design = design_resonator(link.l_rx, link.r_rx, link.freq, 20.0,
                                  topology="series")
        assert design.voltage_gain() < 1.0

    def test_bandwidth_passes_100kbps(self, link):
        """The paper's 100 kbps ASK must survive the receiving tank."""
        design = design_resonator(link.l_rx, link.r_rx, link.freq, 150.0)
        assert design.supports_bit_rate(PAPER.downlink_bit_rate)

    def test_plain_tank_underextracts_vs_match(self, link):
        """Why the paper uses CA/CB: against the 150-ohm rectifier the
        plain parallel tank's loaded Q collapses to ~1 and it leaves
        most of the available power on the table."""
        from repro.link.resonator import plain_tank_extraction

        i_tx = link.calibrate_drive(PAPER.power_at_6mm,
                                    PAPER.rx_test_distance)
        p_plain = plain_tank_extraction(link, i_tx, 10e-3)
        p_avail = link.available_power(i_tx, 10e-3)
        assert p_plain < 0.5 * p_avail

    def test_resonator_explains_rectifier_drive(self, link):
        """End-to-end voltage reconciliation (E5): the raw EMF at 10 mm
        is under a volt, yet through the conjugate match the rectifier
        sees the ~1.2-1.4 V amplitude its 2.75 V doubler output needs —
        closing the paper's numbers."""
        i_tx = link.calibrate_drive(PAPER.power_at_6mm,
                                    PAPER.rx_test_distance)
        emf = link.emf(i_tx, 10e-3)
        assert emf < 1.0  # the raw EMF is under a volt...
        v_rect = rectifier_input_amplitude(link, i_tx, 10e-3)
        assert 1.0 < v_rect < 2.0  # ...but the match lifts it

    def test_spice_validates_parallel_resonance_gain(self, link):
        """Closed-form loaded-Q gain vs an AC analysis of the same tank
        on the spice engine: agreement within 5%."""
        design = design_resonator(link.l_rx, link.r_rx, link.freq, 150.0,
                                  topology="parallel")
        ckt = Circuit("rx_tank")
        # EMF in series with the coil; load across the tank.
        ckt.add_vsource("VEMF", "emf", "0", dc_source(0.0, ac_mag=1.0))
        ckt.add_resistor("Rcoil", "emf", "a", link.r_rx)
        ckt.add_inductor("Lcoil", "a", "out", link.l_rx)
        ckt.add_capacitor("Ctune", "out", "0", design.c_tune)
        ckt.add_resistor("Rload", "out", "0", 150.0)
        res = ac_sweep(ckt, np.array([link.freq]))
        gain_spice = float(res.magnitude("out")[0])
        assert gain_spice == pytest.approx(design.voltage_gain(),
                                           rel=0.05)

    def test_design_validation(self, link):
        with pytest.raises(ValueError):
            design_resonator(link.l_rx, link.r_rx, link.freq, 150.0,
                             topology="triangle")
        with pytest.raises(ValueError):
            receiver_voltage(-1.0, design_resonator(
                link.l_rx, link.r_rx, link.freq, 150.0))


class TestNetlistWorkflow:
    def test_class_e_from_netlist_file(self, tmp_path):
        """The class-E stage expressed as a netlist card file runs and
        shows the class-E signature (drain peak >> supply)."""
        from repro.amplifier import ClassEDesign

        d = ClassEDesign.for_output_power(3.7, 0.1, 5e6, q_loaded=5.0)
        period = 1.0 / d.freq
        text = (
            "class-e from cards\n"
            "VDD vdd 0 DC 3.7\n"
            f"L1 vdd drain {d.l_choke:.6g} IC=0\n"
            f"VG gate 0 PULSE(0 5 0 {period * 0.01:.4g} "
            f"{period * 0.01:.4g} {period * 0.48:.6g} {period:.6g})\n"
            "S1 drain 0 gate 0 VT=2.5 RON=0.2 ROFF=1e7\n"
            f"C3 drain 0 {d.c_shunt:.6g}\n"
            f"C4 drain tank {d.c_series:.6g}\n"
            f"L2 tank out {d.l_series:.6g} IC=0\n"
            f"RL out 0 {d.r_load:.6g}\n"
            ".end\n")
        path = tmp_path / "classe.cir"
        path.write_text(text)
        ckt = parse_netlist(path.read_text())
        res = transient(ckt, t_stop=30 * period, dt=period / 60,
                        method="trap", use_ic=True)
        v_drain = res.voltage("drain").clip_time(15 * period, 30 * period)
        assert v_drain.max() > 2.0 * 3.7
        assert v_drain.min() < 0.3

    def test_rectifier_dc_transfer_via_sweep(self):
        """DC sweep across the rectifier's clamp chain shows the ~3 V
        knee directly (complements the transient view)."""
        from repro.power import RectifierParameters

        p = RectifierParameters()
        ckt = Circuit("clamp_dc")
        ckt.add_vsource("V1", "vr", "0", 0.0)
        previous = "vr"
        for k in range(p.n_clamp_diodes):
            nxt = "0" if k == p.n_clamp_diodes - 1 else f"c{k}"
            ckt.add_diode(f"D{k}", previous, nxt, i_s=p.clamp_is)
            previous = nxt
        res = dc_sweep(ckt, "V1", np.linspace(0, 3.6, 37))
        i_chain = -res.branch_current("V1")
        v_at_1ma = res.values[np.searchsorted(i_chain, 1e-3)]
        assert 2.7 < v_at_1ma < 3.3

    def test_matching_network_resonates_at_carrier_in_spice(self, link):
        """The designed CA/CB network, built as a netlist, peaks power
        transfer at the 5 MHz carrier."""
        from repro.link import design_l_match

        match = design_l_match(link.r_rx, link.omega * link.l_rx, 150.0,
                               link.freq)
        ckt = Circuit("match_ac")
        ckt.add_vsource("VEMF", "emf", "0", dc_source(0.0, ac_mag=1.0))
        ckt.add_resistor("Rcoil", "emf", "a", link.r_rx)
        ckt.add_inductor("Lcoil", "a", "b", link.l_rx)
        ckt.add_capacitor("CA", "b", "out", match.c_series)
        ckt.add_capacitor("CB", "out", "0", match.c_parallel)
        ckt.add_resistor("Rrect", "out", "0", 150.0)
        freqs = np.linspace(3e6, 7e6, 201)
        res = ac_sweep(ckt, freqs)
        peak_f = freqs[int(np.argmax(res.magnitude("out")))]
        assert peak_f == pytest.approx(5e6, rel=0.05)
        # At the match, half the EMF drops on the coil resistance: the
        # power into the network equals the available power.
        at_f0 = ac_sweep(ckt, np.array([5e6]))
        v_load = float(at_f0.magnitude("out")[0])
        p_load = v_load**2 / (2 * 150.0)
        p_avail = 1.0**2 / (8 * link.r_rx)
        assert p_load == pytest.approx(p_avail, rel=0.05)


class TestSpectrumTools:
    def test_sine_spectrum_peak(self):
        t = np.linspace(0, 1e-3, 4096)
        w = Waveform(t, 1.5 * np.sin(2 * np.pi * 10e3 * t))
        freqs, mags = w.spectrum()
        k = int(np.argmax(mags[1:])) + 1
        assert freqs[k] == pytest.approx(10e3, rel=0.02)
        assert mags[k] == pytest.approx(1.5, rel=0.05)

    def test_dc_spectrum(self):
        w = Waveform.constant(2.0, 0, 1e-3, n_samples=256)
        freqs, mags = w.spectrum(window="rect")
        assert mags[0] == pytest.approx(2.0, rel=1e-6)

    def test_thd_of_clean_sine_small(self):
        t = np.linspace(0, 2e-3, 8192)
        w = Waveform(t, np.sin(2 * np.pi * 5e3 * t))
        assert w.thd(5e3) < 0.01

    def test_thd_measures_injected_harmonic(self):
        t = np.linspace(0, 2e-3, 8192)
        w = Waveform(t, np.sin(2 * np.pi * 5e3 * t)
                     + 0.1 * np.sin(2 * np.pi * 15e3 * t))
        assert w.thd(5e3) == pytest.approx(0.1, rel=0.1)

    def test_spectrum_window_validation(self):
        w = Waveform.constant(1.0, 0, 1, n_samples=64)
        with pytest.raises(ValueError):
            w.spectrum(window="flattop")
        with pytest.raises(ValueError):
            w.spectrum(window=np.ones(10))

    def test_class_e_drain_has_strong_harmonics(self):
        """Physics check via the spectrum tool: the class-E drain is
        rich in harmonics while the tank output is nearly sinusoidal."""
        from repro.amplifier import ClassEDesign, simulate_class_e

        d = ClassEDesign.for_output_power(3.7, 0.1, 5e6, q_loaded=5.0)
        _, res = simulate_class_e(d, cycles=40, points_per_cycle=80)
        drain = res.voltage("drain").clip_time(20 / 5e6, 40 / 5e6)
        out = res.voltage("out").clip_time(20 / 5e6, 40 / 5e6)
        assert drain.thd(5e6) > 3 * out.thd(5e6)


class TestEndToEndScenarios:
    def test_measurement_through_tissue(self):
        from repro.link import TissueLayer

        system = RemotePoweringSystem(
            distance=10e-3,
            tissue_layers=[TissueLayer("muscle", 10e-3)])
        result = system.measure_lactate(0.6)
        assert result["concentration_reported"] == pytest.approx(
            0.6, rel=0.05)

    def test_drifted_sensor_through_full_chain(self):
        """A week-old sensor measured remotely reads low until the
        recalibration from tests/test_sensor_stability is applied at the
        reporting side."""
        from repro.core import ImplantDevice
        from repro.sensor import CLODX, ElectronicInterface, \
            ThreeElectrodeCell
        from repro.sensor.stability import DriftModel, Recalibrator

        aged_enzyme = DriftModel().aged_enzyme(CLODX, 7 * 86400.0)
        implant = ImplantDevice(
            interface=ElectronicInterface.for_enzyme(aged_enzyme))
        implant.update_rail(2.75)
        code = implant.measure(0.8, n_output_samples=2)
        # Interpreted against the fresh curve, the reading is biased low.
        fresh = ElectronicInterface.for_enzyme(CLODX)
        biased = fresh.concentration_from_code(code)
        assert biased < 0.8 * 0.9
        # Recalibration at the reporting side recovers the value.
        recal = Recalibrator(CLODX, area_cm2=0.25)
        i1 = aged_enzyme.current_density(0.3) * 0.25
        i2 = aged_enzyme.current_density(1.0) * 0.25
        cal = recal.two_point(0.3, i1, 1.0, i2)
        i_meas = fresh.adc.current_from_code(code)
        reported = recal.concentration_from_current(cal.correct(i_meas))
        assert reported == pytest.approx(0.8, rel=0.08)
