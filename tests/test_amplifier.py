"""Class-E amplifier tests: design equations and simulated waveforms."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.amplifier import ClassEDesign, build_class_e_circuit, \
    simulate_class_e


class TestDesignEquations:
    @pytest.fixture
    def design(self):
        # The patch: 3.7 V Li-ion, ~100 mW into the link at 5 MHz.
        return ClassEDesign.for_output_power(3.7, 0.1, 5e6, q_loaded=7.0)

    def test_optimal_load_raab(self, design):
        expected = 0.5768 * 3.7**2 / 0.1
        assert design.r_load == pytest.approx(expected, rel=1e-3)

    def test_shunt_capacitance_raab(self, design):
        expected = 0.1836 / (design.omega * design.r_load)
        assert design.c_shunt == pytest.approx(expected, rel=1e-2)

    def test_tank_resonates_near_carrier(self, design):
        """The series tank (minus the excess reactance) is tuned at f0."""
        x_l = design.omega * design.l_series
        x_c = 1.0 / (design.omega * design.c_series)
        assert x_l - x_c == pytest.approx(1.1525 * design.r_load, rel=1e-3)

    def test_stress_ratings(self, design):
        assert design.peak_switch_voltage == pytest.approx(3.562 * 3.7)
        assert design.peak_switch_current == pytest.approx(
            2.862 * 0.1 / 3.7)

    def test_output_current_amplitude(self, design):
        assert design.output_current_amplitude == pytest.approx(
            math.sqrt(2 * 0.1 / design.r_load))

    def test_rejects_low_q(self):
        with pytest.raises(ValueError, match="q_loaded"):
            ClassEDesign.for_output_power(3.7, 0.1, 5e6, q_loaded=1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ClassEDesign.for_output_power(-3.7, 0.1, 5e6)
        with pytest.raises(ValueError):
            ClassEDesign.for_output_power(3.7, 0.0, 5e6)

    def test_detuned_copy(self, design):
        bad = design.detuned(shunt_error=0.3)
        assert bad.c_shunt == pytest.approx(design.c_shunt * 1.3)
        assert bad.c_series == design.c_series

    def test_summary_is_readable(self, design):
        s = design.summary()
        assert "C_shunt (C3)" in s
        assert "pF" in s["C_shunt (C3)"] or "nF" in s["C_shunt (C3)"]

    @given(st.floats(min_value=2.0, max_value=5.0),
           st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=30)
    def test_load_scales_inverse_with_power(self, vdd, p):
        d = ClassEDesign.for_output_power(vdd, p, 5e6)
        d2 = ClassEDesign.for_output_power(vdd, 2 * p, 5e6)
        assert d2.r_load == pytest.approx(d.r_load / 2.0, rel=1e-9)


class TestSimulation:
    @pytest.fixture(scope="class")
    def tuned(self):
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6, q_loaded=5.0)
        meas, _ = simulate_class_e(design, cycles=40, points_per_cycle=100)
        return design, meas

    def test_high_efficiency_when_tuned(self, tuned):
        """E7: the tuned class-E approaches its theoretical 100%
        (finite switch Ron and tank Q account for the shortfall)."""
        _, meas = tuned
        assert meas.efficiency > 0.85

    def test_zvs_quality(self, tuned):
        """Drain voltage returns near zero at switch-on."""
        design, meas = tuned
        assert meas.zvs_quality > 0.95
        assert meas.v_switch_on < 0.1 * design.vdd * 3.562

    def test_peak_drain_voltage_band(self, tuned):
        """Ideal theory says 3.56*Vdd; expect the simulated peak within
        roughly +/-20% of that."""
        design, meas = tuned
        ratio = meas.peak_drain_voltage / design.vdd
        assert 2.8 < ratio < 4.3

    def test_output_power_near_design(self, tuned):
        design, meas = tuned
        assert meas.p_out == pytest.approx(design.p_out, rel=0.2)

    def test_dc_current_near_design(self, tuned):
        design, meas = tuned
        assert meas.i_dc == pytest.approx(design.i_dc, rel=0.2)

    def test_detuning_degrades_zvs(self):
        """E7 ablation: a 40% shunt-capacitor error breaks ZVS."""
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6)
        good, _ = simulate_class_e(design, cycles=30, points_per_cycle=50)
        bad_design = design.detuned(shunt_error=0.4)
        bad, _ = simulate_class_e(bad_design, cycles=30,
                                  points_per_cycle=50)
        assert bad.v_switch_on > good.v_switch_on

    def test_ask_drive_level_scales_output(self):
        """Reducing the supply (R7/R8 modulation) scales output power by
        the square of the drive level."""
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6)
        full, _ = simulate_class_e(design, cycles=30, points_per_cycle=50)
        low, _ = simulate_class_e(design, cycles=30, points_per_cycle=50,
                                  drive_level=0.6)
        assert low.p_out / full.p_out == pytest.approx(0.36, rel=0.15)

    def test_reflected_load_reduces_current(self):
        """E8 physics: extra series (reflected) resistance lowers the
        supply current — the LSK signature the patch detects."""
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6)
        normal, _ = simulate_class_e(design, cycles=30,
                                     points_per_cycle=50)
        shorted, _ = simulate_class_e(design, cycles=30,
                                      points_per_cycle=50,
                                      extra_load=design.r_load * 0.5)
        assert shorted.i_dc < normal.i_dc

    def test_sense_resistor_present(self):
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6)
        ckt = build_class_e_circuit(design, r_sense=1.0)
        assert "R9" in ckt

    def test_settle_validation(self):
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6)
        with pytest.raises(ValueError):
            simulate_class_e(design, cycles=10, settle_cycles=10)
