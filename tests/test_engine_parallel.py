"""SweepOrchestrator: sharded/parallel parity, caching, MC seeding.

The load-bearing property is *bitwise* parity: a chunked (and
multi-process) orchestrated sweep must return arrays identical to one
serial ``ScenarioBatch`` run over the same grid — every batched update
is elementwise per scenario row, so sharding the rows cannot change a
single bit.
"""

import numpy as np
import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import (
    ResultStore,
    Scenario,
    ScenarioAxisError,
    ScenarioBatch,
    SweepOrchestrator,
)


@pytest.fixture(scope="module")
def system():
    return RemotePoweringSystem(distance=10e-3)


@pytest.fixture(scope="module")
def controller():
    return AdaptivePowerController()


def step_profile(t):
    """Module-level (hence picklable) posture-change motion profile."""
    return 8e-3 if t < 10e-3 else 14e-3


def assert_control_equal(a, b):
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.distance, b.distance)
    assert np.array_equal(a.v_rect, b.v_rect)
    assert np.array_equal(a.v_reported, b.v_reported)
    assert np.array_equal(a.drive_scale, b.drive_scale)
    assert np.array_equal(a.p_delivered, b.p_delivered)
    assert np.array_equal(a.saturated, b.saturated)


class TestControlParity:
    def test_two_worker_sweep_bitwise_identical(self, system,
                                                controller):
        batch = ScenarioBatch.from_grid(
            [6e-3, 10e-3, 14e-3, 18e-3], [200e-6, 352e-6, 1.3e-3])
        ref = batch.run_control(system, controller, 25e-3)
        orch = SweepOrchestrator(workers=2)
        got = orch.run_control(batch, system, controller, 25e-3)
        assert orch.stats.parallel
        assert orch.stats.n_chunks == 2
        assert_control_equal(ref, got)
        assert got.scenarios == batch.scenarios

    def test_many_small_chunks_bitwise_identical(self, system,
                                                 controller):
        batch = ScenarioBatch.from_grid([6e-3, 12e-3, 18e-3],
                                        [352e-6, 1.3e-3])
        ref = batch.run_control(system, controller, 20e-3)
        orch = SweepOrchestrator(workers=2, chunk_size=1)
        got = orch.run_control(batch, system, controller, 20e-3)
        assert orch.stats.n_chunks == len(batch)
        assert_control_equal(ref, got)

    def test_moving_profiles_parallel_parity(self, system, controller):
        batch = ScenarioBatch([Scenario(distance=step_profile),
                               Scenario(distance=10e-3),
                               Scenario(distance=step_profile,
                                        i_load=1.3e-3)])
        ref = batch.run_control(system, controller, 30e-3)
        orch = SweepOrchestrator(workers=2)
        got = orch.run_control(batch, system, controller, 30e-3)
        assert orch.stats.parallel
        assert_control_equal(ref, got)

    def test_physical_axes_parallel_parity(self, system, controller):
        batch = ScenarioBatch.from_axes(
            distance=[10e-3, 17e-3], i_load=[352e-6],
            tissue=["air", "muscle", "fat"], rx_turns=[10.0, 14.0])
        ref = batch.run_control(system, controller, 15e-3)
        orch = SweepOrchestrator(workers=2)
        got = orch.run_control(batch, system, controller, 15e-3)
        assert orch.stats.parallel
        assert_control_equal(ref, got)

    def test_lambda_profile_falls_back_to_serial(self, system,
                                                 controller):
        batch = ScenarioBatch([Scenario(distance=lambda t: 9e-3),
                               Scenario(distance=10e-3)])
        orch = SweepOrchestrator(workers=2)
        got = orch.run_control(batch, system, controller, 10e-3)
        assert not orch.stats.parallel
        assert "unpicklable" in orch.stats.fallback_reason
        assert_control_equal(
            batch.run_control(system, controller, 10e-3), got)

    def test_serial_orchestrator_matches_batch(self, system,
                                               controller):
        batch = ScenarioBatch.from_grid([8e-3, 16e-3], [352e-6])
        orch = SweepOrchestrator()
        got = orch.run_control(batch, system, controller, 10e-3)
        assert not orch.stats.parallel
        assert orch.stats.workers == 1
        assert_control_equal(
            batch.run_control(system, controller, 10e-3), got)


class TestEnvelopeAndChargeParity:
    def test_envelope_parallel_parity(self):
        batch = ScenarioBatch([Scenario(i_load=i)
                               for i in (200e-6, 352e-6, 800e-6,
                                         1.3e-3)])
        ref = batch.run_envelope(5e-3, 400e-6)
        orch = SweepOrchestrator(workers=2)
        got = orch.run_envelope(batch, 5e-3, 400e-6)
        assert np.array_equal(ref.times, got.times)
        assert np.array_equal(ref.v_rect, got.v_rect)
        assert np.array_equal(ref.p_in, got.p_in)
        assert np.array_equal(ref.i_load, got.i_load)

    def test_envelope_per_scenario_power_array(self):
        batch = ScenarioBatch([Scenario(i_load=352e-6),
                               Scenario(i_load=352e-6)])
        powers = np.array([5e-3, 1e-3])
        ref = batch.run_envelope(powers, 300e-6)
        got = SweepOrchestrator(workers=2).run_envelope(batch, powers,
                                                        300e-6)
        assert np.array_equal(ref.v_rect, got.v_rect)

    def test_charge_times_parallel_parity(self):
        batch = ScenarioBatch([Scenario(i_load=352e-6),
                               Scenario(i_load=352e-6),
                               Scenario(i_load=1.3e-3)])
        ref = batch.charge_times([5e-3, 1e-6, 5e-3], 2.75)
        got = SweepOrchestrator(workers=2).charge_times(
            batch, [5e-3, 1e-6, 5e-3], 2.75)
        assert np.array_equal(ref, got, equal_nan=True)


class TestResultStoreIntegration:
    def test_rerun_hits_every_cell(self, system, controller, tmp_path):
        store = ResultStore(tmp_path / "cache")
        orch = SweepOrchestrator(store=store)
        batch = ScenarioBatch.from_grid([8e-3, 14e-3], [352e-6, 1e-3])
        cold = orch.run_control(batch, system, controller, 10e-3)
        assert orch.stats.n_computed == 4
        assert orch.stats.n_cached == 0
        warm = orch.run_control(batch, system, controller, 10e-3)
        assert orch.stats.n_cached == 4
        assert orch.stats.n_computed == 0
        assert_control_equal(cold, warm)
        assert store.stats.hits == 4

    def test_partial_overlap_only_computes_new_cells(
            self, system, controller, tmp_path):
        store = ResultStore(tmp_path / "cache")
        orch = SweepOrchestrator(store=store)
        orch.run_control(ScenarioBatch.from_grid([8e-3], [352e-6]),
                         system, controller, 10e-3)
        superset = ScenarioBatch.from_grid([8e-3, 14e-3], [352e-6])
        got = orch.run_control(superset, system, controller, 10e-3)
        assert orch.stats.n_cached == 1
        assert orch.stats.n_computed == 1
        assert_control_equal(
            superset.run_control(system, controller, 10e-3), got)

    def test_controller_change_misses(self, system, tmp_path):
        store = ResultStore(tmp_path / "cache")
        orch = SweepOrchestrator(store=store)
        batch = ScenarioBatch.from_grid([10e-3], [352e-6])
        orch.run_control(batch, system,
                         AdaptivePowerController(), 10e-3)
        orch.run_control(batch, system,
                         AdaptivePowerController(v_low=2.4), 10e-3)
        assert orch.stats.n_cached == 0
        assert orch.stats.n_computed == 1

    def test_physics_neutral_axes_share_cached_cells(
            self, system, controller, tmp_path):
        """Temperature and enzyme never reach the control arrays, so
        cells differing only in those axes share one stored result."""
        store = ResultStore(tmp_path / "cache")
        orch = SweepOrchestrator(store=store)
        cold = ScenarioBatch.from_axes(distance=[10e-3],
                                       i_load=[352e-6],
                                       temperature=[33.0],
                                       enzyme=["cLODx"])
        orch.run_control(cold, system, controller, 10e-3)
        warm = ScenarioBatch.from_axes(distance=[10e-3],
                                       i_load=[352e-6],
                                       temperature=[41.0],
                                       enzyme=["GOx"])
        orch.run_control(warm, system, controller, 10e-3)
        assert orch.stats.n_cached == 1
        assert orch.stats.n_computed == 0

    def test_moving_profile_cells_are_cacheable(self, system,
                                                controller, tmp_path):
        """Motion profiles are fingerprinted by their sampled trace,
        so a rerun hits, and an *equivalent* lambda hits too."""
        store = ResultStore(tmp_path / "cache")
        orch = SweepOrchestrator(store=store)
        batch = ScenarioBatch([Scenario(distance=step_profile)])
        orch.run_control(batch, system, controller, 20e-3)
        twin = ScenarioBatch(
            [Scenario(distance=lambda t: 8e-3 if t < 10e-3
                      else 14e-3)])
        orch.run_control(twin, system, controller, 20e-3)
        assert orch.stats.n_cached == 1

    def test_envelope_and_charge_cached(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        orch = SweepOrchestrator(store=store)
        batch = ScenarioBatch([Scenario(i_load=352e-6),
                               Scenario(i_load=1.3e-3)])
        ref_env = orch.run_envelope(batch, 5e-3, 300e-6)
        warm_env = orch.run_envelope(batch, 5e-3, 300e-6)
        assert orch.stats.n_cached == 2
        assert np.array_equal(ref_env.v_rect, warm_env.v_rect)
        ref_ct = orch.charge_times(batch, 5e-3, 2.75)
        warm_ct = orch.charge_times(batch, 5e-3, 2.75)
        assert orch.stats.n_cached == 2
        assert np.array_equal(ref_ct, warm_ct, equal_nan=True)


class TestMonteCarloSharding:
    def test_child_seeds_deterministic_and_distinct(self):
        from repro.variability import MonteCarlo

        a = MonteCarlo.child_seeds(0, 8)
        b = MonteCarlo.child_seeds(0, 8)
        assert a == b
        assert len(set(a)) == 8
        assert MonteCarlo.child_seeds(1, 8) != a

    def test_sharded_run_matches_manual_chunks(self):
        from repro.variability import MonteCarlo, ParameterSpread

        mc = MonteCarlo([ParameterSpread("x", 1.0, 0.1)], seed=3)
        orch = SweepOrchestrator()
        got = orch.run_montecarlo(mc, _mc_identity, n_samples=50,
                                  seed=9, chunk_size=16)
        seeds = MonteCarlo.child_seeds(9, 4)
        ref = np.concatenate([
            mc.run_batch(_mc_identity, n, seed=s)["x"]
            for n, s in zip((16, 16, 16, 2), seeds)])
        assert np.array_equal(got["x"], ref)

    def test_worker_count_does_not_change_draws(self):
        from repro.variability import MonteCarlo, ParameterSpread

        mc = MonteCarlo([ParameterSpread("x", 1.0, 0.1)], seed=3)
        serial = SweepOrchestrator(workers=1).run_montecarlo(
            mc, _mc_identity, n_samples=64, seed=5, chunk_size=8)
        sharded = SweepOrchestrator(workers=2).run_montecarlo(
            mc, _mc_identity, n_samples=64, seed=5, chunk_size=8)
        assert np.array_equal(serial["x"], sharded["x"])


def _mc_identity(params):
    """Picklable pass-through Monte-Carlo kernel."""
    return {"x": params["x"]}


class TestPhysicalAxes:
    def test_tissue_attenuates_power(self, system, controller):
        batch = ScenarioBatch.from_axes(
            distance=[17e-3], i_load=[352e-6],
            tissue=["air", "sirloin"])
        report = batch.physical_report(system)
        p_air, p_meat = report["p_available"]
        assert 0.75 < p_meat / p_air < 1.0  # the paper: tissue ~ air

    def test_air_tissue_matches_plain_scenario(self, system,
                                               controller):
        plain = ScenarioBatch([Scenario(distance=10e-3,
                                        i_load=352e-6)])
        air = ScenarioBatch([Scenario(distance=10e-3, i_load=352e-6,
                                      tissue="air")])
        assert_control_equal(
            plain.run_control(system, controller, 10e-3),
            air.run_control(system, controller, 10e-3))

    def test_fewer_rx_turns_receive_less_power(self, system):
        batch = ScenarioBatch.from_axes(distance=[10e-3],
                                        i_load=[352e-6],
                                        rx_turns=[7.0, 14.0])
        report = batch.physical_report(system)
        assert report["p_available"][0] < report["p_available"][1]

    def test_default_rx_turns_matches_system_link(self, system,
                                                  controller):
        """rx_turns=14 rebuilds the paper's coil, so the variant link
        reproduces the system link's power to float accuracy."""
        explicit = ScenarioBatch([Scenario(distance=10e-3,
                                           i_load=352e-6,
                                           rx_turns=14.0)])
        plain = ScenarioBatch([Scenario(distance=10e-3,
                                        i_load=352e-6)])
        a = explicit.run_control(system, controller, 10e-3)
        b = plain.run_control(system, controller, 10e-3)
        assert np.abs(a.v_rect - b.v_rect).max() < 1e-9

    def test_temperature_moves_oxidation_potential(self, system):
        batch = ScenarioBatch.from_axes(distance=[10e-3],
                                        i_load=[352e-6],
                                        temperature=[37.0, 20.0])
        report = batch.physical_report(system)
        v_trim, v_cold = report["v_ox"]
        assert v_trim == pytest.approx(0.65, abs=5e-3)
        assert v_cold != v_trim  # bandgap curvature away from trim

    def test_hot_tissue_loses_thermal_headroom(self, system):
        batch = ScenarioBatch.from_axes(distance=[6e-3],
                                        i_load=[352e-6],
                                        temperature=[37.0, 41.0])
        report = batch.physical_report(system)
        assert report["thermal_ok"][0] != report["thermal_ok"][1] \
            or not report["thermal_ok"].any()

    def test_enzyme_axis_changes_sensitivity(self, system):
        batch = ScenarioBatch.from_axes(distance=[10e-3],
                                        i_load=[352e-6],
                                        enzyme=["cLODx", "wtLODx"])
        report = batch.physical_report(system, concentration=0.8)
        assert report["sensor_j"][0] > report["sensor_j"][1]

    def test_shared_physical_points_share_link_objects(self, system):
        # Same distance (hence same tissue slab), different loads:
        # one memoised link serves both scenarios.
        batch = ScenarioBatch.from_axes(
            distance=[8e-3], i_load=[352e-6, 1.3e-3],
            tissue=["muscle"])
        links = batch.links_for(system)
        assert links[0] is links[1]
        plain = ScenarioBatch([Scenario(distance=10e-3)])
        assert plain.links_for(system)[0] is system.link


class TestFromAxesValidation:
    def test_unknown_axis_is_typed_error(self):
        with pytest.raises(ScenarioAxisError, match="unknown axis"):
            ScenarioBatch.from_axes(distance=[10e-3], warp_factor=[9])

    def test_empty_axis_is_typed_error(self):
        with pytest.raises(ScenarioAxisError, match="at least one"):
            ScenarioBatch.from_axes(distance=[])

    def test_nan_load_is_typed_error(self):
        with pytest.raises(ScenarioAxisError, match="finite"):
            ScenarioBatch.from_axes(distance=[10e-3],
                                    i_load=[float("nan")])

    def test_negative_load_is_typed_error(self):
        with pytest.raises(ScenarioAxisError, match="i_load"):
            ScenarioBatch.from_axes(distance=[10e-3], i_load=[-1e-6])

    def test_bad_duty_cycle_names_the_scenario(self):
        with pytest.raises(ScenarioAxisError, match="duty_cycle"):
            ScenarioBatch.from_axes(distance=[10e-3],
                                    duty_cycle=[0.0])

    def test_unknown_tissue_and_enzyme(self):
        with pytest.raises(ScenarioAxisError, match="tissue"):
            Scenario(tissue="granite")
        with pytest.raises(ScenarioAxisError, match="enzyme"):
            Scenario(enzyme="unobtainium")

    def test_unbuildable_coil_turns_typed_error(self, system,
                                                controller):
        """Turn counts inside the range check but beyond the paper
        footprint surface as a typed axis error at run time, not a
        raw spiral-model traceback."""
        batch = ScenarioBatch.from_axes(distance=[10e-3],
                                        i_load=[352e-6],
                                        rx_turns=[34.0])
        with pytest.raises(ScenarioAxisError, match="rx_turns"):
            batch.run_control(system, controller, 5e-3)
        batch = ScenarioBatch.from_axes(distance=[10e-3],
                                        i_load=[352e-6],
                                        tx_turns=[9.0])
        with pytest.raises(ScenarioAxisError, match="tx_turns"):
            batch.physical_report(system)

    def test_grid_size_is_axis_product(self):
        batch = ScenarioBatch.from_axes(
            distance=[6e-3, 10e-3], i_load=[352e-6, 1e-3],
            temperature=[33.0, 37.0, 41.0])
        assert len(batch) == 12
        assert all(sc.label for sc in batch.scenarios)


class TestCellKeys:
    """The public cell-key helpers: the shared content addresses used
    by the orchestrator's store lookups and the service scheduler's
    cross-request deduplication."""

    def test_control_keys_are_per_cell_and_stable(self, system,
                                                  controller):
        from repro.engine import control_cell_keys

        batch = ScenarioBatch.from_grid([6e-3, 10e-3],
                                        [352e-6, 1.3e-3])
        keys = control_cell_keys(batch, system, controller, 10e-3)
        assert len(keys) == len(batch)
        assert len(set(keys)) == len(batch)
        again = control_cell_keys(batch, system, controller, 10e-3)
        assert keys == again
        # A different horizon is a different cell.
        other = control_cell_keys(batch, system, controller, 20e-3)
        assert set(keys).isdisjoint(other)

    def test_control_keys_match_store_addresses(self, system,
                                                controller, tmp_path):
        """The helper returns exactly the keys the orchestrator files
        results under — a fresh orchestrator run can be replayed from
        the store via the public keys alone."""
        from repro.engine import control_cell_keys

        batch = ScenarioBatch.from_grid([8e-3, 12e-3], [352e-6])
        store = ResultStore(tmp_path / "cells")
        orch = SweepOrchestrator(store=store)
        ref = orch.run_control(batch, system, controller, 8e-3)
        keys = control_cell_keys(batch, system, controller, 8e-3)
        for i, key in enumerate(keys):
            row = store.get(key)
            assert row is not None
            assert np.array_equal(row["v_rect"], ref.v_rect[i])

    def test_envelope_and_charge_keys(self, tmp_path):
        from repro.engine import charge_cell_keys, envelope_cell_keys

        batch = ScenarioBatch(
            [Scenario(i_load=352e-6), Scenario(i_load=1.3e-3)])
        env = envelope_cell_keys(batch, 5e-3, 2e-3)
        chg = charge_cell_keys(batch, 5e-3, 2.75)
        assert len(env) == len(chg) == 2
        assert set(env).isdisjoint(chg)  # different run modes
        store = ResultStore(tmp_path / "cells")
        orch = SweepOrchestrator(store=store)
        orch.run_envelope(batch, 5e-3, 2e-3)
        assert all(store.get(k) is not None for k in env)


class TestProgressCallback:
    def test_serial_chunks_report_progress(self, system, controller):
        seen = []
        orch = SweepOrchestrator(
            chunk_size=2,
            progress=lambda *args: seen.append(args))
        batch = ScenarioBatch.from_grid([6e-3, 10e-3, 14e-3],
                                        [352e-6, 1.3e-3])
        orch.run_control(batch, system, controller, 5e-3)
        assert seen == [(1, 3, 2, 6), (2, 3, 4, 6), (3, 3, 6, 6)]

    def test_parallel_chunks_report_progress(self, system, controller):
        seen = []
        orch = SweepOrchestrator(
            workers=2, chunk_size=3,
            progress=lambda *args: seen.append(args))
        batch = ScenarioBatch.from_grid([6e-3, 10e-3, 14e-3],
                                        [352e-6, 1.3e-3])
        ref = batch.run_control(system, controller, 5e-3)
        got = orch.run_control(batch, system, controller, 5e-3)
        assert seen == [(1, 2, 3, 6), (2, 2, 6, 6)]
        assert_control_equal(ref, got)

    def test_cached_cells_are_not_progress_chunks(self, system,
                                                  controller, tmp_path):
        seen = []
        orch = SweepOrchestrator(
            store=ResultStore(tmp_path / "cache"), chunk_size=2,
            progress=lambda *args: seen.append(args))
        batch = ScenarioBatch.from_grid([6e-3, 10e-3], [352e-6])
        orch.run_control(batch, system, controller, 5e-3)
        assert seen == [(1, 1, 2, 2)]
        seen.clear()
        orch.run_control(batch, system, controller, 5e-3)
        assert seen == []  # all cells cached: nothing to chunk
        assert orch.stats.n_cached == 2
