"""Lockstep-batched transient: family validation and per-cell parity."""

import numpy as np
import pytest

from repro.spice import Circuit, sine, transient, transient_batch


def rc(r, c=1e-6, vstep=1.0):
    ckt = Circuit(f"rc[{r}]")
    ckt.add_vsource("V1", "in", "0", vstep)
    ckt.add_resistor("R1", "in", "out", r)
    ckt.add_capacitor("C1", "out", "0", c, ic=0.0)
    return ckt


def rectifier(amp, load):
    from repro.power import build_rectifier_circuit

    return build_rectifier_circuit(v_in_amplitude=amp, i_load=load)


class TestFamilyValidation:
    def test_empty_family_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            transient_batch([], 1e-3, 1e-6)

    def test_structural_mismatch_rejected(self):
        other = Circuit("other")
        other.add_vsource("V1", "in", "0", 1.0)
        other.add_resistor("R1", "in", "0", 1e3)
        with pytest.raises(ValueError, match="structurally identical"):
            transient_batch([rc(1e3), other], 1e-3, 1e-6)

    def test_topology_mismatch_rejected(self):
        a = rc(1e3)
        b = Circuit("b")  # same node count, capacitor wired differently
        b.add_vsource("V1", "in", "0", 1.0)
        b.add_resistor("R1", "in", "out", 1e3)
        b.add_capacitor("C1", "in", "0", 1e-6, ic=0.0)
        with pytest.raises(ValueError, match="slot"):
            transient_batch([a, b], 1e-3, 1e-6)

    def test_rejects_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            transient_batch([rc(1e3)], 1e-3, 1e-6, method="euler")


class TestLockstepParity:
    """A batched family on the per-cell fixed grid must match a loop of
    single-circuit runs to solver tolerance (this is the property the
    gated spice bench quantifies on the rectifier)."""

    def test_linear_family_matches_per_cell_fixed(self):
        rs = [500.0, 1e3, 2e3]
        refs = [transient(rc(r), 2e-3, 1e-5, method="trap", use_ic=True)
                for r in rs]
        fam = transient_batch([rc(r) for r in rs], 2e-3, 1e-5,
                              method="adaptive", use_ic=True,
                              max_dt=1e-5, atol=1e30, rtol=1e30)
        assert fam.t.size == len(refs[0].t)
        for i, ref in enumerate(refs):
            dev = np.max(np.abs(ref.voltage("out").v
                                - fam.voltage("out")[i]))
            assert dev < 1e-9

    def test_rectifier_family_matches_per_cell_fixed(self):
        cells = [(1.25, 200e-6), (1.75, 350e-6)]
        period = 1.0 / 5e6
        refs = [transient(rectifier(a, l), 2e-6, period / 100,
                          method="trap", use_ic=True) for a, l in cells]
        fam = transient_batch([rectifier(a, l) for a, l in cells],
                              2e-6, period / 100, method="adaptive",
                              use_ic=True, max_dt=period / 100,
                              atol=1e30, rtol=1e30)
        assert fam.t.size == len(refs[0].t)
        for i, ref in enumerate(refs):
            dev = np.max(np.abs(ref.voltage("vo").v
                                - fam.voltage("vo")[i]))
            assert dev < 1e-6

    def test_fixed_methods_supported(self):
        rs = [1e3, 2e3]
        for method in ("trap", "be"):
            refs = [transient(rc(r), 1e-3, 1e-5, method=method,
                              use_ic=True) for r in rs]
            fam = transient_batch([rc(r) for r in rs], 1e-3, 1e-5,
                                  method=method, use_ic=True)
            for i, ref in enumerate(refs):
                dev = np.max(np.abs(ref.voltage("out").v
                                    - fam.voltage("out")[i]))
                assert dev < 1e-9

    def test_coupled_inductor_family(self):
        def xf(rl):
            ckt = Circuit("xf")
            ckt.add_vsource("V1", "in", "0", sine(1.0, 1e5))
            ckt.add_resistor("Rs", "in", "p", 1.0)
            l1 = ckt.add_inductor("L1", "p", "0", 1e-3)
            l2 = ckt.add_inductor("L2", "s", "0", 4e-3)
            ckt.add_coupling("K1", l1, l2, 0.9999)
            ckt.add_resistor("RL", "s", "0", rl)
            return ckt

        rls = [5e3, 10e3]
        refs = [transient(xf(rl), 50e-6, 0.05e-6, use_ic=True)
                for rl in rls]
        fam = transient_batch([xf(rl) for rl in rls], 50e-6, 0.05e-6,
                              method="adaptive", use_ic=True,
                              max_dt=0.05e-6, atol=1e30, rtol=1e30)
        for i, ref in enumerate(refs):
            dev = np.max(np.abs(ref.voltage("s").v
                                - fam.voltage("s")[i]))
            assert dev < 1e-9

    def test_result_accessors(self):
        fam = transient_batch([rc(1e3), rc(2e3)], 1e-3, 1e-5,
                              use_ic=True, store_every=5)
        assert len(fam) == 2
        single = fam.result(1)
        assert single.voltage("out").v.shape == fam.t.shape
        assert fam.voltage("out").shape == (2, fam.t.size)
        # Ground node reads as zeros.
        assert np.all(fam.voltage("0") == 0.0)


class TestBatchBreakpoints:
    def test_family_resolves_a_narrow_pulse(self):
        from repro.spice import pulse

        def build():
            ckt = Circuit("pulse_rc")
            ckt.add_vsource("V1", "in", "0",
                            pulse(0.0, 1.0, delay=10e-6, width=50e-9,
                                  period=40e-6))
            ckt.add_resistor("R1", "in", "out", 1e3)
            ckt.add_capacitor("C1", "out", "0", 100e-12, ic=0.0)
            return ckt

        fam = transient_batch([build(), build()], 20e-6, 100e-9,
                              method="adaptive", use_ic=True)
        peaks = fam.voltage("out").max(axis=1)
        assert np.all(np.abs(peaks - (1.0 - np.exp(-0.5))) < 0.05)


class TestBatchAdaptiveGrowth:
    def test_linear_family_grows_steps(self):
        rs = [1e3, 2e3]
        fam = transient_batch([rc(r) for r in rs], 5e-3, 1e-5,
                              method="adaptive", use_ic=True)
        assert fam.t.size < 100  # fixed grid would be 501 points
        for i, r in enumerate(rs):
            tau = r * 1e-6
            expected = 1.0 - np.exp(-fam.t / tau)
            assert np.max(np.abs(fam.voltage("out")[i] - expected)) < 2e-3
