"""Tests for engineering-notation helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    clamp,
    db10,
    db20,
    format_eng,
    from_db10,
    from_db20,
    parse_eng,
    require_in_range,
    require_positive,
)


class TestParseEng:
    def test_plain_number(self):
        assert parse_eng("42") == 42.0

    def test_float_passthrough(self):
        assert parse_eng(1.5e-6) == 1.5e-6

    def test_int_passthrough(self):
        assert parse_eng(3) == 3.0

    @pytest.mark.parametrize(
        "text,value",
        [
            ("15m", 15e-3),
            ("150n", 150e-9),
            ("4.7u", 4.7e-6),
            ("4.7µ", 4.7e-6),
            ("2.2p", 2.2e-12),
            ("1k", 1e3),
            ("1K", 1e3),
            ("5MEG", 5e6),
            ("5meg", 5e6),
            ("3G", 3e9),
            ("1f", 1e-15),
        ],
    )
    def test_prefixes(self, text, value):
        assert parse_eng(text) == pytest.approx(value)

    @pytest.mark.parametrize(
        "text,value",
        [("150 nF", 150e-9), ("2.75 V", 2.75), ("650mV", 0.65), ("5 MHz", 5e6)],
    )
    def test_with_units(self, text, value):
        assert parse_eng(text) == pytest.approx(value)

    def test_scientific(self):
        assert parse_eng("1.5e-6") == pytest.approx(1.5e-6)

    def test_negative(self):
        assert parse_eng("-3.3m") == pytest.approx(-3.3e-3)

    @pytest.mark.parametrize("bad", ["", "abc", "1..2", "--3", "e5"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_eng(bad)


class TestFormatEng:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (1.5e-7, "150 nF"),
            (0.015, "15 mF"),
            (1e3, "1 kF"),
            (2.2e-12, "2.2 pF"),
        ],
    )
    def test_basic(self, value, expected):
        assert format_eng(value, "F") == expected

    def test_zero(self):
        assert format_eng(0, "V") == "0 V"

    def test_no_unit(self):
        assert format_eng(5e6) == "5 M"

    def test_nan(self):
        assert format_eng(float("nan"), "V") == "nan V"

    def test_negative(self):
        assert format_eng(-3.3e-3, "A") == "-3.3 mA"

    @given(st.floats(min_value=1e-14, max_value=1e11))
    def test_roundtrip(self, value):
        text = format_eng(value, digits=12)
        assert parse_eng(text) == pytest.approx(value, rel=1e-9)


class TestDecibels:
    def test_db10(self):
        assert db10(100) == pytest.approx(20.0)

    def test_db20(self):
        assert db20(10) == pytest.approx(20.0)

    def test_db10_roundtrip(self):
        assert from_db10(db10(7.3)) == pytest.approx(7.3)

    def test_db20_roundtrip(self):
        assert from_db20(db20(0.02)) == pytest.approx(0.02)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            db10(0)
        with pytest.raises(ValueError):
            db20(-1)

    @given(st.floats(min_value=1e-10, max_value=1e10))
    def test_db20_is_twice_db10(self, ratio):
        assert db20(ratio) == pytest.approx(2 * db10(ratio), rel=1e-12)


class TestValidation:
    def test_clamp_inside(self):
        assert clamp(0.5, 0, 1) == 0.5

    def test_clamp_edges(self):
        assert clamp(-2, 0, 1) == 0
        assert clamp(9, 0, 1) == 1

    def test_clamp_bad_interval(self):
        with pytest.raises(ValueError):
            clamp(0, 2, 1)

    def test_require_positive_ok(self):
        assert require_positive(3.0, "x") == 3.0

    def test_require_positive_rejects(self):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0.0, "x")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0, 1, "d") == 0.5
        with pytest.raises(ValueError):
            require_in_range(1.5, 0, 1, "d")

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(min_value=-100, max_value=0),
           st.floats(min_value=0, max_value=100))
    def test_clamp_always_in_bounds(self, value, lo, hi):
        assert lo <= clamp(value, lo, hi) <= hi
