"""ScenarioBatch vs scalar-loop equivalence and batch API behaviour."""

import numpy as np
import pytest

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController, RegulationWindowError
from repro.engine import Scenario, ScenarioBatch
from repro.power import RectifierEnvelopeModel


@pytest.fixture(scope="module")
def system():
    return RemotePoweringSystem(distance=10e-3)


class TestScenario:
    def test_defaults(self):
        sc = Scenario()
        assert sc.distance == 10e-3
        assert sc.duty_cycle == 1.0
        assert sc.distance_at(0.0) == 10e-3

    def test_callable_distance(self):
        sc = Scenario(distance=lambda t: 8e-3 + t)
        assert sc.distance_at(1e-3) == pytest.approx(9e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(distance=-1.0)
        with pytest.raises(ValueError):
            Scenario(duty_cycle=0.0)
        with pytest.raises(ValueError):
            Scenario(duty_cycle=1.5)
        with pytest.raises(ValueError):
            Scenario(drive_scale=0.0)

    def test_batch_requires_scenarios(self):
        with pytest.raises(ValueError):
            ScenarioBatch([])

    def test_from_grid_size_and_labels(self):
        batch = ScenarioBatch.from_grid([6e-3, 10e-3],
                                        [352e-6, 1.3e-3])
        assert len(batch) == 4
        assert all(sc.label for sc in batch.scenarios)


class TestControlEquivalence:
    """Batch control must match a loop of scalar runs on a small grid
    (documented tolerance: 1e-9 on every trace)."""

    def test_distance_grid_matches_scalar_loop(self, system):
        ctrl = AdaptivePowerController()
        distances = [6e-3, 10e-3, 14e-3, 20e-3]
        batch = ScenarioBatch([Scenario(distance=d) for d in distances])
        res = batch.run_control(system, ctrl, t_stop=50e-3)
        assert res.v_rect.shape == (4, 50)
        for i, d in enumerate(distances):
            ref = ctrl.run(system, lambda t, d=d: d, t_stop=50e-3)
            assert np.abs(res.v_rect[i]
                          - [s.v_rect for s in ref]).max() < 1e-9
            assert np.abs(res.drive_scale[i]
                          - [s.drive_scale for s in ref]).max() < 1e-9
            assert np.abs(res.p_delivered[i]
                          - [s.p_delivered for s in ref]).max() < 1e-12
            assert np.abs(res.v_reported[i]
                          - [s.v_reported for s in ref]).max() < 1e-9
            assert ([bool(b) for b in res.saturated[i]]
                    == [s.saturated for s in ref])

    def test_moving_profile_matches_scalar(self, system):
        ctrl = AdaptivePowerController()

        def profile(t):
            return 8e-3 if t < 20e-3 else 14e-3

        batch = ScenarioBatch([Scenario(distance=profile)])
        res = batch.run_control(system, ctrl, t_stop=60e-3)
        ref = ctrl.run(system, profile, t_stop=60e-3)
        assert np.abs(res.v_rect[0]
                      - [s.v_rect for s in ref]).max() < 1e-9

    def test_control_steps_round_trip(self, system):
        ctrl = AdaptivePowerController()
        batch = ScenarioBatch([Scenario(distance=10e-3)])
        res = batch.run_control(system, ctrl, t_stop=20e-3)
        steps = res.control_steps(0)
        ref = ctrl.run(system, lambda t: 10e-3, t_stop=20e-3)
        assert len(steps) == len(ref)
        assert steps[-1].v_rect == pytest.approx(ref[-1].v_rect,
                                                 abs=1e-9)
        assert isinstance(steps[0].saturated, bool)

    def test_regulation_statistics_vectorized(self, system):
        ctrl = AdaptivePowerController()
        batch = ScenarioBatch([Scenario(distance=10e-3),
                               Scenario(distance=30e-3)])
        res = batch.run_control(system, ctrl, t_stop=60e-3)
        frac, v_min, v_max, drive = res.regulation_statistics()
        ref_near = ctrl.regulation_statistics(res.control_steps(0))
        assert frac[0] == pytest.approx(ref_near[0])
        assert v_min[0] == pytest.approx(ref_near[1])
        assert v_max[0] == pytest.approx(ref_near[2])
        assert drive[0] == pytest.approx(ref_near[3])
        # The 30 mm scenario cannot regulate.
        assert frac[1] < frac[0]

    def test_regulation_statistics_empty_tail_typed_error(self, system):
        ctrl = AdaptivePowerController()
        batch = ScenarioBatch([Scenario(distance=10e-3)])
        res = batch.run_control(system, ctrl, t_stop=2e-3)
        with pytest.raises(RegulationWindowError):
            res.regulation_statistics(settle_fraction=1.0)

    def test_subclassed_control_law_flows_into_batch(self, system):
        """run_control applies the controller's own quantize/next_scale
        (not an inlined copy), so a tuned subclass stays in sync with
        its scalar runs."""

        class GentleController(AdaptivePowerController):
            def next_scale(self, current_scale, v_reported):
                # No urgency boost at all: fixed-ratio steps both ways.
                if isinstance(v_reported, np.ndarray) \
                        or isinstance(current_scale, np.ndarray):
                    scale = np.where(
                        v_reported < self.v_low,
                        current_scale * (1.0 + self.step_ratio),
                        np.where(v_reported > self.v_high,
                                 current_scale * (1.0 - self.step_ratio),
                                 current_scale))
                    return np.clip(scale, self.min_scale, self.max_scale)
                if v_reported < self.v_low:
                    scale = current_scale * (1.0 + self.step_ratio)
                elif v_reported > self.v_high:
                    scale = current_scale * (1.0 - self.step_ratio)
                else:
                    scale = current_scale
                return max(self.min_scale, min(scale, self.max_scale))

        ctrl = GentleController()
        batch = ScenarioBatch([Scenario(distance=16e-3)])
        res = batch.run_control(system, ctrl, t_stop=40e-3)
        ref = ctrl.run(system, lambda t: 16e-3, t_stop=40e-3)
        assert np.abs(res.drive_scale[0]
                      - [s.drive_scale for s in ref]).max() < 1e-9
        assert np.abs(res.v_rect[0]
                      - [s.v_rect for s in ref]).max() < 1e-9

    def test_duty_cycle_derates_power(self, system):
        ctrl = AdaptivePowerController()
        batch = ScenarioBatch([Scenario(distance=10e-3, duty_cycle=1.0),
                               Scenario(distance=10e-3, duty_cycle=0.5)])
        res = batch.run_control(system, ctrl, t_stop=10e-3)
        # Same drive scale at t=0, so the duty-cycled scenario sees half
        # the power on the first step.
        assert res.p_delivered[1, 0] == pytest.approx(
            0.5 * res.p_delivered[0, 0])


class TestEnvelopeEquivalence:
    def test_matches_scalar_simulate(self):
        m = RectifierEnvelopeModel()
        loads = [200e-6, 352e-6, 1.3e-3]
        batch = ScenarioBatch([Scenario(distance=10e-3, i_load=i)
                               for i in loads])
        env = batch.run_envelope(5e-3, t_stop=700e-6)
        for k, i_load in enumerate(loads):
            ref = m.simulate(lambda t: 5e-3,
                             lambda t, i=i_load: i, 700e-6)
            assert np.array_equal(env.times, ref.v_out.t)
            assert np.abs(env.v_rect[k] - ref.v_out.v).max() < 1e-12

    def test_rectifier_variants_per_scenario(self):
        slow = RectifierEnvelopeModel(c_out=500e-9)
        fast = RectifierEnvelopeModel(c_out=125e-9)
        batch = ScenarioBatch([Scenario(rectifier=slow, i_load=352e-6),
                               Scenario(rectifier=fast, i_load=352e-6)])
        charge = batch.charge_times(5e-3, 2.75)
        assert charge[1] < charge[0]
        for sc, t_ref in zip(batch.scenarios, charge):
            ref = sc.rectifier.charge_time(5e-3, 352e-6, 2.75)
            assert t_ref == pytest.approx(ref, rel=1e-6)

    def test_charge_times_flags_unreachable(self):
        batch = ScenarioBatch([Scenario(i_load=352e-6),
                               Scenario(i_load=352e-6)])
        times = batch.charge_times([5e-3, 1e-6], 2.75)
        assert np.isfinite(times[0])
        assert np.isnan(times[1])

    def test_charge_times_above_clamp_unreachable(self):
        batch = ScenarioBatch([Scenario(i_load=352e-6)])
        assert np.isnan(batch.charge_times(5e-3, 3.5)[0])

    def test_scenario_v0_honored_by_every_runner(self, system):
        """An explicit Scenario.v0 warm-starts envelope and charge-time
        batches too, not just control runs; None keeps each runner's
        historical convention (2.5 V control, 0 V envelope)."""
        ctrl = AdaptivePowerController()
        warm = Scenario(distance=10e-3, i_load=352e-6, v0=2.0)
        default = Scenario(distance=10e-3, i_load=352e-6)
        batch = ScenarioBatch([warm, default])
        env = batch.run_envelope(5e-3, t_stop=100e-6)
        assert env.v_rect[0, 0] == pytest.approx(2.0)
        assert env.v_rect[1, 0] == 0.0
        charge = batch.charge_times(5e-3, 2.75)
        assert charge[0] < charge[1]  # warm start reaches 2.75 V sooner
        res = batch.run_control(system, ctrl, t_stop=3e-3)
        ref_warm = ctrl.run(system, lambda t: 10e-3, t_stop=3e-3, v0=2.0)
        ref_cold = ctrl.run(system, lambda t: 10e-3, t_stop=3e-3)
        assert np.abs(res.v_rect[0]
                      - [s.v_rect for s in ref_warm]).max() < 1e-9
        assert np.abs(res.v_rect[1]
                      - [s.v_rect for s in ref_cold]).max() < 1e-9

    def test_clamp_current_scalar_and_array_agree_everywhere(self):
        """The exponent cap applies to both input types, so the same
        voltage gives the same leakage regardless of how it is passed."""
        m = RectifierEnvelopeModel()
        for v in (2.9, 3.2, 10.0, 80.0):
            scalar = m.clamp_current(v)
            array = float(m.clamp_current(np.array([v]))[0])
            assert array == pytest.approx(scalar, rel=1e-12)
        assert np.isfinite(m.clamp_current(1000.0))

    def test_crossing_and_minimum_helpers(self):
        batch = ScenarioBatch([Scenario(i_load=352e-6)])
        env = batch.run_envelope(5e-3, t_stop=700e-6)
        t_cross = env.crossing_times(2.75)
        ref = batch.scenarios[0].rectifier or None
        assert np.isfinite(t_cross[0])
        assert 200e-6 < t_cross[0] < 350e-6
        assert env.minimum_after(500e-6)[0] > 2.5
        assert env.v_final[0] == env.v_rect[0, -1]
