"""The engine's spice study: scenarios, batch runner, orchestration."""

import os

import numpy as np
import pytest

from repro.engine import (
    SPICE_TEMPLATES,
    ResultStore,
    ScenarioAxisError,
    SpiceBatch,
    SpiceScenario,
    SweepOrchestrator,
    spice_cell_keys,
)

T_STOP = 1e-6
DT = 1.0 / (5e6 * 100)


class TestSpiceScenario:
    def test_defaults_are_the_paper_rectifier(self):
        sc = SpiceScenario()
        assert sc.template == "rectifier"
        circuit, node = sc.build()
        assert node == "vo"
        assert "DR" in circuit

    def test_unknown_template_raises_typed_error(self):
        with pytest.raises(ScenarioAxisError, match="template"):
            SpiceScenario(template="flux_capacitor")

    @pytest.mark.parametrize("kwargs", [
        {"amplitude": 0.0},
        {"amplitude": float("nan")},
        {"freq": -5e6},
        {"i_load": -1e-6},
    ])
    def test_invalid_values_raise_typed_errors(self, kwargs):
        with pytest.raises((ScenarioAxisError, ValueError)):
            SpiceScenario(**kwargs)

    def test_all_templates_build(self):
        for name in SPICE_TEMPLATES:
            circuit, node = SpiceScenario(template=name).build()
            circuit.build()
            assert circuit.node_index(node) >= 0


class TestSpiceBatch:
    def test_from_axes_cartesian(self):
        batch = SpiceBatch.from_axes(amplitude=[1.25, 1.75],
                                     i_load=[200e-6, 350e-6])
        assert len(batch) == 4
        labels = [s.label for s in batch.scenarios]
        assert len(set(labels)) == 4

    def test_from_axes_rejects_unknown_axis(self):
        with pytest.raises(ScenarioAxisError, match="unknown spice axis"):
            SpiceBatch.from_axes(distance=[1e-3])

    def test_from_axes_rejects_empty_axis(self):
        with pytest.raises(ScenarioAxisError, match="at least one value"):
            SpiceBatch.from_axes(amplitude=[])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            SpiceBatch([])

    def test_run_shapes_and_metrics(self):
        batch = SpiceBatch.from_axes(amplitude=[1.25, 1.75])
        res = batch.run(T_STOP, DT, n_points=64)
        assert res.times.shape == (64,)
        assert res.v_out.shape == (2, 64)
        assert res.v_final.shape == (2,)
        assert res.n_cells == 2
        # A bigger drive charges the rail further.
        assert res.v_final[1] > res.v_final[0] > 0.0
        assert np.all(res.steps > 0)

    def test_run_validates_inputs(self):
        batch = SpiceBatch.from_axes(amplitude=[1.5])
        with pytest.raises(ValueError):
            batch.run(0.0, DT)
        with pytest.raises(ValueError):
            batch.run(T_STOP, DT, n_points=1)

    @pytest.mark.parametrize("template", sorted(SPICE_TEMPLATES))
    def test_mixed_zero_and_nonzero_loads_stay_one_family(self, template):
        """Every template must instantiate structurally identical
        circuits across the i_load axis — including i_load=0 — or the
        lockstep family check rejects a validated study at run time."""
        batch = SpiceBatch.from_axes(template=[template],
                                     i_load=[0.0, 350e-6])
        res = batch.run(T_STOP, DT, n_points=32)
        assert res.v_out.shape == (2, 32)

    def test_mixed_templates_group_correctly(self):
        batch = SpiceBatch([
            SpiceScenario(template="halfwave", amplitude=2.0),
            SpiceScenario(template="rectifier", amplitude=1.5),
            SpiceScenario(template="halfwave", amplitude=3.0),
        ])
        res = batch.run(T_STOP, DT, n_points=32)
        # Rows come back in scenario order despite template grouping.
        assert res.v_final[2] > res.v_final[0]  # bigger halfwave drive
        assert res.scenarios[1].template == "rectifier"


class TestSpiceCellKeys:
    def test_keys_distinct_per_cell(self):
        batch = SpiceBatch.from_axes(amplitude=[1.2, 1.4],
                                     i_load=[1e-4, 2e-4])
        keys = spice_cell_keys(batch, T_STOP, DT)
        assert len(set(keys)) == 4

    def test_keys_depend_on_solver_config(self):
        batch = SpiceBatch.from_axes(amplitude=[1.5])
        base = spice_cell_keys(batch, T_STOP, DT)[0]
        assert spice_cell_keys(batch, T_STOP, DT)[0] == base
        assert spice_cell_keys(batch, T_STOP, DT, method="trap")[0] != base
        assert spice_cell_keys(batch, 2 * T_STOP, DT)[0] != base
        assert spice_cell_keys(batch, T_STOP, DT, n_points=128)[0] != base


class TestOrchestratedSpice:
    def test_orchestrated_matches_direct(self):
        batch = SpiceBatch.from_axes(amplitude=[1.25, 1.75])
        direct = batch.run(T_STOP, DT)
        orch = SweepOrchestrator().run_spice(batch, T_STOP, DT)
        assert np.array_equal(direct.v_out, orch.v_out)
        assert np.array_equal(direct.v_final, orch.v_final)

    def test_store_caches_cells(self, tmp_path):
        batch = SpiceBatch.from_axes(amplitude=[1.25, 1.75])
        store = ResultStore(tmp_path)
        orch = SweepOrchestrator(store=store)
        first = orch.run_spice(batch, T_STOP, DT)
        assert orch.stats.n_computed == 2
        second = orch.run_spice(batch, T_STOP, DT)
        assert orch.stats.n_cached == 2
        assert orch.stats.n_computed == 0
        assert np.allclose(first.v_out, second.v_out)

    def test_partial_overlap_only_computes_new_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        orch = SweepOrchestrator(store=store)
        orch.run_spice(SpiceBatch.from_axes(amplitude=[1.25]), T_STOP, DT)
        orch.run_spice(SpiceBatch.from_axes(amplitude=[1.25, 1.75]),
                       T_STOP, DT)
        assert orch.stats.n_cached == 1
        assert orch.stats.n_computed == 1

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="needs >= 2 CPUs for a meaningful "
                               "multi-worker sweep")
    def test_two_worker_spice_sweep_matches_serial(self):
        # Lockstep step control is shared within a chunk, so a
        # different sharding reproduces cells to solver tolerance, not
        # bitwise (unlike the elementwise envelope/control runners).
        batch = SpiceBatch.from_axes(amplitude=[1.2, 1.4, 1.6, 1.8])
        serial = SweepOrchestrator().run_spice(batch, T_STOP, DT,
                                               method="trap")
        parallel = SweepOrchestrator(workers=2).run_spice(
            batch, T_STOP, DT, method="trap")
        assert np.allclose(serial.v_out, parallel.v_out, atol=1e-8)

    def test_spice_payload_chunks_merge_in_order(self):
        """Chunked dispatch (serial fallback on a 1-CPU container)
        must merge rows back in scenario order.  On the fixed "trap"
        backend the grid is deterministic, so chunk composition only
        moves results at Newton-tolerance level; under "adaptive" the
        shared LTE control means composition can also shift the step
        grid within the LTE budget."""
        batch = SpiceBatch.from_axes(amplitude=[1.25, 1.75])
        orch = SweepOrchestrator(chunk_size=1)
        res = orch.run_spice(batch, T_STOP, DT, method="trap")
        assert orch.stats.n_chunks == 2
        direct = batch.run(T_STOP, DT, method="trap")
        assert np.allclose(res.v_out, direct.v_out, atol=1e-8)
        # Rows stayed attached to their cells (amplitudes order).
        assert res.v_final[1] > res.v_final[0]
        import pickle

        pickle.dumps(batch.scenarios)
