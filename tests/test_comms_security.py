"""Tests for the XTEA-based secure telemetry channel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comms import SecureChannel, XteaCipher, paired_channels

KEY = bytes(range(16))


class TestXtea:
    def test_known_vector(self):
        """Published XTEA vector: all-zero key/plaintext."""
        cipher = XteaCipher(b"\x00" * 16)
        out = cipher.encrypt_block(b"\x00" * 8)
        assert out == bytes.fromhex("dee9d4d8f7131ed9")

    def test_known_vector_2(self):
        cipher = XteaCipher(bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"))
        out = cipher.encrypt_block(bytes.fromhex("4142434445464748"))
        assert out == bytes.fromhex("497df3d072612cb5")

    def test_block_size_enforced(self):
        with pytest.raises(ValueError):
            XteaCipher(KEY).encrypt_block(b"short")

    def test_key_size_enforced(self):
        with pytest.raises(ValueError):
            XteaCipher(b"short key")

    def test_ctr_roundtrip(self):
        cipher = XteaCipher(KEY)
        msg = b"metabolite telemetry payload"
        assert cipher.ctr_crypt(5, cipher.ctr_crypt(5, msg)) == msg

    def test_ctr_nonce_separates_streams(self):
        cipher = XteaCipher(KEY)
        msg = b"\x00" * 32
        assert cipher.ctr_crypt(1, msg) != cipher.ctr_crypt(2, msg)

    def test_ctr_empty(self):
        assert XteaCipher(KEY).ctr_crypt(0, b"") == b""

    def test_keystream_deterministic(self):
        cipher = XteaCipher(KEY)
        assert cipher.keystream(9, 24) == cipher.keystream(9, 24)

    def test_mac_changes_with_data(self):
        cipher = XteaCipher(KEY)
        assert cipher.cbc_mac(b"abc") != cipher.cbc_mac(b"abd")

    def test_mac_length_prefix_blocks_extension(self):
        cipher = XteaCipher(KEY)
        assert cipher.cbc_mac(b"ab") != cipher.cbc_mac(b"ab\x00")

    def test_mac_tag_size(self):
        cipher = XteaCipher(KEY)
        assert len(cipher.cbc_mac(b"x", tag_bytes=6)) == 6
        with pytest.raises(ValueError):
            cipher.cbc_mac(b"x", tag_bytes=9)

    @given(st.binary(min_size=0, max_size=64),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_ctr_roundtrip_property(self, data, nonce):
        cipher = XteaCipher(KEY)
        assert cipher.ctr_crypt(nonce, cipher.ctr_crypt(nonce, data)) \
            == bytes(data)


class TestSecureChannel:
    def test_seal_open_roundtrip(self):
        tx, rx = paired_channels(KEY)
        wire = tx.seal(b"lactate=0.82mM")
        assert rx.open(wire) == b"lactate=0.82mM"

    def test_ciphertext_hides_plaintext(self):
        tx = SecureChannel(KEY)
        payload = b"A" * 24
        wire = tx.seal(payload)
        assert payload not in wire

    def test_tamper_detected(self):
        tx, rx = paired_channels(KEY)
        wire = bytearray(tx.seal(b"dose=stop"))
        wire[6] ^= 0x01
        with pytest.raises(ValueError, match="tag mismatch"):
            rx.open(bytes(wire))

    def test_tag_tamper_detected(self):
        tx, rx = paired_channels(KEY)
        wire = bytearray(tx.seal(b"payload"))
        wire[-1] ^= 0x80
        with pytest.raises(ValueError, match="tag mismatch"):
            rx.open(bytes(wire))

    def test_replay_rejected(self):
        tx, rx = paired_channels(KEY)
        wire = tx.seal(b"measurement 1")
        rx.open(wire)
        with pytest.raises(ValueError, match="replay"):
            rx.open(wire)

    def test_out_of_order_rejected(self):
        tx, rx = paired_channels(KEY)
        w1 = tx.seal(b"one")
        w2 = tx.seal(b"two")
        rx.open(w2)
        with pytest.raises(ValueError, match="replay"):
            rx.open(w1)

    def test_counter_increments(self):
        tx = SecureChannel(KEY)
        w1 = tx.seal(b"x")
        w2 = tx.seal(b"x")
        assert w1[:4] != w2[:4]
        assert w1[4:] != w2[4:]  # different keystream too

    def test_short_message_rejected(self):
        rx = SecureChannel(KEY)
        with pytest.raises(ValueError, match="shorter"):
            rx.open(b"\x00" * 5)

    def test_wrong_key_fails(self):
        tx = SecureChannel(KEY)
        rx = SecureChannel(bytes(16))
        with pytest.raises(ValueError):
            rx.open(tx.seal(b"secret"))

    def test_airtime_overhead_at_paper_rate(self):
        """8 bytes of overhead at 66.6 kbps uplink: under a millisecond."""
        ch = SecureChannel(KEY)
        assert ch.airtime_overhead(66.6e3) == pytest.approx(
            8 * 8 / 66.6e3)
        assert ch.airtime_overhead(66.6e3) < 1e-3

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=40)
    def test_roundtrip_property(self, payload):
        tx, rx = paired_channels(KEY)
        assert rx.open(tx.seal(payload)) == bytes(payload)
