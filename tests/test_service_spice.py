"""`study="spice"` requests through the service stack: validation,
round trip, cross-request dedup, store caching."""

import asyncio

import numpy as np
import pytest

from repro.engine import ResultStore, ScenarioAxisError
from repro.service import SimulationService
from repro.service.jobs import SimRequestError
from repro.service.requests import SPICE_N_POINTS, SimRequest

AXES = {"template": ["rectifier"], "amplitude": [1.25, 1.75]}
T_STOP = 1e-6
DT = 2e-9


def run(coro):
    return asyncio.run(coro)


class TestSpiceRequestValidation:
    def test_valid_request(self):
        req = SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT)
        assert req.n_cells == 2
        assert req.method == "adaptive"
        assert req.matrix == "auto"
        assert req.group_key() == ("spice", T_STOP, DT, "adaptive", "auto")

    def test_matrix_mode_validated_and_grouped(self):
        req = SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                         matrix="sparse")
        assert req.group_key()[-1] == "sparse"
        assert req.as_payload()["matrix"] == "sparse"
        # Round trip through the JSON payload keeps the mode.
        assert SimRequest.from_payload(req.as_payload()).matrix == "sparse"
        with pytest.raises(SimRequestError, match="matrix"):
            SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                       matrix="banded")
        with pytest.raises(SimRequestError, match="dense parity"):
            SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                       method="trap", matrix="sparse")
        # matrix applies to spice requests only.
        with pytest.raises(SimRequestError, match="do not apply"):
            SimRequest.from_payload(
                {"kind": "sweep", "axes": {"distance": [1e-2]},
                 "matrix": "sparse"})

    def test_matrix_mode_not_in_cell_keys(self):
        # Solver strategy is an execution detail: the content address
        # of every cell must be identical across modes, so switching
        # solvers replays the cache instead of recomputing.
        dense = SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                           matrix="dense")
        sparse = SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                            matrix="sparse")
        assert dense.cell_keys(None, None) == sparse.cell_keys(None, None)

    def test_unknown_method_rejected(self):
        with pytest.raises(SimRequestError, match="method"):
            SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                       method="euler")

    def test_axes_validated_with_typed_errors(self):
        with pytest.raises(ScenarioAxisError, match="template"):
            SimRequest(kind="spice", axes={"template": ["bogus"]},
                       t_stop=T_STOP, dt=DT)
        with pytest.raises(ScenarioAxisError, match="unknown spice axis"):
            SimRequest(kind="spice", axes={"distance": [1e-3]},
                       t_stop=T_STOP, dt=DT)

    def test_needs_axes(self):
        with pytest.raises(SimRequestError, match="at least one axis"):
            SimRequest(kind="spice", t_stop=T_STOP, dt=DT)

    def test_step_budget_enforced(self):
        with pytest.raises(SimRequestError, match="steps per"):
            SimRequest(kind="spice", axes=AXES, t_stop=1.0, dt=1e-9)

    def test_step_budget_counts_worst_case_refinement(self):
        # 60 ms at 1 us is only 60k nominal steps, but the adaptive
        # backend may refine 1024x — the bound must reject it so a
        # defaults-only request cannot pin a scheduler worker.
        with pytest.raises(SimRequestError, match="refinement"):
            SimRequest(kind="spice", axes=AXES)
        # The carrier-resolved operating point stays comfortably legal.
        assert SimRequest(kind="spice", axes=AXES, t_stop=4e-6,
                          dt=5e-9).n_cells == 2

    def test_spreads_rejected(self):
        with pytest.raises(SimRequestError, match="spreads"):
            SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                       spreads=({"name": "c_out", "nominal": 1.0,
                                 "sigma": 0.1},))

    def test_from_payload_rejects_foreign_fields(self):
        with pytest.raises(SimRequestError, match="do not apply"):
            SimRequest.from_payload({"kind": "spice", "axes": AXES,
                                     "t_stop": T_STOP, "dt": DT,
                                     "p_in": 5e-3})

    def test_payload_round_trip(self):
        req = SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT,
                         method="trap")
        clone = SimRequest.from_payload(req.as_payload())
        assert clone.group_key() == req.group_key()
        assert clone.cell_keys(None, None) == req.cell_keys(None, None)

    def test_cell_keys_distinct_and_stable(self):
        req = SimRequest(kind="spice", axes=AXES, t_stop=T_STOP, dt=DT)
        keys = req.cell_keys(None, None)
        assert len(set(keys)) == 2
        assert keys == req.cell_keys(None, None)


class TestSpiceService:
    def test_round_trip_with_dedup(self):
        async def main():
            service = SimulationService(window=5e-3)
            async with service:
                payload = {"kind": "spice", "axes": AXES,
                           "t_stop": T_STOP, "dt": DT}
                j1 = service.submit(dict(payload))
                j2 = service.submit(dict(payload))
                r1 = await service.result(j1.id, timeout=120)
                r2 = await service.result(j2.id, timeout=120)
                return service, r1, r2

        service, r1, r2 = run(main())
        assert r1["kind"] == "spice"
        assert len(r1["cells"]) == 2
        assert len(r1["times"]) == SPICE_N_POINTS
        assert r1 == r2  # identical requests, identical documents
        stats = service.scheduler.stats
        # Two identical 2-cell requests coalesce: 2 shared, 2 computed.
        assert stats.cells_requested == 4
        assert stats.cells_deduped == 2
        assert stats.cells_computed == 2
        cell = r1["cells"][0]
        assert cell["template"] == "rectifier"
        assert cell["steps"] > 0
        assert cell["v_final"] == cell["v_out"][-1]

    def test_store_serves_repeat_batches(self, tmp_path):
        async def main():
            store = ResultStore(tmp_path)
            service = SimulationService(window=2e-3, store=store)
            async with service:
                payload = {"kind": "spice", "axes": AXES,
                           "t_stop": T_STOP, "dt": DT}
                first = await service.result(
                    service.submit(dict(payload)).id, timeout=120)
                # Second batch (separate micro-batch): all store hits.
                second = await service.result(
                    service.submit(dict(payload)).id, timeout=120)
                return service, first, second

        service, first, second = run(main())
        assert first == second
        assert service.scheduler.stats.cells_cached >= 2

    def test_spice_and_sweep_requests_coexist_in_a_batch(self):
        async def main():
            service = SimulationService(window=20e-3)
            async with service:
                j_spice = service.submit({
                    "kind": "spice", "axes": AXES,
                    "t_stop": T_STOP, "dt": DT})
                j_sweep = service.submit({
                    "kind": "sweep",
                    "axes": {"distance": [10e-3], "i_load": [352e-6]},
                    "t_stop": 10e-3})
                r_spice = await service.result(j_spice.id, timeout=120)
                r_sweep = await service.result(j_sweep.id, timeout=120)
                return r_spice, r_sweep

        r_spice, r_sweep = run(main())
        assert r_spice["kind"] == "spice"
        assert r_sweep["kind"] == "sweep"
        v = np.array(r_spice["cells"][1]["v_out"], dtype=float)
        assert v[-1] > 0.0
