"""Tests for bitstreams, CRC, framing, and the two-phase clock."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comms import (
    Bitstream,
    Frame,
    FrameError,
    PREAMBLE,
    TwoPhaseClock,
    crc8,
    crc16_ccitt,
    prbs,
)


class TestBitstream:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Bitstream([0, 1, 2])

    def test_bytes_roundtrip(self):
        data = b"\x00\xff\xa5\x3c"
        assert Bitstream.from_bytes(data).to_bytes() == data

    def test_from_int_msb_first(self):
        assert Bitstream.from_int(0b1011, 4).bits == (1, 0, 1, 1)

    def test_from_int_validation(self):
        with pytest.raises(ValueError):
            Bitstream.from_int(16, 4)
        with pytest.raises(ValueError):
            Bitstream.from_int(-1, 4)

    def test_to_int(self):
        assert Bitstream([1, 0, 1]).to_int() == 5

    def test_to_bytes_needs_multiple_of_8(self):
        with pytest.raises(ValueError):
            Bitstream([1, 0, 1]).to_bytes()

    def test_concat_and_slice(self):
        s = Bitstream([1, 0]) + [1, 1]
        assert s.bits == (1, 0, 1, 1)
        assert s[1:3] == Bitstream([0, 1])
        assert s[0] == 1

    def test_hamming_distance(self):
        a = Bitstream([1, 0, 1, 0])
        assert a.hamming_distance([1, 1, 1, 1]) == 2
        with pytest.raises(ValueError):
            a.hamming_distance([1, 0])

    def test_transitions(self):
        assert Bitstream([1, 0, 1, 0]).transitions() == 3
        assert Bitstream([1, 1, 1]).transitions() == 0

    def test_equality_with_lists(self):
        assert Bitstream([1, 0]) == [1, 0]

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        assert Bitstream.from_bytes(data).to_bytes() == data

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=50)
    def test_int_roundtrip_property(self, value):
        assert Bitstream.from_int(value, 16).to_int() == value


class TestPrbs:
    def test_known_lengths(self):
        assert len(prbs(100)) == 100

    def test_balanced_ones_and_zeros(self):
        bits = prbs(127 * 4)  # four full PRBS7 periods
        ones = sum(bits)
        assert abs(ones / len(bits) - 0.5) < 0.02

    def test_period_of_prbs7(self):
        bits = prbs(127 * 2)
        assert bits[:127] == bits[127:254]

    def test_different_orders_differ(self):
        assert prbs(64, order=7) != prbs(64, order=15)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            prbs(10, order=9)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            prbs(0)

    def test_zero_seed_does_not_stall(self):
        bits = prbs(50, seed=0)
        assert bits.transitions() > 0


class TestCrc:
    def test_crc8_check_value(self):
        assert crc8(b"123456789") == 0xF4

    def test_crc16_check_value(self):
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_crc8_detects_single_bit_flip(self):
        data = bytearray(b"hello world")
        original = crc8(data)
        data[3] ^= 0x10
        assert crc8(data) != original

    def test_crc_empty_input(self):
        assert crc8(b"") == 0
        assert crc16_ccitt(b"") == 0xFFFF

    @given(st.binary(min_size=1, max_size=32),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=50)
    def test_crc8_single_byte_error_detection(self, data, noise):
        """CRC-8 catches any single-byte corruption (when it changes)."""
        if noise == 0:
            return
        corrupted = bytearray(data)
        corrupted[0] ^= noise
        assert crc8(bytes(corrupted)) != crc8(data) or bytes(corrupted) == data


class TestFraming:
    def test_roundtrip(self):
        frame = Frame(b"\x01\x02\x03lactate")
        assert Frame.decode(frame.encode()) == frame

    def test_roundtrip_with_leading_idle(self):
        frame = Frame(b"hi")
        bits = Bitstream([1] * 13) + frame.encode()
        assert Frame.decode(bits) == frame

    def test_empty_payload(self):
        frame = Frame(b"")
        assert Frame.decode(frame.encode()).payload == b""

    def test_payload_length_limit(self):
        Frame(bytes(255))
        with pytest.raises(ValueError):
            Frame(bytes(256))

    def test_n_bits_accounting(self):
        frame = Frame(b"abc")
        assert frame.n_bits == 8 + 8 + 8 + 24 + 8
        assert len(frame.encode()) == frame.n_bits

    def test_airtime_at_paper_rates(self):
        """An 18-bit transfer at 100 kbps is 180 us — the Fig. 11 scale."""
        frame = Frame(b"")
        assert frame.airtime(100e3) == pytest.approx(
            frame.n_bits / 100e3)
        with pytest.raises(ValueError):
            frame.airtime(0)

    def test_crc_failure_raises(self):
        bits = list(Frame(b"data").encode())
        bits[-1] ^= 1  # corrupt CRC
        with pytest.raises(FrameError, match="CRC"):
            Frame.decode(bits)

    def test_payload_corruption_detected(self):
        bits = list(Frame(b"data").encode())
        bits[20] ^= 1
        with pytest.raises(FrameError):
            Frame.decode(bits)

    def test_missing_sync_raises(self):
        with pytest.raises(FrameError, match="sync"):
            Frame.decode([0] * 64)

    def test_truncated_frame_raises(self):
        bits = Frame(b"0123456789").encode()
        with pytest.raises(FrameError, match="truncated"):
            Frame.decode(bits[: len(bits) // 2])

    def test_preamble_alternates(self):
        assert PREAMBLE.transitions() == 7

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=50)
    def test_roundtrip_property(self, payload):
        assert Frame.decode(Frame(payload).encode()).payload == payload


class TestTwoPhaseClock:
    def test_phases_never_overlap(self):
        clk = TwoPhaseClock(200e3)
        assert clk.never_overlaps()

    def test_phase_windows(self):
        clk = TwoPhaseClock(100e3, non_overlap=0.05)
        assert clk.phi1(1e-6)        # early in the period
        assert not clk.phi2(1e-6)
        assert clk.phi2(6e-6)        # second half
        assert not clk.phi1(6e-6)

    def test_dead_time_exists(self):
        clk = TwoPhaseClock(100e3, non_overlap=0.1)
        # Just before the half period: dead zone.
        t_dead = 0.45 * clk.period
        assert not clk.phi1(t_dead)
        assert not clk.phi2(t_dead)

    def test_rising_edges_spacing(self):
        clk = TwoPhaseClock(100e3)
        edges = clk.phi1_rising_edges(0.0, 100e-6)
        assert len(edges) == 10
        diffs = [b - a for a, b in zip(edges, edges[1:])]
        assert all(d == pytest.approx(10e-6) for d in diffs)

    def test_from_carrier_division(self):
        clk = TwoPhaseClock.from_carrier(5e6, 50)
        assert clk.freq == pytest.approx(100e3)
        with pytest.raises(ValueError):
            TwoPhaseClock.from_carrier(5e6, 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TwoPhaseClock(-1.0)
        with pytest.raises(ValueError):
            TwoPhaseClock(1e5, non_overlap=0.5)

    @given(st.floats(min_value=0.0, max_value=1e-3))
    @settings(max_examples=100)
    def test_overlap_invariant_property(self, t):
        clk = TwoPhaseClock(123e3, non_overlap=0.07)
        assert not (clk.phi1(t) and clk.phi2(t))
