"""The repo-invariant AST lint (tools/check_invariants.py) stays clean
and actually detects what it claims to."""

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_invariants  # noqa: E402


class TestRepoIsClean:
    def test_src_tree_has_no_violations(self):
        violations = check_invariants.run()
        assert violations == [], "\n".join(
            f"{p}:{line}: {msg}" for p, line, msg in violations)


class TestDetection:
    def check(self, tmp_path, source, name="mod.py"):
        path = tmp_path / name
        path.write_text(source)
        return list(check_invariants.check_file(path))

    def test_bare_except_is_flagged(self, tmp_path):
        found = self.check(tmp_path,
                           "try:\n    pass\nexcept:\n    pass\n")
        assert found and "bare" in found[0][1]

    def test_named_except_is_fine(self, tmp_path):
        assert self.check(
            tmp_path, "try:\n    pass\nexcept ValueError:\n    pass\n",
        ) == []

    def test_print_is_flagged_outside_cli(self, tmp_path):
        found = self.check(tmp_path, "print('hi')\n")
        assert found and "print()" in found[0][1]

    def test_generic_raise_is_flagged_in_spice_scope(self, tmp_path):
        spice = tmp_path / "spice"
        spice.mkdir()
        path = spice / "mod.py"
        path.write_text("raise RuntimeError('boom')\n")
        # Simulate the spice scope by pointing the checker at it.
        old = check_invariants.SPICE
        check_invariants.SPICE = spice
        try:
            found = list(check_invariants.check_file(path))
        finally:
            check_invariants.SPICE = old
        assert found and "typed error" in found[0][1]

    def test_typed_raise_is_fine_in_spice_scope(self, tmp_path):
        spice = tmp_path / "spice"
        spice.mkdir()
        path = spice / "mod.py"
        path.write_text("raise ValueError('boom')\n")
        old = check_invariants.SPICE
        check_invariants.SPICE = spice
        try:
            found = list(check_invariants.check_file(path))
        finally:
            check_invariants.SPICE = old
        assert found == []
