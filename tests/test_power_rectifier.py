"""Carrier-resolved rectifier tests + envelope-model consistency.

These exercise the Fig. 8 netlist on the spice engine: doubling action,
the ~3 V clamp, LSK input shorting with M2 isolation, and the average
input impedance the paper reports (~150 ohm).  Windows are kept to tens
of carrier cycles so the suite stays fast.
"""

import numpy as np
import pytest

from repro.power import (
    RectifierEnvelopeModel,
    RectifierParameters,
    build_rectifier_circuit,
    measure_input_resistance,
)
from repro.signals import crossing_times
from repro.spice import pwl, transient

CARRIER = 5e6
PERIOD = 1.0 / CARRIER


def run(ckt, t_stop, ppc=40, store_every=4):
    return transient(ckt, t_stop=t_stop, dt=PERIOD / ppc, method="trap",
                     use_ic=True, store_every=store_every)


class TestRectifierNetlist:
    def test_output_rises_monotonically_early(self):
        ckt = build_rectifier_circuit()
        res = run(ckt, 30e-6)
        vo = res.voltage("vo")
        # Sampled at 2 us intervals the charge curve is monotone.
        samples = vo.value_at(np.arange(2e-6, 30e-6, 2e-6))
        assert np.all(np.diff(samples) > -1e-3)

    def test_doubling_action(self):
        """The clamp-doubler output exceeds the input amplitude — a plain
        half-wave rectifier could never do this minus a diode drop."""
        ckt = build_rectifier_circuit(v_in_amplitude=1.0, i_load=20e-6)
        res = run(ckt, 250e-6)
        vo = res.voltage("vo")
        assert vo.v[-1] > 1.15  # above the 1.0 V input amplitude

    def test_clamp_ceiling(self):
        """Overdriven input: Vo stays at/below ~3 V (paper: Vo <= 3 V)."""
        ckt = build_rectifier_circuit(v_in_amplitude=4.0, i_load=100e-6)
        res = run(ckt, 150e-6)
        assert res.voltage("vo").max() < 3.3

    def test_higher_load_slows_charging(self):
        light = run(build_rectifier_circuit(i_load=100e-6), 40e-6)
        heavy = run(build_rectifier_circuit(i_load=1.3e-3), 40e-6)
        assert (light.voltage("vo").v[-1]
                > heavy.voltage("vo").v[-1])

    def test_lsk_short_stops_charging_and_holds_vo(self):
        """While Vup is LOW, M1 shorts the input and M2 isolates Co:
        Vo must droop only by I_load/Co, not crash."""
        # Vup: high until 30 us, low 30-45 us, high after.
        vup = pwl([(0, 1.8), (30e-6, 1.8), (30.01e-6, 0.0),
                   (45e-6, 0.0), (45.01e-6, 1.8), (1.0, 1.8)])
        params = RectifierParameters()
        ckt = build_rectifier_circuit(params=params, i_load=350e-6,
                                      uplink_source=vup)
        res = run(ckt, 60e-6)
        vo = res.voltage("vo")
        v_at_short = float(vo.value_at(30e-6))
        v_end_short = float(vo.value_at(45e-6))
        droop = v_at_short - v_end_short
        expected = 350e-6 * 15e-6 / params.c_out
        assert droop == pytest.approx(expected, rel=0.35)
        # And charging resumes afterwards.
        assert vo.v[-1] > v_end_short

    def test_lsk_short_kills_input_voltage(self):
        """The input node itself collapses during the short — this is the
        signature the patch detects as uplink data."""
        vup = pwl([(0, 1.8), (30e-6, 1.8), (30.01e-6, 0.0), (1.0, 0.0)])
        ckt = build_rectifier_circuit(uplink_source=vup)
        res = run(ckt, 45e-6)
        vi = res.voltage("vi")
        before = vi.clip_time(20e-6, 29e-6).peak_to_peak()
        after = vi.clip_time(35e-6, 44e-6).peak_to_peak()
        assert after < 0.2 * before

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RectifierParameters(c_out=-1e-9)
        with pytest.raises(ValueError):
            RectifierParameters(n_clamp_diodes=0)


class TestInputImpedance:
    @pytest.fixture(scope="class")
    def zin(self):
        return measure_input_resistance(power_level=5e-3, cycles=30,
                                        points_per_cycle=40)

    def test_converged_to_power_level(self, zin):
        assert zin["p_in"] == pytest.approx(5e-3, rel=0.02)

    def test_average_impedance_order_of_150ohm(self, zin):
        """E5: the paper simulates ~150 ohm; pulsed conduction puts our
        behavioural diode cell in the same range (100-400 ohm)."""
        assert 80 < zin["z_rms"] < 400

    def test_power_resistance_exceeds_rms_impedance(self, zin):
        """Pulsed current: crest factor makes V_rms^2/P > V_rms/I_rms."""
        assert zin["r_power"] > zin["z_rms"]

    def test_input_amplitude_consistent_with_doubler(self, zin):
        """Amplitude ~1.2-2 V yet Vo reaches 2.75 V: doubling confirmed."""
        assert 1.0 < zin["v_amplitude"] < 2.2


class TestEnvelopeModel:
    def test_fig11_charge_anchor(self):
        """E2: Co reaches 2.75 V at ~270 us from 5 mW (paper Fig. 11)."""
        model = RectifierEnvelopeModel()
        trace = model.simulate(lambda t: 5e-3, lambda t: 350e-6, 400e-6)
        t_cross = crossing_times(trace.v_out, 2.75, "rising")
        assert t_cross.size >= 1
        assert t_cross[0] == pytest.approx(270e-6, rel=0.15)

    def test_charge_time_helper_agrees_with_simulation(self):
        model = RectifierEnvelopeModel()
        t_sim = crossing_times(
            model.simulate(lambda t: 5e-3, lambda t: 350e-6, 400e-6).v_out,
            2.75, "rising")[0]
        t_helper = model.charge_time(5e-3, 350e-6, 2.75)
        assert t_helper == pytest.approx(t_sim, rel=0.05)

    def test_charge_time_unreachable_returns_none(self):
        model = RectifierEnvelopeModel()
        assert model.charge_time(10e-6, 350e-6, 2.75) is None
        assert model.charge_time(5e-3, 350e-6, 5.0) is None

    def test_equilibrium_near_clamp(self):
        model = RectifierEnvelopeModel()
        trace = model.simulate(lambda t: 5e-3, lambda t: 350e-6, 2e-3)
        assert trace.v_out.v[-1] == pytest.approx(3.0, abs=0.15)

    def test_lsk_short_droop_matches_capacitor_law(self):
        model = RectifierEnvelopeModel()
        short_window = (500e-6, 530e-6)

        def shorted(t):
            return short_window[0] < t < short_window[1]

        trace = model.simulate(lambda t: 5e-3, lambda t: 350e-6, 600e-6,
                               shorted_func=shorted)
        v0 = float(trace.v_out.value_at(short_window[0]))
        v1 = float(trace.v_out.value_at(short_window[1]))
        expected = 350e-6 * 30e-6 / model.c_out
        assert v0 - v1 == pytest.approx(expected, rel=0.12)

    def test_ask_low_bits_keep_rail_above_2v1(self):
        """During downlink, power alternates 3 mW / 1 mW; the rail must
        hold the paper's 2.1 V line once charged."""
        model = RectifierEnvelopeModel()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1]
        t_start, t_bit = 300e-6, 10e-6

        def p_in(t):
            k = int((t - t_start) / t_bit)
            if 0 <= k < len(bits):
                return 3e-3 if bits[k] else 1e-3
            return 5e-3

        trace = model.simulate(p_in, lambda t: 350e-6, 600e-6)
        assert trace.minimum_after(290e-6) > 2.1

    def test_power_interruption_drains_rail(self):
        model = RectifierEnvelopeModel()
        trace = model.simulate(
            lambda t: 5e-3 if t < 300e-6 else 0.0,
            lambda t: 350e-6, 2.5e-3)
        assert trace.v_out.v[-1] < 0.5

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            RectifierEnvelopeModel(efficiency=1.5)
        with pytest.raises(ValueError):
            RectifierEnvelopeModel(efficiency=0.0)

    def test_minimum_after_helper(self):
        model = RectifierEnvelopeModel()
        trace = model.simulate(lambda t: 5e-3, lambda t: 350e-6, 300e-6)
        assert trace.minimum_after(250e-6) > trace.minimum_after(10e-6)


class TestEnvelopeSpiceConsistency:
    def test_early_charge_rate_within_band(self):
        """The envelope abstraction must track the carrier-resolved
        netlist on the early charge ramp (0-60 us) to within ~40%.

        The drive is the matched 5 mW Thevenin amplitude
        (sqrt(8*P*R)/2 = 1.22 V); the looseness of the band is honest —
        the behavioural diode netlist loses more than the paper's active
        CMOS rectifier, which the envelope model is calibrated to.
        """
        import math

        v_matched = math.sqrt(8 * 5e-3 * 150.0) / 2.0
        ckt = build_rectifier_circuit(v_in_amplitude=v_matched)
        res = run(ckt, 60e-6)
        v_spice = float(res.voltage("vo").value_at(60e-6))
        model = RectifierEnvelopeModel()
        trace = model.simulate(lambda t: 5e-3, lambda t: 350e-6, 60e-6)
        v_env = float(trace.v_out.value_at(60e-6))
        # Same order, with the envelope (calibrated to the paper's active
        # CMOS rectifier) charging faster than the junction-diode netlist.
        assert 1.0 <= v_env / v_spice <= 2.0
