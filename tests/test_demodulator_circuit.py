"""Transistor-level validation of the Fig. 9 ASK demodulator.

These are the heaviest tests in the suite (carrier-resolved, ~10 devices)
— kept to short bit patterns.
"""

import pytest

from repro.power.demodulator_circuit import (
    build_demodulator_circuit,
    demodulate_with_circuit,
)
from repro.spice import transient


class TestFig9Demodulator:
    def test_recovers_alternating_bits(self):
        bits = [1, 0, 1, 0]
        recovered, _ = demodulate_with_circuit(bits)
        assert recovered == bits

    def test_recovers_runs(self):
        bits = [0, 0, 1, 1, 0]
        recovered, _ = demodulate_with_circuit(bits)
        assert recovered == bits

    def test_hold_node_tracks_two_levels(self):
        bits = [1, 0, 1]
        _, res = demodulate_with_circuit(bits)
        v_hold = res.voltage("hold")
        t_bit = 1e-5
        v_one = float(v_hold.value_at(0.42 * t_bit))
        v_zero = float(v_hold.value_at(1.42 * t_bit))
        assert v_one > v_zero + 0.2  # clear level separation

    def test_phi2_discharges_hold(self):
        """During phi2 the hold capacitor is discharged — the paper's
        'during this phase, capacitor C2 is discharged'."""
        bits = [1, 1]
        _, res = demodulate_with_circuit(bits)
        v_hold = res.voltage("hold")
        t_bit = 1e-5
        v_tracked = float(v_hold.value_at(0.42 * t_bit))
        v_dumped = float(v_hold.value_at(0.90 * t_bit))
        assert v_dumped < 0.3 * v_tracked

    def test_output_is_logic_level(self):
        bits = [1, 0]
        _, res = demodulate_with_circuit(bits)
        vdem = res.voltage("vdem")
        assert vdem.max() > 1.5        # reaches the 1.8 V rail
        assert vdem.min() > -0.3

    def test_circuit_builds_with_custom_depth(self):
        ckt, clock = build_demodulator_circuit(
            [1, 0], depth=0.6, amplitude=1.2)
        assert "M10" in ckt
        assert clock.freq == pytest.approx(100e3)
        # A very short run just to prove it integrates.
        res = transient(ckt, t_stop=2e-6, dt=1 / (5e6 * 24),
                        method="trap", use_ic=True)
        assert res.voltage("hold").max() < 2.5
