"""Tests for the regulator, storage cap, monitors, and power budget."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.power import (
    LowDropoutRegulator,
    PowerBudget,
    PowerOnReset,
    SENSOR_HIGH_POWER,
    SENSOR_LOW_POWER,
    SensorMode,
    StorageCapacitor,
    UndervoltageMonitor,
)
from repro.signals import Waveform


class TestRegulator:
    @pytest.fixture
    def ldo(self):
        return LowDropoutRegulator()

    def test_paper_dropout_rule(self, ldo):
        """E2 premise: 1.8 V out + 300 mV dropout -> Vin_min = 2.1 V."""
        assert ldo.v_in_min == pytest.approx(2.1)
        assert ldo.in_regulation(2.1)
        assert not ldo.in_regulation(2.09)

    def test_regulated_output(self, ldo):
        assert ldo.output_voltage(2.75) == pytest.approx(1.8, abs=2e-3)

    def test_dropout_tracking(self, ldo):
        assert ldo.output_voltage(2.0) == pytest.approx(1.7)
        assert ldo.output_voltage(0.2) == pytest.approx(0.0)

    def test_zero_input(self, ldo):
        assert ldo.output_voltage(0.0) == 0.0
        assert ldo.output_voltage(-1.0) == 0.0

    def test_load_regulation_droop(self, ldo):
        v_light = ldo.output_voltage(2.75, 10e-6)
        v_heavy = ldo.output_voltage(2.75, 1.3e-3)
        assert v_light > v_heavy
        assert v_light - v_heavy < 0.01  # sub-10 mV over full load range

    def test_line_regulation_small(self, ldo):
        v_low = ldo.output_voltage(2.2)
        v_high = ldo.output_voltage(3.0)
        assert abs(v_high - v_low) < 0.01

    def test_rejects_negative_load(self, ldo):
        with pytest.raises(ValueError):
            ldo.output_voltage(2.75, -1e-3)

    def test_rejects_overload(self, ldo):
        with pytest.raises(ValueError, match="exceeds"):
            ldo.output_voltage(2.75, 1.0)

    def test_input_current_includes_quiescent(self, ldo):
        assert ldo.input_current(1e-3) == pytest.approx(1e-3 + 2e-6)

    def test_efficiency_ratio(self, ldo):
        """Series LDO efficiency ~ Vout/Vin for negligible Iq."""
        eta = ldo.power_efficiency(2.75, 1e-3)
        assert eta == pytest.approx(1.8 / 2.75, rel=0.02)

    def test_regulate_waveform(self, ldo):
        w = Waveform([0, 1e-3, 2e-3], [2.75, 2.75, 1.9])
        out = ldo.regulate_waveform(w, 350e-6)
        assert out.v[0] == pytest.approx(1.8, abs=2e-3)
        assert out.v[-1] == pytest.approx(1.6, abs=1e-6)

    @given(st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=50)
    def test_output_never_exceeds_input(self, v_in):
        ldo = LowDropoutRegulator()
        assert ldo.output_voltage(v_in) <= max(v_in, 0.0) + 1e-12

    @given(st.floats(min_value=2.1, max_value=5.0),
           st.floats(min_value=0.0, max_value=5e-3))
    @settings(max_examples=50)
    def test_regulated_band(self, v_in, i_load):
        """In regulation, the output stays within 10 mV of nominal."""
        ldo = LowDropoutRegulator()
        assert abs(ldo.output_voltage(v_in, i_load) - 1.8) < 0.01


class TestStorageCapacitor:
    def test_droop_formula(self):
        cap = StorageCapacitor(250e-9, esr=0.0)
        # 350 uA for 15 us (one LSK bit): dV = I*t/C = 21 mV.
        assert cap.droop(350e-6, 15e-6) == pytest.approx(0.021)

    def test_esr_adds_step(self):
        ideal = StorageCapacitor(250e-9, esr=0.0)
        real = StorageCapacitor(250e-9, esr=1.0)
        assert real.droop(1e-3, 1e-6) - ideal.droop(1e-3, 1e-6) == \
            pytest.approx(1e-3)

    def test_holdup_time_lsk_margin(self):
        """Co at 2.75 V can carry the low-power sensor for many LSK bits
        before hitting 2.1 V (the paper's uplink never browns out)."""
        cap = StorageCapacitor(250e-9, esr=0.0)
        t = cap.holdup_time(350e-6, 2.75, 2.1)
        assert t > 30 * 15e-6  # > 30 bit periods at 66.6 kbps

    def test_holdup_zero_when_already_low(self):
        cap = StorageCapacitor(250e-9)
        assert cap.holdup_time(350e-6, 2.0, 2.1) == 0.0

    def test_energy(self):
        cap = StorageCapacitor(1e-6)
        assert cap.energy(2.0) == pytest.approx(2e-6)
        with pytest.raises(ValueError):
            cap.energy(-1.0)

    def test_size_for_holdup_roundtrip(self):
        cap = StorageCapacitor.size_for_holdup(
            350e-6, 15e-6, 2.75, 2.1, margin=2.0, esr=0.0)
        # With 2x margin, holdup is twice the requirement.
        assert cap.holdup_time(350e-6, 2.75, 2.1) == pytest.approx(
            30e-6, rel=1e-6)

    def test_size_rejects_impossible(self):
        with pytest.raises(ValueError):
            StorageCapacitor.size_for_holdup(1e-3, 1e-6, 2.0, 2.5)

    def test_carrier_ripple_small(self):
        cap = StorageCapacitor(250e-9)
        # 350 uA at 5 MHz: sub-mV ripple.
        assert cap.ripple_at_carrier(350e-6, 5e6) < 1e-3

    @given(st.floats(min_value=1e-9, max_value=1e-5),
           st.floats(min_value=1e-6, max_value=2e-3),
           st.floats(min_value=1e-6, max_value=1e-4))
    @settings(max_examples=40)
    def test_droop_linearity(self, c, i, t):
        cap = StorageCapacitor(c, esr=0.0)
        assert cap.droop(2 * i, t) == pytest.approx(2 * cap.droop(i, t))


class TestMonitors:
    def test_uvlo_trip_and_release(self):
        mon = UndervoltageMonitor(v_trip=2.1, hysteresis=0.05)
        assert not mon.update(1.0)       # starts bad
        assert mon.update(2.2)           # releases above 2.15
        assert mon.update(2.12)          # hysteresis: still good
        assert not mon.update(2.05)      # trips below 2.1
        assert not mon.update(2.12)      # needs 2.15 to release
        assert mon.update(2.16)

    def test_uvlo_scan_clean_rail(self):
        mon = UndervoltageMonitor()
        w = Waveform([0, 1e-3, 2e-3], [2.5, 2.6, 2.7])
        ok_frac, trips = mon.scan(w)
        assert ok_frac == 1.0
        assert trips.size == 0

    def test_uvlo_scan_detects_brownout(self):
        mon = UndervoltageMonitor()
        t = np.linspace(0, 1e-3, 101)
        v = np.where((t > 4e-4) & (t < 6e-4), 1.9, 2.5)
        ok_frac, trips = mon.scan(Waveform(t, v))
        assert ok_frac < 1.0
        assert trips.size >= 1

    def test_uvlo_rejects_negative_hysteresis(self):
        with pytest.raises(ValueError):
            UndervoltageMonitor(hysteresis=-0.1)

    def test_por_releases_after_hold(self):
        por = PowerOnReset(v_threshold=1.6, t_hold=50e-6)
        t = np.linspace(0, 500e-6, 501)
        v = np.minimum(t / 100e-6 * 1.0, 2.5)  # ramp, crosses 1.6 at 160us
        release = por.release_time(Waveform(t, v))
        assert release == pytest.approx(160e-6 + 50e-6, rel=0.05)

    def test_por_never_releases_on_bad_rail(self):
        por = PowerOnReset()
        w = Waveform([0, 1e-3], [1.0, 1.2])
        assert por.release_time(w) is None

    def test_por_restarts_hold_on_glitch(self):
        por = PowerOnReset(v_threshold=1.6, t_hold=100e-6)
        t = np.linspace(0, 400e-6, 401)
        v = np.full_like(t, 2.0)
        v[(t > 50e-6) & (t < 60e-6)] = 1.0  # glitch restarts the timer
        release = por.release_time(Waveform(t, v))
        assert release == pytest.approx(60e-6 + 100e-6 + 1e-6, abs=5e-6)


class TestPowerBudget:
    @pytest.fixture
    def budget(self):
        return PowerBudget()

    def test_paper_modes_exist(self):
        assert SENSOR_LOW_POWER.i_supply == pytest.approx(350e-6)
        assert SENSOR_HIGH_POWER.i_supply == pytest.approx(1.3e-3)
        assert SENSOR_LOW_POWER.power == pytest.approx(630e-6)

    def test_low_power_sustainable_at_5mw(self, budget):
        """E5: 5 mW sustains the comms mode with margin."""
        assert budget.sustainable(5e-3, SENSOR_LOW_POWER)

    def test_high_power_sustainable_at_5mw(self, budget):
        """Even the 1.3 mA measurement mode fits in 5 mW."""
        assert budget.sustainable(5e-3, SENSOR_HIGH_POWER)

    def test_high_power_fails_at_1mw(self, budget):
        """During an ASK logic-0 (1 mW) the measurement mode overdraws —
        which is why the sensor measures only outside communication."""
        assert not budget.sustainable(1e-3, SENSOR_HIGH_POWER)

    def test_low_power_marginal_at_1mw(self, budget):
        """The comms mode at the ASK-low level: close to break-even; Co
        rides through the sub-ms dips (tested in the Fig. 11 bench)."""
        margin, ratio = budget.margin(1e-3, SENSOR_LOW_POWER)
        assert 0.3 < ratio < 2.0

    def test_supported_modes_ordering(self, budget):
        modes = budget.supported_modes(5e-3)
        assert SENSOR_LOW_POWER in modes
        many = budget.supported_modes(100e-6)
        assert many == []

    def test_required_power_scales_with_current(self, budget):
        tiny = SensorMode("tiny", 50e-6)
        big = SensorMode("big", 500e-6)
        assert (budget.required_input_power(big)
                > 5 * budget.required_input_power(tiny))

    def test_custom_mode_from_measured_interface(self, budget):
        """The measured electronics (Section II-B): 45 uA + 240 uA at
        1.8 V needs well under 2 mW of carrier."""
        ei = SensorMode("electronic_interface", 285e-6)
        assert budget.required_input_power(ei) < 2e-3
