"""Tests for the harvesting comparison and the patch firmware."""

import pytest

from repro.harvest import HARVEST_LIBRARY, HarvestingSource, HybridSupply
from repro.patch.firmware import PatchFirmware, PatchState


class TestHarvestingSources:
    def test_library_covers_survey(self):
        assert {"thermoelectric", "biofuel_cell", "piezo_motion",
                "photovoltaic_subdermal"} <= set(HARVEST_LIBRARY)

    def test_average_power_scales_with_size(self):
        teg = HARVEST_LIBRARY["thermoelectric"]
        assert teg.average_power(2.0) == pytest.approx(
            2 * teg.average_power(1.0))

    def test_intermittency_derates(self):
        piezo = HARVEST_LIBRARY["piezo_motion"]
        continuous = HarvestingSource("x", piezo.power_density, 1.0,
                                      volumetric=True)
        assert piezo.average_power(1.0) < continuous.average_power(1.0)

    def test_all_sources_microwatt_scale(self):
        """The paper's premise: harvesting is uW, the link is mW."""
        for source in HARVEST_LIBRARY.values():
            p = source.average_power(1.0)
            assert p < 0.5e-3
            assert p > 0.1e-6

    def test_sustainable_duty_bounds(self):
        teg = HARVEST_LIBRARY["thermoelectric"]
        duty = teg.sustainable_duty(1.0, p_active=2.34e-3)
        assert 0.0 < duty < 0.05  # a percent-ish of the link's capability

    def test_duty_zero_when_below_sleep(self):
        weak = HarvestingSource("weak", 1e-6, 0.5)
        assert weak.sustainable_duty(1.0, 2e-3, p_sleep=5e-6) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HarvestingSource("bad", -1e-6, 0.5)
        with pytest.raises(ValueError):
            HarvestingSource("bad", 1e-6, 0.0)


class TestHybridSupply:
    @pytest.fixture
    def hybrid(self):
        return HybridSupply(HARVEST_LIBRARY["thermoelectric"], 1.0)

    def test_buffering_a_measurement_takes_minutes(self, hybrid):
        t = hybrid.time_to_buffer_one_measurement()
        assert 10.0 < t < 600.0  # vs instantaneous on the link

    def test_measurements_per_day_finite(self, hybrid):
        n = hybrid.measurements_per_day()
        assert 100 < n < 10000  # trickle duty, not continuous

    def test_buffer_runtime_with_surplus(self, hybrid):
        assert hybrid.buffer_runtime(1e-6) == float("inf")
        finite = hybrid.buffer_runtime(1e-3)
        assert 0 < finite < 1e4

    def test_comparison_row_shape(self, hybrid):
        name, uw, duty, link_duty = hybrid.comparison_row()
        assert name == "thermoelectric"
        assert duty < link_duty == 1.0


class TestPatchFirmware:
    @pytest.fixture
    def fw(self):
        fw = PatchFirmware()
        fw.handle("boot_done")
        return fw

    def test_boot_sequence(self):
        fw = PatchFirmware()
        assert fw.state is PatchState.BOOT
        fw.handle("boot_done")
        assert fw.state is PatchState.IDLE

    def test_connect_disconnect(self, fw):
        fw.handle("bt_connect")
        assert fw.state is PatchState.CONNECTED
        fw.handle("bt_disconnect")
        assert fw.state is PatchState.IDLE

    def test_powering_from_idle_or_connected(self, fw):
        fw.handle("start_powering")
        assert fw.state is PatchState.POWERING
        assert fw.transmitting
        fw.handle("stop_powering")
        assert fw.state is PatchState.IDLE
        assert not fw.transmitting

    def test_stop_powering_returns_to_connected(self, fw):
        fw.handle("bt_connect")
        fw.handle("start_powering")
        fw.handle("stop_powering")
        assert fw.state is PatchState.CONNECTED

    def test_comms_only_while_powering(self, fw):
        with pytest.raises(RuntimeError, match="invalid in state"):
            fw.handle("send_frame")
        fw.handle("start_powering")
        fw.handle("send_frame")
        assert fw.state is PatchState.DOWNLINK

    def test_full_measurement_cycle(self, fw):
        fw.handle("start_powering")
        fw.run_measurement_cycle()
        assert fw.state is PatchState.POWERING
        events = [r.event for r in fw.log]
        assert events[-3:] == ["send_frame", "frame_sent", "uplink_done"]

    def test_uplink_timeout(self, fw):
        fw.handle("start_powering")
        fw.handle("send_frame")
        fw.handle("frame_sent", at_time=1.0)
        fw.handle("tick", at_time=1.0 + 0.049)
        assert fw.state is PatchState.AWAIT_UPLINK  # not yet
        fw.handle("tick", at_time=1.0 + 0.051)
        assert fw.state is PatchState.POWERING      # timed out
        assert fw.log[-1].event == "uplink_timeout"

    def test_battery_guard_kills_transmitter(self, fw):
        fw.handle("start_powering")
        fw.check_battery(0.05)
        assert fw.state is PatchState.LOW_BATTERY
        assert not fw.transmitting
        with pytest.raises(RuntimeError):
            fw.handle("start_powering")
        fw.handle("battery_ok")
        assert fw.state is PatchState.IDLE

    def test_battery_ok_only_from_low(self, fw):
        with pytest.raises(RuntimeError):
            fw.handle("battery_ok")

    def test_disconnect_tears_down_comms(self, fw):
        fw.handle("bt_connect")
        fw.handle("start_powering")
        fw.handle("send_frame")
        fw.handle("bt_disconnect")
        assert fw.state is PatchState.IDLE

    def test_time_cannot_reverse(self, fw):
        fw.handle("start_powering", at_time=1.0)
        with pytest.raises(ValueError):
            fw.handle("stop_powering", at_time=0.5)

    def test_unknown_event(self, fw):
        with pytest.raises(ValueError, match="unknown event"):
            fw.handle("warp_drive")

    def test_transition_log(self, fw):
        fw.handle("start_powering")
        assert len(fw.log) == 2  # boot_done + start_powering
        assert fw.log[-1].from_state is PatchState.IDLE
        assert fw.log[-1].to_state is PatchState.POWERING
