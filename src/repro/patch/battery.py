"""Li-ion battery model for the patch.

The paper cites modern Li-ion energy density (~0.2 Wh/g) and the nearly
flat discharge voltage "until they are discharged to 75%-80%" (ref [5]).
The model: an OCV-vs-state-of-charge curve with the flat plateau, internal
resistance, and capacity bookkeeping under a load profile.
"""

from __future__ import annotations

import math

from repro.util import require_in_range, require_positive

#: OCV curve knots (state-of-charge, volts) for a single Li-ion cell:
#: flat 3.7 V plateau over the top ~75-80%, knee, then fast falloff.
_OCV_KNOTS = [
    (0.00, 3.00),
    (0.05, 3.30),
    (0.10, 3.50),
    (0.20, 3.62),
    (0.25, 3.68),
    (0.50, 3.72),
    (0.75, 3.78),
    (0.90, 3.95),
    (1.00, 4.20),
]


class LiIonBattery:
    """A single-cell Li-ion battery.

    ``capacity_ah`` full charge; ``energy_density_wh_per_g`` sizes the
    mass (paper: up to 0.2 Wh/g); ``r_internal`` sags the terminal
    voltage under load; ``v_cutoff`` ends discharge.
    """

    def __init__(self, capacity_ah=0.110, r_internal=0.15, v_cutoff=3.0,
                 energy_density_wh_per_g=0.2, soc=1.0):
        self.capacity_ah = require_positive(capacity_ah, "capacity_ah")
        self.r_internal = float(r_internal)
        if self.r_internal < 0:
            raise ValueError("r_internal must be >= 0")
        self.v_cutoff = require_positive(v_cutoff, "v_cutoff")
        self.energy_density = require_positive(
            energy_density_wh_per_g, "energy_density_wh_per_g")
        self.soc = require_in_range(soc, 0.0, 1.0, "soc")

    def open_circuit_voltage(self, soc=None):
        """OCV at a state of charge (piecewise-linear knots)."""
        s = self.soc if soc is None else require_in_range(soc, 0.0, 1.0,
                                                          "soc")
        knots = _OCV_KNOTS
        for (s0, v0), (s1, v1) in zip(knots, knots[1:]):
            if s <= s1:
                frac = (s - s0) / (s1 - s0)
                return v0 + frac * (v1 - v0)
        return knots[-1][1]

    def terminal_voltage(self, i_load, soc=None):
        """Voltage under ``i_load`` (A) including IR sag."""
        if i_load < 0:
            raise ValueError("i_load must be >= 0 (discharge)")
        return self.open_circuit_voltage(soc) - i_load * self.r_internal

    @property
    def is_flat_region(self):
        """True while on the 3.6-3.8 V plateau (top ~75-80% of charge,
        the ref [5] observation)."""
        return self.soc >= 0.2

    def mass_grams(self):
        """Cell mass implied by the energy density."""
        energy_wh = self.capacity_ah * 3.7
        return energy_wh / self.energy_density

    def runtime_hours(self, i_load):
        """Hours until cutoff at constant current from the current SOC
        (usable charge: down to the knee where voltage collapses)."""
        require_positive(i_load, "i_load")
        usable_fraction = max(self.soc - 0.05, 0.0)
        return self.capacity_ah * usable_fraction / i_load

    def discharge(self, i_load, duration_h):
        """Drain at ``i_load`` for ``duration_h``; returns the new SOC.
        Raises if the battery hits cutoff first."""
        require_positive(duration_h, "duration_h")
        if i_load < 0:
            raise ValueError("i_load must be >= 0")
        drained = i_load * duration_h / self.capacity_ah
        new_soc = self.soc - drained
        if new_soc < 0.0:
            raise RuntimeError(
                f"battery exhausted: needed {drained:.3f} of capacity, "
                f"had {self.soc:.3f}")
        self.soc = new_soc
        return self.soc

    def profile_runtime_hours(self, segments):
        """Runtime under a repeating duty-cycle profile.

        ``segments`` is a list of (current_A, fraction) with fractions
        summing to 1; the average current sets the runtime.
        """
        total_frac = sum(f for _, f in segments)
        if not math.isclose(total_frac, 1.0, rel_tol=1e-6):
            raise ValueError(f"fractions must sum to 1, got {total_frac}")
        i_avg = sum(i * f for i, f in segments)
        return self.runtime_hours(i_avg)
