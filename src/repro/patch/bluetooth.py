"""Bluetooth radio energy model (the patch's long-range link).

"The whole system ... can be driven by a remote device, such as a laptop
or a smartphone, by means of bluetooth connection."  Classic Bluetooth
(the 2012-era module the IronIC patch carries) dominates the patch's
budget when connected — which is why the paper's battery life drops from
~10 h idle to ~3.5 h connected.
"""

from __future__ import annotations

from repro.util import require_positive


class BluetoothRadio:
    """Connection-state energy model of the patch's BT module.

    Currents are module-level figures typical of 2012-era SPP modules
    (e.g. RN-42 class): idle/sniff a few mA, connected ~20 mA, and an
    extra per-byte transmit cost.
    """

    def __init__(self, i_idle=3e-3, i_connected=20.5e-3, i_tx_peak=35e-3,
                 throughput_bps=115200.0):
        self.i_idle = require_positive(i_idle, "i_idle")
        self.i_connected = require_positive(i_connected, "i_connected")
        self.i_tx_peak = require_positive(i_tx_peak, "i_tx_peak")
        self.throughput_bps = require_positive(
            throughput_bps, "throughput_bps")
        if not i_idle < i_connected < i_tx_peak:
            raise ValueError(
                "expected i_idle < i_connected < i_tx_peak")

    def current(self, connected, tx_duty=0.0):
        """Average current in a state; ``tx_duty`` is the fraction of
        time actively transmitting while connected."""
        if not 0.0 <= tx_duty <= 1.0:
            raise ValueError("tx_duty must be in [0, 1]")
        if not connected:
            if tx_duty > 0:
                raise ValueError("cannot transmit while disconnected")
            return self.i_idle
        return (1.0 - tx_duty) * self.i_connected + tx_duty * self.i_tx_peak

    def tx_time_for_payload(self, n_bytes):
        """Airtime to forward ``n_bytes`` of sensor data upstream."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        return n_bytes * 8.0 / self.throughput_bps

    def energy_per_measurement(self, n_bytes, v_supply=3.7):
        """Joules to forward one measurement's payload."""
        t = self.tx_time_for_payload(n_bytes)
        return self.i_tx_peak * v_supply * t
