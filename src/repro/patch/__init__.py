"""The external IronIC patch (paper Section III).

A flexible skin patch hosting the class-E transmitter, the ASK modulator,
the LSK detector, a bluetooth radio for long-range connectivity, and a
small Li-ion battery.  This package models the battery and radio energy
behaviour and reproduces the paper's battery-life figures: ~10 h idle,
~3.5 h bluetooth-connected, ~1.5 h of continuous power transmission.
"""

from repro.patch.battery import LiIonBattery
from repro.patch.bluetooth import BluetoothRadio
from repro.patch.device import IronicPatch, PatchScenario, SCENARIOS
from repro.patch.firmware import PatchFirmware, PatchState

__all__ = [
    "LiIonBattery",
    "BluetoothRadio",
    "IronicPatch",
    "PatchScenario",
    "SCENARIOS",
    "PatchFirmware",
    "PatchState",
]
