"""Patch firmware: the session state machine the microcontroller runs.

The paper's patch is driven from a laptop/smartphone over bluetooth and
sequences power delivery and half-duplex communication.  This model
captures that control flow as an explicit event-driven state machine so
session logic (timeouts, battery guards, direction turn-taking) is
testable without waveforms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util import require_positive


class PatchState(enum.Enum):
    """Firmware top-level states."""

    BOOT = "boot"
    IDLE = "idle"
    CONNECTED = "connected"
    POWERING = "powering"
    DOWNLINK = "downlink"
    AWAIT_UPLINK = "await_uplink"
    LOW_BATTERY = "low_battery"


@dataclass
class TransitionRecord:
    """One logged transition."""

    time: float
    event: str
    from_state: PatchState
    to_state: PatchState


class PatchFirmware:
    """Event-driven controller.

    Events: ``bt_connect``, ``bt_disconnect``, ``start_powering``,
    ``stop_powering``, ``send_frame``, ``frame_sent``, ``uplink_done``,
    ``uplink_timeout``, ``battery_low``, ``battery_ok``, ``tick``.

    Invariants enforced:
    * communication only happens while powering (the carrier *is* the
      downlink medium and the uplink needs the reflected load);
    * a low battery forces the transmitter off and blocks powering;
    * the uplink wait is bounded by ``uplink_timeout_s``.
    """

    def __init__(self, uplink_timeout_s=50e-3, battery_low_threshold=0.1):
        self.uplink_timeout_s = require_positive(uplink_timeout_s,
                                                 "uplink_timeout_s")
        if not 0 < battery_low_threshold < 1:
            raise ValueError("battery_low_threshold must be in (0,1)")
        self.battery_low_threshold = battery_low_threshold
        self.state = PatchState.BOOT
        self.time = 0.0
        self.log = []
        self._uplink_deadline = None
        self._was_connected = False

    # ------------------------------------------------------------------
    def _go(self, event, new_state):
        self.log.append(TransitionRecord(self.time, event, self.state,
                                         new_state))
        self.state = new_state

    def _reject(self, event):
        raise RuntimeError(
            f"event {event!r} invalid in state {self.state.value!r}")

    def handle(self, event, at_time=None):
        """Process one event; returns the new state."""
        if at_time is not None:
            if at_time < self.time:
                raise ValueError("time must not go backwards")
            self.time = at_time
        handler = getattr(self, f"_on_{event}", None)
        if handler is None:
            raise ValueError(f"unknown event {event!r}")
        handler(event)
        return self.state

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_boot_done(self, event):
        if self.state is not PatchState.BOOT:
            self._reject(event)
        self._go(event, PatchState.IDLE)

    def _on_bt_connect(self, event):
        if self.state is not PatchState.IDLE:
            self._reject(event)
        self._was_connected = True
        self._go(event, PatchState.CONNECTED)

    def _on_bt_disconnect(self, event):
        if self.state in (PatchState.BOOT, PatchState.LOW_BATTERY):
            self._reject(event)
        self._was_connected = False
        # Any in-flight powering/communication is torn down.
        self._uplink_deadline = None
        self._go(event, PatchState.IDLE)

    def _on_start_powering(self, event):
        if self.state not in (PatchState.IDLE, PatchState.CONNECTED):
            self._reject(event)
        self._go(event, PatchState.POWERING)

    def _on_stop_powering(self, event):
        if self.state not in (PatchState.POWERING, PatchState.DOWNLINK,
                              PatchState.AWAIT_UPLINK):
            self._reject(event)
        self._uplink_deadline = None
        self._go(event, PatchState.CONNECTED if self._was_connected
                 else PatchState.IDLE)

    def _on_send_frame(self, event):
        if self.state is not PatchState.POWERING:
            self._reject(event)
        self._go(event, PatchState.DOWNLINK)

    def _on_frame_sent(self, event):
        if self.state is not PatchState.DOWNLINK:
            self._reject(event)
        self._uplink_deadline = self.time + self.uplink_timeout_s
        self._go(event, PatchState.AWAIT_UPLINK)

    def _on_uplink_done(self, event):
        if self.state is not PatchState.AWAIT_UPLINK:
            self._reject(event)
        self._uplink_deadline = None
        self._go(event, PatchState.POWERING)

    def _on_battery_low(self, event):
        # Always honoured: kill the transmitter wherever we are.
        self._uplink_deadline = None
        self._go(event, PatchState.LOW_BATTERY)

    def _on_battery_ok(self, event):
        if self.state is not PatchState.LOW_BATTERY:
            self._reject(event)
        self._go(event, PatchState.IDLE)

    def _on_tick(self, event):
        """Time-driven housekeeping: uplink timeout."""
        if (self.state is PatchState.AWAIT_UPLINK
                and self._uplink_deadline is not None
                and self.time >= self._uplink_deadline):
            self._uplink_deadline = None
            self._go("uplink_timeout", PatchState.POWERING)

    # ------------------------------------------------------------------
    @property
    def transmitting(self):
        """Is the class-E carrier on?"""
        return self.state in (PatchState.POWERING, PatchState.DOWNLINK,
                              PatchState.AWAIT_UPLINK)

    def check_battery(self, soc):
        """Feed a battery state-of-charge; may force LOW_BATTERY."""
        if soc < 0 or soc > 1:
            raise ValueError("soc must be in [0, 1]")
        if (soc < self.battery_low_threshold
                and self.state is not PatchState.LOW_BATTERY):
            self.handle("battery_low")
        return self.state

    def run_measurement_cycle(self, t_downlink=1.8e-3, t_uplink=5e-3):
        """A canonical command/response exchange from POWERING.

        The exchange is sequenced as scheduled events on the shared
        :class:`~repro.engine.core.SimulationEngine`, dispatched to this
        state machine at their exact timestamps.
        """
        from repro.engine.core import SimulationEngine
        from repro.engine.components import FirmwareEventFeed

        if self.state is not PatchState.POWERING:
            raise RuntimeError("must be POWERING to run a cycle")
        require_positive(t_downlink, "t_downlink")
        require_positive(t_uplink, "t_uplink")
        t_sent = self.time + t_downlink
        t_done = t_sent + t_uplink
        engine = SimulationEngine([self.time, t_done],
                                  record_initial=False)
        engine.add(FirmwareEventFeed(self))
        engine.schedule(self.time, "send_frame")
        engine.schedule(t_sent, "frame_sent")
        engine.schedule(t_done, "uplink_done")
        engine.run()
        return self.state
