"""The IronIC patch device model and its operating scenarios.

Reproduces the paper's Section III-B battery-life figures from a current
budget: ~10 h disconnected and not powering, ~3.5 h bluetooth-connected,
~1.5 h of continuous power transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patch.battery import LiIonBattery
from repro.patch.bluetooth import BluetoothRadio
from repro.util import require_positive


@dataclass(frozen=True)
class PatchScenario:
    """One operating mode of the patch."""

    name: str
    bluetooth_connected: bool
    powering: bool
    description: str


#: The three scenarios the paper reports battery life for.
SCENARIOS = {
    "idle": PatchScenario(
        "idle", bluetooth_connected=False, powering=False,
        description="disconnected from bluetooth, not sending power"),
    "connected": PatchScenario(
        "connected", bluetooth_connected=True, powering=False,
        description="bluetooth-connected to a laptop or smartphone"),
    "powering": PatchScenario(
        "powering", bluetooth_connected=False, powering=True,
        description="continuously powering the implant, bluetooth off"),
}


class IronicPatch:
    """Current-budget model of the patch.

    ``i_mcu`` covers the microcontroller + housekeeping; the class-E
    supply current follows from the delivered power and the end-to-end
    efficiency (amplifier x link x rectification), which for a 6 mm link
    with a mm-scale receiver sits in the mid-single-digit percent.
    """

    def __init__(self, battery=None, radio=None, i_mcu=7.5e-3,
                 p_delivered=15e-3, end_to_end_efficiency=0.069,
                 v_supply=3.7):
        self.battery = battery or LiIonBattery()
        self.radio = radio or BluetoothRadio()
        self.i_mcu = require_positive(i_mcu, "i_mcu")
        self.p_delivered = require_positive(p_delivered, "p_delivered")
        self.efficiency = require_positive(
            end_to_end_efficiency, "end_to_end_efficiency")
        if self.efficiency > 1.0:
            raise ValueError("end_to_end_efficiency must be <= 1")
        self.v_supply = require_positive(v_supply, "v_supply")

    def class_e_supply_current(self):
        """DC current of the transmitter while powering."""
        p_dc = self.p_delivered / self.efficiency
        return p_dc / self.v_supply

    def scenario_current(self, scenario, tx_duty=0.0):
        """Average battery current in a scenario."""
        if isinstance(scenario, str):
            scenario = SCENARIOS[scenario]
        i = self.i_mcu
        i += self.radio.current(scenario.bluetooth_connected, tx_duty)
        if scenario.powering:
            i += self.class_e_supply_current()
        return i

    def battery_life_hours(self, scenario, tx_duty=0.0):
        """Runtime in a scenario from the current battery SOC."""
        return self.battery.runtime_hours(
            self.scenario_current(scenario, tx_duty))

    def battery_life_table(self):
        """{scenario: hours} for the paper's three modes."""
        return {name: self.battery_life_hours(name)
                for name in SCENARIOS}

    def monitoring_session_life(self, duty_powering, duty_connected):
        """Mixed-profile life: a realistic session alternates powering
        the implant and syncing over bluetooth."""
        if duty_powering + duty_connected > 1.0:
            raise ValueError("duty fractions exceed 100%")
        idle = 1.0 - duty_powering - duty_connected
        segments = [
            (self.scenario_current("powering"), duty_powering),
            (self.scenario_current("connected"), duty_connected),
            (self.scenario_current("idle"), idle),
        ]
        return self.battery.profile_runtime_hours(segments)
