"""repro — reproduction of "Electronic Implants: Power Delivery and
Management" (Olivo, Ghoreishizadeh, Carrara, De Micheli — DATE 2013).

A simulation library for remotely-powered implantable biosensors:

* :mod:`repro.spice`     — a compact MNA circuit simulator (substrate)
* :mod:`repro.signals`   — waveforms and signal measurements
* :mod:`repro.link`      — spiral coils, coupling, tissue, matching
* :mod:`repro.amplifier` — class-E transmitter design and simulation
* :mod:`repro.power`     — rectifier, LDO, storage, supervision, budget
* :mod:`repro.comms`     — ASK downlink, LSK uplink, framing, protocol
* :mod:`repro.adc`       — 14-bit second-order sigma-delta converter
* :mod:`repro.sensor`    — enzyme electrode, potentiostat, bandgaps
* :mod:`repro.patch`     — the external IronIC patch (battery, bluetooth)
* :mod:`repro.engine`    — the unified discrete-time simulation core and
  the vectorized :class:`~repro.engine.scenario.ScenarioBatch` runner
* :mod:`repro.core`      — the integrated system and paper constants

Quickstart::

    from repro.core import RemotePoweringSystem
    system = RemotePoweringSystem(distance=10e-3)
    print(system.measure_lactate(0.8))
"""

from repro.core import PAPER, RemotePoweringSystem, ImplantDevice

__version__ = "1.0.0"

__all__ = ["PAPER", "RemotePoweringSystem", "ImplantDevice", "__version__"]
