"""Class-E power-amplifier design and simulation (the patch transmitter).

The IronIC patch drives its transmitting inductor with a class-E
amplifier at 5 MHz / 50% duty (paper Section III-A): by tuning C3 and C4
the switch voltage and current are never simultaneously non-zero, for a
theoretical efficiency of 100% (refs [25-27]).  This package provides the
idealized Raab/Sokal design equations, a SPICE-netlist builder for the
amplifier, and measurement helpers (efficiency, zero-voltage-switching
quality, drain stress).
"""

from repro.amplifier.classe import ClassEDesign
from repro.amplifier.simulate import (
    build_class_e_circuit,
    simulate_class_e,
    ClassEMeasurement,
)

__all__ = [
    "ClassEDesign",
    "build_class_e_circuit",
    "simulate_class_e",
    "ClassEMeasurement",
]
