"""Transient simulation of the class-E stage on the `repro.spice` engine.

Builds the paper's Fig. 6 output stage as a netlist — supply choke,
switching transistor M2 (an ideal switch driven by the 5 MHz / 50% square
wave), shunt capacitor C3, series capacitor C4, and the transmitting coil
with its series resistance plus the link's reflected resistance — then
measures efficiency, ZVS quality and device stress from the waveforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.signals import crossing_times
from repro.spice import Circuit, square, transient
from repro.util import require_positive


def build_class_e_circuit(design, r_sense=0.0, extra_load=0.0,
                          drive_level=1.0):
    """Netlist of the class-E output stage.

    Nodes: ``vdd`` - supply, ``drain`` - switch node, ``out`` - load.
    ``r_sense`` inserts the paper's R9 supply-current sense resistor.
    ``extra_load`` adds series resistance (e.g. reflected link impedance).
    ``drive_level`` scales the supply for ASK amplitude modulation.
    """
    ckt = Circuit("class_e")
    v_supply = design.vdd * float(drive_level)
    if r_sense > 0.0:
        ckt.add_vsource("VDD", "vbat", "0", v_supply)
        ckt.add_resistor("R9", "vbat", "vdd", r_sense)
    else:
        ckt.add_vsource("VDD", "vdd", "0", v_supply)
    ckt.add_inductor("L1", "vdd", "drain", design.l_choke)
    # Gate drive: 5 MHz, 50% duty square (paper Section III-A).
    ckt.add_vsource("VG", "gate", "0", square(0.0, 5.0, design.freq, duty=0.5))
    ckt.add_switch("M2", "drain", "0", "gate", "0",
                   v_threshold=2.5, r_on=0.2, r_off=1e7)
    ckt.add_capacitor("C3", "drain", "0", design.c_shunt)
    ckt.add_capacitor("C4", "drain", "tank", design.c_series)
    ckt.add_inductor("L2", "tank", "out", design.l_series)
    ckt.add_resistor("RL", "out", "0", design.r_load + float(extra_load))
    return ckt


@dataclass(frozen=True)
class ClassEMeasurement:
    """Waveform-derived figures of a simulated class-E run."""

    p_dc: float
    p_out: float
    efficiency: float
    v_switch_on: float        # drain voltage at the switch-on instant
    zvs_quality: float        # 1 - |v_on| / vdd_peak_ref (1 = ideal ZVS)
    peak_drain_voltage: float
    i_dc: float
    i_out_amplitude: float


def simulate_class_e(design, cycles=40, points_per_cycle=80,
                     settle_cycles=None, r_sense=0.0, extra_load=0.0,
                     drive_level=1.0):
    """Simulate and measure the class-E stage.

    The first ``settle_cycles`` (default: half the run) are discarded
    before averaging.  Returns (measurement, transient_result).
    """
    require_positive(cycles, "cycles")
    if settle_cycles is None:
        settle_cycles = cycles // 2
    if settle_cycles >= cycles:
        raise ValueError("settle_cycles must be < cycles")
    ckt = build_class_e_circuit(design, r_sense=r_sense,
                                extra_load=extra_load,
                                drive_level=drive_level)
    period = 1.0 / design.freq
    res = transient(
        ckt,
        t_stop=cycles * period,
        dt=period / points_per_cycle,
        method="trap",
        use_ic=True,
    )
    t_lo = settle_cycles * period
    t_hi = cycles * period
    v_drain = res.voltage("drain").clip_time(t_lo, t_hi)
    v_out = res.voltage("out").clip_time(t_lo, t_hi)
    i_supply = res.branch_current("L1").clip_time(t_lo, t_hi)
    v_gate = res.voltage("gate")

    r_total = design.r_load + float(extra_load)
    p_out = v_out.rms() ** 2 / r_total
    i_dc = -i_supply.mean() if i_supply.mean() < 0 else i_supply.mean()
    p_dc = design.vdd * drive_level * abs(i_dc)

    # ZVS quality: drain voltage sampled at the gate's rising edges.
    switch_on_times = crossing_times(v_gate, 2.5, "rising")
    switch_on_times = switch_on_times[
        (switch_on_times > t_lo) & (switch_on_times < t_hi)]
    if switch_on_times.size:
        v_on = float(np.mean(np.abs(v_drain.value_at(switch_on_times))))
    else:
        v_on = float("nan")
    peak_ref = design.peak_switch_voltage * drive_level
    zvs = max(0.0, 1.0 - v_on / peak_ref) if peak_ref > 0 else 0.0

    meas = ClassEMeasurement(
        p_dc=p_dc,
        p_out=p_out,
        efficiency=p_out / p_dc if p_dc > 0 else 0.0,
        v_switch_on=v_on,
        zvs_quality=zvs,
        peak_drain_voltage=v_drain.max(),
        i_dc=abs(i_dc),
        i_out_amplitude=v_out.peak_to_peak() / (2.0 * r_total),
    )
    return meas, res
