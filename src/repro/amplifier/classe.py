"""Idealized class-E design equations (Raab 1977, Sokal 2001).

For supply ``vdd``, output power ``p_out``, switching frequency ``freq``
and loaded tank Q, the classical 50%-duty design is:

* optimal load resistance      R = 0.5768 * vdd^2 / p_out
* shunt (switch) capacitance   C_shunt = 0.1836 / (omega * R)
* excess series reactance      X = 1.1525 * R  (detunes the tank slightly
  inductive so the switch voltage returns to zero with zero slope)
* series tank                  L = Q*R/omega, C such that the tank minus
  the excess reactance resonates at omega
* stresses: V_sw,peak = 3.562*vdd, I_sw,peak = 2.862*I_dc

These are the equations the paper's design cites; the transient
simulation in :mod:`repro.amplifier.simulate` validates them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import require_positive

#: Raab's dimensionless constants for 50% duty cycle.
K_RESISTANCE = 8.0 / (math.pi**2 + 4.0)              # 0.5768
K_SHUNT_C = 1.0 / ((math.pi**2 / 4.0 + 1.0) * (math.pi / 2.0))  # 0.1836
K_EXCESS_X = 1.1525
K_PEAK_VOLTAGE = 3.562
K_PEAK_CURRENT = 2.862


@dataclass(frozen=True)
class ClassEDesign:
    """A solved class-E design.  Build with :meth:`for_output_power`."""

    vdd: float
    p_out: float
    freq: float
    q_loaded: float
    r_load: float
    c_shunt: float       # C3 in the paper's Fig. 6
    c_series: float      # C4 in the paper's Fig. 6
    l_series: float      # includes the transmitting coil L2
    l_choke: float

    @classmethod
    def for_output_power(cls, vdd, p_out, freq, q_loaded=7.0,
                         choke_ratio=20.0):
        """Design the amplifier for ``p_out`` into its optimal load.

        ``q_loaded`` is the loaded Q of the series tank (>= ~3 for the
        idealized equations to hold); ``choke_ratio`` sizes the supply
        choke as a multiple of the series inductance.
        """
        require_positive(vdd, "vdd")
        require_positive(p_out, "p_out")
        require_positive(freq, "freq")
        if q_loaded < 2.0:
            raise ValueError(f"q_loaded must be >= 2, got {q_loaded}")
        omega = 2.0 * math.pi * freq
        r = K_RESISTANCE * vdd * vdd / p_out
        c_shunt = K_SHUNT_C / (omega * r)
        l_series = q_loaded * r / omega
        # The tank (L_series, C_series) leaves +K_EXCESS_X*R un-resonated.
        x_c = omega * l_series - K_EXCESS_X * r
        if x_c <= 0:
            raise ValueError(
                "loaded Q too low to absorb the class-E excess reactance")
        c_series = 1.0 / (omega * x_c)
        return cls(
            vdd=vdd, p_out=p_out, freq=freq, q_loaded=q_loaded,
            r_load=r, c_shunt=c_shunt, c_series=c_series,
            l_series=l_series, l_choke=choke_ratio * l_series,
        )

    # -- derived quantities --------------------------------------------
    @property
    def omega(self):
        return 2.0 * math.pi * self.freq

    @property
    def i_dc(self):
        """Supply current drawn at the design point."""
        return self.p_out / self.vdd

    @property
    def peak_switch_voltage(self):
        """~3.56*vdd — sets the switch voltage rating."""
        return K_PEAK_VOLTAGE * self.vdd

    @property
    def peak_switch_current(self):
        """~2.86*I_dc — sets the switch current rating."""
        return K_PEAK_CURRENT * self.i_dc

    @property
    def output_current_amplitude(self):
        """Fundamental current amplitude in the series tank / coil:
        I = sqrt(2*P/R)."""
        return math.sqrt(2.0 * self.p_out / self.r_load)

    def detuned(self, shunt_error=0.0, series_error=0.0):
        """A copy with mis-tuned capacitors (for ZVS-sensitivity
        ablations): errors are fractional, e.g. +0.2 = 20% high."""
        return ClassEDesign(
            vdd=self.vdd, p_out=self.p_out, freq=self.freq,
            q_loaded=self.q_loaded, r_load=self.r_load,
            c_shunt=self.c_shunt * (1.0 + shunt_error),
            c_series=self.c_series * (1.0 + series_error),
            l_series=self.l_series, l_choke=self.l_choke,
        )

    def summary(self):
        """Human-readable component list."""
        from repro.util import format_eng

        return {
            "R_load": format_eng(self.r_load, "ohm"),
            "C_shunt (C3)": format_eng(self.c_shunt, "F"),
            "C_series (C4)": format_eng(self.c_series, "F"),
            "L_series (L2 tank)": format_eng(self.l_series, "H"),
            "L_choke (L1)": format_eng(self.l_choke, "H"),
            "I_dc": format_eng(self.i_dc, "A"),
            "V_switch_peak": format_eng(self.peak_switch_voltage, "V"),
        }
