"""Energy harvesting for implants (the paper's Section I context).

"Energy harvesting techniques exploit natural and/or artificial power
sources surrounding the person to assist the implanted batteries, to
recharge them and in certain cases replace them.  A review ... can be
found in [7]" — ref [7] being the authors' own survey.  This package
models the harvesting sources that survey covers and quantifies the
comparison the paper implies: what duty cycle each source can sustain
for this implant versus the 5 mW the inductive link delivers.
"""

from repro.harvest.sources import (
    HarvestingSource,
    HARVEST_LIBRARY,
    HybridSupply,
)

__all__ = ["HarvestingSource", "HARVEST_LIBRARY", "HybridSupply"]
