"""Harvesting-source models and the harvest-vs-remote-powering budget.

Power densities follow the ranges of the implant-harvesting literature
(the paper's ref [7]): thermoelectric generators on the core-skin
gradient, glucose biofuel cells in interstitial fluid, piezoelectric /
electromagnetic motion harvesters, and subdermal photovoltaics.  All
are orders of magnitude below the inductive link's milliwatts — the
quantitative reason the paper pursues remote powering for measurement
while harvesting suits trickle duties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import require_positive


@dataclass(frozen=True)
class HarvestingSource:
    """One harvesting mechanism.

    ``power_density`` is W per cm^2 of transducer (or per cm^3 for
    volumetric mechanisms, flagged by ``volumetric``); ``availability``
    is the fraction of time the source actually delivers (motion is
    intermittent, body heat is continuous).
    """

    name: str
    power_density: float
    availability: float
    volumetric: bool = False
    notes: str = ""

    def __post_init__(self):
        require_positive(self.power_density, "power_density")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")

    def average_power(self, size_cm):
        """Time-averaged harvest for a transducer of ``size_cm``
        (cm^2, or cm^3 if volumetric)."""
        require_positive(size_cm, "size_cm")
        return self.power_density * size_cm * self.availability

    def sustainable_duty(self, size_cm, p_active, p_sleep=2e-6):
        """Duty cycle of an ``p_active`` load this source can sustain
        (energy balance with a ``p_sleep`` floor); clipped to [0, 1].
        Returns 0 when the source cannot even hold the sleep floor."""
        require_positive(p_active, "p_active")
        p_avg = self.average_power(size_cm)
        if p_avg <= p_sleep:
            return 0.0
        duty = (p_avg - p_sleep) / (p_active - p_sleep) \
            if p_active > p_sleep else 1.0
        return min(duty, 1.0)


#: Representative sources from the implant-harvesting survey (ref [7]).
HARVEST_LIBRARY = {
    "thermoelectric": HarvestingSource(
        "thermoelectric", power_density=25e-6, availability=1.0,
        notes="core-skin gradient, ~1-2 K across the TEG"),
    "biofuel_cell": HarvestingSource(
        "biofuel_cell", power_density=10e-6, availability=1.0,
        notes="glucose/O2 in interstitial fluid"),
    "piezo_motion": HarvestingSource(
        "piezo_motion", power_density=100e-6, availability=0.15,
        volumetric=True, notes="body motion, intermittent"),
    "photovoltaic_subdermal": HarvestingSource(
        "photovoltaic_subdermal", power_density=6e-6, availability=0.3,
        notes="through-skin illumination, daylight only"),
}


class HybridSupply:
    """Harvester + storage + (optional) remote powering, budgeted.

    The paper's positioning: harvesting assists or recharges; the
    inductive link powers the real work.  This object makes that
    quantitative for the reproduction's sensor loads.
    """

    def __init__(self, harvester, size_cm, storage_capacity_j=0.5):
        self.harvester = harvester
        self.size_cm = require_positive(size_cm, "size_cm")
        self.storage_j = require_positive(storage_capacity_j,
                                          "storage_capacity_j")

    def harvest_power(self):
        return self.harvester.average_power(self.size_cm)

    def time_to_buffer_one_measurement(self, e_measurement=1.17e-3):
        """Seconds of harvesting needed to buffer one measurement's
        energy (default: 1.3 mA * 1.8 V * 0.5 s = 1.17 mJ)."""
        require_positive(e_measurement, "e_measurement")
        p = self.harvest_power()
        if p <= 0:
            return float("inf")
        return e_measurement / p

    def measurements_per_day(self, e_measurement=1.17e-3,
                             p_sleep=2e-6):
        """Measurements/day the harvester alone can sustain."""
        surplus = self.harvest_power() - p_sleep
        if surplus <= 0:
            return 0.0
        return surplus * 86400.0 / e_measurement

    def buffer_runtime(self, p_load):
        """How long the full storage buffer carries ``p_load`` with the
        harvester contributing."""
        require_positive(p_load, "p_load")
        net = p_load - self.harvest_power()
        if net <= 0:
            return float("inf")
        return self.storage_j / net

    def comparison_row(self, p_link=5e-3, p_active=2.34e-3):
        """(name, uW harvested, duty vs link duty) for the bench table:
        the link sustains p_active continuously (duty 1.0)."""
        duty = self.harvester.sustainable_duty(self.size_cm, p_active)
        return (self.harvester.name,
                self.harvest_power() * 1e6,
                duty,
                1.0 if p_link >= p_active else p_link / p_active)
