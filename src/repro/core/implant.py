"""The implanted device: power management + sensor, with a power state
machine.

States follow the physical rail: OFF until Co charges past the
power-on-reset, CHARGING until the rectifier output clears the 2.1 V
regulation minimum, then READY; measurement (high-power mode) and
communication (low-power mode) draw their Section IV-C currents.
"""

from __future__ import annotations

import enum

from repro.core.config import PAPER
from repro.power import (
    LowDropoutRegulator,
    PowerBudget,
    RectifierEnvelopeModel,
    SENSOR_HIGH_POWER,
    SENSOR_LOW_POWER,
    UndervoltageMonitor,
)
from repro.sensor import CLODX, ElectronicInterface


class ImplantState(enum.Enum):
    """Power states of the implant."""

    OFF = "off"
    CHARGING = "charging"
    READY = "ready"
    BROWNOUT = "brownout"


class ImplantDevice:
    """Power chain + electronic interface of the implanted sensor."""

    def __init__(self, enzyme=CLODX, rectifier_model=None, regulator=None,
                 monitor=None, interface=None):
        self.rectifier = rectifier_model or RectifierEnvelopeModel()
        self.regulator = regulator or LowDropoutRegulator(
            v_out_nominal=PAPER.v_supply_sensor,
            dropout=PAPER.regulator_dropout)
        self.monitor = monitor or UndervoltageMonitor(
            v_trip=PAPER.v_rect_minimum)
        self.interface = interface or ElectronicInterface.for_enzyme(enzyme)
        self.budget = PowerBudget(regulator=self.regulator,
                                  rectifier_efficiency=self.rectifier.efficiency)
        self.v_rect = 0.0
        self.state = ImplantState.OFF

    # -- state machine ---------------------------------------------------
    def update_rail(self, v_rect):
        """Feed a rectifier-output sample; returns the new state."""
        if v_rect < 0:
            raise ValueError("v_rect must be >= 0")
        self.v_rect = float(v_rect)
        rail_good = self.monitor.update(self.v_rect)
        if self.v_rect < 0.5:
            self.state = ImplantState.OFF
        elif not rail_good:
            self.state = (ImplantState.BROWNOUT
                          if self.state in (ImplantState.READY,
                                            ImplantState.BROWNOUT)
                          else ImplantState.CHARGING)
        else:
            self.state = ImplantState.READY
        return self.state

    @property
    def v_supply(self):
        """The regulated sensor rail right now."""
        return self.regulator.output_voltage(
            self.v_rect, self.load_current())

    def load_current(self, measuring=False):
        """DC load presented to the rectifier (through the LDO).

        The paper's simulation uses worst-case figures: 350 uA in
        low-power (comms) mode, 1.3 mA in high-power (measurement) mode.
        """
        mode = SENSOR_HIGH_POWER if measuring else SENSOR_LOW_POWER
        return self.regulator.input_current(mode.i_supply)

    def can_measure(self, p_available):
        """Is the carrier power enough for the 1.3 mA measurement mode?"""
        return self.budget.sustainable(p_available, SENSOR_HIGH_POWER,
                                       v_rect=max(self.v_rect, 2.1))

    def measure(self, concentration, **kwargs):
        """Run a measurement (requires READY); returns the ADC code."""
        if self.state != ImplantState.READY:
            raise RuntimeError(
                f"cannot measure in state {self.state.value!r}: the rail "
                f"is at {self.v_rect:.2f} V")
        return self.interface.measure(concentration, vdd=self.v_supply,
                                      **kwargs)

    def report_concentration(self, code):
        """Convert an ADC code back to concentration (the remote side's
        computation)."""
        return self.interface.concentration_from_code(code)
