"""The integrated system — the paper's primary contribution.

Wires the external patch (class-E + ASK/LSK + battery), the inductive
link, and the implanted device (power management + biosensor interface)
into one simulatable system, and regenerates the paper's end-to-end
artefacts: the Fig. 11 power-management transient and the Section III-B
power-vs-distance behaviour.
"""

from repro.core.config import PaperConstants, PAPER
from repro.core.implant import ImplantDevice, ImplantState
from repro.core.system import RemotePoweringSystem, Fig11Result
from repro.core.control import (
    AdaptivePowerController,
    ControlStep,
    RegulationWindowError,
)

__all__ = [
    "PaperConstants",
    "PAPER",
    "ImplantDevice",
    "ImplantState",
    "RemotePoweringSystem",
    "Fig11Result",
    "AdaptivePowerController",
    "ControlStep",
    "RegulationWindowError",
]
