"""`RemotePoweringSystem`: patch + link + implant, end to end.

The calibration contract: the transmit drive is set so the matched
received power at 6 mm equals the paper's 15 mW; every other number
(power at 10/17 mm, ASK bit levels, Fig. 11 rail dynamics, LSK contrast)
then *follows* from the models rather than being dialled in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comms import (
    AskDemodulator,
    AskModulator,
    Bitstream,
    LskDetector,
    LskModulator,
)
from repro.core.config import PAPER
from repro.core.implant import ImplantDevice
from repro.engine.core import SimulationEngine
from repro.engine.components import (
    AskPowerSource,
    ConstantSource,
    RectifierRail,
    SignalSource,
)
from repro.link import (
    CircularSpiral,
    InductiveLink,
    RectangularSpiral,
    design_l_match,
)
from repro.patch import IronicPatch
from repro.signals import crossing_times
from repro.util import require_positive


@dataclass
class Fig11Result:
    """Everything the paper's Fig. 11 shows, regenerated."""

    v_out: object                 # rectifier output Waveform
    charge_time_to_2v75: float
    downlink_sent: Bitstream
    downlink_received: Bitstream
    downlink_sample_times: object
    uplink_sent: Bitstream
    uplink_received: Bitstream
    v_min_during_comms: float
    events: list

    @property
    def downlink_ok(self):
        return self.downlink_sent == self.downlink_received

    @property
    def uplink_ok(self):
        return self.uplink_sent == self.uplink_received

    @property
    def rail_ok(self):
        """The paper's headline check: Vo never below 2.1 V."""
        return self.v_min_during_comms >= PAPER.v_rect_minimum


class RemotePoweringSystem:
    """The full system of the paper's Fig. 1/Fig. 7."""

    def __init__(self, distance=10e-3, tissue_layers=None, implant=None,
                 patch=None, r_branch_tx=2.5):
        self.distance = require_positive(distance, "distance")
        coil_tx = CircularSpiral.ironic_transmitter()
        coil_rx = RectangularSpiral.ironic_receiver()
        self.link = InductiveLink(coil_tx, coil_rx, PAPER.carrier_freq,
                                  tissue_layers)
        # Calibration: 15 mW available at the 6 mm test distance, in air.
        link_air = InductiveLink(coil_tx, coil_rx, PAPER.carrier_freq)
        self.i_tx = link_air.calibrate_drive(PAPER.power_at_6mm,
                                             PAPER.rx_test_distance)
        self.implant = implant or ImplantDevice()
        self.patch = patch or IronicPatch()
        self.r_branch_tx = require_positive(r_branch_tx, "r_branch_tx")
        self.ask_mod = AskModulator(
            carrier_freq=PAPER.carrier_freq,
            bit_rate=PAPER.downlink_bit_rate,
            depth=1.0 - math.sqrt(PAPER.power_ask_low
                                  / PAPER.power_ask_high),
            high_scale=math.sqrt(PAPER.power_ask_high
                                 / PAPER.power_matched_10mm),
        )
        self.ask_demod = AskDemodulator(
            carrier_freq=PAPER.carrier_freq,
            bit_rate=PAPER.downlink_bit_rate)
        self.lsk_mod = LskModulator(bit_rate=PAPER.downlink_bit_rate)
        self.lsk_det = LskDetector()

    # ------------------------------------------------------------------
    # Power delivery
    # ------------------------------------------------------------------
    def available_power(self, distance=None):
        """Matched received power at ``distance`` with the calibrated
        drive (Section III-B / IV-C)."""
        d = self.distance if distance is None else distance
        return self.link.available_power(self.i_tx, d)

    def power_sweep(self, distances):
        """[(distance, power)] over a set of distances."""
        return [(d, self.available_power(d)) for d in distances]

    def matching_network(self):
        """The CA/CB capacitive match for this system's rectifier."""
        return design_l_match(
            self.link.r_rx,
            self.link.omega * self.link.l_rx,
            PAPER.rectifier_input_resistance,
            PAPER.carrier_freq,
        )

    # ------------------------------------------------------------------
    # LSK physics
    # ------------------------------------------------------------------
    def reflected_resistance(self, shorted):
        """Resistance reflected into the TX coil branch.

        Not shorted: the secondary loop carries coil + matched load
        (2*R_rx); shorted (M1 closed): the loop collapses to R_rx alone,
        so the reflected term doubles and the supply current drops.
        """
        r_loop = self.link.r_rx if shorted else 2.0 * self.link.r_rx
        z = self.link.reflected_impedance(self.distance, complex(r_loop, 0))
        return z.real

    def lsk_supply_currents(self):
        """(i_high, i_low): patch supply current with the implant
        not-shorted / shorted."""
        i_base = self.patch.class_e_supply_current()
        zr_n = self.reflected_resistance(shorted=False)
        zr_s = self.reflected_resistance(shorted=True)
        i_low = i_base * (self.r_branch_tx + zr_n) / (self.r_branch_tx
                                                      + zr_s)
        return i_base, i_low

    def lsk_contrast(self):
        """(i_high - i_low) / i_high — must be detectable above the
        sense ADC's quantization."""
        i_high, i_low = self.lsk_supply_currents()
        return (i_high - i_low) / i_high

    # ------------------------------------------------------------------
    # Fig. 11: the end-to-end power-management transient
    # ------------------------------------------------------------------
    def fig11_transient(self, downlink_bits=None, uplink_bits=None,
                        t_stop=700e-6, dt=0.25e-6):
        """Regenerate the paper's Fig. 11 timeline.

        Timeline (paper Section IV-C): Co charges from 0 at the 5 mW
        matched level; at 300 us an 18-bit downlink runs at 100 kbps
        (3 mW / 1 mW bit levels); at 520 us an uplink runs by
        short-circuiting the rectifier input.  The sensor stays in
        low-power mode (350 uA).
        """
        downlink_bits = Bitstream(downlink_bits if downlink_bits is not None
                                  else [1, 0, 1, 1, 0, 0, 1, 0, 1,
                                        0, 0, 1, 1, 0, 1, 0, 1, 1])
        uplink_bits = Bitstream(uplink_bits if uplink_bits is not None
                                else [1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1])
        t_dl = PAPER.fig11_downlink_start
        t_ul = PAPER.fig11_uplink_start
        t_bit = 1.0 / PAPER.downlink_bit_rate

        # The rail dynamics assembled on the shared simulation engine:
        # ASK downlink power schedule + LSK short schedule + envelope
        # rail, with the timeline landmarks as scheduled marker events.
        shorted = self.lsk_mod.shorted_func(uplink_bits, start_time=t_ul)
        i_load = self.implant.load_current(measuring=False)
        engine = SimulationEngine.uniform(t_stop, dt)
        engine.add(AskPowerSource(
            downlink_bits, PAPER.downlink_bit_rate,
            power_high=PAPER.power_ask_high, power_low=PAPER.power_ask_low,
            power_idle=PAPER.power_matched_10mm, start_time=t_dl))
        engine.add(ConstantSource("i_load", i_load))
        engine.add(SignalSource("shorted", shorted, cast=bool,
                                trace=False))
        engine.add(RectifierRail(self.implant.rectifier, v0=0.0))
        engine.schedule(t_dl, "downlink start")
        engine.schedule(t_dl + len(downlink_bits) * t_bit, "downlink end")
        engine.schedule(t_ul, "uplink start")
        engine.schedule(
            t_ul + len(uplink_bits) * self.lsk_mod.bit_period, "uplink end")
        sim = engine.run()
        v_out = sim.waveform("v_rect")

        # Charge anchor.
        crossings = crossing_times(v_out, PAPER.fig11_charge_voltage,
                                   "rising")
        charge_time = float(crossings[0]) if crossings.size else float("nan")

        # Downlink demodulation on the synthesized carrier.
        carrier = self.ask_mod.waveform(downlink_bits, delay=t_dl,
                                        idle_time=50e-6,
                                        samples_per_cycle=12)
        got_dl, samples, _ = self.ask_demod.demodulate(
            carrier, len(downlink_bits), t_dl)

        # Uplink detection on the patch's supply current.
        i_high, i_low = self.lsk_supply_currents()
        i_sense = self.lsk_mod.supply_current_waveform(
            uplink_bits, i_high=i_high, i_low=i_low, start_time=t_ul)
        got_ul, _ = self.lsk_det.detect(
            i_sense, len(uplink_bits), t_ul,
            bit_rate=self.lsk_mod.bit_rate)

        v_min = v_out.clip_time(
            PAPER.fig11_charge_time, t_stop).min()
        events = ([("charge to 2.75 V", charge_time)]
                  + [(e.name, e.time) for e in sim.events])
        return Fig11Result(
            v_out=v_out,
            charge_time_to_2v75=charge_time,
            downlink_sent=downlink_bits,
            downlink_received=got_dl,
            downlink_sample_times=samples,
            uplink_sent=uplink_bits,
            uplink_received=got_ul,
            v_min_during_comms=v_min,
            events=events,
        )

    # ------------------------------------------------------------------
    # Measurement sessions
    # ------------------------------------------------------------------
    def startup(self, t_stop=600e-6):
        """Charge the implant from cold; returns the time the rail
        first clears the 2.1 V regulation minimum (None if never)."""
        p = self.available_power()
        i_load = self.implant.load_current(measuring=False)
        trace = self.implant.rectifier.simulate(
            lambda t: p, lambda t: i_load, t_stop)
        for t, v in zip(trace.v_out.t, trace.v_out.v):
            self.implant.update_rail(v)
            if self.implant.state.name == "READY":
                return float(t)
        return None

    def measure_lactate(self, concentration, n_output_samples=4):
        """One full remote measurement at the current distance.

        Checks the power budget for the high-power mode, charges up,
        measures, and returns a result dict.
        """
        p_avail = self.available_power()
        t_ready = self.startup()
        if t_ready is None:
            raise RuntimeError(
                f"insufficient power at {self.distance * 1e3:.1f} mm: "
                f"{p_avail * 1e3:.2f} mW never lifts the rail to 2.1 V")
        if not self.implant.can_measure(p_avail):
            raise RuntimeError(
                f"{p_avail * 1e3:.2f} mW cannot sustain the 1.3 mA "
                "measurement mode")
        code = self.implant.measure(concentration,
                                    n_output_samples=n_output_samples)
        reported = self.implant.report_concentration(code)
        return {
            "distance_mm": self.distance * 1e3,
            "power_available_mw": p_avail * 1e3,
            "time_to_ready_us": t_ready * 1e6,
            "adc_code": code,
            "concentration_true": concentration,
            "concentration_reported": reported,
        }
