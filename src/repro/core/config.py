"""Every quantitative claim of the paper, in one registry.

Each constant carries the section it comes from, so benches and tests can
cite their anchors; EXPERIMENTS.md is generated against these values.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperConstants:
    """Numbers stated in Olivo et al., DATE 2013."""

    # Section III-A: power delivery
    carrier_freq: float = 5e6            # class-E drive, 50% duty
    downlink_bit_rate: float = 100e3     # ASK
    uplink_bit_rate: float = 66.6e3      # LSK

    # Section III-B: measured link performance
    power_at_6mm: float = 15e-3          # max received power, in air
    power_through_17mm_sirloin: float = 1.17e-3
    battery_life_idle_h: float = 10.0
    battery_life_connected_h: float = 3.5
    battery_life_powering_h: float = 1.5

    # Section IV: power management
    power_matched_10mm: float = 5e-3     # to a matched load at 10 mm
    power_ask_high: float = 3e-3         # while transmitting a 1
    power_ask_low: float = 1e-3          # while transmitting a 0
    rectifier_input_resistance: float = 150.0
    rectifier_clamp_voltage: float = 3.0
    regulator_dropout: float = 0.3
    v_rect_minimum: float = 2.1          # the "never below 2.1 V" rule
    v_supply_sensor: float = 1.8
    i_sensor_low_power: float = 350e-6
    i_sensor_high_power: float = 1.3e-3

    # Fig. 11 timeline
    fig11_charge_voltage: float = 2.75
    fig11_charge_time: float = 270e-6
    fig11_downlink_start: float = 300e-6
    fig11_downlink_bits: int = 18
    fig11_uplink_start: float = 520e-6

    # Section II-B: electronic interface
    v_oxidation: float = 0.65
    v_we_bias: float = 1.2
    v_re_bias: float = 0.55
    adc_full_scale_current: float = 4e-6
    adc_resolution_current: float = 250e-12
    adc_bits: int = 14
    i_potentiostat: float = 45e-6
    i_adc: float = 240e-6
    adc_area_mm2: float = 0.3

    # Receiving inductor (Section III-B, ref [28])
    rx_coil_length: float = 38e-3
    rx_coil_width: float = 2e-3
    rx_coil_height: float = 0.544e-3
    rx_coil_layers: int = 8
    rx_coil_turns: int = 14
    rx_test_distance: float = 6e-3

    def anchors(self):
        """(name, value, unit, where) rows for reporting."""
        return [
            ("received power @ 6 mm", self.power_at_6mm, "W", "III-B"),
            ("power through 17 mm sirloin",
             self.power_through_17mm_sirloin, "W", "III-B"),
            ("matched power @ 10 mm", self.power_matched_10mm, "W", "IV-C"),
            ("ASK high / low power",
             (self.power_ask_high, self.power_ask_low), "W", "IV-C"),
            ("rectifier Zin (avg)",
             self.rectifier_input_resistance, "ohm", "IV-C"),
            ("Vo charge anchor",
             (self.fig11_charge_voltage, self.fig11_charge_time),
             "(V, s)", "Fig. 11"),
            ("battery life idle/connected/powering",
             (self.battery_life_idle_h, self.battery_life_connected_h,
              self.battery_life_powering_h), "h", "III-B"),
            ("ADC spec", (self.adc_full_scale_current,
                          self.adc_resolution_current, self.adc_bits),
             "(A, A, bits)", "II-B"),
        ]


#: The singleton used throughout benches and tests.
PAPER = PaperConstants()
