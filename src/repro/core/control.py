"""Closed-loop adaptive power control (the ref [17] extension).

The paper fixes the transmit level and notes the power can be "decreased
by properly tuning the class-E amplifier if a lower value is required".
O'Driscoll et al. (the paper's ref [17]) close the loop instead: the
implant reports its rectifier voltage over the uplink, and the external
transmitter adapts its drive so the rail stays inside the useful window
as the coupling changes with posture and placement.

`AdaptivePowerController` implements that loop over this repository's
models: a stepped drive scaler with hysteresis, driven by quantized Vo
telemetry, evaluated against distance/misalignment disturbance profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PAPER
from repro.engine.core import SimulationEngine
from repro.engine.components import (
    AdaptiveDrive,
    ConstantSource,
    SignalSource,
    SubsteppedRail,
    TelemetryControl,
)
from repro.power import RectifierEnvelopeModel
from repro.util import require_in_range, require_positive


class RegulationWindowError(ValueError):
    """Raised when a control run is too short to evaluate its
    post-settling regulation statistics.  Run the loop for more update
    periods or lower ``settle_fraction``."""

    @classmethod
    def for_run(cls, n_steps, settle_fraction):
        """The shared guard message (scalar and batch paths)."""
        return cls(
            f"run of {n_steps} step(s) has no samples after the settle "
            f"window (settle_fraction={settle_fraction}); run the loop "
            "for more update periods or lower settle_fraction")


@dataclass
class ControlStep:
    """One telemetry/actuation step of the loop."""

    time: float
    distance: float
    v_rect: float
    v_reported: float
    drive_scale: float
    p_delivered: float
    saturated: bool


class AdaptivePowerController:
    """Discrete-step drive controller keeping Vo in a target window.

    The implant quantizes Vo with ``telemetry_bits`` over [0, 3.3] V and
    uplinks it every ``update_period``; the patch scales its drive
    current by +/- ``step_ratio`` when the report leaves
    [v_low, v_high].  Drive saturates at [min_scale, max_scale] times
    the calibrated level — the knob real class-E supplies give.
    """

    def __init__(self, v_low=2.3, v_high=2.9, step_ratio=0.08,
                 min_scale=0.2, max_scale=2.5, telemetry_bits=6,
                 update_period=1e-3):
        if not 0 < v_low < v_high:
            raise ValueError("need 0 < v_low < v_high")
        self.v_low = v_low
        self.v_high = v_high
        self.step_ratio = require_in_range(step_ratio, 0.001, 0.5,
                                           "step_ratio")
        self.min_scale = require_positive(min_scale, "min_scale")
        self.max_scale = require_positive(max_scale, "max_scale")
        if self.min_scale >= self.max_scale:
            raise ValueError("min_scale must be < max_scale")
        self.telemetry_bits = int(telemetry_bits)
        if self.telemetry_bits < 3:
            raise ValueError("telemetry needs >= 3 bits")
        self.update_period = require_positive(update_period,
                                              "update_period")

    def quantize_telemetry(self, v_rect):
        """The implant-side Vo report (quantized to telemetry_bits
        over 0-3.3 V).  Accepts a scalar or a numpy array (both round
        half-to-even), so batch runners share this exact quantizer."""
        full = (1 << self.telemetry_bits) - 1
        if isinstance(v_rect, np.ndarray):
            code = np.round(np.clip(v_rect, 0.0, 3.3) / 3.3 * full)
            return code / full * 3.3
        code = round(max(0.0, min(v_rect, 3.3)) / 3.3 * full)
        return code / full * 3.3

    def next_scale(self, current_scale, v_reported):
        """The control law: bang-bang with a dead zone, plus an urgency
        boost — when the rail is far below the window (an abrupt
        coupling loss) the step size grows up to 4x so recovery beats
        the storage capacitor's discharge time constant.

        Elementwise over numpy arrays (one scale/report per scenario),
        so ``ScenarioBatch.run_control`` applies this law, not a copy.
        """
        if isinstance(v_reported, np.ndarray) \
                or isinstance(current_scale, np.ndarray):
            urgency = 1.0 + 3.0 * np.minimum(
                1.0, (self.v_low - v_reported) / self.v_low)
            raised = current_scale * (1.0 + self.step_ratio * urgency)
            lowered = current_scale * (1.0 - self.step_ratio)
            scale = np.where(v_reported < self.v_low, raised,
                             np.where(v_reported > self.v_high,
                                      lowered, current_scale))
            return np.clip(scale, self.min_scale, self.max_scale)
        if v_reported < self.v_low:
            urgency = 1.0 + 3.0 * min(
                1.0, (self.v_low - v_reported) / self.v_low)
            scale = current_scale * (1.0 + self.step_ratio * urgency)
        elif v_reported > self.v_high:
            scale = current_scale * (1.0 - self.step_ratio)
        else:
            scale = current_scale
        return max(self.min_scale, min(scale, self.max_scale))

    def run(self, system, distance_profile, t_stop, v0=2.5,
            rectifier=None):
        """Simulate the loop against a moving implant.

        ``system`` is a :class:`~repro.core.system.RemotePoweringSystem`
        (used for its link and calibrated drive); ``distance_profile(t)``
        returns the coil separation at time t.  Power scales as the
        drive current squared.  Returns a list of :class:`ControlStep`.

        The loop runs on the shared
        :class:`~repro.engine.core.SimulationEngine`: a distance source,
        the drive stage, the substepped stiff rail integrator (the clamp
        chain's exponential I(V) would destabilise coarse forward Euler,
        so the rail is advanced with 128 pinned substeps per period),
        and the telemetry/control-law update, stepped in that order on
        the telemetry clock.
        """
        rectifier = rectifier or RectifierEnvelopeModel()
        i_load = system.implant.load_current(measuring=False)
        engine = SimulationEngine.sampled(t_stop, self.update_period)
        engine.add(SignalSource("distance", distance_profile))
        drive = engine.add(AdaptiveDrive(system.link.available_power,
                                         system.i_tx))
        engine.add(ConstantSource("i_load", i_load))
        engine.add(SubsteppedRail(rectifier, v0=v0,
                                  period=self.update_period))
        engine.add(TelemetryControl(self, drive))
        result = engine.run()
        return [
            ControlStep(
                time=float(result.t[k]),
                distance=float(result["distance"][k]),
                v_rect=float(result["v_rect"][k]),
                v_reported=float(result["v_reported"][k]),
                drive_scale=float(result["drive_scale"][k]),
                p_delivered=float(result["p_delivered"][k]),
                saturated=bool(result["saturated"][k]),
            )
            for k in range(result.t.size)
        ]

    @staticmethod
    def regulation_statistics(steps, settle_fraction=0.3):
        """(fraction in window, min Vo, max Vo, mean drive) over the
        post-settling portion of a run.

        Raises :class:`RegulationWindowError` (a ``ValueError``) when
        the run leaves no samples after the settle window, with guidance
        on how to fix the call.
        """
        if not 0.0 <= settle_fraction <= 1.0:
            raise ValueError("settle_fraction must be in [0, 1]")
        tail = steps[int(len(steps) * settle_fraction):]
        if not tail:
            raise RegulationWindowError.for_run(len(steps),
                                                settle_fraction)
        v = [s.v_rect for s in tail]
        in_window = [s for s in tail
                     if PAPER.v_rect_minimum <= s.v_rect <= 3.3]
        return (len(in_window) / len(tail), min(v), max(v),
                sum(s.drive_scale for s in tail) / len(tail))
