"""Closed-loop adaptive power control (the ref [17] extension).

The paper fixes the transmit level and notes the power can be "decreased
by properly tuning the class-E amplifier if a lower value is required".
O'Driscoll et al. (the paper's ref [17]) close the loop instead: the
implant reports its rectifier voltage over the uplink, and the external
transmitter adapts its drive so the rail stays inside the useful window
as the coupling changes with posture and placement.

`AdaptivePowerController` implements that loop over this repository's
models: a stepped drive scaler with hysteresis, driven by quantized Vo
telemetry, evaluated against distance/misalignment disturbance profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PAPER
from repro.power import RectifierEnvelopeModel
from repro.util import require_in_range, require_positive


@dataclass
class ControlStep:
    """One telemetry/actuation step of the loop."""

    time: float
    distance: float
    v_rect: float
    v_reported: float
    drive_scale: float
    p_delivered: float
    saturated: bool


class AdaptivePowerController:
    """Discrete-step drive controller keeping Vo in a target window.

    The implant quantizes Vo with ``telemetry_bits`` over [0, 3.3] V and
    uplinks it every ``update_period``; the patch scales its drive
    current by +/- ``step_ratio`` when the report leaves
    [v_low, v_high].  Drive saturates at [min_scale, max_scale] times
    the calibrated level — the knob real class-E supplies give.
    """

    def __init__(self, v_low=2.3, v_high=2.9, step_ratio=0.08,
                 min_scale=0.2, max_scale=2.5, telemetry_bits=6,
                 update_period=1e-3):
        if not 0 < v_low < v_high:
            raise ValueError("need 0 < v_low < v_high")
        self.v_low = v_low
        self.v_high = v_high
        self.step_ratio = require_in_range(step_ratio, 0.001, 0.5,
                                           "step_ratio")
        self.min_scale = require_positive(min_scale, "min_scale")
        self.max_scale = require_positive(max_scale, "max_scale")
        if self.min_scale >= self.max_scale:
            raise ValueError("min_scale must be < max_scale")
        self.telemetry_bits = int(telemetry_bits)
        if self.telemetry_bits < 3:
            raise ValueError("telemetry needs >= 3 bits")
        self.update_period = require_positive(update_period,
                                              "update_period")

    def quantize_telemetry(self, v_rect):
        """The implant-side Vo report (quantized to telemetry_bits
        over 0-3.3 V)."""
        full = (1 << self.telemetry_bits) - 1
        code = round(max(0.0, min(v_rect, 3.3)) / 3.3 * full)
        return code / full * 3.3

    def next_scale(self, current_scale, v_reported):
        """The control law: bang-bang with a dead zone, plus an urgency
        boost — when the rail is far below the window (an abrupt
        coupling loss) the step size grows up to 4x so recovery beats
        the storage capacitor's discharge time constant."""
        if v_reported < self.v_low:
            urgency = 1.0 + 3.0 * min(
                1.0, (self.v_low - v_reported) / self.v_low)
            scale = current_scale * (1.0 + self.step_ratio * urgency)
        elif v_reported > self.v_high:
            scale = current_scale * (1.0 - self.step_ratio)
        else:
            scale = current_scale
        return max(self.min_scale, min(scale, self.max_scale))

    def run(self, system, distance_profile, t_stop, v0=2.5,
            rectifier=None):
        """Simulate the loop against a moving implant.

        ``system`` is a :class:`~repro.core.system.RemotePoweringSystem`
        (used for its link and calibrated drive); ``distance_profile(t)``
        returns the coil separation at time t.  Power scales as the
        drive current squared.  Returns a list of :class:`ControlStep`.
        """
        rectifier = rectifier or RectifierEnvelopeModel()
        i_load = system.implant.load_current(measuring=False)
        scale = 1.0
        v_rect = v0
        steps = []
        t = 0.0
        n = max(1, int(round(t_stop / self.update_period)))
        # The clamp chain's exponential I(V) is stiff: integrate with
        # fine substeps and pin the rail at the clamp's physical ceiling
        # so forward Euler cannot overshoot into instability.
        n_sub = 128
        dt_inner = self.update_period / n_sub
        v_ceiling = rectifier.clamp_voltage + 0.15
        for _ in range(n):
            d = float(distance_profile(t))
            p = system.link.available_power(
                system.i_tx * scale, d)
            # Integrate the rail over one update period.
            for _ in range(n_sub):
                i_rect = rectifier.rectified_current(p, v_rect)
                i_clamp = rectifier.clamp_current(v_rect)
                v_rect += ((i_rect - i_load - i_clamp) * dt_inner
                           / rectifier.c_out)
                v_rect = min(max(v_rect, 0.0), v_ceiling)
            v_rep = self.quantize_telemetry(v_rect)
            new_scale = self.next_scale(scale, v_rep)
            steps.append(ControlStep(
                time=t, distance=d, v_rect=v_rect, v_reported=v_rep,
                drive_scale=scale, p_delivered=p,
                saturated=(new_scale in (self.min_scale,
                                         self.max_scale)),
            ))
            scale = new_scale
            t += self.update_period
        return steps

    @staticmethod
    def regulation_statistics(steps, settle_fraction=0.3):
        """(fraction in window, min Vo, max Vo, mean drive) over the
        post-settling portion of a run."""
        tail = steps[int(len(steps) * settle_fraction):]
        if not tail:
            raise ValueError("run too short for statistics")
        v = [s.v_rect for s in tail]
        in_window = [s for s in tail
                     if PAPER.v_rect_minimum <= s.v_rect <= 3.3]
        return (len(in_window) / len(tail), min(v), max(v),
                sum(s.drive_scale for s in tail) / len(tail))
