"""Two-port inductive-link theory: reflected impedance, power, efficiency.

The link is modelled in the standard series-resonant form: the class-E
amplifier forces a carrier current through the tuned transmitting coil;
the induced EMF ``omega*M*I_tx`` drives the receiving coil's series
R2-L2 into the (matched) rectifier load.  All paper-facing quantities —
available power, delivered power at a given load, k^2*Q1*Q2 efficiency,
optimal load — live here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.link.mutual import coil_mutual_inductance
from repro.util import require_positive


@dataclass
class LinkOperatingPoint:
    """Solved link state at one geometry/drive point."""

    distance: float
    mutual_inductance: float
    coupling: float
    emf_amplitude: float
    available_power: float
    delivered_power: float
    efficiency: float
    reflected_resistance: float

    def as_row(self):
        """Tab-friendly tuple (mm, nH, -, V, mW, mW, %, ohm)."""
        return (
            self.distance * 1e3,
            self.mutual_inductance * 1e9,
            self.coupling,
            self.emf_amplitude,
            self.available_power * 1e3,
            self.delivered_power * 1e3,
            self.efficiency * 100.0,
            self.reflected_resistance,
        )


class InductiveLink:
    """A transmit coil / receive coil pair at a carrier frequency.

    Parameters
    ----------
    coil_tx, coil_rx : spiral objects from :mod:`repro.link.spiral`
    freq : carrier frequency (5 MHz in the paper)
    tissue_layers : optional list of :class:`~repro.link.tissue.TissueLayer`
        slabs stacked in the link path.  They attenuate the mutual
        inductance and add eddy loss.
    """

    def __init__(self, coil_tx, coil_rx, freq, tissue_layers=None):
        self.coil_tx = coil_tx
        self.coil_rx = coil_rx
        self.freq = require_positive(float(freq), "freq")
        self.omega = 2.0 * math.pi * self.freq
        self.tissue_layers = list(tissue_layers or [])
        # Coil electrical parameters are geometry-only: cache them.
        self.l_tx = coil_tx.inductance()
        self.l_rx = coil_rx.inductance()
        self.r_tx = coil_tx.resistance(self.freq)
        self.r_rx = coil_rx.resistance(self.freq)
        self.q_tx = self.omega * self.l_tx / self.r_tx
        self.q_rx = self.omega * self.l_rx / self.r_rx

    # ------------------------------------------------------------------
    # Geometry-dependent quantities
    # ------------------------------------------------------------------
    def _tissue_field_factor(self):
        factor = 1.0
        for layer in self.tissue_layers:
            factor *= layer.field_attenuation(self.freq)
        return factor

    def _tissue_eddy_factor(self):
        keep = 1.0
        for layer in self.tissue_layers:
            keep *= 1.0 - layer.eddy_loss_factor(
                self.freq, loop_radius=self.coil_rx.equivalent_radius())
        return keep

    def mutual_inductance(self, distance, lateral_offset=0.0):
        """M(d) including tissue field attenuation."""
        m_air = coil_mutual_inductance(
            self.coil_tx, self.coil_rx, distance, lateral_offset)
        return m_air * self._tissue_field_factor()

    def coupling(self, distance, lateral_offset=0.0):
        """k(d) = M / sqrt(L1*L2)."""
        return (self.mutual_inductance(distance, lateral_offset)
                / math.sqrt(self.l_tx * self.l_rx))

    # ------------------------------------------------------------------
    # Power transfer
    # ------------------------------------------------------------------
    def emf(self, i_tx_amplitude, distance, lateral_offset=0.0):
        """Open-circuit EMF amplitude induced in the receiving coil."""
        require_positive(i_tx_amplitude, "i_tx_amplitude")
        return (self.omega
                * self.mutual_inductance(distance, lateral_offset)
                * i_tx_amplitude)

    def available_power(self, i_tx_amplitude, distance, lateral_offset=0.0):
        """Maximum power extractable by a conjugate-matched load:
        P = EMF^2 / (8 * R_rx), derated by tissue eddy loss."""
        v = self.emf(i_tx_amplitude, distance, lateral_offset)
        return (v * v / (8.0 * self.r_rx)) * self._tissue_eddy_factor()

    def delivered_power(self, i_tx_amplitude, distance, r_load,
                        lateral_offset=0.0):
        """Power into a resistive load ``r_load`` presented in series with
        the resonated receiving coil (matching network absorbs X_L2)."""
        require_positive(r_load, "r_load")
        v = self.emf(i_tx_amplitude, distance, lateral_offset)
        i_rx = v / (self.r_rx + r_load)
        return 0.5 * i_rx * i_rx * r_load * self._tissue_eddy_factor()

    def optimal_series_load(self):
        """Load maximising power transfer in the series model: R_rx
        (conjugate match).  Link *efficiency* optimises differently —
        see :meth:`optimal_efficiency_load`."""
        return self.r_rx

    def optimal_efficiency_load(self, distance):
        """Load maximising link efficiency (Silay-style load
        optimisation, ref [11]): R_opt = R_rx * sqrt(1 + k^2*Q1*Q2)."""
        kq = self.kq_product(distance)
        return self.r_rx * math.sqrt(1.0 + kq)

    def kq_product(self, distance, lateral_offset=0.0):
        """k^2 * Q1 * Q2 — the link's figure of merit."""
        k = self.coupling(distance, lateral_offset)
        return k * k * self.q_tx * self.q_rx

    def max_efficiency(self, distance, lateral_offset=0.0):
        """Best-case link efficiency at optimal load:
        eta = kq / (1 + sqrt(1 + kq))^2."""
        kq = self.kq_product(distance, lateral_offset)
        return kq / (1.0 + math.sqrt(1.0 + kq)) ** 2

    def reflected_impedance(self, distance, z_rx_total, lateral_offset=0.0):
        """Impedance reflected into the transmitting coil:
        Z_r = (omega*M)^2 / Z_rx_total."""
        if z_rx_total == 0:
            raise ValueError("receiving-side impedance cannot be zero")
        wm = self.omega * self.mutual_inductance(distance, lateral_offset)
        return (wm * wm) / z_rx_total

    def operating_point(self, i_tx_amplitude, distance, r_load=None,
                        lateral_offset=0.0):
        """Solve the link at one drive/geometry point."""
        if r_load is None:
            r_load = self.optimal_series_load()
        m = self.mutual_inductance(distance, lateral_offset)
        k = m / math.sqrt(self.l_tx * self.l_rx)
        v = self.omega * m * i_tx_amplitude
        p_avail = self.available_power(i_tx_amplitude, distance, lateral_offset)
        p_load = self.delivered_power(
            i_tx_amplitude, distance, r_load, lateral_offset)
        z_r = self.reflected_impedance(distance, self.r_rx + r_load,
                                       lateral_offset)
        # Efficiency from TX coil input to load.
        p_tx_loss = 0.5 * i_tx_amplitude**2 * self.r_tx
        p_refl = 0.5 * i_tx_amplitude**2 * z_r.real if hasattr(z_r, "real") \
            else 0.5 * i_tx_amplitude**2 * z_r
        eta = p_load / (p_tx_loss + p_refl) if (p_tx_loss + p_refl) > 0 else 0.0
        return LinkOperatingPoint(
            distance=distance,
            mutual_inductance=m,
            coupling=k,
            emf_amplitude=v,
            available_power=p_avail,
            delivered_power=p_load,
            efficiency=eta,
            reflected_resistance=z_r.real if hasattr(z_r, "real") else z_r,
        )

    def distance_sweep(self, i_tx_amplitude, distances, r_load=None):
        """List of operating points over a distance array."""
        return [self.operating_point(i_tx_amplitude, d, r_load)
                for d in distances]

    def calibrate_drive(self, target_power, distance, r_load=None):
        """TX current amplitude that delivers ``target_power`` at
        ``distance`` (power scales as I^2, so this is exact)."""
        require_positive(target_power, "target_power")
        probe = 0.1
        if r_load is None:
            p = self.available_power(probe, distance)
        else:
            p = self.delivered_power(probe, distance, r_load)
        return probe * math.sqrt(target_power / p)
