"""Inductive-link electromagnetics: coils, coupling, tissue, matching.

This package models the transcutaneous power link of the paper: the
external transmitting inductor in the IronIC patch, the implanted
multi-layer spiral receiving inductor (38 x 2 x 0.544 mm^3, 8 layers,
14 turns, ref [28]), the tissue between them, and the capacitive matching
network (CA/CB of the paper's Fig. 7).
"""

from repro.link.spiral import RectangularSpiral, CircularSpiral, skin_depth
from repro.link.mutual import (
    mutual_inductance_loops,
    coil_mutual_inductance,
    coupling_coefficient,
)
from repro.link.tissue import TissueProperties, TissueLayer, TISSUE_LIBRARY
from repro.link.twoport import InductiveLink, LinkOperatingPoint
from repro.link.matching import CapacitiveMatch, design_l_match
from repro.link.resonator import (
    ResonatorDesign,
    design_resonator,
    receiver_voltage,
    rectifier_input_amplitude,
    plain_tank_extraction,
)

__all__ = [
    "RectangularSpiral",
    "CircularSpiral",
    "skin_depth",
    "mutual_inductance_loops",
    "coil_mutual_inductance",
    "coupling_coefficient",
    "TissueProperties",
    "TissueLayer",
    "TISSUE_LIBRARY",
    "InductiveLink",
    "LinkOperatingPoint",
    "CapacitiveMatch",
    "design_l_match",
    "ResonatorDesign",
    "design_resonator",
    "receiver_voltage",
    "rectifier_input_amplitude",
    "plain_tank_extraction",
]
