"""Biological-tissue effects on the 5 MHz inductive link.

The paper emulates tissue with a beef-sirloin slice and finds that at
5 MHz a 17 mm slab behaves almost like 17 mm of air.  That observation is
physics, not luck: at 5 MHz the conductive skin depth of muscle is tens
of centimetres, so magnetic coupling is barely attenuated and the main
effect is a small eddy-current loss.  This module captures exactly that
regime, with dielectric data in the range of the Gabriel tissue surveys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import require_positive

MU0 = 4e-7 * math.pi


@dataclass(frozen=True)
class TissueProperties:
    """Electromagnetic properties of one tissue type at ~5 MHz."""

    name: str
    conductivity: float  # S/m
    relative_permittivity: float

    def skin_depth(self, freq):
        """Conductive skin depth at ``freq`` (good-conductor form is
        inappropriate at these frequencies; the quasi-static form
        sqrt(2/(omega*mu0*sigma)) is used, valid while displacement
        currents stay small)."""
        require_positive(freq, "freq")
        omega = 2.0 * math.pi * freq
        return math.sqrt(2.0 / (omega * MU0 * self.conductivity))


#: Representative low-MHz dielectric data (order of the Gabriel surveys).
TISSUE_LIBRARY = {
    "air": TissueProperties("air", 0.0, 1.0),
    "skin": TissueProperties("skin", 0.15, 800.0),
    "fat": TissueProperties("fat", 0.035, 60.0),
    "muscle": TissueProperties("muscle", 0.55, 7000.0),
    # The paper's phantom: beef sirloin ~ muscle with marbling.
    "sirloin": TissueProperties("sirloin", 0.50, 6000.0),
}


class TissueLayer:
    """A slab of tissue in the link path.

    ``field_attenuation`` multiplies the magnetic-field amplitude (hence
    mutual inductance); ``power_factor`` is its square.  ``eddy_loss_factor``
    approximates the extra fractional power dissipated by induced eddy
    currents; both effects are small at 5 MHz, reproducing the paper's
    tissue ~= air result, and grow with frequency so users can explore why
    low-MHz carriers are the norm for implants.
    """

    def __init__(self, tissue, thickness):
        if isinstance(tissue, str):
            try:
                tissue = TISSUE_LIBRARY[tissue]
            except KeyError:
                raise KeyError(
                    f"unknown tissue {tissue!r}; available: "
                    f"{sorted(TISSUE_LIBRARY)}"
                )
        self.tissue = tissue
        self.thickness = require_positive(float(thickness), "thickness")

    def field_attenuation(self, freq):
        """H-field amplitude factor exp(-d/delta) through the slab."""
        if self.tissue.conductivity == 0.0:
            return 1.0
        delta = self.tissue.skin_depth(freq)
        return math.exp(-self.thickness / delta)

    def power_factor(self, freq):
        """Received-power multiplier (square of the field attenuation)."""
        return self.field_attenuation(freq) ** 2

    def eddy_loss_factor(self, freq, loop_radius=10e-3):
        """Approximate fractional power lost to eddy currents.

        Modelled as the ratio of the power dissipated in a conductive disc
        (radius ``loop_radius``, the field footprint) to the reactive power
        circulating in the link — scales with omega*sigma*d*r^2*mu0, the
        standard low-frequency eddy scaling.
        """
        omega = 2.0 * math.pi * require_positive(freq, "freq")
        scale = (omega * MU0 * self.tissue.conductivity
                 * self.thickness * loop_radius)
        return min(1.0, scale / 8.0)

    def __repr__(self):
        return (f"TissueLayer({self.tissue.name}, "
                f"{self.thickness * 1e3:.1f} mm)")
