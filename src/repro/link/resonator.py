"""Resonated receiving coil: tuning capacitor selection and voltage gain.

Practical receivers resonate the coil at the carrier so the EMF is
multiplied by the loaded Q before rectification — that is how a
~100 nH-coupling link develops the volts the rectifier needs.  Both
canonical topologies are covered:

* **series** tuning (C in series): the load sees the EMF times 1 at
  resonance with minimum impedance — right for low-impedance loads;
* **parallel** tuning (C across the coil): the load sees the EMF times
  the loaded Q — right for the rectifier's ~150 ohm input.

Results are closed-form and cross-validated against `repro.spice` AC
analysis in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import require_positive


@dataclass(frozen=True)
class ResonatorDesign:
    """A tuned receiving coil driving a resistive load."""

    topology: str           # "series" or "parallel"
    l_coil: float
    r_coil: float
    c_tune: float
    freq: float
    r_load: float

    @property
    def omega(self):
        return 2.0 * math.pi * self.freq

    def unloaded_q(self):
        return self.omega * self.l_coil / self.r_coil

    def loaded_q(self):
        """Q including the load."""
        if self.topology == "series":
            return self.omega * self.l_coil / (self.r_coil + self.r_load)
        # Parallel: load appears across the tank.
        r_par = self.omega * self.l_coil * self.unloaded_q()
        r_eff = (r_par * self.r_load) / (r_par + self.r_load)
        return r_eff / (self.omega * self.l_coil)

    def voltage_gain(self):
        """|V_load / V_emf| at resonance."""
        if self.topology == "series":
            return self.r_load / (self.r_coil + self.r_load)
        return self.loaded_q()

    def bandwidth(self):
        """-3 dB bandwidth: f0 / Q_loaded."""
        return self.freq / self.loaded_q()

    def supports_bit_rate(self, bit_rate, margin=2.0):
        """Does the resonator pass ASK sidebands at ``bit_rate``?

        The tank must not filter the modulation: BW >= margin * bit_rate.
        The paper's numbers (5 MHz carrier, 100 kbps) demand Q <= ~25 —
        one reason implant links run moderate Q.
        """
        require_positive(bit_rate, "bit_rate")
        return self.bandwidth() >= margin * bit_rate


def design_resonator(l_coil, r_coil, freq, r_load, topology="parallel"):
    """Pick the tuning capacitor for resonance at ``freq``.

    Series: C = 1/(omega^2 L).  Parallel: the exact parallel-resonance
    condition with coil loss, C = L / (L^2*omega^2 + R^2) — which
    reduces to the series value for high-Q coils.
    """
    require_positive(l_coil, "l_coil")
    require_positive(r_coil, "r_coil")
    require_positive(freq, "freq")
    require_positive(r_load, "r_load")
    if topology not in ("series", "parallel"):
        raise ValueError(f"unknown topology {topology!r}")
    omega = 2.0 * math.pi * freq
    if topology == "series":
        c = 1.0 / (omega * omega * l_coil)
    else:
        c = l_coil / (l_coil**2 * omega**2 + r_coil**2)
    return ResonatorDesign(
        topology=topology, l_coil=l_coil, r_coil=r_coil, c_tune=c,
        freq=freq, r_load=r_load)


def receiver_voltage(emf_amplitude, design):
    """Load-voltage amplitude for an induced EMF, at resonance."""
    if emf_amplitude < 0:
        raise ValueError("emf_amplitude must be >= 0")
    return emf_amplitude * design.voltage_gain()


def plain_tank_extraction(link, i_tx, distance, r_load=150.0):
    """Power a *plain* parallel tank (no matching) delivers to r_load.

    For the paper's numbers (omega*L ~ 140 ohm against a 150 ohm
    rectifier) the plain tank's loaded Q collapses to ~1 and it extracts
    only a fraction of the available power — the quantitative reason
    Fig. 7 inserts the CA/CB matching network instead of simply tuning
    the coil.
    """
    emf = link.emf(i_tx, distance)
    design = design_resonator(link.l_rx, link.r_rx, link.freq, r_load,
                              topology="parallel")
    v_load = receiver_voltage(emf, design)
    return v_load * v_load / (2.0 * r_load)


def rectifier_input_amplitude(link, i_tx, distance, r_load=150.0):
    """End-to-end: TX current -> EMF -> CA/CB-matched network ->
    amplitude at the rectifier input.

    This closes the numeric loop of the paper's Section IV-C: a ~70 nH
    mutual inductance at ~0.23 A develops only ~0.65 V of EMF, yet the
    rectifier sees the ~1.2-1.3 V it needs because the exact conjugate
    match delivers the full available power into 150 ohm:
    V = sqrt(2 * P_avail * R_load).
    """
    p_avail = link.available_power(i_tx, distance)
    return math.sqrt(2.0 * p_avail * r_load)
