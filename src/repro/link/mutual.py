"""Mutual inductance between coils via the Maxwell filament formula.

The coupling coefficient k(distance) between the patch's transmitting
coil and the implanted receiving inductor drives every power number in
the paper; this module computes it from first principles (elliptic
integrals, summed over turn pairs) with a documented small-offset
correction for lateral misalignment.
"""

from __future__ import annotations

import math

from scipy.special import ellipe, ellipk

from repro.util import require_positive

MU0 = 4e-7 * math.pi


def mutual_inductance_loops(r1, r2, z):
    """Mutual inductance of two coaxial circular filaments.

    Maxwell's formula: M = mu0*sqrt(r1*r2)*((2/m - m)*K(m^2) - (2/m)*E(m^2))
    with m^2 = 4*r1*r2 / ((r1+r2)^2 + z^2).  ``z`` is the axial distance.

    >>> m1 = mutual_inductance_loops(10e-3, 5e-3, 5e-3)
    >>> m2 = mutual_inductance_loops(10e-3, 5e-3, 20e-3)
    >>> m1 > m2 > 0
    True
    """
    require_positive(r1, "r1")
    require_positive(r2, "r2")
    if z < 0:
        raise ValueError(f"axial distance must be >= 0, got {z}")
    m_sq = 4.0 * r1 * r2 / ((r1 + r2) ** 2 + z * z)
    # Guard the k->1 singularity (coincident filaments).
    m_sq = min(m_sq, 1.0 - 1e-12)
    m = math.sqrt(m_sq)
    return (
        MU0
        * math.sqrt(r1 * r2)
        * ((2.0 / m - m) * ellipk(m_sq) - (2.0 / m) * ellipe(m_sq))
    )


def _misalignment_factor(r1, r2, offset):
    """First-order lateral-misalignment derating.

    For lateral offsets small relative to the primary radius the coupling
    falls roughly quadratically (Grover); beyond ``r1 + r2`` the loops
    decouple.  This is an engineering approximation — adequate for the
    sensitivity sweeps here, not for precision alignment studies.
    """
    if offset == 0.0:
        return 1.0
    span = r1 + r2
    x = offset / span
    if x >= 1.0:
        return 0.0
    return max(0.0, 1.0 - 1.5 * x * x)


def coil_mutual_inductance(coil_tx, coil_rx, distance, lateral_offset=0.0):
    """Total mutual inductance between two spiral coils.

    Sums the Maxwell filament formula over every (tx turn, rx turn) pair
    using each turn's equivalent radius and layer height.  ``distance`` is
    the gap between the facing surfaces of the two coils.
    """
    require_positive(distance, "distance")
    total = 0.0
    for r_t, z_t, _, _ in coil_tx.turns:
        for r_r, z_r, _, _ in coil_rx.turns:
            z = distance + z_t + z_r
            m = mutual_inductance_loops(r_t, r_r, z)
            total += m * _misalignment_factor(r_t, r_r, lateral_offset)
    return total


def coupling_coefficient(coil_tx, coil_rx, distance, lateral_offset=0.0):
    """k = M / sqrt(L1*L2) between two spiral coils.

    >>> from repro.link.spiral import CircularSpiral, RectangularSpiral
    >>> tx = CircularSpiral.ironic_transmitter()
    >>> rx = RectangularSpiral.ironic_receiver()
    >>> k6 = coupling_coefficient(tx, rx, 6e-3)
    >>> k17 = coupling_coefficient(tx, rx, 17e-3)
    >>> 0 < k17 < k6 < 1
    True
    """
    m = coil_mutual_inductance(coil_tx, coil_rx, distance, lateral_offset)
    return m / math.sqrt(coil_tx.inductance() * coil_rx.inductance())
