"""Planar and multi-layer spiral inductor models.

The receiving inductor of the paper (ref [28]) is an 8-layer, 14-turn
rectangular spiral of 38 x 2 x 0.544 mm^3 fabricated on flexible PCB.
This module computes its electrical parameters from geometry:

* self-inductance — Grover's formula for rectangular turns plus
  Maxwell-formula mutual terms between turns (turns are mapped to
  equal-area circular filaments for the mutual terms);
* series resistance — DC trace resistance with a skin-effect correction;
* self-capacitance — parallel-plate estimate between stacked layers,
  giving the self-resonance frequency;
* quality factor Q(f).

The same machinery models the patch's transmitting coil as a circular
spiral.
"""

from __future__ import annotations

import math

from repro.util import require_positive

MU0 = 4e-7 * math.pi
#: Copper resistivity (ohm*m) at body-adjacent temperatures.
RHO_COPPER = 1.72e-8
EPS0 = 8.854e-12

#: The paper's coil turn counts (ref [28] receiver, Fig. 5 patch) —
#: the defaults of the ``ironic_*`` constructors, shared with frontends
#: that display them.
IRONIC_RX_TURNS = 14
IRONIC_TX_TURNS = 4


def skin_depth(freq, resistivity=RHO_COPPER, mu_r=1.0):
    """Conductor skin depth at ``freq`` (Hz)."""
    require_positive(freq, "freq")
    return math.sqrt(2.0 * resistivity / (2.0 * math.pi * freq * MU0 * mu_r))


def _ac_resistance_factor(thickness, delta):
    """Rac/Rdc for a conductor of ``thickness`` at skin depth ``delta``.

    Uses the standard one-dimensional current-crowding result
    t / (delta * (1 - exp(-t/delta))), which tends to 1 for thin
    conductors and to t/delta for thick ones.
    """
    ratio = thickness / delta
    if ratio < 1e-6:
        return 1.0
    return ratio / (1.0 - math.exp(-ratio))


def _rect_loop_inductance(a, b, wire_radius):
    """Grover self-inductance of a single rectangular loop (sides a, b)."""
    d = math.hypot(a, b)
    return (MU0 / math.pi) * (
        a * math.log(2.0 * a * b / (wire_radius * (a + d)))
        + b * math.log(2.0 * a * b / (wire_radius * (b + d)))
        + 2.0 * d
        - 2.0 * (a + b)
    )


def _circ_loop_inductance(radius, wire_radius):
    """Self-inductance of a circular loop of ``radius``."""
    return MU0 * radius * (math.log(8.0 * radius / wire_radius) - 2.0)


class _SpiralBase:
    """Shared turn bookkeeping for rectangular and circular spirals.

    Subclasses populate ``self._turns`` with (equivalent_radius, z, L_self)
    tuples; the base class assembles total inductance, resistance, and
    self-resonance from them.
    """

    def __init__(self, n_turns, n_layers, trace_width, trace_thickness,
                 layer_pitch, turn_pitch):
        self.n_turns = require_positive(float(n_turns), "n_turns")
        self.n_layers = int(require_positive(n_layers, "n_layers"))
        self.trace_width = require_positive(float(trace_width), "trace_width")
        self.trace_thickness = require_positive(
            float(trace_thickness), "trace_thickness")
        self.layer_pitch = require_positive(float(layer_pitch), "layer_pitch")
        self.turn_pitch = require_positive(float(turn_pitch), "turn_pitch")
        self._turns = []  # (r_equivalent, z, L_self, perimeter)

    # -- electrical parameters -----------------------------------------
    @property
    def turns(self):
        """Read-only view of (r_eq, z, L_self, perimeter) per turn."""
        return tuple(self._turns)

    def inductance(self):
        """Total self-inductance: sum of turn self terms and all pairwise
        mutual terms (same current direction in every turn)."""
        from repro.link.mutual import mutual_inductance_loops

        total = sum(t[2] for t in self._turns)
        n = len(self._turns)
        for i in range(n):
            ri, zi = self._turns[i][0], self._turns[i][1]
            for j in range(i + 1, n):
                rj, zj = self._turns[j][0], self._turns[j][1]
                total += 2.0 * mutual_inductance_loops(ri, rj, abs(zi - zj))
        return total

    def wire_length(self):
        """Total trace length."""
        return sum(t[3] for t in self._turns)

    def resistance(self, freq=None):
        """Series resistance; at ``freq`` the skin-effect factor applies."""
        r_dc = (RHO_COPPER * self.wire_length()
                / (self.trace_width * self.trace_thickness))
        if freq is None:
            return r_dc
        factor = _ac_resistance_factor(
            self.trace_thickness, skin_depth(freq))
        return r_dc * factor

    def self_capacitance(self, eps_r=3.5):
        """Inter-layer parallel-plate capacitance estimate (substrate
        ``eps_r``), divided down for the series stack of layers."""
        if self.n_layers < 2:
            # Adjacent-turn fringing only: small fixed estimate per turn.
            return 0.05e-12 * max(1.0, self.n_turns)
        overlap_area = self.wire_length() / self.n_layers * self.trace_width
        c_pair = EPS0 * eps_r * overlap_area / self.layer_pitch
        # Layer-to-layer capacitances appear in series along the winding.
        return c_pair / (self.n_layers - 1)

    def self_resonance(self, eps_r=3.5):
        """Self-resonance frequency from L and the self-capacitance."""
        l_total = self.inductance()
        c_self = self.self_capacitance(eps_r)
        return 1.0 / (2.0 * math.pi * math.sqrt(l_total * c_self))

    def quality_factor(self, freq):
        """Q = omega*L / R_ac at ``freq``."""
        omega = 2.0 * math.pi * require_positive(freq, "freq")
        return omega * self.inductance() / self.resistance(freq)

    def equivalent_radius(self):
        """Area-weighted mean equivalent loop radius (used for coupling)."""
        radii = [t[0] for t in self._turns]
        return sum(radii) / len(radii)

    def summary(self, freq):
        """Dict of the headline electrical parameters at ``freq``."""
        return {
            "turns": self.n_turns,
            "layers": self.n_layers,
            "inductance_h": self.inductance(),
            "resistance_ohm": self.resistance(freq),
            "q": self.quality_factor(freq),
            "self_resonance_hz": self.self_resonance(),
            "wire_length_m": self.wire_length(),
        }


class RectangularSpiral(_SpiralBase):
    """Multi-layer rectangular spiral (the implanted receiving inductor).

    ``outer_length`` x ``outer_width`` is the footprint; ``n_turns`` is the
    *total* turn count distributed evenly across ``n_layers`` (fractional
    turns per layer are allowed — the model treats them as a uniform
    current sheet, which is accurate to the few-percent level targeted
    here).

    >>> rx = RectangularSpiral.ironic_receiver()
    >>> 0.5e-6 < rx.inductance() < 20e-6
    True
    """

    def __init__(self, outer_length, outer_width, n_turns, n_layers=1,
                 trace_width=100e-6, trace_thickness=35e-6,
                 layer_pitch=68e-6, turn_pitch=None):
        if turn_pitch is None:
            turn_pitch = 2.0 * trace_width
        super().__init__(n_turns, n_layers, trace_width, trace_thickness,
                         layer_pitch, turn_pitch)
        self.outer_length = require_positive(float(outer_length), "outer_length")
        self.outer_width = require_positive(float(outer_width), "outer_width")
        per_layer = self.n_turns / self.n_layers
        wire_radius = 0.5 * math.sqrt(
            4.0 * trace_width * trace_thickness / math.pi)
        for layer in range(self.n_layers):
            z = layer * self.layer_pitch
            remaining = per_layer
            t_index = 0
            while remaining > 1e-9:
                frac = min(1.0, remaining)
                a = self.outer_length - 2.0 * t_index * self.turn_pitch
                b = self.outer_width - 2.0 * t_index * self.turn_pitch
                if a <= 2 * self.turn_pitch or b <= 2 * self.turn_pitch:
                    raise ValueError(
                        "too many turns per layer for the footprint: "
                        f"{per_layer:.2f} turns do not fit "
                        f"{self.outer_length}x{self.outer_width}"
                    )
                l_self = _rect_loop_inductance(a, b, wire_radius) * frac**2
                r_eq = math.sqrt(a * b / math.pi)
                perimeter = 2.0 * (a + b) * frac
                self._turns.append((r_eq, z, l_self, perimeter))
                remaining -= frac
                t_index += 1

    @classmethod
    def ironic_receiver(cls, n_turns=IRONIC_RX_TURNS):
        """The paper's receiving inductor: 8 layers, 14 turns,
        38 x 2 x 0.544 mm^3 (ref [28]).  ``n_turns`` spins a
        geometry variant on the same footprint and stack-up (the
        engine's coil-geometry sweep axis)."""
        return cls(
            outer_length=38e-3,
            outer_width=2e-3,
            n_turns=n_turns,
            n_layers=8,
            trace_width=100e-6,
            trace_thickness=35e-6,
            # 8 metal layers in 0.544 mm -> 68 um pitch.
            layer_pitch=0.544e-3 / 8.0,
            turn_pitch=220e-6,
        )


class CircularSpiral(_SpiralBase):
    """Planar circular spiral (the patch's transmitting coil)."""

    def __init__(self, outer_radius, n_turns, n_layers=1,
                 trace_width=500e-6, trace_thickness=35e-6,
                 layer_pitch=100e-6, turn_pitch=None):
        if turn_pitch is None:
            turn_pitch = 2.0 * trace_width
        super().__init__(n_turns, n_layers, trace_width, trace_thickness,
                         layer_pitch, turn_pitch)
        self.outer_radius = require_positive(float(outer_radius), "outer_radius")
        per_layer = self.n_turns / self.n_layers
        wire_radius = 0.5 * math.sqrt(
            4.0 * trace_width * trace_thickness / math.pi)
        for layer in range(self.n_layers):
            z = layer * self.layer_pitch
            remaining = per_layer
            t_index = 0
            while remaining > 1e-9:
                frac = min(1.0, remaining)
                r = self.outer_radius - t_index * self.turn_pitch
                if r <= self.turn_pitch:
                    raise ValueError(
                        "too many turns for the radius: "
                        f"{per_layer:.2f} per layer in {self.outer_radius}"
                    )
                l_self = _circ_loop_inductance(r, wire_radius) * frac**2
                perimeter = 2.0 * math.pi * r * frac
                self._turns.append((r, z, l_self, perimeter))
                remaining -= frac
                t_index += 1

    @classmethod
    def ironic_transmitter(cls, n_turns=IRONIC_TX_TURNS):
        """The patch's transmitting coil: a 32 mm-diameter 4-turn spiral
        on the flexible substrate (patch footprint is ~6 cm, Fig. 5).
        The radius reproduces the paper's measured power-vs-distance
        shape: calibrated to 15 mW at 6 mm, the model then lands within
        ~15% of the other two measured anchors (5 mW at 10 mm, 1.17 mW
        through 17 mm of tissue).  ``n_turns`` spins a geometry variant
        on the same radius (the engine's coil-geometry sweep axis)."""
        return cls(outer_radius=16e-3, n_turns=n_turns, trace_width=1e-3,
                   trace_thickness=35e-6, turn_pitch=2.2e-3)
