"""Capacitive matching-network design (CA / CB of the paper's Fig. 7).

"A purely capacitive matching network (CA and CB in Fig. 7) is used
between the receiving inductor and the input of the rectifier to have
impedance matching" — the rectifier presents an average input resistance
of ~150 ohm (Section IV-C); the L-match transforms it to conjugate-match
the receiving coil at 5 MHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import require_positive


@dataclass(frozen=True)
class CapacitiveMatch:
    """A two-capacitor L-match: ``c_series`` (CA) in series with the coil,
    ``c_parallel`` (CB) across the load."""

    c_series: float
    c_parallel: float
    freq: float
    r_source: float
    x_source: float
    r_load: float

    def input_impedance(self, freq=None):
        """Impedance seen looking into the network toward the load."""
        f = self.freq if freq is None else freq
        omega = 2.0 * math.pi * f
        z_cb = 1.0 / (1j * omega * self.c_parallel)
        z_load = (z_cb * self.r_load) / (z_cb + self.r_load)
        return z_load + 1.0 / (1j * omega * self.c_series)

    def match_error(self):
        """|Z_in - conjugate(Z_source)| / |Z_source| at the design point."""
        z_in = self.input_impedance()
        z_src = complex(self.r_source, self.x_source)
        return abs(z_in - z_src.conjugate()) / abs(z_src)

    def q_factor(self):
        """Loaded Q of the L-match (bandwidth indicator)."""
        big, small = max(self.r_load, self.r_source), min(
            self.r_load, self.r_source)
        return math.sqrt(big / small - 1.0) if big > small else 0.0


def design_l_match(r_source, x_source, r_load, freq):
    """Design CA/CB so the coil (``r_source + j*x_source``, inductive)
    conjugate-matches the resistive ``r_load``.

    Requires ``r_load > r_source`` (stepping the coil's small series
    resistance up to the rectifier's ~150 ohm), the paper's situation.
    Returns a :class:`CapacitiveMatch`.

    The parallel capacitor CB transforms ``r_load`` down to ``r_source``
    with a residual series reactance; the series capacitor CA then tunes
    out that reactance plus the coil inductance.
    """
    require_positive(r_source, "r_source")
    require_positive(r_load, "r_load")
    require_positive(freq, "freq")
    if x_source <= 0:
        raise ValueError(
            "x_source must be the coil's positive (inductive) reactance")
    if r_load <= r_source:
        raise ValueError(
            f"capacitive L-match needs r_load ({r_load}) > r_source "
            f"({r_source}); swap the topology otherwise")
    omega = 2.0 * math.pi * freq
    q = math.sqrt(r_load / r_source - 1.0)
    # Parallel section: CB across r_load gives series equivalent
    # r_source - j*r_source*q.
    c_parallel = q / (omega * r_load)
    # Series section must cancel +x_source (coil) and the parallel
    # section's -r_source*q... total required series capacitive
    # reactance: x_source - r_source*q.
    x_needed = x_source - r_source * q
    if x_needed <= 0:
        raise ValueError(
            "coil reactance too small to absorb the match; "
            "increase L or lower the transformation ratio")
    c_series = 1.0 / (omega * x_needed)
    return CapacitiveMatch(
        c_series=c_series,
        c_parallel=c_parallel,
        freq=freq,
        r_source=r_source,
        x_source=x_source,
        r_load=r_load,
    )
