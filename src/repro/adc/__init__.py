"""The 14-bit second-order sigma-delta ADC (paper Section II-B).

"To digitize 4 uA with the resolution of 250 pA, a 14-bit ADC is
required.  The designed ADC is a second order sigma-delta" — this package
provides a discrete-time behavioural model: the 2nd-order modulator, a
sinc^3 decimation chain, spectral SNR/ENOB analysis, and the
current-input wrapper with the paper's 4 uA / 250 pA specification.
"""

from repro.adc.sigma_delta import SigmaDeltaModulator
from repro.adc.decimator import sinc_decimate, Decimator
from repro.adc.analysis import sine_snr, enob_from_snr, sqnr_theoretical
from repro.adc.quantizer import IdealQuantizer
from repro.adc.converter import SensorADC
from repro.adc.incremental import IncrementalADC

__all__ = [
    "SigmaDeltaModulator",
    "sinc_decimate",
    "Decimator",
    "sine_snr",
    "enob_from_snr",
    "sqnr_theoretical",
    "IdealQuantizer",
    "SensorADC",
    "IncrementalADC",
]
