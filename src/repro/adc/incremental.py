"""Incremental sigma-delta operation — the sensor-ADC duty-cycle mode.

A free-running DSM wastes power between readings; sensor converters run
*incrementally*: reset the integrators, run exactly N modulator clocks,
take one filtered result, and power down.  This module adds that mode on
top of :class:`~repro.adc.sigma_delta.SigmaDeltaModulator`, with the
matched cascade-of-integrators (CoI) decoding filter and the classic
N >= f(bits) sizing rule for second-order loops.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adc.sigma_delta import SigmaDeltaModulator
from repro.util import require_positive


class IncrementalADC:
    """Second-order incremental converter.

    Each conversion: reset -> run ``n_clocks`` on a constant input ->
    decode with second-order CoI weights w_k ~ (n-k), which is the
    optimal linear decoder for a 2nd-order loop and yields resolution
    ~ n^2/2 LSB-equivalents.
    """

    def __init__(self, n_clocks=256, modulator=None):
        self.n_clocks = int(require_positive(n_clocks, "n_clocks"))
        if self.n_clocks < 8:
            raise ValueError("n_clocks must be >= 8")
        self.modulator = modulator or SigmaDeltaModulator()
        # Triangular (CoI-2) weights, normalised to unit DC gain.  The
        # finite-length decoder carries a deterministic 2/n gain deficit
        # (the loop's state at the cutoff); corrected in closed form.
        k = np.arange(self.n_clocks, dtype=float)
        self._weights = (self.n_clocks - k)
        self._weights /= self._weights.sum()
        self._gain_correction = 1.0 / (1.0 - 2.0 / self.n_clocks)

    @property
    def theoretical_bits(self):
        """Resolution bound of a 2nd-order incremental converter:
        ~log2(n*(n+1)/2) bits over the stable input range."""
        return math.log2(self.n_clocks * (self.n_clocks + 1) / 2.0)

    def convert(self, level):
        """One conversion of a DC ``level`` in [-0.8, 0.8]; returns the
        decoded estimate in the same units."""
        if abs(level) > self.modulator.stable_input_range:
            raise ValueError(
                f"input {level} outside the stable range "
                f"+/-{self.modulator.stable_input_range}")
        bits = self.modulator.modulate(
            np.full(self.n_clocks, float(level)))
        return float(np.dot(self._weights, bits)) * self._gain_correction

    def conversion_error(self, levels=None):
        """Worst |estimate - level| over a set of DC inputs."""
        if levels is None:
            levels = np.linspace(-0.75, 0.75, 13)
        worst = 0.0
        for level in levels:
            worst = max(worst, abs(self.convert(float(level)) - level))
        return worst

    def clocks_for_bits(self, bits):
        """Smallest n with theoretical resolution >= ``bits``."""
        require_positive(bits, "bits")
        n = 8
        while math.log2(n * (n + 1) / 2.0) < bits:
            n *= 2
            if n > 1 << 24:
                raise ValueError("unreasonable resolution request")
        return n

    def energy_per_conversion(self, i_supply=240e-6, v_supply=1.8,
                              f_clock=1.28e6):
        """Energy of one duty-cycled conversion (the power advantage of
        incremental operation over free-running)."""
        require_positive(f_clock, "f_clock")
        t_conv = self.n_clocks / f_clock
        return i_supply * v_supply * t_conv
