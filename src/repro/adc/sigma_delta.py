"""Second-order discrete-time sigma-delta modulator.

Boser-Wooley topology: two delaying integrators with gains (0.5, 0.5), a
1-bit quantizer, and full feedback — the workhorse architecture the paper
cites for its 14-bit converter.  Inputs are normalised to the +/-1
feedback reference; the usable stable range is about 80% of full scale.
"""

from __future__ import annotations

import numpy as np

from repro.util import require_positive


class SigmaDeltaModulator:
    """2nd-order 1-bit DSM.

    ``gains`` are the integrator scaling coefficients; ``integrator_leak``
    (0 = ideal) models finite op-amp gain; ``saturation`` clips the
    integrator states as real switched-cap stages do.
    """

    def __init__(self, gains=(0.5, 0.5), integrator_leak=0.0,
                 saturation=4.0, quantizer_hysteresis=0.0):
        if len(gains) != 2:
            raise ValueError("second-order modulator needs two gains")
        self.g1, self.g2 = (float(g) for g in gains)
        require_positive(self.g1, "gain 1")
        require_positive(self.g2, "gain 2")
        self.leak = float(integrator_leak)
        if not 0.0 <= self.leak < 0.1:
            raise ValueError("integrator_leak must be in [0, 0.1)")
        self.saturation = require_positive(saturation, "saturation")
        self.hysteresis = float(quantizer_hysteresis)

    @property
    def stable_input_range(self):
        """Conservative stable amplitude bound (fraction of reference)."""
        return 0.8

    def modulate(self, u):
        """Run the modulator over input samples ``u`` (array-like in
        [-1, 1]); returns the +/-1 bit array."""
        u = np.asarray(u, dtype=float)
        if u.ndim != 1:
            raise ValueError("input must be one-dimensional")
        if np.any(np.abs(u) > 1.0):
            raise ValueError("input exceeds the feedback reference (+/-1)")
        keep = 1.0 - self.leak
        s1 = 0.0
        s2 = 0.0
        y = 0.0
        out = np.empty(u.size)
        sat = self.saturation
        for i, x in enumerate(u):
            s1 = keep * s1 + self.g1 * (x - y)
            s1 = min(max(s1, -sat), sat)
            s2 = keep * s2 + self.g2 * (s1 - y)
            s2 = min(max(s2, -sat), sat)
            # 1-bit quantizer with optional hysteresis.
            if self.hysteresis > 0.0 and abs(s2) < self.hysteresis:
                pass  # hold the previous decision
            else:
                y = 1.0 if s2 >= 0.0 else -1.0
            out[i] = y
        return out

    def dc_transfer(self, levels, n_samples=4096, discard=256):
        """Average modulator output for each DC input level — the DSM's
        defining property is that this average tracks the input."""
        results = []
        for level in levels:
            bits = self.modulate(np.full(int(n_samples), float(level)))
            results.append(float(np.mean(bits[discard:])))
        return np.asarray(results)

    def is_stable_for(self, amplitude, n_samples=8192):
        """Empirical stability check: run a full-scale-ratio sine and
        verify the integrator states never pin at saturation for long."""
        if amplitude < 0:
            raise ValueError("amplitude must be >= 0")
        n = int(n_samples)
        t = np.arange(n)
        u = amplitude * np.sin(2.0 * np.pi * t * 7.0 / n)
        bits = self.modulate(u)
        # A collapsed modulator emits long constant runs.
        run = longest_run(bits)
        return run < 64


def longest_run(bits):
    """Length of the longest constant run in a +/-1 sequence."""
    bits = np.asarray(bits)
    if bits.size == 0:
        return 0
    change = np.nonzero(np.diff(bits) != 0)[0]
    if change.size == 0:
        return int(bits.size)
    runs = np.diff(np.concatenate(([-1], change, [bits.size - 1])))
    return int(runs.max())
