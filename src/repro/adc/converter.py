"""The sensor's current-input ADC with the paper's specification.

"The maximum value of I_WE is set to 4 uA and the current resolution is
set to 250 pA ... a 14-bit ADC is required."  `SensorADC` wraps the
sigma-delta modulator + decimator into exactly that interface: currents
in, 14-bit codes out, 240 uA consumption at 1.8 V (Section II-B).
"""

from __future__ import annotations

import math

import numpy as np

from repro.adc.decimator import Decimator
from repro.adc.sigma_delta import SigmaDeltaModulator
from repro.util import require_positive


class SensorADC:
    """Current-input, 14-bit, second-order sigma-delta converter."""

    #: Paper values (Section II-B).
    I_FULL_SCALE = 4e-6
    I_RESOLUTION = 250e-12
    N_BITS = 14
    I_SUPPLY = 240e-6
    V_SUPPLY = 1.8
    AREA_MM2 = 0.3  # ADC + bandgap reference

    def __init__(self, osr=256, modulator=None, readout_r=400e3,
                 seed=None):
        self.osr = int(require_positive(osr, "osr"))
        self.modulator = modulator or SigmaDeltaModulator()
        self.decimator = Decimator(osr=self.osr, n_bits=self.N_BITS)
        self.readout_r = require_positive(readout_r, "readout_r")
        self._rng = np.random.default_rng(seed)

    @classmethod
    def required_bits(cls, full_scale=None, resolution=None):
        """The paper's sizing argument: ceil(log2(range/resolution)).

        >>> SensorADC.required_bits()
        14
        """
        full_scale = full_scale if full_scale is not None else cls.I_FULL_SCALE
        resolution = resolution if resolution is not None else cls.I_RESOLUTION
        require_positive(full_scale, "full_scale")
        require_positive(resolution, "resolution")
        return math.ceil(math.log2(full_scale / resolution))

    def _normalise(self, current):
        """Cell current -> modulator input in [-1, 1] (bipolar around
        half scale, with 10% headroom to keep the DSM stable)."""
        u = (current / self.I_FULL_SCALE) * 2.0 - 1.0
        return u * 0.8

    def _denormalise_code(self, code):
        scaled = code / self.decimator.full_scale * 2.0 - 1.0
        return (scaled / 0.8 + 1.0) / 2.0 * self.I_FULL_SCALE

    def convert(self, current, n_output_samples=8, noise_rms_current=0.0):
        """Digitize a DC current; returns the median output code.

        ``n_output_samples`` decimated samples are produced (the
        modulator runs osr times as many clocks); optional input-referred
        current noise exercises resolution limits.
        """
        if not 0.0 <= current <= self.I_FULL_SCALE:
            raise ValueError(
                f"current {current:.3g} A outside [0, "
                f"{self.I_FULL_SCALE:.3g}] A")
        n_mod = (int(n_output_samples) + self.decimator.order) * self.osr
        u = np.full(n_mod, self._normalise(current))
        if noise_rms_current > 0.0:
            u = u + self._rng.normal(
                0.0, noise_rms_current / self.I_FULL_SCALE * 1.6,
                size=u.shape)
            u = np.clip(u, -1.0, 1.0)
        bits = self.modulator.modulate(u)
        codes = self.decimator.convert(bits)
        return int(np.median(codes))

    def current_from_code(self, code):
        """Code -> estimated input current (the calibration inverse)."""
        if not 0 <= code <= self.decimator.full_scale:
            raise ValueError(f"code {code} out of range")
        return self._denormalise_code(code)

    def effective_resolution(self, test_currents=None, **convert_kwargs):
        """Worst-case |reconstructed - true| over a set of DC inputs —
        must come in at/under the 250 pA specification."""
        if test_currents is None:
            test_currents = np.linspace(0.1e-6, 3.9e-6, 9)
        worst = 0.0
        for i_in in test_currents:
            code = self.convert(float(i_in), **convert_kwargs)
            err = abs(self.current_from_code(code) - i_in)
            worst = max(worst, err)
        return worst

    def power_consumption(self):
        """The paper's simulated figure: 240 uA at 1.8 V."""
        return self.I_SUPPLY * self.V_SUPPLY
