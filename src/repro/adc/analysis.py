"""Spectral analysis of ADC performance: SNR, SNDR, ENOB.

Standard methodology: coherent full-scale-ratio sine input, Hann window,
signal bins around the fundamental, noise integrated over the band of
interest.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util import require_positive


def coherent_bin(n_samples, cycles):
    """A prime-ish cycle count coherent with the record length."""
    if math.gcd(int(cycles), int(n_samples)) != 1:
        raise ValueError(f"{cycles} cycles not coprime with {n_samples}")
    return cycles / n_samples


def sine_snr(samples, freq_norm, signal_bins=3, dc_bins=6):
    """SNR (dB) of ``samples`` containing a sine at normalised frequency
    ``freq_norm`` (cycles per sample).

    ``signal_bins`` around the fundamental count as signal; the lowest
    ``dc_bins`` are excluded (DC and filter droop).
    """
    samples = np.asarray(samples, dtype=float)
    n = samples.size
    if n < 64:
        raise ValueError("need at least 64 samples for a spectrum")
    window = np.hanning(n)
    spectrum = np.abs(np.fft.rfft(samples * window)) ** 2
    k_sig = int(round(freq_norm * n))
    if k_sig <= dc_bins or k_sig >= spectrum.size - signal_bins:
        raise ValueError("signal frequency outside the analysable band")
    sig_lo = max(k_sig - signal_bins, 0)
    sig_hi = min(k_sig + signal_bins + 1, spectrum.size)
    p_signal = spectrum[sig_lo:sig_hi].sum()
    noise = np.concatenate(
        (spectrum[dc_bins:sig_lo], spectrum[sig_hi:]))
    p_noise = noise.sum()
    if p_noise <= 0:
        return float("inf")
    return 10.0 * math.log10(p_signal / p_noise)


def enob_from_snr(snr_db):
    """Effective number of bits: (SNR - 1.76) / 6.02."""
    return (snr_db - 1.76) / 6.02


def sqnr_theoretical(order, osr, amplitude=1.0):
    """Ideal sigma-delta SQNR (dB) for a sine at ``amplitude`` of full
    scale: 6.02*... the standard closed form

    SQNR = 10*log10( (3/2) * A^2 * (2L+1) * OSR^(2L+1) / pi^(2L) ).
    """
    require_positive(osr, "osr")
    if order < 1:
        raise ValueError("order must be >= 1")
    l2 = 2 * order
    value = (1.5 * amplitude**2 * (l2 + 1) * osr ** (l2 + 1)
             / math.pi ** l2)
    return 10.0 * math.log10(value)
