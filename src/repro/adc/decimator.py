"""Decimation filtering for the sigma-delta bitstream.

A sinc^3 (CIC) filter is the standard companion of a 2nd-order modulator:
its >=3rd-order zeros at multiples of the output rate suppress the
shaped quantization noise before downsampling by the OSR.
"""

from __future__ import annotations

import numpy as np

from repro.util import require_positive


def _sinc_kernel(osr, order):
    """Impulse response of a cascaded boxcar (sinc^order) filter."""
    kernel = np.ones(osr)
    for _ in range(order - 1):
        kernel = np.convolve(kernel, np.ones(osr))
    return kernel / kernel.sum()


def sinc_decimate(bits, osr, order=3):
    """Filter a +/-1 bitstream with sinc^order and downsample by ``osr``.

    Returns output samples in [-1, 1].  The first (order-1) outputs are
    startup transients of the filter and are dropped.
    """
    osr = int(osr)
    if osr < 2:
        raise ValueError("osr must be >= 2")
    if order < 1:
        raise ValueError("order must be >= 1")
    bits = np.asarray(bits, dtype=float)
    kernel = _sinc_kernel(osr, order)
    filtered = np.convolve(bits, kernel, mode="valid")
    out = filtered[::osr]
    return out[order - 1:] if out.size > order - 1 else out


class Decimator:
    """OSR-configured sinc^3 decimator with code mapping.

    Maps the filtered [-1, 1] output onto unsigned codes of ``n_bits``
    (mid-tread).  This is the digital back half of the paper's ADC.
    """

    def __init__(self, osr=256, order=3, n_bits=14):
        self.osr = int(require_positive(osr, "osr"))
        self.order = int(require_positive(order, "order"))
        self.n_bits = int(require_positive(n_bits, "n_bits"))
        if self.n_bits > 24:
            raise ValueError("n_bits > 24 is not supported")

    @property
    def full_scale(self):
        return (1 << self.n_bits) - 1

    def process(self, bits):
        """Bitstream -> normalised samples in [-1, 1]."""
        return sinc_decimate(bits, self.osr, self.order)

    def to_codes(self, samples):
        """[-1, 1] samples -> unsigned integer codes."""
        samples = np.asarray(samples, dtype=float)
        scaled = np.round((samples + 1.0) / 2.0 * self.full_scale)
        return np.clip(scaled, 0, self.full_scale).astype(int)

    def convert(self, bits):
        """Bitstream -> codes (process + map)."""
        return self.to_codes(self.process(bits))

    def latency_samples(self):
        """Group delay in modulator samples (order * osr / 2)."""
        return self.order * self.osr // 2
