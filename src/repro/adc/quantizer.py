"""Ideal N-bit quantizer and static-linearity metrics (INL/DNL).

Used as the reference the sigma-delta converter is compared against and
as the building block for the patch microcontroller's LSK sense ADC.
"""

from __future__ import annotations

import numpy as np

from repro.util import require_positive


class IdealQuantizer:
    """Uniform mid-tread quantizer over [v_min, v_max]."""

    def __init__(self, n_bits, v_min=0.0, v_max=1.8):
        self.n_bits = int(require_positive(n_bits, "n_bits"))
        if v_max <= v_min:
            raise ValueError("need v_max > v_min")
        self.v_min = float(v_min)
        self.v_max = float(v_max)

    @property
    def n_codes(self):
        return 1 << self.n_bits

    @property
    def lsb(self):
        return (self.v_max - self.v_min) / (self.n_codes - 1)

    def quantize(self, voltage):
        """Voltage(s) -> integer code(s), clipped to the range."""
        v = np.asarray(voltage, dtype=float)
        codes = np.round((v - self.v_min) / self.lsb)
        out = np.clip(codes, 0, self.n_codes - 1).astype(int)
        return int(out) if np.isscalar(voltage) else out

    def reconstruct(self, code):
        """Code(s) -> mid-tread voltage(s)."""
        c = np.asarray(code)
        v = self.v_min + c * self.lsb
        return float(v) if np.isscalar(code) else v

    def quantization_noise_rms(self):
        """Ideal quantization noise: LSB/sqrt(12)."""
        return self.lsb / np.sqrt(12.0)


def dnl_inl(transition_voltages, lsb):
    """DNL and INL (in LSB) from measured code-transition voltages.

    ``transition_voltages[k]`` is the input at which the output switches
    from code k to k+1.  Ideal spacing is one LSB.
    """
    tv = np.asarray(transition_voltages, dtype=float)
    if tv.size < 2:
        raise ValueError("need at least two transitions")
    if lsb <= 0:
        raise ValueError("lsb must be positive")
    widths = np.diff(tv)
    dnl = widths / lsb - 1.0
    inl = np.cumsum(np.concatenate(([0.0], dnl)))
    return dnl, inl
