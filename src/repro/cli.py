"""Command-line interface: regenerate the paper's experiments from a
terminal.

    python -m repro.cli list
    python -m repro.cli fig4
    python -m repro.cli fig11
    python -m repro.cli power --distances 6 10 17
    python -m repro.cli battery
    python -m repro.cli classe
    python -m repro.cli anchors
    python -m repro.cli sweep --distances 8 12 16 --loads-ua 352 1302
    python -m repro.cli sweep --workers 4 --cache-dir ~/.repro-sweeps \
        --axis temperature=33,37,41 --axis tissue=air,muscle \
        --format json
    python -m repro.cli serve --port 8765 --cache-dir ~/.repro-sweeps
"""

from __future__ import annotations

import argparse
import sys


def _print_table(title, rows, header=None):
    print(f"\n== {title} ==")
    if header:
        print("  " + " | ".join(f"{h:>16s}" for h in header))
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:>16.5g}")
            else:
                cells.append(f"{str(cell):>16s}")
        print("  " + " | ".join(cells))


def cmd_fig4(_args):
    from repro.sensor import CLODX, WTLODX, ElectronicInterface

    curves = {e.name: ElectronicInterface.for_enzyme(e).calibration_curve()
              for e in (CLODX, WTLODX)}
    rows = [(lc, cj, wj) for (lc, cj), (_, wj)
            in zip(curves["cLODx"].rows(), curves["wtLODx"].rows())]
    _print_table("Fig. 4: dJ (uA/cm^2) vs log10[lactate (mM)]", rows,
                 ["log10 C", "cLODx", "wtLODx"])
    return 0


def cmd_fig11(_args):
    from repro import RemotePoweringSystem

    result = RemotePoweringSystem(distance=10e-3).fig11_transient()
    _print_table("Fig. 11 transient", [
        ("charge to 2.75 V (us)", result.charge_time_to_2v75 * 1e6),
        ("downlink", "OK" if result.downlink_ok else "ERRORS"),
        ("uplink", "OK" if result.uplink_ok else "ERRORS"),
        ("min Vo during comms (V)", result.v_min_during_comms),
        ("rail >= 2.1 V", "PASS" if result.rail_ok else "FAIL"),
    ])
    return 0 if (result.downlink_ok and result.uplink_ok
                 and result.rail_ok) else 1


def cmd_power(args):
    from repro import RemotePoweringSystem
    from repro.link import TissueLayer

    system = RemotePoweringSystem(distance=10e-3)
    rows = []
    for d_mm in args.distances:
        rows.append((d_mm, system.available_power(d_mm * 1e-3) * 1e3))
    _print_table("Received power vs distance (air)", rows,
                 ["d (mm)", "P (mW)"])
    if args.tissue:
        meat = RemotePoweringSystem(
            distance=17e-3,
            tissue_layers=[TissueLayer(args.tissue, 17e-3)])
        _print_table(f"Through 17 mm of {args.tissue}",
                     [("P (mW)", meat.available_power() * 1e3)])
    return 0


def cmd_battery(_args):
    from repro.patch import IronicPatch

    patch = IronicPatch()
    rows = [(name, patch.scenario_current(name) * 1e3, hours)
            for name, hours in patch.battery_life_table().items()]
    _print_table("Patch battery life", rows,
                 ["scenario", "I (mA)", "hours"])
    return 0


def cmd_classe(_args):
    from repro.amplifier import ClassEDesign, simulate_class_e

    design = ClassEDesign.for_output_power(3.7, 0.1, 5e6, q_loaded=5.0)
    _print_table("Class-E design", list(design.summary().items()))
    meas, _ = simulate_class_e(design, cycles=40, points_per_cycle=100)
    _print_table("Simulated", [
        ("efficiency", meas.efficiency),
        ("ZVS quality", meas.zvs_quality),
        ("P_out (mW)", meas.p_out * 1e3),
        ("peak drain (V)", meas.peak_drain_voltage),
    ])
    return 0


def cmd_anchors(_args):
    from repro import PAPER

    rows = [(name, str(value), unit, where)
            for name, value, unit, where in PAPER.anchors()]
    _print_table("Paper anchors", rows,
                 ["claim", "value", "unit", "section"])
    return 0


def cmd_measure(args):
    from repro import RemotePoweringSystem

    system = RemotePoweringSystem(distance=args.distance * 1e-3)
    result = system.measure_lactate(args.concentration)
    _print_table("Remote lactate measurement",
                 list(result.items()))
    return 0


#: ``--axis KEY=V1,V2,...`` keys -> (Scenario field, value parser).
#: CLI-facing units: mm, uA, degC; engine-facing: SI.
_SWEEP_AXES = {
    "distance_mm": ("distance", lambda v: float(v) * 1e-3),
    "load_ua": ("i_load", lambda v: float(v) * 1e-6),
    "duty": ("duty_cycle", float),
    "drive": ("drive_scale", float),
    "v0": ("v0", float),
    "temperature": ("temperature", float),
    "rx_turns": ("rx_turns", float),
    "tx_turns": ("tx_turns", float),
    "tissue": ("tissue", str),
    "enzyme": ("enzyme", str),
}

#: Axes whose presence adds the physical-operating-point columns.
_PHYSICAL_AXES = ("temperature", "tissue", "enzyme", "rx_turns",
                  "tx_turns")

#: ``--axis`` keys of the circuit-level (``--study spice``) sweep.
_SPICE_AXES = {
    "template": ("template", str),
    "amplitude": ("amplitude", float),
    "freq_mhz": ("freq", lambda v: float(v) * 1e6),
    "load_ua": ("i_load", lambda v: float(v) * 1e-6),
}


def _parse_axis_specs(specs, table, unknown_hint):
    """Shared ``--axis KEY=V1,V2,...`` parser: every bad axis name or
    value raises a typed ScenarioAxisError (never a numpy broadcast
    traceback from deep inside a runner).  ``table`` maps CLI keys to
    (scenario field, value parser)."""
    from repro.engine import ScenarioAxisError

    axes = {}
    seen = set()
    for spec in specs or []:
        key, sep, values = spec.partition("=")
        key = key.strip().lower()
        if not sep or not values:
            raise ScenarioAxisError.for_axis(
                "--axis", spec, "expected KEY=V1,V2,...")
        if key not in table:
            raise ScenarioAxisError.for_axis(
                key, spec,
                f"unknown {unknown_hint}; known: {sorted(table)}")
        if key in seen:
            raise ScenarioAxisError.for_axis(
                key, spec, "axis given twice; list every value in one "
                           "--axis KEY=V1,V2,...")
        seen.add(key)
        field, parse = table[key]
        parsed = []
        for token in values.split(","):
            token = token.strip()
            try:
                parsed.append(parse(token))
            except (TypeError, ValueError):
                raise ScenarioAxisError.for_axis(
                    key, token, "not a valid value for this axis")
        axes[field] = parsed
    return axes


def _parse_sweep_axes(args):
    """The control-sweep grid as {Scenario field: [values]}."""
    axes = {
        "distance": [float(d) * 1e-3 for d in args.distances],
        "i_load": [float(i) * 1e-6 for i in args.loads_ua],
        "duty_cycle": [args.duty],
    }
    axes.update(_parse_axis_specs(args.axis, _SWEEP_AXES, "axis"))
    return axes


def _sweep_cells(batch, result, system, physical):
    """One plain dict per scenario: axis values + regulation metrics
    (+ the physical operating point when physical axes are swept)."""
    from repro.link.spiral import IRONIC_RX_TURNS, IRONIC_TX_TURNS

    frac, v_min, v_max, drive = result.regulation_statistics()
    implant_load = system.implant.load_current(measuring=False)
    report = batch.physical_report(system) if physical else None
    cells = []
    for i, sc in enumerate(batch.scenarios):
        i_load = implant_load if sc.i_load is None else sc.i_load
        cell = {
            "distance_mm": sc.distance_at(0.0) * 1e3,
            "load_ua": i_load * 1e6,
            "duty": sc.duty_cycle,
        }
        if physical:
            cell.update({
                "temperature": sc.temperature,
                "tissue": str(sc.tissue) if sc.tissue is not None
                else "air",
                "enzyme": str(sc.enzyme) if sc.enzyme is not None
                else "cLODx",
                "rx_turns": sc.rx_turns if sc.rx_turns is not None
                else float(IRONIC_RX_TURNS),
                "tx_turns": sc.tx_turns if sc.tx_turns is not None
                else float(IRONIC_TX_TURNS),
                "p_available_mw": float(report["p_available"][i]) * 1e3,
                "v_ox": float(report["v_ox"][i]),
                "sensor_j_ua_cm2": float(report["sensor_j"][i]) * 1e6,
                "temp_rise": float(report["temp_rise"][i]),
                "thermal_ok": bool(report["thermal_ok"][i]),
            })
        cell.update({
            "in_window": float(frac[i]),
            "v_min": float(v_min[i]),
            "v_max": float(v_max[i]),
            "mean_drive": float(drive[i]),
            "verdict": "OK" if frac[i] > 0.9 else "MARGINAL",
        })
        cells.append(cell)
    return cells


def _parse_spice_axes(args):
    """The ``--study spice`` grid as {SpiceScenario field: [values]}."""
    axes = _parse_axis_specs(args.axis, _SPICE_AXES, "spice axis")
    if not axes:
        # Default circuit grid: the paper's rectifier over drive
        # amplitude x load current.
        axes = {"template": ["rectifier"],
                "amplitude": [1.25, 1.5, 1.75],
                "i_load": [200e-6, 352e-6, 500e-6]}
    return axes


def _load_prev_study(path, expected_kind):
    """The previous study's cell-key list from a ``--format json``
    sweep output (its ``study.cell_keys`` block).  Returns
    ``(keys, None)`` or ``(None, error message)``."""
    import json

    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return None, f"cannot read previous study {path!r}: {exc}"
    study = doc.get("study") if isinstance(doc, dict) else None
    if not isinstance(study, dict) or "cell_keys" not in study:
        return None, (
            f"{path!r} has no study.cell_keys block; --diff-against "
            f"needs the JSON output of a previous `repro sweep "
            f"--format json` run")
    if study.get("kind") != expected_kind:
        return None, (
            f"previous study in {path!r} is kind "
            f"{study.get('kind')!r}, this sweep is {expected_kind!r}; "
            f"deltas only compare like with like")
    return list(study["cell_keys"]), None


def _run_delta(args, orchestrator, mode, batch, keys, **params):
    """The ``--diff-against`` lane shared by both sweep studies:
    validate prerequisites, load the previous key list, and run the
    incremental recomputation.  Returns ``(result, error exit code)``
    with exactly one of the two set."""
    if orchestrator.store is None:
        print("sweep: --diff-against requires a result store "
              "(--cache-dir or --store; unchanged cells are replayed "
              "from it)", file=sys.stderr)
        return None, 2
    prev_keys, error = _load_prev_study(args.diff_against, mode)
    if error:
        print(f"sweep: {error}", file=sys.stderr)
        return None, 2
    result, report = orchestrator.run_delta(
        mode, batch, prev_keys, keys=keys, **params)
    if not args.quiet:
        print(f"sweep: delta vs {args.diff_against}: "
              f"{report.summary()}", file=sys.stderr, flush=True)
    return result, None


def _run_spice_sweep(args, orchestrator):
    """The ``--study spice`` lane of cmd_sweep: circuit cells through
    the lockstep-batched adaptive transient backend."""
    import json

    from repro.engine import ScenarioAxisError, SpiceBatch

    if args.spice_t_stop_us <= 0 or args.spice_dt_ns <= 0:
        print("sweep: --spice-t-stop-us and --spice-dt-ns must be "
              "positive", file=sys.stderr)
        return 2
    if args.spice_matrix == "sparse" and args.spice_method != "adaptive":
        print("sweep: --spice-matrix sparse requires the adaptive "
              "backend (fixed-step methods are the dense parity "
              "reference)", file=sys.stderr)
        return 2
    params = {
        "t_stop": args.spice_t_stop_us * 1e-6,
        "dt": args.spice_dt_ns * 1e-9,
        "method": args.spice_method,
        "matrix": args.spice_matrix,
    }
    try:
        axes = _parse_spice_axes(args)
        batch = SpiceBatch.from_axes(**axes)
        keys = orchestrator.cell_keys("spice", batch, **params)
        if args.diff_against:
            result, code = _run_delta(
                args, orchestrator, "spice", batch, keys, **params)
            if result is None:
                return code
        else:
            result = orchestrator.run_spice(batch, keys=keys, **params)
    except ScenarioAxisError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    stats = orchestrator.stats
    cells = [{
        "template": sc.template,
        "amplitude": sc.amplitude,
        "freq_mhz": sc.freq * 1e-6,
        "load_ua": sc.i_load * 1e6,
        "v_final": float(result.v_final[i]),
        "ripple_mv": float(result.ripple[i]) * 1e3,
        "steps": int(result.steps[i]),
    } for i, sc in enumerate(batch.scenarios)]
    if args.format == "json":
        study = {
            "kind": "spice",
            "params": {
                "t_stop_us": args.spice_t_stop_us,
                "dt_ns": args.spice_dt_ns,
                "method": args.spice_method,
                "matrix": args.spice_matrix,
            },
            "cell_keys": keys,
        }
        print(json.dumps(
            {"stats": stats.as_dict(), "study": study, "cells": cells},
            indent=2))
        return 0
    if args.format == "csv":
        import csv

        writer = csv.DictWriter(sys.stdout, fieldnames=list(cells[0]))
        writer.writeheader()
        writer.writerows(cells)
        print(f"sweep: {stats.summary()}", file=sys.stderr)
        return 0
    headers = {"template": "template", "amplitude": "V_in (V)",
               "freq_mhz": "f (MHz)", "load_ua": "I_load (uA)",
               "v_final": "V_out (V)", "ripple_mv": "ripple (mV)",
               "steps": "steps"}
    columns = list(cells[0])
    rows = [tuple(cell[key] for key in columns) for cell in cells]
    _print_table(
        f"Circuit-level sweep ({len(batch)} cells, "
        f"{args.spice_method} backend, "
        f"t_stop={args.spice_t_stop_us:g} us)",
        rows, [headers.get(key, key) for key in columns])
    print(f"\n  [{stats.summary()}]")
    return 0


def _open_store(args, label):
    """Resolve ``--store`` (backend URI) / ``--cache-dir`` into a
    storage backend.  Returns ``(backend_or_None, exit_code_or_None)``
    — exactly one of the two is set when opening fails."""
    store_uri = getattr(args, "store", None)
    if store_uri:
        from repro.storage import BackendURIError, open_backend

        try:
            return open_backend(store_uri), None
        except (BackendURIError, OSError) as exc:
            print(f"{label}: cannot open store {store_uri!r}: {exc}",
                  file=sys.stderr)
            return None, 2
    if args.cache_dir:
        from repro.engine import ResultStore

        try:
            return ResultStore(args.cache_dir), None
        except OSError as exc:
            print(f"{label}: cannot use cache dir "
                  f"{args.cache_dir!r}: {exc}", file=sys.stderr)
            return None, 2
    return None, None


def cmd_sweep(args):
    from repro import RemotePoweringSystem
    from repro.core import AdaptivePowerController
    from repro.engine import SweepOrchestrator

    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    store, code = _open_store(args, "sweep")
    if code is not None:
        return code
    progress = None
    if not args.quiet:
        def progress(done, total, cells_done, cells_total):
            print(f"sweep: chunk {done}/{total} done "
                  f"({cells_done}/{cells_total} cells)",
                  file=sys.stderr, flush=True)
    recorder = None
    if args.metrics_jsonl:
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder(jsonl_path=args.metrics_jsonl,
                                   label=f"sweep:{args.study}")
    orchestrator = SweepOrchestrator(workers=args.workers, store=store,
                                     progress=progress,
                                     recorder=recorder)
    try:
        if args.study == "spice":
            return _run_spice_sweep(args, orchestrator)
        return _run_control_sweep(args, orchestrator, system,
                                  controller)
    finally:
        if recorder is not None:
            recorder.close()


def _run_control_sweep(args, orchestrator, system, controller):
    import json

    from repro.engine import ScenarioAxisError, ScenarioBatch

    store = orchestrator.store
    t_stop = args.t_stop * 1e-3
    try:
        axes = _parse_sweep_axes(args)
        batch = ScenarioBatch.from_axes(**axes)
        keys = orchestrator.cell_keys(
            "control", batch, system=system, controller=controller,
            t_stop=t_stop)
        # The run can still raise a typed axis error for values only
        # the physics rejects (e.g. rx_turns that pass range checks
        # but do not fit the coil footprint).
        if args.diff_against:
            result, code = _run_delta(
                args, orchestrator, "control", batch, keys,
                system=system, controller=controller, t_stop=t_stop)
            if result is None:
                return code
        else:
            result = orchestrator.run_control(batch, system, controller,
                                              t_stop=t_stop, keys=keys)
        physical = any(name in axes for name in _PHYSICAL_AXES)
        cells = _sweep_cells(batch, result, system, physical)
    except ScenarioAxisError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    stats = orchestrator.stats
    if store is not None and not args.quiet:
        print(f"sweep: {stats.n_cached}/{stats.n_scenarios} cells "
              f"from cache", file=sys.stderr, flush=True)

    if args.format == "json":
        study = {
            "kind": "control",
            "params": {"t_stop_ms": args.t_stop, "duty": args.duty},
            "cell_keys": keys,
        }
        print(json.dumps(
            {"stats": stats.as_dict(), "study": study, "cells": cells},
            indent=2))
        return 0
    if args.format == "csv":
        import csv

        writer = csv.DictWriter(sys.stdout, fieldnames=list(cells[0]))
        writer.writeheader()
        writer.writerows(cells)
        print(f"sweep: {stats.summary()}", file=sys.stderr)
        return 0
    headers = {
        "distance_mm": "d (mm)", "load_ua": "I_load (uA)",
        "temperature": "T (degC)", "p_available_mw": "P (mW)",
        "v_ox": "V_ox (V)", "sensor_j_ua_cm2": "J (uA/cm^2)",
        "temp_rise": "dT (degC)",
        "thermal_ok": "thermal", "in_window": "in-window",
        "v_min": "min Vo", "v_max": "max Vo",
        "mean_drive": "mean drive",
    }
    columns = list(cells[0])
    rows = [tuple(cell[key] for key in columns) for cell in cells]
    duty_values = axes.get("duty_cycle", [args.duty])
    duty_note = (f"duty={duty_values[0]:g}" if len(duty_values) == 1
                 else f"{len(duty_values)} duty points")
    _print_table(
        f"Batched control sweep ({len(batch)} scenarios, "
        f"{result.times.size} control steps, {duty_note})",
        rows, [headers.get(key, key) for key in columns])
    print(f"\n  [{stats.summary()}]")
    return 0


def cmd_serve(args):
    import asyncio
    import signal

    from repro.service import ServiceHTTPServer, SimulationService

    store, code = _open_store(args, "serve")
    if code is not None:
        return code

    recorder = None
    if args.metrics_jsonl:
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder(jsonl_path=args.metrics_jsonl,
                                   label="serve")

    async def run():
        service = SimulationService(
            store=store, scheduler_workers=args.workers or 1,
            window=args.window_ms * 1e-3, max_batch=args.max_batch,
            max_pending=args.max_pending, recorder=recorder)
        server = ServiceHTTPServer(service, host=args.host,
                                   port=args.port)
        host, port = await server.start()
        await service.start()
        print(f"repro serve: listening on http://{host}:{port} "
              f"({service.scheduler_workers} scheduler worker(s), "
              f"batch window {args.window_ms:g} ms, "
              f"max batch {args.max_batch} cells, "
              f"queue bound {args.max_pending} jobs)",
              file=sys.stderr, flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        registered = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                registered.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal handlers: Ctrl-C path
        serving = asyncio.create_task(server.serve_forever())
        stopping = asyncio.create_task(stop.wait())
        drain_stats = None
        try:
            await asyncio.wait({serving, stopping},
                               return_when=asyncio.FIRST_COMPLETED)
            if stop.is_set():
                # Graceful shutdown: new submits 503 while in-flight
                # jobs finish (status/stream stay served), bounded by
                # the drain timeout; leftovers are cancelled.
                print("repro serve: draining "
                      f"(timeout {args.drain_timeout_s:g} s)",
                      file=sys.stderr, flush=True)
                drain_stats = await service.drain(
                    timeout=args.drain_timeout_s)
                print(f"repro serve: drained "
                      f"{drain_stats['drained_jobs']} job(s) in "
                      f"{drain_stats['drain_elapsed_s']:.3f} s "
                      f"(clean={drain_stats['drain_clean']}, "
                      f"rejected "
                      f"{drain_stats['rejected_during_drain']})",
                      file=sys.stderr, flush=True)
        finally:
            for sig in registered:
                loop.remove_signal_handler(sig)
            for task in (serving, stopping):
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            await service.stop()
            await server.stop()
        return drain_stats

    drain_stats = None
    try:
        drain_stats = asyncio.run(run())
    except KeyboardInterrupt:
        print("repro serve: stopped", file=sys.stderr)
        return 0
    except OSError as exc:
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            recorder.close(**(drain_stats or {}))
    return 0


def cmd_lint(args):
    import json

    from repro.engine import SPICE_TEMPLATES, SpiceScenario
    from repro.spice.analyze import analyze_circuit, analyze_netlist
    from repro.spice.netlist_io import NetlistError

    targets = []
    for path in args.netlists:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"lint: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        try:
            _circuit, diags = analyze_netlist(text, source=path)
        except NetlistError as exc:
            print(f"lint: {path}: {exc}", file=sys.stderr)
            return 2
        targets.append((path, diags))
    for template in args.template or ():
        if template not in SPICE_TEMPLATES:
            print(f"lint: unknown template {template!r}; known "
                  f"templates: {sorted(SPICE_TEMPLATES)}", file=sys.stderr)
            return 2
        circuit, _node = SpiceScenario(template=template).build()
        targets.append((f"template:{template}", analyze_circuit(circuit)))
    if not targets:
        print("lint: nothing to lint — give netlist paths and/or "
              "--template NAME", file=sys.stderr)
        return 2

    findings = [d for _, diags in targets for d in diags]
    errors = sum(1 for d in findings if d.severity == "error")
    if args.format == "json":
        print(json.dumps({
            "targets": [
                {"source": source, "findings": [d.to_dict() for d in diags]}
                for source, diags in targets
            ],
            "findings": len(findings),
            "errors": errors,
            "warnings": len(findings) - errors,
        }, indent=2))
    else:
        for source, diags in targets:
            verdict = "clean" if not diags else (
                f"{len(diags)} finding{'s' if len(diags) > 1 else ''}")
            print(f"{source}: {verdict}")
            for d in diags:
                print(f"  {d.format(source=source)}")
        print(f"{len(targets)} target{'s' if len(targets) > 1 else ''}, "
              f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
              f"({errors} error{'s' if errors != 1 else ''})")
    return 2 if findings else 0


def cmd_list(_args):
    print("Available experiments:")
    for name, func in sorted(_COMMANDS.items()):
        doc = (func.__doc__ or "").strip()
        print(f"  {name:<10s} {doc}")
    return 0


_COMMANDS = {
    "fig4": cmd_fig4,
    "fig11": cmd_fig11,
    "power": cmd_power,
    "battery": cmd_battery,
    "classe": cmd_classe,
    "anchors": cmd_anchors,
    "measure": cmd_measure,
    "sweep": cmd_sweep,
    "serve": cmd_serve,
    "lint": cmd_lint,
    "list": cmd_list,
}

cmd_fig4.__doc__ = "lactate calibration curves (E1)"
cmd_fig11.__doc__ = "power-management transient (E2)"
cmd_power.__doc__ = "power vs distance / tissue (E3, E5)"
cmd_battery.__doc__ = "patch battery life (E4)"
cmd_classe.__doc__ = "class-E design + simulation (E7)"
cmd_anchors.__doc__ = "every quantitative claim of the paper"
cmd_measure.__doc__ = "run one remote measurement"
cmd_sweep.__doc__ = "batched distance x load control sweep (engine)"
cmd_serve.__doc__ = "JSON-over-HTTP simulation service (micro-batched)"
cmd_lint.__doc__ = "static circuit analysis of netlists / spice templates"
cmd_list.__doc__ = "this list"


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        p = sub.add_parser(name, help=_COMMANDS[name].__doc__)
        if name == "power":
            p.add_argument("--distances", type=float, nargs="+",
                           default=[6.0, 10.0, 17.0],
                           help="coil separations in mm")
            p.add_argument("--tissue", default=None,
                           help="tissue type for a 17 mm slab")
        if name == "measure":
            p.add_argument("--distance", type=float, default=10.0,
                           help="coil separation in mm")
            p.add_argument("--concentration", type=float, default=0.8,
                           help="lactate concentration in mM")
        if name == "lint":
            p.add_argument("netlists", nargs="*", metavar="NETLIST",
                           help="netlist files to analyze")
            p.add_argument("--template", action="append", default=[],
                           metavar="NAME",
                           help="lint a built-in spice study template "
                                "(repeatable; see --study spice)")
            p.add_argument("--format", default="table",
                           choices=("table", "json"),
                           help="findings as a readable table (default) "
                                "or one JSON document")
        if name == "sweep":
            p.add_argument("--study", default="control",
                           choices=("control", "spice"),
                           help="sweep family: adaptive-power control "
                                "grid (default) or carrier-resolved "
                                "circuit cells")
            p.add_argument("--spice-t-stop-us", type=float, default=4.0,
                           help="spice study: transient horizon in us")
            p.add_argument("--spice-dt-ns", type=float, default=5.0,
                           help="spice study: nominal step in ns")
            p.add_argument("--spice-method", default="adaptive",
                           choices=("adaptive", "trap", "be"),
                           help="spice study: integrator backend")
            p.add_argument("--spice-matrix", default="auto",
                           choices=("auto", "dense", "sparse"),
                           help="spice study: linear-solver strategy "
                                "(auto picks sparse CSR above the "
                                "node-count threshold)")
            p.add_argument("--distances", type=float, nargs="+",
                           default=[6.0, 8.0, 10.0, 12.0, 14.0, 16.0,
                                    18.0, 20.0],
                           help="coil separations in mm")
            p.add_argument("--loads-ua", type=float, nargs="+",
                           default=[200.0, 352.0, 500.0, 650.0, 800.0,
                                    1000.0, 1150.0, 1302.0],
                           help="implant load currents in uA")
            p.add_argument("--t-stop", type=float, default=60.0,
                           help="control-loop duration in ms")
            p.add_argument("--duty", type=float, default=1.0,
                           help="carrier duty cycle in (0, 1]")
            p.add_argument("--axis", action="append", default=None,
                           metavar="KEY=V1,V2,...",
                           help="extra sweep axis (repeatable): "
                                + ", ".join(sorted(_SWEEP_AXES)))
            p.add_argument("--workers", type=int, default=None,
                           help="worker processes for the orchestrated "
                                "sweep (default: serial)")
            p.add_argument("--cache-dir", default=None,
                           help="content-addressed result store; "
                                "repeated sweeps skip computed cells")
            p.add_argument("--store", default=None, metavar="URI",
                           help="storage backend URI (dir://PATH, "
                                "sqlite://PATH, tiered://PATH?shards=N,"
                                " mem://); overrides --cache-dir")
            p.add_argument("--format", default="table",
                           choices=("table", "json", "csv"),
                           help="output format")
            p.add_argument("--quiet", action="store_true",
                           help="suppress per-chunk progress lines "
                                "on stderr")
            p.add_argument("--metrics-jsonl", default=None,
                           metavar="PATH",
                           help="append session metrics events (one "
                                "JSON line each) to PATH")
            p.add_argument("--diff-against", default=None,
                           metavar="PREV.json",
                           help="incremental recomputation: previous "
                                "`--format json` output; only cells "
                                "whose physics changed are computed, "
                                "the rest replay from --cache-dir")
        if name == "serve":
            p.add_argument("--host", default="127.0.0.1",
                           help="bind address")
            p.add_argument("--port", type=int, default=8765,
                           help="TCP port (0 picks a free port)")
            p.add_argument("--workers", type=int, default=None,
                           help="scheduler workers draining the "
                                "shared queue (default 1; >1 grows "
                                "the serving tier to a process pool "
                                "sharing one storage backend)")
            p.add_argument("--cache-dir", default=None,
                           help="content-addressed result store "
                                "shared by all requests")
            p.add_argument("--store", default=None, metavar="URI",
                           help="storage backend URI (dir://PATH, "
                                "sqlite://PATH, tiered://PATH?shards=N,"
                                " mem://); overrides --cache-dir")
            p.add_argument("--drain-timeout-s", type=float,
                           default=10.0,
                           help="graceful-shutdown budget: seconds to "
                                "let in-flight jobs finish on "
                                "SIGTERM/SIGINT before cancelling "
                                "what is still queued")
            p.add_argument("--window-ms", type=float, default=10.0,
                           help="micro-batch collection window (ms)")
            p.add_argument("--max-batch", type=int, default=512,
                           help="max scenario cells per micro-batch")
            p.add_argument("--max-pending", type=int, default=512,
                           help="job-queue bound; beyond it /submit "
                                "returns 429")
            p.add_argument("--metrics-jsonl", default=None,
                           metavar="PATH",
                           help="append session metrics events (one "
                                "JSON line each) to PATH; the live "
                                "window stays on GET /metrics")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
