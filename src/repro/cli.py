"""Command-line interface: regenerate the paper's experiments from a
terminal.

    python -m repro.cli list
    python -m repro.cli fig4
    python -m repro.cli fig11
    python -m repro.cli power --distances 6 10 17
    python -m repro.cli battery
    python -m repro.cli classe
    python -m repro.cli anchors
    python -m repro.cli sweep --distances 8 12 16 --loads-ua 352 1302
"""

from __future__ import annotations

import argparse
import sys


def _print_table(title, rows, header=None):
    print(f"\n== {title} ==")
    if header:
        print("  " + " | ".join(f"{h:>16s}" for h in header))
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:>16.5g}")
            else:
                cells.append(f"{str(cell):>16s}")
        print("  " + " | ".join(cells))


def cmd_fig4(_args):
    from repro.sensor import CLODX, WTLODX, ElectronicInterface

    curves = {e.name: ElectronicInterface.for_enzyme(e).calibration_curve()
              for e in (CLODX, WTLODX)}
    rows = [(lc, cj, wj) for (lc, cj), (_, wj)
            in zip(curves["cLODx"].rows(), curves["wtLODx"].rows())]
    _print_table("Fig. 4: dJ (uA/cm^2) vs log10[lactate (mM)]", rows,
                 ["log10 C", "cLODx", "wtLODx"])
    return 0


def cmd_fig11(_args):
    from repro import RemotePoweringSystem

    result = RemotePoweringSystem(distance=10e-3).fig11_transient()
    _print_table("Fig. 11 transient", [
        ("charge to 2.75 V (us)", result.charge_time_to_2v75 * 1e6),
        ("downlink", "OK" if result.downlink_ok else "ERRORS"),
        ("uplink", "OK" if result.uplink_ok else "ERRORS"),
        ("min Vo during comms (V)", result.v_min_during_comms),
        ("rail >= 2.1 V", "PASS" if result.rail_ok else "FAIL"),
    ])
    return 0 if (result.downlink_ok and result.uplink_ok
                 and result.rail_ok) else 1


def cmd_power(args):
    from repro import RemotePoweringSystem
    from repro.link import TissueLayer

    system = RemotePoweringSystem(distance=10e-3)
    rows = []
    for d_mm in args.distances:
        rows.append((d_mm, system.available_power(d_mm * 1e-3) * 1e3))
    _print_table("Received power vs distance (air)", rows,
                 ["d (mm)", "P (mW)"])
    if args.tissue:
        meat = RemotePoweringSystem(
            distance=17e-3,
            tissue_layers=[TissueLayer(args.tissue, 17e-3)])
        _print_table(f"Through 17 mm of {args.tissue}",
                     [("P (mW)", meat.available_power() * 1e3)])
    return 0


def cmd_battery(_args):
    from repro.patch import IronicPatch

    patch = IronicPatch()
    rows = [(name, patch.scenario_current(name) * 1e3, hours)
            for name, hours in patch.battery_life_table().items()]
    _print_table("Patch battery life", rows,
                 ["scenario", "I (mA)", "hours"])
    return 0


def cmd_classe(_args):
    from repro.amplifier import ClassEDesign, simulate_class_e

    design = ClassEDesign.for_output_power(3.7, 0.1, 5e6, q_loaded=5.0)
    _print_table("Class-E design", list(design.summary().items()))
    meas, _ = simulate_class_e(design, cycles=40, points_per_cycle=100)
    _print_table("Simulated", [
        ("efficiency", meas.efficiency),
        ("ZVS quality", meas.zvs_quality),
        ("P_out (mW)", meas.p_out * 1e3),
        ("peak drain (V)", meas.peak_drain_voltage),
    ])
    return 0


def cmd_anchors(_args):
    from repro import PAPER

    rows = [(name, str(value), unit, where)
            for name, value, unit, where in PAPER.anchors()]
    _print_table("Paper anchors", rows,
                 ["claim", "value", "unit", "section"])
    return 0


def cmd_measure(args):
    from repro import RemotePoweringSystem

    system = RemotePoweringSystem(distance=args.distance * 1e-3)
    result = system.measure_lactate(args.concentration)
    _print_table("Remote lactate measurement",
                 list(result.items()))
    return 0


def cmd_sweep(args):
    from repro import RemotePoweringSystem
    from repro.core import AdaptivePowerController
    from repro.engine import ScenarioBatch

    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    distances = [d * 1e-3 for d in args.distances]
    loads = [i * 1e-6 for i in args.loads_ua]
    batch = ScenarioBatch.from_grid(distances, loads,
                                    duty_cycle=args.duty)
    result = batch.run_control(system, controller,
                               t_stop=args.t_stop * 1e-3)
    frac, v_min, v_max, drive = result.regulation_statistics()
    implant_load = system.implant.load_current(measuring=False)
    rows = []
    for i, sc in enumerate(batch.scenarios):
        i_load = implant_load if sc.i_load is None else sc.i_load
        rows.append((sc.distance_at(0.0) * 1e3,
                     i_load * 1e6, frac[i], v_min[i],
                     v_max[i], drive[i],
                     "OK" if frac[i] > 0.9 else "MARGINAL"))
    _print_table(
        f"Batched control sweep ({len(batch)} scenarios, "
        f"{result.times.size} control steps, duty={args.duty:g})",
        rows,
        ["d (mm)", "I_load (uA)", "in-window", "min Vo", "max Vo",
         "mean drive", "verdict"])
    return 0


def cmd_list(_args):
    print("Available experiments:")
    for name, func in sorted(_COMMANDS.items()):
        doc = (func.__doc__ or "").strip()
        print(f"  {name:<10s} {doc}")
    return 0


_COMMANDS = {
    "fig4": cmd_fig4,
    "fig11": cmd_fig11,
    "power": cmd_power,
    "battery": cmd_battery,
    "classe": cmd_classe,
    "anchors": cmd_anchors,
    "measure": cmd_measure,
    "sweep": cmd_sweep,
    "list": cmd_list,
}

cmd_fig4.__doc__ = "lactate calibration curves (E1)"
cmd_fig11.__doc__ = "power-management transient (E2)"
cmd_power.__doc__ = "power vs distance / tissue (E3, E5)"
cmd_battery.__doc__ = "patch battery life (E4)"
cmd_classe.__doc__ = "class-E design + simulation (E7)"
cmd_anchors.__doc__ = "every quantitative claim of the paper"
cmd_measure.__doc__ = "run one remote measurement"
cmd_sweep.__doc__ = "batched distance x load control sweep (engine)"
cmd_list.__doc__ = "this list"


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        p = sub.add_parser(name, help=_COMMANDS[name].__doc__)
        if name == "power":
            p.add_argument("--distances", type=float, nargs="+",
                           default=[6.0, 10.0, 17.0],
                           help="coil separations in mm")
            p.add_argument("--tissue", default=None,
                           help="tissue type for a 17 mm slab")
        if name == "measure":
            p.add_argument("--distance", type=float, default=10.0,
                           help="coil separation in mm")
            p.add_argument("--concentration", type=float, default=0.8,
                           help="lactate concentration in mM")
        if name == "sweep":
            p.add_argument("--distances", type=float, nargs="+",
                           default=[6.0, 8.0, 10.0, 12.0, 14.0, 16.0,
                                    18.0, 20.0],
                           help="coil separations in mm")
            p.add_argument("--loads-ua", type=float, nargs="+",
                           default=[200.0, 352.0, 500.0, 650.0, 800.0,
                                    1000.0, 1150.0, 1302.0],
                           help="implant load currents in uA")
            p.add_argument("--t-stop", type=float, default=60.0,
                           help="control-loop duration in ms")
            p.add_argument("--duty", type=float, default=1.0,
                           help="carrier duty cycle in (0, 1]")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
