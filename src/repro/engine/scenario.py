"""Batched scenario execution: many simulations as numpy array ops.

The rectified-current / clamp-current / rail-update math of the envelope
model and the control loop is elementwise in the rail voltage, so a set
of scenarios (distances, loads, drive scales, duty cycles, rectifier
variants) batches cleanly: one state *vector* per quantity, advanced in
lock-step.  A 64-scenario adaptive-control sweep runs one Python-level
loop instead of 64, which is where the >=10x speedup over scalar
``AdaptivePowerController.run`` calls comes from (see
benchmarks/test_bench_scenario_batch.py).

Scalar parity: every batched update uses the same operations in the same
order as the scalar code paths, so a batch run matches a loop of scalar
runs to float rounding (asserted in tests/test_engine_batch.py).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.components import (
    CONTROL_RAIL_CEILING_MARGIN,
    CONTROL_RAIL_SUBSTEPS,
)
from repro.power.envelope import (
    clamp_current_array,
    rectified_current_array,
)
from repro.util import require_positive


class ScenarioAxisError(ValueError):
    """Raised when a sweep axis carries a value no :class:`Scenario`
    can take (negative load, NaN distance, unknown tissue/enzyme, an
    axis name that does not exist).  Typed like
    :class:`~repro.core.control.RegulationWindowError` so frontends can
    report the bad axis cleanly instead of letting it propagate as a
    numpy broadcast traceback deep inside a runner."""

    @classmethod
    def for_axis(cls, name, value, reason):
        """The shared guard message (CLI and ``from_axes`` paths)."""
        return cls(f"sweep axis {name!r} value {value!r} is invalid: "
                   f"{reason}")


def _require_finite(value, name):
    """Finite-number guard: ``require_positive`` lets NaN through
    (NaN <= 0 is False), and a NaN axis value silently poisons a whole
    batch, so sweep-facing numbers are pinned here."""
    value = float(value)
    if not math.isfinite(value):
        raise ScenarioAxisError.for_axis(name, value,
                                         "must be a finite number")
    return value


def resolve_enzyme(spec):
    """Map a sensor-chemistry axis value (an
    :class:`~repro.sensor.enzyme.EnzymeKinetics` or a preset name) to
    kinetics; raises :class:`ScenarioAxisError` for unknown names."""
    from repro.sensor.enzyme import ENZYME_LIBRARY, EnzymeKinetics

    if isinstance(spec, EnzymeKinetics):
        return spec
    try:
        return ENZYME_LIBRARY[str(spec).lower()]
    except KeyError:
        raise ScenarioAxisError.for_axis(
            "enzyme", spec,
            f"known presets: {sorted(ENZYME_LIBRARY)}")


def resolve_tissue(spec, thickness):
    """Map a tissue-axis value (a ``TissueLayer``, a library name, or a
    list of layers) to a list of layers; a bare name gets ``thickness``
    (the scenario's coil separation — the full path is tissue)."""
    from repro.link.tissue import TISSUE_LIBRARY, TissueLayer

    if isinstance(spec, TissueLayer):
        return [spec]
    if isinstance(spec, (list, tuple)):
        return [layer for item in spec
                for layer in resolve_tissue(item, thickness)]
    name = str(spec)
    if name not in TISSUE_LIBRARY:
        raise ScenarioAxisError.for_axis(
            "tissue", spec, f"known tissues: {sorted(TISSUE_LIBRARY)}")
    if TISSUE_LIBRARY[name].conductivity == 0.0:
        return []          # air: the link's no-tissue default
    return [TissueLayer(name, thickness)]


@dataclass(frozen=True)
class Scenario:
    """One point of a batch sweep.

    ``distance`` is either a separation in metres or a callable
    ``d(t)`` (a motion profile).  ``i_load`` of None means "the
    system's low-power implant load".  ``duty_cycle`` derates the
    delivered carrier power (the patch gates the class-E on for that
    fraction of every control period).  ``rectifier`` of None uses the
    batch's shared default model.  ``v0`` is the initial rail voltage;
    None means the mode-appropriate convention — a 2.5 V warm start for
    control runs (the controller's historical default), a 0 V cold
    start for envelope runs — while an explicit value is honored by
    every runner.

    The physical axes compose existing layers into the sweep space:

    * ``tissue`` — a tissue name / ``TissueLayer`` / layer list in the
      link path (attenuates the mutual inductance, adds eddy loss);
    * ``temperature`` — ambient tissue temperature in degC (moves the
      bandgap references that set the oxidation potential, and eats
      into the implant's thermal-dissipation headroom);
    * ``enzyme`` — sensor chemistry (``"cLODx"``/``"wtLODx"``/
      ``"GOx"`` or explicit kinetics);
    * ``rx_turns`` / ``tx_turns`` — coil-geometry variants on the
      paper's footprints (rebuild the spiral models and the link).

    Scenarios carrying tissue or coil axes get their own
    :class:`~repro.link.twoport.InductiveLink` (see
    :meth:`ScenarioBatch.links_for`); the others share the system's.
    """

    distance: object = 10e-3
    i_load: float | None = None
    drive_scale: float = 1.0
    duty_cycle: float = 1.0
    rectifier: object = None
    v0: float | None = None
    tissue: object = None
    temperature: float = 37.0
    enzyme: object = None
    rx_turns: float | None = None
    tx_turns: float | None = None
    label: str = ""

    def __post_init__(self):
        if not callable(self.distance):
            require_positive(_require_finite(self.distance, "distance"),
                             "distance")
        _require_finite(self.duty_cycle, "duty_cycle")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        require_positive(_require_finite(self.drive_scale,
                                         "drive_scale"), "drive_scale")
        if self.i_load is not None:
            if _require_finite(self.i_load, "i_load") < 0.0:
                raise ScenarioAxisError.for_axis(
                    "i_load", self.i_load,
                    "load current must be >= 0")
        if self.v0 is not None:
            if _require_finite(self.v0, "v0") < 0.0:
                raise ScenarioAxisError.for_axis(
                    "v0", self.v0, "initial rail must be >= 0")
        t = _require_finite(self.temperature, "temperature")
        if not 0.0 <= t <= 60.0:
            raise ScenarioAxisError.for_axis(
                "temperature", self.temperature,
                "must be 0..60 degC (body-adjacent range)")
        for name in ("rx_turns", "tx_turns"):
            turns = getattr(self, name)
            if turns is not None:
                if not 1.0 <= _require_finite(turns, name) <= 40.0:
                    raise ScenarioAxisError.for_axis(
                        name, turns, "must be 1..40 turns")
        if self.enzyme is not None:
            resolve_enzyme(self.enzyme)
        if self.tissue is not None:
            resolve_tissue(self.tissue, self.distance_at(0.0))

    def distance_at(self, t):
        return float(self.distance(t)) if callable(self.distance) \
            else float(self.distance)

    @property
    def has_link_axes(self):
        """True when this scenario needs its own link model (tissue in
        the path or non-default coil geometry)."""
        return (self.tissue is not None or self.rx_turns is not None
                or self.tx_turns is not None)


# ----------------------------------------------------------------------
# Circuit-level (SPICE) scenarios: carrier-resolved netlist sweeps
# ----------------------------------------------------------------------
def _rectifier_template(sc):
    """The paper's Fig. 8 clamp-plus-rectifier cell (engine default)."""
    from repro.power.rectifier import build_rectifier_circuit

    ckt = build_rectifier_circuit(
        v_in_amplitude=sc.amplitude, freq=sc.freq, i_load=sc.i_load)
    if "ILOAD" not in ckt:
        # build_rectifier_circuit omits the load source at i_load=0;
        # a zero-ampere source keeps every cell of a study family
        # structurally identical so mixed loads can run in lockstep.
        ckt.add_isource("ILOAD", "vo", "0", 0.0)
    return ckt, "vo"


def _halfwave_template(sc):
    """Half-wave peak detector: diode into Co with a resistive load
    sized to draw ``i_load`` at the source amplitude."""
    from repro.spice import Circuit, sine

    ckt = Circuit(f"halfwave[{sc.label or sc.amplitude}]")
    ckt.add_vsource("V1", "in", "0", sine(sc.amplitude, sc.freq))
    ckt.add_diode("D1", "in", "out", i_s=1e-9)
    ckt.add_capacitor("C1", "out", "0", 100e-9, ic=0.0)
    r_load = sc.amplitude / max(sc.i_load, 1e-6)
    ckt.add_resistor("RL", "out", "0", r_load)
    return ckt, "out"


def _clamp_template(sc):
    """Stiff diode-clamp stack (the rectifier's overvoltage chain in
    isolation): a series resistor into four clamping diodes."""
    from repro.spice import Circuit, sine

    ckt = Circuit(f"clamp[{sc.label or sc.amplitude}]")
    ckt.add_vsource("V1", "in", "0", sine(sc.amplitude, sc.freq))
    ckt.add_resistor("Rs", "in", "out", 100.0)
    ckt.add_capacitor("Cs", "out", "0", 10e-12)
    previous = "out"
    for k in range(4):
        nxt = "0" if k == 3 else f"m{k}"
        ckt.add_diode(f"DC{k}", previous, nxt, i_s=1e-12)
        previous = nxt
    # Unconditional (possibly zero-ampere) load source: cells of one
    # family must stay structurally identical across the i_load axis.
    ckt.add_isource("IL", "out", "0", sc.i_load)
    return ckt, "out"


#: Netlist-template axis of the spice study: name -> builder returning
#: ``(circuit, output_node)`` for one :class:`SpiceScenario`.
SPICE_TEMPLATES = {
    "rectifier": _rectifier_template,
    "halfwave": _halfwave_template,
    "clamp": _clamp_template,
}


@dataclass(frozen=True)
class SpiceScenario:
    """One circuit cell of a spice study: a netlist template
    instantiated at a source amplitude (V), carrier frequency (Hz) and
    DC load current (A).  Validation raises the same typed
    :class:`ScenarioAxisError` as the envelope/control axes."""

    template: str = "rectifier"
    amplitude: float = 1.75
    freq: float = 5e6
    i_load: float = 350e-6
    label: str = ""

    def __post_init__(self):
        if self.template not in SPICE_TEMPLATES:
            raise ScenarioAxisError.for_axis(
                "template", self.template,
                f"known templates: {sorted(SPICE_TEMPLATES)}")
        for name in ("amplitude", "freq"):
            value = _require_finite(getattr(self, name), name)
            if value <= 0.0:
                raise ScenarioAxisError.for_axis(
                    name, value, "must be > 0")
        if _require_finite(self.i_load, "i_load") < 0.0:
            raise ScenarioAxisError.for_axis(
                "i_load", self.i_load, "load current must be >= 0")

    def build(self):
        """(circuit, output node) for this cell.

        Re-validates the template against :data:`SPICE_TEMPLATES` so a
        scenario deserialized from an older payload (or constructed via
        ``object.__new__``) still fails with the typed axis error
        instead of a bare ``KeyError``."""
        builder = SPICE_TEMPLATES.get(self.template)
        if builder is None:
            raise ScenarioAxisError.for_axis(
                "template", self.template,
                f"known templates: {sorted(SPICE_TEMPLATES)}")
        return builder(self)


@dataclass
class SpiceBatchResult:
    """Per-cell traces and metrics of one spice study run.

    ``v_out`` holds each cell's output-node voltage resampled onto the
    shared uniform ``times`` grid (fixed shape per cell, which is what
    makes the rows content-addressable in the ResultStore)."""

    times: np.ndarray               # (n_points,)
    v_out: np.ndarray               # (n_cells, n_points)
    v_final: np.ndarray             # (n_cells,)
    ripple: np.ndarray              # (n_cells,) max-min over the last 25%
    steps: np.ndarray               # (n_cells,) accepted integrator steps
    scenarios: list = field(default_factory=list)

    @property
    def n_cells(self):
        return self.v_out.shape[0]


class SpiceBatch:
    """A list of :class:`SpiceScenario` evaluated through the
    carrier-resolved circuit engine.

    Cells sharing a netlist template run in one lockstep
    :func:`~repro.spice.batch.transient_batch` family (the adaptive
    backend's vectorized/factorization-reuse path); mixed-template
    batches group by template.
    """

    def __init__(self, scenarios):
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ValueError("need at least one spice scenario")

    def __len__(self):
        return len(self.scenarios)

    @classmethod
    def from_axes(cls, **axes):
        """Cartesian product over named :class:`SpiceScenario` axes
        (``template``, ``amplitude``, ``freq``, ``i_load``), mirroring
        :meth:`ScenarioBatch.from_axes`."""
        valid = {f for f in SpiceScenario.__dataclass_fields__
                 if f != "label"}
        for name in axes:
            if name not in valid:
                raise ScenarioAxisError.for_axis(
                    name, axes[name],
                    f"unknown spice axis; valid axes: {sorted(valid)}")
        names = list(axes)
        for name in names:
            values = list(axes[name])
            if not values:
                raise ScenarioAxisError.for_axis(
                    name, axes[name], "axis needs at least one value")
            axes[name] = values
        scenarios = []
        for combo in itertools.product(*(axes[n] for n in names)):
            kwargs = dict(zip(names, combo))
            label = ",".join(
                f"{n}={v}" if isinstance(v, str) else f"{n}={v:g}"
                for n, v in kwargs.items())
            scenarios.append(SpiceScenario(label=label, **kwargs))
        return cls(scenarios)

    def run(self, t_stop, dt, method="adaptive", n_points=256,
            atol=None, rtol=None, max_dt=None, stats_out=None,
            matrix="auto"):
        """Integrate every cell and resample the output node onto a
        uniform ``n_points`` grid.  ``method`` is any
        :data:`repro.spice.METHODS` backend; solver tolerances default
        to the transient engine's adaptive defaults.

        Step control is shared within a lockstep family, so a cell's
        trace is reproduced to solver tolerance — not bitwise — when
        the surrounding batch composition changes (unlike the
        elementwise envelope/control runners).

        ``matrix`` selects the linear-solver strategy of each lockstep
        family (``"auto"`` / ``"dense"`` / ``"sparse"``, see
        :func:`repro.spice.batch.transient_batch`).  The choice never
        changes which circuits are solved or the accepted answers
        beyond solver round-off, so it is *not* part of a cell's
        content address.

        ``stats_out``, when given a dict, is filled with the solver
        counters summed over the run's lockstep families
        (``accepted_steps`` / ``newton_iters`` / ``newton_rejects`` /
        ``lte_rejects`` / ``factorizations`` / ``pattern_reuses``, plus
        the sorted ``templates`` string) — the payload of the
        observability layer's ``solve`` events."""
        from repro.spice import transient_batch
        from repro.spice.transient import ADAPTIVE_ATOL, ADAPTIVE_RTOL

        require_positive(t_stop, "t_stop")
        require_positive(dt, "dt")
        n_points = int(n_points)
        if n_points < 2:
            raise ValueError("n_points must be >= 2")
        atol = ADAPTIVE_ATOL if atol is None else float(atol)
        rtol = ADAPTIVE_RTOL if rtol is None else float(rtol)
        times = np.linspace(0.0, float(t_stop), n_points)
        n_sc = len(self)
        v_out = np.empty((n_sc, n_points))
        v_final = np.empty(n_sc)
        ripple = np.empty(n_sc)
        steps = np.empty(n_sc, dtype=int)
        groups = {}
        for idx, sc in enumerate(self.scenarios):
            groups.setdefault(sc.template, []).append(idx)
        solve_totals = {
            "accepted_steps": 0,
            "newton_iters": 0,
            "newton_rejects": 0,
            "lte_rejects": 0,
            "factorizations": 0,
            "pattern_reuses": 0,
        }
        for indices in groups.values():
            built = [self.scenarios[i].build() for i in indices]
            circuits = [c for c, _node in built]
            node = built[0][1]
            family = transient_batch(
                circuits, t_stop, dt, method=method, use_ic=True,
                atol=atol, rtol=rtol, max_dt=max_dt, matrix=matrix)
            for name in solve_totals:
                solve_totals[name] += int(family.stats.get(name, 0))
            traces = family.voltage(node)
            tail = family.t >= 0.75 * t_stop
            for row, i in enumerate(indices):
                v = np.interp(times, family.t, traces[row])
                v_out[i] = v
                v_final[i] = traces[row][-1]
                ripple[i] = traces[row][tail].max() - traces[row][tail].min()
                steps[i] = family.t.size - 1
        if stats_out is not None:
            stats_out.update(solve_totals)
            stats_out["templates"] = ",".join(sorted(groups))
            stats_out["cells"] = n_sc
        return SpiceBatchResult(
            times=times, v_out=v_out, v_final=v_final, ripple=ripple,
            steps=steps, scenarios=self.scenarios)


@dataclass
class BatchControlResult:
    """Vectorized adaptive-control traces: one row per scenario."""

    times: np.ndarray               # (n_steps,)
    distance: np.ndarray            # (n_scenarios, n_steps)
    v_rect: np.ndarray
    v_reported: np.ndarray
    drive_scale: np.ndarray
    p_delivered: np.ndarray
    saturated: np.ndarray           # boolean
    scenarios: list = field(default_factory=list)

    @property
    def n_scenarios(self):
        return self.v_rect.shape[0]

    def control_steps(self, i):
        """Scenario ``i`` as the scalar API's list of ``ControlStep``."""
        from repro.core.control import ControlStep

        return [
            ControlStep(
                time=float(self.times[k]),
                distance=float(self.distance[i, k]),
                v_rect=float(self.v_rect[i, k]),
                v_reported=float(self.v_reported[i, k]),
                drive_scale=float(self.drive_scale[i, k]),
                p_delivered=float(self.p_delivered[i, k]),
                saturated=bool(self.saturated[i, k]),
            )
            for k in range(self.times.size)
        ]

    def regulation_statistics(self, settle_fraction=0.3, v_minimum=None,
                              v_maximum=3.3):
        """Per-scenario (fraction in window, min Vo, max Vo, mean drive)
        over the post-settling tail — the vectorized analogue of
        ``AdaptivePowerController.regulation_statistics`` (which also
        supplies the default window floor, ``PAPER.v_rect_minimum``)."""
        if v_minimum is None:
            from repro.core.config import PAPER

            v_minimum = PAPER.v_rect_minimum
        if not 0.0 <= settle_fraction <= 1.0:
            raise ValueError("settle_fraction must be in [0, 1]")
        n = self.times.size
        start = int(n * settle_fraction)
        if start >= n:
            from repro.core.control import RegulationWindowError

            raise RegulationWindowError.for_run(n, settle_fraction)
        v = self.v_rect[:, start:]
        in_window = (v >= v_minimum) & (v <= v_maximum)
        return (
            in_window.mean(axis=1),
            v.min(axis=1),
            v.max(axis=1),
            self.drive_scale[:, start:].mean(axis=1),
        )


@dataclass
class BatchEnvelopeResult:
    """Vectorized envelope traces: Vo rows per scenario."""

    times: np.ndarray               # (n_steps,)
    v_rect: np.ndarray              # (n_scenarios, n_steps)
    p_in: np.ndarray                # (n_scenarios,)
    i_load: np.ndarray              # (n_scenarios,)
    scenarios: list = field(default_factory=list)

    @property
    def v_final(self):
        """Equilibrium (last-sample) rail voltage per scenario."""
        return self.v_rect[:, -1]

    def minimum_after(self, t):
        """Per-scenario minimum Vo from ``t`` to the end."""
        mask = self.times >= t
        return self.v_rect[:, mask].min(axis=1)

    def crossing_times(self, v_target):
        """First time each scenario's rail reaches ``v_target``
        (np.nan where it never does)."""
        reached = self.v_rect >= v_target
        out = np.full(self.v_rect.shape[0], np.nan)
        any_hit = reached.any(axis=1)
        out[any_hit] = self.times[np.argmax(reached[any_hit], axis=1)]
        return out


class ScenarioBatch:
    """Evaluates a list of :class:`Scenario` with vectorized numpy ops.

    The per-scenario rectifier parameters (Co, efficiency, clamp chain)
    are stacked into arrays once; every rail update then runs as
    elementwise array math across the whole batch.
    """

    def __init__(self, scenarios, default_rectifier=None):
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ValueError("need at least one scenario")
        if default_rectifier is None:
            from repro.power.envelope import RectifierEnvelopeModel

            default_rectifier = RectifierEnvelopeModel()
        self.default_rectifier = default_rectifier
        models = [s.rectifier or default_rectifier for s in self.scenarios]
        stack = lambda attr: np.array([getattr(m, attr) for m in models])
        self.c_out = stack("c_out")
        self.efficiency = stack("efficiency")
        self.clamp_voltage = stack("clamp_voltage")
        self.v_min_operate = stack("v_min_operate")
        self.clamp_i0 = stack("clamp_i0")
        self.clamp_slope = stack("clamp_slope")
        self.duty = np.array([s.duty_cycle for s in self.scenarios])
        self.scale0 = np.array([s.drive_scale for s in self.scenarios])

    def _v0(self, mode_default):
        """Per-scenario initial rail: explicit v0, else the runner's
        convention (2.5 V for control, 0 V cold start for envelope)."""
        return np.array([mode_default if s.v0 is None else s.v0
                         for s in self.scenarios])

    def __len__(self):
        return len(self.scenarios)

    @classmethod
    def from_grid(cls, distances, loads, **scenario_kwargs):
        """The workhorse constructor: the outer product of a distance
        sweep and a load sweep (>= 64 scenarios for an 8x8 grid)."""
        scenarios = [
            Scenario(distance=d, i_load=i,
                     label=f"d={d * 1e3:.1f}mm,i={i * 1e6:.0f}uA",
                     **scenario_kwargs)
            for d in distances for i in loads
        ]
        return cls(scenarios)

    @classmethod
    def from_axes(cls, default_rectifier=None, **axes):
        """Cartesian product over *named* scenario axes — electrical
        and physical in one grid::

            ScenarioBatch.from_axes(
                distance=[6e-3, 10e-3], i_load=[352e-6, 1.3e-3],
                tissue=["air", "muscle"], temperature=[33.0, 41.0])

        Every keyword must be a :class:`Scenario` field name mapped to
        a non-empty sequence of values; invalid names or values raise
        :class:`ScenarioAxisError` naming the offending axis.
        """
        valid = {f for f in Scenario.__dataclass_fields__
                 if f != "label"}
        for name in axes:
            if name not in valid:
                raise ScenarioAxisError.for_axis(
                    name, axes[name],
                    f"unknown axis; valid axes: {sorted(valid)}")
        names = list(axes)
        for name in names:
            values = list(axes[name])
            if not values:
                raise ScenarioAxisError.for_axis(
                    name, axes[name], "axis needs at least one value")
            axes[name] = values
        scenarios = []
        for combo in itertools.product(*(axes[n] for n in names)):
            kwargs = dict(zip(names, combo))
            label = ",".join(
                f"{n}={v!r}" if isinstance(v, str) else f"{n}={v:g}"
                if isinstance(v, (int, float)) else f"{n}={v}"
                for n, v in kwargs.items())
            try:
                scenarios.append(Scenario(label=label, **kwargs))
            except ScenarioAxisError:
                raise
            except (TypeError, ValueError) as exc:
                bad = {n: v for n, v in kwargs.items()}
                raise ScenarioAxisError(
                    f"scenario {bad} is invalid: {exc}") from exc
        return cls(scenarios, default_rectifier=default_rectifier)

    # ------------------------------------------------------------------
    # Shared time grids — single source for the runners here and for
    # the orchestrator's cache keys (repro.engine.parallel)
    # ------------------------------------------------------------------
    @staticmethod
    def control_times(controller, t_stop):
        """The control-step time base of :meth:`run_control`."""
        require_positive(t_stop, "t_stop")
        period = controller.update_period
        n = max(1, int(round(t_stop / period)))
        return np.arange(n) * period

    @staticmethod
    def envelope_times(t_stop, dt=1e-6):
        """The sample time base of :meth:`run_envelope`."""
        require_positive(t_stop, "t_stop")
        require_positive(dt, "dt")
        n = int(math.ceil(t_stop / dt)) + 1
        return np.linspace(0.0, t_stop, n)

    # ------------------------------------------------------------------
    # Per-scenario link models (physical axes)
    # ------------------------------------------------------------------
    def links_for(self, system):
        """One link model per scenario: ``system.link`` unless the
        scenario carries tissue or coil-geometry axes, in which case a
        variant :class:`~repro.link.twoport.InductiveLink` is built on
        the paper's footprints (memoised across the batch — scenarios
        sharing the same physical point share one link object)."""
        cache = {}
        links = []
        for sc in self.scenarios:
            if not sc.has_link_axes:
                links.append(system.link)
                continue
            layers = (resolve_tissue(sc.tissue, sc.distance_at(0.0))
                      if sc.tissue is not None else [])
            key = (sc.rx_turns, sc.tx_turns,
                   tuple((lay.tissue.name, lay.thickness)
                         for lay in layers))
            if key not in cache:
                from repro.link import (
                    CircularSpiral,
                    InductiveLink,
                    RectangularSpiral,
                )

                try:
                    coil_tx = (
                        CircularSpiral.ironic_transmitter(sc.tx_turns)
                        if sc.tx_turns is not None
                        else system.link.coil_tx)
                except ValueError as exc:
                    raise ScenarioAxisError.for_axis(
                        "tx_turns", sc.tx_turns, str(exc)) from exc
                try:
                    coil_rx = (
                        RectangularSpiral.ironic_receiver(sc.rx_turns)
                        if sc.rx_turns is not None
                        else system.link.coil_rx)
                except ValueError as exc:
                    raise ScenarioAxisError.for_axis(
                        "rx_turns", sc.rx_turns, str(exc)) from exc
                cache[key] = InductiveLink(coil_tx, coil_rx,
                                           system.link.freq, layers)
            links.append(cache[key])
        return links

    def physical_report(self, system, concentration=1.0):
        """Per-scenario physical operating point over the batch's
        temperature / tissue / enzyme / coil axes — dict of
        (n_scenarios,) arrays:

        * ``p_available`` — received power at the scenario's initial
          distance through its own link (W);
        * ``v_ox`` — WE-RE oxidation potential from the two bandgap
          references at the scenario temperature (V);
        * ``sensor_j`` — enzyme-electrode current density at
          ``concentration`` (A/cm^2);
        * ``temp_rise`` — implant steady-state temperature rise at
          ``p_available`` (degC, spherical-equivalent model);
        * ``thermal_ok`` — rise within the chronic limit derated by
          ambient temperature above body core (hot tissue has less
          headroom).
        """
        from repro.power.thermal import (
            ImplantThermalModel,
            thermal_headroom,
        )
        from repro.sensor.bandgap import regular_bandgap, sub_1v_bandgap

        links = self.links_for(system)
        bg_we, bg_re = regular_bandgap(), sub_1v_bandgap()
        coil = system.link.coil_rx
        try:
            # The implant slab is the receiver coil's footprint/stack.
            thermal = ImplantThermalModel.for_slab(
                coil.outer_length, coil.outer_width,
                coil.n_layers * coil.layer_pitch)
        except AttributeError:
            # Non-rectangular receiver: fall back to the paper's slab.
            thermal = ImplantThermalModel.for_slab(38e-3, 2e-3,
                                                   0.544e-3)
        n = len(self)
        p_avail = np.empty(n)
        v_ox = np.empty(n)
        sensor_j = np.empty(n)
        temp_rise = np.empty(n)
        thermal_ok = np.empty(n, dtype=bool)
        for i, sc in enumerate(self.scenarios):
            d = sc.distance_at(0.0)
            p = links[i].available_power(system.i_tx, d) \
                * sc.drive_scale ** 2 * sc.duty_cycle
            enzyme = resolve_enzyme(sc.enzyme if sc.enzyme is not None
                                    else "cLODx")
            p_avail[i] = p
            v_ox[i] = (bg_we.output(sc.temperature)
                       - bg_re.output(sc.temperature))
            sensor_j[i] = enzyme.current_density(concentration)
            temp_rise[i] = thermal.temperature_rise(p)
            thermal_ok[i] = temp_rise[i] \
                <= thermal_headroom(sc.temperature)
        return {
            "p_available": p_avail,
            "v_ox": v_ox,
            "sensor_j": sensor_j,
            "temp_rise": temp_rise,
            "thermal_ok": thermal_ok,
        }

    # ------------------------------------------------------------------
    # Elementwise rectifier math — delegated to the model module's
    # shared array formulas with this batch's stacked parameters, so
    # the physics lives in exactly one place
    # ------------------------------------------------------------------
    def _rectified_current(self, p_in, v):
        return rectified_current_array(p_in, v, self.efficiency,
                                       self.v_min_operate)

    def _clamp_current(self, v):
        return clamp_current_array(v, self.clamp_i0, self.clamp_voltage,
                                   self.clamp_slope)

    def _i_load(self, fallback):
        return np.array([fallback if s.i_load is None else s.i_load
                         for s in self.scenarios])

    # ------------------------------------------------------------------
    # Batched adaptive power control
    # ------------------------------------------------------------------
    def run_control(self, system, controller, t_stop):
        """The vectorized twin of ``AdaptivePowerController.run``: all
        scenarios advance through the same outer control steps and inner
        Euler substeps as one array."""
        n_sc = len(self)
        period = controller.update_period
        times = self.control_times(controller, t_stop)
        n = times.size
        n_sub = CONTROL_RAIL_SUBSTEPS
        dt_inner = period / n_sub
        v_ceiling = self.clamp_voltage + CONTROL_RAIL_CEILING_MARGIN
        i_load = self._i_load(system.implant.load_current(measuring=False))

        # Power scales as drive current squared, so one link solve per
        # (scenario, distance) gives p(scale) = scale^2 * p_unit.
        # Scenarios with tissue/coil axes solve through their own link.
        links = self.links_for(system)
        const = [not callable(s.distance) for s in self.scenarios]
        moving = [i for i, c in enumerate(const) if not c]
        d_const = np.array([s.distance_at(0.0) if c else np.nan
                            for s, c in zip(self.scenarios, const)])
        p_unit = np.array([
            link.available_power(system.i_tx, d) if c else np.nan
            for d, c, link in zip(d_const, const, links)])

        v = self._v0(2.5)
        scale = self.scale0.astype(float).copy()
        tr_d = np.empty((n_sc, n))
        tr_v = np.empty((n_sc, n))
        tr_vrep = np.empty((n_sc, n))
        tr_scale = np.empty((n_sc, n))
        tr_p = np.empty((n_sc, n))
        tr_sat = np.empty((n_sc, n), dtype=bool)

        # The inner Euler substeps dominate the run time, so they inline
        # the rectified_current_array / clamp_current_array formulas as
        # fused in-place ops on preallocated buffers; the batch-vs-scalar
        # parity tests pin this copy to the shared ones.  The clamp
        # leakage at Vo = 0 is exp(-clamp_voltage/slope) ~ 1e-13 of
        # clamp_i0 instead of exactly 0 — a sub-fA difference the scalar
        # parity tests bound.
        eff_p = np.empty(n_sc)
        i_net = np.empty(n_sc)
        buf = np.empty(n_sc)
        neg_cv_slope = -self.clamp_voltage / self.clamp_slope
        inv_slope = 1.0 / self.clamp_slope
        gain = dt_inner / self.c_out

        for k in range(n):
            t = times[k]
            if moving:
                d = d_const.copy()
                p_u = p_unit.copy()
                for i in moving:
                    d[i] = self.scenarios[i].distance_at(t)
                    p_u[i] = links[i].available_power(system.i_tx, d[i])
            else:
                d, p_u = d_const, p_unit
            p = p_u * scale * scale * self.duty
            np.multiply(p, self.efficiency, out=eff_p)
            np.maximum(eff_p, 0.0, out=eff_p)
            for _ in range(n_sub):
                np.maximum(v, self.v_min_operate, out=buf)
                np.divide(eff_p, buf, out=i_net)       # rectified current
                np.multiply(v, inv_slope, out=buf)
                buf += neg_cv_slope
                np.exp(buf, out=buf)
                buf *= self.clamp_i0                   # clamp leakage
                i_net -= buf
                i_net -= i_load
                i_net *= gain
                v += i_net
                np.maximum(v, 0.0, out=v)
                np.minimum(v, v_ceiling, out=v)
            # The controller's own quantizer and control law, applied
            # elementwise across the batch.
            v_rep = controller.quantize_telemetry(v)
            new_scale = controller.next_scale(scale, v_rep)
            tr_d[:, k] = d
            tr_v[:, k] = v
            tr_vrep[:, k] = v_rep
            tr_scale[:, k] = scale
            tr_p[:, k] = p
            tr_sat[:, k] = ((new_scale == controller.min_scale)
                            | (new_scale == controller.max_scale))
            scale = new_scale
        return BatchControlResult(
            times=times, distance=tr_d, v_rect=tr_v, v_reported=tr_vrep,
            drive_scale=tr_scale, p_delivered=tr_p, saturated=tr_sat,
            scenarios=self.scenarios)

    # ------------------------------------------------------------------
    # Batched envelope integration (constant power + load per scenario)
    # ------------------------------------------------------------------
    def run_envelope(self, p_in, t_stop, dt=1e-6, v0=None, i_load=None):
        """Integrate the rail envelope for every scenario at once.

        ``p_in`` is a scalar or an (n_scenarios,) array of constant
        input powers (scenario duty cycles derate it); ``v0`` of None
        uses each scenario's ``v0``, itself defaulting to the 0 V
        cold-start convention of ``RectifierEnvelopeModel.simulate``.
        """
        n_sc = len(self)
        p = np.broadcast_to(np.asarray(p_in, dtype=float),
                            (n_sc,)).copy() * self.duty
        i_l = (self._i_load(0.0) if i_load is None
               else np.broadcast_to(np.asarray(i_load, dtype=float),
                                    (n_sc,)).copy())
        t = self.envelope_times(t_stop, dt)
        n = t.size
        v = np.empty((n_sc, n))
        v[:, 0] = self._v0(0.0) if v0 is None else v0
        for k in range(1, n):
            vk = v[:, k - 1]
            i_rect = self._rectified_current(p, vk)
            i_clamp = self._clamp_current(vk)
            dv = (i_rect - i_l - i_clamp) * (t[k] - t[k - 1]) / self.c_out
            v[:, k] = np.maximum(vk + dv, 0.0)
        return BatchEnvelopeResult(times=t, v_rect=v, p_in=p, i_load=i_l,
                                   scenarios=self.scenarios)

    def charge_times(self, p_in, v_target, v0=None, dt=1e-6, limit=1.0,
                     i_load=None):
        """Per-scenario time to charge Co from ``v0`` (None: each
        scenario's ``v0``, cold start by default) to ``v_target`` under
        constant power/load — the vectorized twin of
        ``RectifierEnvelopeModel.charge_time``.  Returns np.nan where
        the target is unreachable (stalled, clamp-limited, or slower
        than ``limit`` seconds)."""
        require_positive(v_target, "v_target")
        n_sc = len(self)
        p = np.broadcast_to(np.asarray(p_in, dtype=float),
                            (n_sc,)).copy() * self.duty
        i_l = (self._i_load(0.0) if i_load is None
               else np.broadcast_to(np.asarray(i_load, dtype=float),
                                    (n_sc,)).copy())
        v = (self._v0(0.0) if v0 is None
             else np.broadcast_to(np.asarray(v0, dtype=float),
                                  (n_sc,)).copy())
        out = np.full(n_sc, np.nan)
        active = v < v_target
        # A scenario whose clamp sits below the target can never get there.
        active &= v_target <= self.clamp_voltage
        done_now = ~active & (v >= v_target) \
            & (v_target <= self.clamp_voltage)
        out[done_now] = 0.0
        max_steps = int(limit / dt)
        k = 0
        while active.any() and k < max_steps:
            i_rect = self._rectified_current(p, v)
            i_clamp = self._clamp_current(v)
            dv = (i_rect - i_l - i_clamp) * dt / self.c_out
            stalled = active & (dv <= 0.0)
            active &= ~stalled
            v = np.where(active, v + dv, v)
            k += 1
            reached = active & (v >= v_target)
            out[reached] = k * dt
            active &= ~reached
        return out
