"""Parallel sweep orchestration over :class:`ScenarioBatch`.

:class:`SweepOrchestrator` is the scale layer on top of the vectorized
batch runners: it shards a scenario grid into chunks, fans the chunks
out over ``multiprocessing`` workers (with a transparent serial
fallback), consults an optional content-addressed
:class:`~repro.engine.store.ResultStore` so already-computed cells are
never re-simulated, and merges the per-chunk arrays back into one
:class:`BatchControlResult` / :class:`BatchEnvelopeResult`.

Two properties are load-bearing and pinned by tests:

* **Bitwise parity** — every batched update is elementwise per
  scenario row, so a chunked (and multi-process) sweep returns arrays
  bitwise-identical to one serial ``ScenarioBatch`` run over the same
  grid, for any worker count (``tests/test_engine_parallel.py``).
* **Deterministic seeding** — Monte-Carlo shards draw from child seeds
  spawned deterministically from the master seed
  (:meth:`~repro.variability.montecarlo.MonteCarlo.child_seeds`), and
  the chunk plan depends only on ``n_samples`` and ``chunk_size``, so
  results do not depend on the worker count.

Chunking note: the vectorized time loop costs roughly the same per
chunk regardless of chunk width, so the default plan makes exactly one
chunk per worker.  Parallelism pays off when per-scenario Python work
(motion-profile link solves, per-scenario coil/tissue models)
dominates — which is exactly the physical-axes sweeps this layer
exists for.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.engine.components import (
    CONTROL_RAIL_CEILING_MARGIN,
    CONTROL_RAIL_SUBSTEPS,
)
from repro.engine.scenario import (
    BatchControlResult,
    BatchEnvelopeResult,
    ScenarioBatch,
    SpiceBatch,
    SpiceBatchResult,
    resolve_tissue,
)
from repro.engine.diff import DeltaReport, StudyDiff
from repro.engine.store import STORE_SCHEMA_VERSION, canonical_key

_CONTROL_FIELDS = (
    "distance",
    "v_rect",
    "v_reported",
    "drive_scale",
    "p_delivered",
    "saturated",
)


# ----------------------------------------------------------------------
# Physics fingerprints (cache keys are content hashes of these)
# ----------------------------------------------------------------------
def _rectifier_fingerprint(model):
    return {
        "type": type(model).__qualname__,
        "c_out": model.c_out,
        "efficiency": model.efficiency,
        "clamp_voltage": model.clamp_voltage,
        "v_min_operate": model.v_min_operate,
        "clamp_i0": model.clamp_i0,
        "clamp_slope": model.clamp_slope,
    }


def _tissue_fingerprint(layers):
    return [
        {
            "name": layer.tissue.name,
            "conductivity": layer.tissue.conductivity,
            "eps_r": layer.tissue.relative_permittivity,
            "thickness": layer.thickness,
        }
        for layer in layers
    ]


def _system_fingerprint(system):
    link = system.link
    return {
        "i_tx": system.i_tx,
        "freq": link.freq,
        "l_tx": link.l_tx,
        "l_rx": link.l_rx,
        "r_tx": link.r_tx,
        "r_rx": link.r_rx,
        "tissue": _tissue_fingerprint(link.tissue_layers),
        "i_load_default": system.implant.load_current(measuring=False),
    }


def _controller_fingerprint(controller):
    return {
        "type": type(controller).__qualname__,
        "v_low": controller.v_low,
        "v_high": controller.v_high,
        "step_ratio": controller.step_ratio,
        "min_scale": controller.min_scale,
        "max_scale": controller.max_scale,
        "telemetry_bits": controller.telemetry_bits,
        "update_period": controller.update_period,
    }


def _control_scenario_fingerprint(sc, rectifier, i_load_default, times):
    """Control-mode cell fingerprint — exactly the inputs
    ``run_control`` consumes, nothing more.  A motion profile is
    fingerprinted by its *sampled trace* on the run's control times
    (content addressing that keeps moving scenarios cacheable), and
    axes the control arrays never see (temperature, enzyme) are
    deliberately excluded so physically-identical cells share one
    stored result."""
    if callable(sc.distance):
        distance = [sc.distance_at(t) for t in times]
    else:
        distance = float(sc.distance)
    return {
        "distance": distance,
        "i_load": sc.i_load if sc.i_load is not None else i_load_default,
        "drive_scale": sc.drive_scale,
        "duty_cycle": sc.duty_cycle,
        "v0": sc.v0,
        "rectifier": _rectifier_fingerprint(rectifier),
        "rx_turns": sc.rx_turns,
        "tx_turns": sc.tx_turns,
        "tissue": (
            _tissue_fingerprint(resolve_tissue(sc.tissue, sc.distance_at(0.0)))
            if sc.tissue is not None
            else None
        ),
    }


# ----------------------------------------------------------------------
# Cell keys — the content address of one scenario cell in one run mode.
# Shared by the orchestrator's store lookups and the service layer's
# cross-request deduplication (repro.service), so "same cell" means
# exactly the same thing everywhere.
# ----------------------------------------------------------------------
def control_cell_keys(batch, system, controller, t_stop):
    """One :func:`~repro.engine.store.canonical_key` per scenario of a
    :meth:`SweepOrchestrator.run_control` run."""
    batch = SweepOrchestrator._as_batch(batch)
    times = ScenarioBatch.control_times(controller, t_stop)
    base = {
        "schema": STORE_SCHEMA_VERSION,
        "mode": "control",
        "system": _system_fingerprint(system),
        "controller": _controller_fingerprint(controller),
        "n_steps": int(times.size),
        "period": controller.update_period,
        "substeps": CONTROL_RAIL_SUBSTEPS,
        "ceiling_margin": CONTROL_RAIL_CEILING_MARGIN,
    }
    i_default = system.implant.load_current(measuring=False)
    keys = []
    for sc in batch.scenarios:
        rectifier = sc.rectifier or batch.default_rectifier
        fingerprint = _control_scenario_fingerprint(sc, rectifier, i_default, times)
        keys.append(canonical_key({**base, "scenario": fingerprint}))
    return keys


def envelope_inputs(batch, p_in, v0=None, i_load=None):
    """Per-scenario (pre-duty) power, load, and v0 arrays, resolved
    exactly as :meth:`ScenarioBatch.run_envelope` would."""
    n_sc = len(batch)
    p = np.broadcast_to(np.asarray(p_in, dtype=float), (n_sc,)).copy()
    if i_load is None:
        i_l = batch._i_load(0.0)
    else:
        i_l = np.broadcast_to(np.asarray(i_load, dtype=float), (n_sc,)).copy()
    if v0 is None:
        v_0 = batch._v0(0.0)
    else:
        v_0 = np.broadcast_to(np.asarray(v0, dtype=float), (n_sc,)).copy()
    return p, i_l, v_0


def _envelope_mode_keys(batch, mode, p, i_l, v_0, extra):
    base = {"schema": STORE_SCHEMA_VERSION, "mode": mode, **extra}
    return [
        canonical_key(
            {
                **base,
                "scenario": {
                    "p_in": p[i],
                    "i_load": i_l[i],
                    "v0": v_0[i],
                    "duty_cycle": sc.duty_cycle,
                    "rectifier": _rectifier_fingerprint(
                        sc.rectifier or batch.default_rectifier
                    ),
                },
            }
        )
        for i, sc in enumerate(batch.scenarios)
    ]


def envelope_cell_keys(batch, p_in, t_stop, dt=1e-6, v0=None, i_load=None):
    """Cell keys of a :meth:`SweepOrchestrator.run_envelope` run."""
    batch = SweepOrchestrator._as_batch(batch)
    p, i_l, v_0 = envelope_inputs(batch, p_in, v0, i_load)
    return _envelope_mode_keys(
        batch, "envelope", p, i_l, v_0, {"t_stop": float(t_stop), "dt": float(dt)}
    )


def charge_cell_keys(batch, p_in, v_target, v0=None, dt=1e-6, limit=1.0, i_load=None):
    """Cell keys of a :meth:`SweepOrchestrator.charge_times` run."""
    batch = SweepOrchestrator._as_batch(batch)
    p, i_l, v_0 = envelope_inputs(batch, p_in, v0, i_load)
    return _envelope_mode_keys(
        batch,
        "charge",
        p,
        i_l,
        v_0,
        {"v_target": float(v_target), "dt": float(dt), "limit": float(limit)},
    )


def spice_cell_keys(batch, t_stop, dt, method="adaptive", n_points=256,
                    atol=None, rtol=None, matrix="auto"):
    """Cell keys of a :meth:`SweepOrchestrator.run_spice` run.

    The fingerprint is the full circuit-cell content: netlist template
    + element-value axes + integrator backend and tolerances + the
    output resampling grid — so "same cell" means the same stored
    trace, across requests and across processes.

    ``matrix`` (the dense/sparse linear-solver strategy) is accepted so
    :meth:`SweepOrchestrator.run_delta` can forward its run parameters
    verbatim, but it is deliberately **excluded** from the fingerprint:
    both strategies solve the same equations on the same accepted grid,
    so switching solvers must replay cached rows, not recompute them.
    """
    from repro.spice.transient import ADAPTIVE_ATOL, ADAPTIVE_RTOL

    if not isinstance(batch, SpiceBatch):
        batch = SpiceBatch(list(batch))
    base = {
        "schema": STORE_SCHEMA_VERSION,
        "mode": "spice",
        "t_stop": float(t_stop),
        "dt": float(dt),
        "method": str(method),
        "n_points": int(n_points),
        "atol": ADAPTIVE_ATOL if atol is None else float(atol),
        "rtol": ADAPTIVE_RTOL if rtol is None else float(rtol),
    }
    return [
        canonical_key({
            **base,
            "scenario": {
                "template": sc.template,
                "amplitude": sc.amplitude,
                "freq": sc.freq,
                "i_load": sc.i_load,
            },
        })
        for sc in batch.scenarios
    ]


# ----------------------------------------------------------------------
# Chunk evaluation — module-level so worker processes can import it
# ----------------------------------------------------------------------
def _evaluate_chunk(payload):
    """Run one chunk and return its result rows as plain arrays.

    Alongside the arrays, the returned dict carries a ``"_meta"``
    record (mode, cell count, wall time, spice solver counters) that
    the parent pops and turns into ``chunk``/``solve`` metrics events
    — timings taken inside worker processes travel home with the data,
    so the recorder itself never crosses a process boundary.
    """
    t0 = time.perf_counter()
    mode = payload["mode"]
    rows = _evaluate_chunk_rows(payload, mode)
    meta = {
        "mode": mode,
        "cells": (
            int(payload["n_samples"])
            if mode == "montecarlo"
            else len(payload["scenarios"])
        ),
        "elapsed_s": time.perf_counter() - t0,
    }
    solve = rows.pop("_solve", None)
    if solve is not None:
        meta["solve"] = solve
    rows["_meta"] = meta
    return rows


def _evaluate_chunk_rows(payload, mode):
    if mode == "montecarlo":
        return payload["mc"].run_batch(
            payload["evaluate"], payload["n_samples"], seed=payload["seed"]
        )
    if mode == "spice":
        return _evaluate_spice_chunk(payload)
    batch = ScenarioBatch(
        payload["scenarios"], default_rectifier=payload["default_rectifier"]
    )
    if mode == "control":
        result = batch.run_control(
            payload["system"], payload["controller"], payload["t_stop"]
        )
        return {name: getattr(result, name) for name in _CONTROL_FIELDS}
    if mode == "envelope":
        result = batch.run_envelope(
            payload["p_in"],
            payload["t_stop"],
            dt=payload["dt"],
            v0=payload["v0"],
            i_load=payload["i_load"],
        )
        return {"v_rect": result.v_rect, "p_in": result.p_in, "i_load": result.i_load}
    if mode == "charge":
        return {
            "t_charge": batch.charge_times(
                payload["p_in"],
                payload["v_target"],
                v0=payload["v0"],
                dt=payload["dt"],
                limit=payload["limit"],
                i_load=payload["i_load"],
            )
        }
    raise ValueError(f"unknown chunk mode {mode!r}")


def _evaluate_spice_chunk(payload):
    """Run one spice chunk (kept separate from _evaluate_chunk: spice
    payloads carry SpiceScenario cells, not engine Scenario cells)."""
    batch = SpiceBatch(payload["scenarios"])
    solve = {}
    result = batch.run(
        payload["t_stop"], payload["dt"], method=payload["method"],
        n_points=payload["n_points"], atol=payload["atol"],
        rtol=payload["rtol"], stats_out=solve,
        matrix=payload.get("matrix", "auto"))
    return {
        "v_out": result.v_out,
        "v_final": result.v_final,
        "ripple": result.ripple,
        "steps": result.steps,
        "_solve": solve,
    }


@dataclass
class SweepStats:
    """What one orchestrated sweep did, for logs and sweep output."""

    mode: str = ""
    n_scenarios: int = 0
    n_cached: int = 0
    n_computed: int = 0
    n_chunks: int = 0
    workers: int = 1
    parallel: bool = False
    fallback_reason: str | None = None
    elapsed: float = 0.0
    store: dict | None = None
    #: Scenario indices that were actually computed this run (store
    #: misses); consumed by :meth:`SweepOrchestrator.run_delta` to
    #: classify replayed vs recomputed cells.  Not serialized.
    computed_indices: list | None = None
    #: :meth:`DeltaReport.as_dict` of the enclosing ``run_delta``, when
    #: this run was an incremental recomputation.
    delta: dict | None = None

    def as_dict(self):
        return {
            "mode": self.mode,
            "n_scenarios": self.n_scenarios,
            "n_cached": self.n_cached,
            "n_computed": self.n_computed,
            "n_chunks": self.n_chunks,
            "workers": self.workers,
            "parallel": self.parallel,
            "fallback_reason": self.fallback_reason,
            "elapsed_s": self.elapsed,
            "store": self.store,
            "delta": self.delta,
        }

    def summary(self):
        cache = (
            f", cache {self.n_cached} hit / {self.n_computed} miss"
            if self.store is not None
            else ""
        )
        lane = "parallel" if self.parallel else "serial"
        return (
            f"{self.n_scenarios} scenarios in {self.n_chunks} chunk(s), "
            f"{lane} x{self.workers}{cache}, {self.elapsed:.3f} s"
        )


class SweepOrchestrator:
    """Shard, (optionally) parallelise, cache, and merge batch sweeps.

    Parameters
    ----------
    workers : worker-process count; None/0/1 runs serially in-process.
    store : optional :class:`~repro.storage.StoreBackend` (any
        backend — the original npz directory, sqlite-indexed, tiered)
        or a backend URI string (``dir://...``, ``sqlite://...``, see
        :func:`repro.storage.open_backend`); when set, each scenario
        cell is looked up by its physics hash before any chunk is
        run, and computed cells are written back.
    chunk_size : scenarios per chunk; default makes one chunk per
        worker (see the module docstring on why fewer chunks win).
    start_method : multiprocessing start method; default prefers
        ``fork`` where available (cheap on Linux), else the platform
        default.
    progress : optional callable ``progress(done, total, cells_done,
        cells_total)`` fired after every completed chunk (cached cells
        are not chunks — frontends report them from the run stats), so
        long sweeps are observably alive while they run.
    recorder : optional :class:`~repro.obs.recorder.MetricsRecorder`;
        when set, every run emits ``sweep``/``chunk``/``solve``/
        ``store`` events into it (chunk timings are taken inside the
        workers and harvested by the parent — the recorder itself
        never crosses the process boundary).

    The orchestrator keeps the last run's :class:`SweepStats` in
    ``self.stats``.
    """

    def __init__(
        self,
        workers=None,
        store=None,
        chunk_size=None,
        start_method=None,
        progress=None,
        recorder=None,
    ):
        self.workers = max(1, int(workers)) if workers else 1
        if isinstance(store, str):
            from repro.storage import open_backend

            store = open_backend(store)
        self.store = store
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self.start_method = start_method
        self.progress = progress
        self.recorder = recorder
        self.stats = None

    # -- chunk plumbing -------------------------------------------------
    def _chunk_plan(self, indices):
        if not indices:
            return []
        size = self.chunk_size or math.ceil(len(indices) / self.workers)
        return [indices[k : k + size] for k in range(0, len(indices), size)]

    @staticmethod
    def _payload_cells(payload):
        """How many scenario cells (or MC samples) one payload holds."""
        if payload["mode"] == "montecarlo":
            return int(payload["n_samples"])
        return len(payload["scenarios"])

    def _harvest(self, rows):
        """Pop a chunk result's ``_meta`` record and emit its metrics
        events (the pop also keeps worker-side bookkeeping out of the
        merged arrays — montecarlo merges iterate the row keys)."""
        meta = rows.pop("_meta", None)
        if meta is None or self.recorder is None:
            return
        self.recorder.emit(
            "chunk",
            mode=meta["mode"],
            cells=meta["cells"],
            elapsed_s=meta["elapsed_s"],
        )
        solve = meta.get("solve")
        if solve:
            self.recorder.emit("solve", **solve)

    def _emit_circuit_lint(self, batch):
        """Lint every distinct template of a spice study once (the
        cells of a template share one topology) and record the verdict
        as a ``circuit_lint`` event before any solve is dispatched."""
        from repro.spice.analyze import analyze_circuit

        representatives = {}
        for sc in batch.scenarios:
            representatives.setdefault(sc.template, sc)
        findings = []
        for _, sc in sorted(representatives.items()):
            circuit, _node = sc.build()
            findings.extend(analyze_circuit(circuit))
        errors = sum(1 for d in findings if d.severity == "error")
        self.recorder.emit(
            "circuit_lint",
            templates=",".join(sorted(representatives)),
            cells=len(batch),
            findings=len(findings),
            errors=errors,
            warnings=len(findings) - errors,
            codes=",".join(sorted({d.code for d in findings})),
        )

    def _serial_map(self, payloads):
        report = self._progress_reporter(payloads)
        results = []
        for payload in payloads:
            rows = _evaluate_chunk(payload)
            self._harvest(rows)
            results.append(rows)
            report(len(results))
        return results

    def _progress_reporter(self, payloads):
        """A per-completed-chunk callback with the cumulative cell
        counts precomputed once (not once per chunk)."""
        if self.progress is None:
            return lambda done: None
        totals = [0]
        for payload in payloads:
            totals.append(totals[-1] + self._payload_cells(payload))
        return lambda done: self.progress(
            done, len(payloads), totals[done], totals[-1]
        )

    def _map(self, payloads):
        """Evaluate chunk payloads, in worker processes when possible.

        Returns (results, parallel?, fallback_reason).  Unpicklable
        payloads (e.g. lambda motion profiles) fall back to the serial
        path rather than failing the sweep.  Chunks are consumed as an
        ordered ``imap`` so the progress callback fires as each chunk
        lands, not only when the whole map returns.
        """
        if self.workers <= 1 or len(payloads) < 2:
            return self._serial_map(payloads), False, None
        try:
            pickle.dumps(payloads)
        except Exception as exc:  # noqa: BLE001 - any pickle failure
            reason = f"unpicklable sweep payload ({exc})"
            return self._serial_map(payloads), False, reason
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            if (
                "fork" in methods
                and threading.current_thread() is threading.main_thread()
            ):
                method = "fork"
            elif "forkserver" in methods:
                # Forking a multi-threaded process (the serving path
                # dispatches from an executor thread under a live
                # asyncio loop) can deadlock a child on an inherited
                # lock; the fork *server* forks from a clean process.
                method = "forkserver"
            else:
                method = "spawn"
        ctx = multiprocessing.get_context(method)
        report = self._progress_reporter(payloads)
        with ctx.Pool(min(self.workers, len(payloads))) as pool:
            results = []
            for rows in pool.imap(_evaluate_chunk, payloads):
                self._harvest(rows)
                results.append(rows)
                report(len(results))
            return results, True, None

    def _lookup(self, keys, n_scenarios):
        """Store lookups: ({index: row dict}, [miss indices])."""
        cached, misses = {}, []
        if keys is None:
            return cached, list(range(n_scenarios)), None
        for i, key in enumerate(keys):
            row = self.store.get(key)
            if row is None:
                misses.append(i)
            else:
                cached[i] = row
        return cached, misses, keys

    def _finish(
        self, mode, n_sc, n_cached, n_miss, n_chunks, parallel, reason, t0,
        computed=None,
    ):
        self.stats = SweepStats(
            mode=mode,
            n_scenarios=n_sc,
            n_cached=n_cached,
            n_computed=n_miss,
            n_chunks=n_chunks,
            workers=self.workers,
            parallel=parallel,
            fallback_reason=reason,
            elapsed=time.perf_counter() - t0,
            store=self.store.stats.as_dict() if self.store else None,
            computed_indices=None if computed is None else list(computed),
        )
        if self.recorder is not None:
            self.recorder.emit(
                "sweep",
                mode=mode,
                n_scenarios=n_sc,
                n_cached=n_cached,
                n_computed=n_miss,
                n_chunks=n_chunks,
                workers=self.workers,
                parallel=parallel,
                elapsed_s=self.stats.elapsed,
                cache_hit_rate=n_cached / n_sc if n_sc else 0.0,
                fallback_reason=reason,
            )
            if self.stats.store is not None:
                self.recorder.emit(
                    "store",
                    hits=self.stats.store["hits"],
                    misses=self.stats.store["misses"],
                    writes=self.stats.store["writes"],
                    evictions=self.stats.store["evictions"],
                )
        return self.stats

    @staticmethod
    def _as_batch(batch):
        if isinstance(batch, ScenarioBatch):
            return batch
        return ScenarioBatch(list(batch))

    # -- batched adaptive control --------------------------------------
    def run_control(self, batch, system, controller, t_stop, keys=None):
        """Orchestrated twin of :meth:`ScenarioBatch.run_control` —
        same arrays (bitwise), sharded/cached/parallel execution.

        ``keys`` lets a caller that already computed the per-cell
        content addresses (:func:`control_cell_keys` — e.g. the
        service scheduler's dedup pass) hand them in instead of
        paying the fingerprint walk twice; ignored without a store.
        """
        t0 = time.perf_counter()
        batch = self._as_batch(batch)
        times = ScenarioBatch.control_times(controller, t_stop)
        n = times.size
        if self.store is None:
            keys = None
        elif keys is None:
            keys = control_cell_keys(batch, system, controller, t_stop)
        cached, misses, keys = self._lookup(keys, len(batch))
        chunks = self._chunk_plan(misses)
        payloads = [
            {
                "mode": "control",
                "scenarios": [batch.scenarios[i] for i in chunk],
                "default_rectifier": batch.default_rectifier,
                "system": system,
                "controller": controller,
                "t_stop": t_stop,
            }
            for chunk in chunks
        ]
        results, parallel, reason = self._map(payloads)
        arrays = {
            name: np.empty(
                (len(batch), n),
                dtype=bool if name == "saturated" else float,
            )
            for name in _CONTROL_FIELDS
        }
        for i, row in cached.items():
            for name in _CONTROL_FIELDS:
                arrays[name][i] = row[name]
        for chunk, rows in zip(chunks, results):
            for name in _CONTROL_FIELDS:
                arrays[name][chunk] = rows[name]
        if self.store is not None:
            for i in misses:
                self.store.put(
                    keys[i], {name: arrays[name][i] for name in _CONTROL_FIELDS}
                )
        self._finish(
            "control",
            len(batch),
            len(cached),
            len(misses),
            len(chunks),
            parallel,
            reason,
            t0,
            computed=misses,
        )
        return BatchControlResult(
            times=times,
            distance=arrays["distance"],
            v_rect=arrays["v_rect"],
            v_reported=arrays["v_reported"],
            drive_scale=arrays["drive_scale"],
            p_delivered=arrays["p_delivered"],
            saturated=arrays["saturated"],
            scenarios=batch.scenarios,
        )

    # -- batched envelope integration ----------------------------------
    def run_envelope(
        self, batch, p_in, t_stop, dt=1e-6, v0=None, i_load=None, keys=None
    ):
        """Orchestrated twin of :meth:`ScenarioBatch.run_envelope`
        (``keys`` as in :meth:`run_control`)."""
        t0 = time.perf_counter()
        batch = self._as_batch(batch)
        times = ScenarioBatch.envelope_times(t_stop, dt)
        p, i_l, v_0 = envelope_inputs(batch, p_in, v0, i_load)
        if self.store is None:
            keys = None
        elif keys is None:
            keys = _envelope_mode_keys(
                batch,
                "envelope",
                p,
                i_l,
                v_0,
                {"t_stop": float(t_stop), "dt": float(dt)},
            )
        cached, misses, keys = self._lookup(keys, len(batch))
        chunks = self._chunk_plan(misses)
        payloads = [
            {
                "mode": "envelope",
                "scenarios": [batch.scenarios[i] for i in chunk],
                "default_rectifier": batch.default_rectifier,
                "p_in": p[chunk],
                "i_load": i_l[chunk],
                "v0": v_0[chunk],
                "t_stop": t_stop,
                "dt": dt,
            }
            for chunk in chunks
        ]
        results, parallel, reason = self._map(payloads)
        n = times.size
        v_rect = np.empty((len(batch), n))
        p_out = np.empty(len(batch))
        i_out = np.empty(len(batch))
        for i, row in cached.items():
            v_rect[i] = row["v_rect"]
            p_out[i] = row["p_in"]
            i_out[i] = row["i_load"]
        for chunk, rows in zip(chunks, results):
            v_rect[chunk] = rows["v_rect"]
            p_out[chunk] = rows["p_in"]
            i_out[chunk] = rows["i_load"]
        if self.store is not None:
            for i in misses:
                self.store.put(
                    keys[i],
                    {
                        "v_rect": v_rect[i],
                        "p_in": np.asarray(p_out[i]),
                        "i_load": np.asarray(i_out[i]),
                    },
                )
        self._finish(
            "envelope",
            len(batch),
            len(cached),
            len(misses),
            len(chunks),
            parallel,
            reason,
            t0,
            computed=misses,
        )
        return BatchEnvelopeResult(
            times=times,
            v_rect=v_rect,
            p_in=p_out,
            i_load=i_out,
            scenarios=batch.scenarios,
        )

    def charge_times(
        self, batch, p_in, v_target, v0=None, dt=1e-6, limit=1.0, i_load=None, keys=None
    ):
        """Orchestrated twin of :meth:`ScenarioBatch.charge_times`
        (``keys`` as in :meth:`run_control`)."""
        t0 = time.perf_counter()
        batch = self._as_batch(batch)
        p, i_l, v_0 = envelope_inputs(batch, p_in, v0, i_load)
        if self.store is None:
            keys = None
        elif keys is None:
            keys = _envelope_mode_keys(
                batch,
                "charge",
                p,
                i_l,
                v_0,
                {
                    "v_target": float(v_target),
                    "dt": float(dt),
                    "limit": float(limit),
                },
            )
        cached, misses, keys = self._lookup(keys, len(batch))
        chunks = self._chunk_plan(misses)
        payloads = [
            {
                "mode": "charge",
                "scenarios": [batch.scenarios[i] for i in chunk],
                "default_rectifier": batch.default_rectifier,
                "p_in": p[chunk],
                "i_load": i_l[chunk],
                "v0": v_0[chunk],
                "v_target": v_target,
                "dt": dt,
                "limit": limit,
            }
            for chunk in chunks
        ]
        results, parallel, reason = self._map(payloads)
        out = np.empty(len(batch))
        for i, row in cached.items():
            out[i] = row["t_charge"]
        for chunk, rows in zip(chunks, results):
            out[chunk] = rows["t_charge"]
        if self.store is not None:
            for i in misses:
                self.store.put(keys[i], {"t_charge": np.asarray(out[i])})
        self._finish(
            "charge",
            len(batch),
            len(cached),
            len(misses),
            len(chunks),
            parallel,
            reason,
            t0,
            computed=misses,
        )
        return out

    # -- batched circuit-level (spice) studies -------------------------
    def run_spice(self, batch, t_stop, dt, method="adaptive", n_points=256,
                  atol=None, rtol=None, keys=None, matrix="auto"):
        """Orchestrated twin of :meth:`SpiceBatch.run`: the same
        per-cell rows, with sharding, caching and (optional) worker
        processes.  ``keys`` as in :meth:`run_control`.

        Unlike the elementwise runners, spice cells share their
        chunk's lockstep step control, so sharding reproduces rows to
        solver tolerance rather than bitwise (and a cached row keeps
        the values of the composition that first computed it).

        ``matrix`` picks the family linear-solver strategy (``"auto"``
        / ``"dense"`` / ``"sparse"``); it travels in the worker payload
        but not in the cell keys — solver choice is an execution
        detail, not cell content."""
        from repro.spice.assembler import MATRIX_MODES

        if matrix not in MATRIX_MODES:
            raise ValueError(
                f"unknown matrix mode {matrix!r}; "
                f"expected one of {MATRIX_MODES}")
        from repro.spice.transient import ADAPTIVE_ATOL, ADAPTIVE_RTOL

        t0 = time.perf_counter()
        if not isinstance(batch, SpiceBatch):
            batch = SpiceBatch(list(batch))
        if self.recorder is not None:
            self._emit_circuit_lint(batch)
        atol = ADAPTIVE_ATOL if atol is None else float(atol)
        rtol = ADAPTIVE_RTOL if rtol is None else float(rtol)
        n_points = int(n_points)
        times = np.linspace(0.0, float(t_stop), n_points)
        if self.store is None:
            keys = None
        elif keys is None:
            keys = spice_cell_keys(batch, t_stop, dt, method=method,
                                   n_points=n_points, atol=atol, rtol=rtol)
        cached, misses, keys = self._lookup(keys, len(batch))
        chunks = self._chunk_plan(misses)
        payloads = [
            {
                "mode": "spice",
                "scenarios": [batch.scenarios[i] for i in chunk],
                "t_stop": t_stop,
                "dt": dt,
                "method": method,
                "n_points": n_points,
                "atol": atol,
                "rtol": rtol,
                "matrix": matrix,
            }
            for chunk in chunks
        ]
        results, parallel, reason = self._map(payloads)
        v_out = np.empty((len(batch), n_points))
        v_final = np.empty(len(batch))
        ripple = np.empty(len(batch))
        steps = np.empty(len(batch), dtype=int)
        for i, row in cached.items():
            v_out[i] = row["v_out"]
            v_final[i] = row["v_final"]
            ripple[i] = row["ripple"]
            steps[i] = int(row["steps"])
        for chunk, rows in zip(chunks, results):
            v_out[chunk] = rows["v_out"]
            v_final[chunk] = rows["v_final"]
            ripple[chunk] = rows["ripple"]
            steps[chunk] = rows["steps"]
        if self.store is not None:
            for i in misses:
                self.store.put(keys[i], {
                    "v_out": v_out[i],
                    "v_final": np.asarray(v_final[i]),
                    "ripple": np.asarray(ripple[i]),
                    "steps": np.asarray(steps[i]),
                })
        self._finish(
            "spice",
            len(batch),
            len(cached),
            len(misses),
            len(chunks),
            parallel,
            reason,
            t0,
            computed=misses,
        )
        return SpiceBatchResult(
            times=times,
            v_out=v_out,
            v_final=v_final,
            ripple=ripple,
            steps=steps,
            scenarios=batch.scenarios,
        )

    # -- incremental recomputation -------------------------------------
    #: mode -> (cell-key function, runner method name) for run_delta.
    _DELTA_MODES = {
        "control": ("control_cell_keys", "run_control"),
        "envelope": ("envelope_cell_keys", "run_envelope"),
        "charge": ("charge_cell_keys", "charge_times"),
        "spice": ("spice_cell_keys", "run_spice"),
    }

    def cell_keys(self, mode, batch, **params):
        """The per-cell content addresses of one run, by mode name.

        ``params`` are the keyword arguments the matching ``run_*``
        method takes (e.g. ``system=..., controller=..., t_stop=...``
        for ``"control"``) — the same spelling :meth:`run_delta` uses.
        """
        if mode not in self._DELTA_MODES:
            raise ValueError(
                f"unknown sweep mode {mode!r}; "
                f"known modes: {sorted(self._DELTA_MODES)}"
            )
        key_fn = globals()[self._DELTA_MODES[mode][0]]
        return key_fn(batch, **params)

    def run_delta(self, mode, batch, prev_keys, keys=None, **params):
        """Run one sweep as an *incremental recomputation* against a
        previous study definition.

        ``prev_keys`` is the previous study's cell-key list (persisted
        by ``repro sweep --output-json`` under ``study.cell_keys``);
        the current study's keys are computed from ``batch`` +
        ``params`` unless handed in.  Unchanged cells — same content
        address as some previous cell — replay from the store; only
        changed cells are simulated.  Requires a store for exactly
        that reason.

        Returns ``(result, report)`` where ``result`` is whatever the
        mode's plain runner returns and ``report`` is a
        :class:`~repro.engine.diff.DeltaReport`.  The report is also
        kept on ``self.stats.delta`` and emitted as a ``study_diff``
        metrics event.
        """
        if self.store is None:
            raise ValueError(
                "run_delta requires a result store — unchanged cells "
                "are replayed from it"
            )
        if mode not in self._DELTA_MODES:
            raise ValueError(
                f"unknown sweep mode {mode!r}; "
                f"known modes: {sorted(self._DELTA_MODES)}"
            )
        if keys is None:
            keys = self.cell_keys(mode, batch, **params)
        diff = StudyDiff.between(prev_keys, keys)
        runner = getattr(self, self._DELTA_MODES[mode][1])
        result = runner(batch, keys=keys, **params)
        computed = set(self.stats.computed_indices or ())
        unchanged = set(diff.unchanged_indices)
        replayed = sorted(unchanged - computed)
        replay_miss = sorted(unchanged & computed)
        report = DeltaReport(
            mode=mode,
            n_cells=diff.n_cells,
            n_changed=diff.n_changed,
            n_unchanged=diff.n_unchanged,
            n_removed=diff.n_removed,
            n_replayed=len(replayed),
            n_replay_miss=len(replay_miss),
            changed_indices=diff.changed_indices,
            replayed_indices=tuple(replayed),
            replay_miss_indices=tuple(replay_miss),
        )
        self.stats.delta = report.as_dict()
        if self.recorder is not None:
            self.recorder.emit(
                "study_diff",
                mode=mode,
                n_cells=report.n_cells,
                n_changed=report.n_changed,
                n_unchanged=report.n_unchanged,
                n_removed=report.n_removed,
                n_replayed=report.n_replayed,
                n_replay_miss=report.n_replay_miss,
            )
        return result, report

    # -- sharded Monte Carlo -------------------------------------------
    def run_montecarlo(self, mc, evaluate_batch, n_samples=200, seed=0, chunk_size=64):
        """Shard a vectorized Monte-Carlo run (see
        :meth:`~repro.variability.montecarlo.MonteCarlo.run_batch`)
        into deterministic chunks.

        Chunk seeds are spawned from ``seed`` via
        :meth:`MonteCarlo.child_seeds`, and the chunk plan depends only
        on ``n_samples`` and ``chunk_size`` — so merged metric arrays
        are identical for any worker count.  Results are not stored
        (``evaluate_batch`` has no content fingerprint).
        """
        t0 = time.perf_counter()
        if int(n_samples) < 1:
            raise ValueError("n_samples must be >= 1")
        if int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        plan = [
            min(chunk_size, n_samples - k)
            for k in range(0, int(n_samples), int(chunk_size))
        ]
        seeds = type(mc).child_seeds(seed, len(plan))
        payloads = [
            {
                "mode": "montecarlo",
                "mc": mc,
                "evaluate": evaluate_batch,
                "n_samples": count,
                "seed": chunk_seed,
            }
            for count, chunk_seed in zip(plan, seeds)
        ]
        results, parallel, reason = self._map(payloads)
        merged = {
            metric: np.concatenate([chunk[metric] for chunk in results])
            for metric in results[0]
        }
        self._finish(
            "montecarlo",
            int(n_samples),
            0,
            int(n_samples),
            len(plan),
            parallel,
            reason,
            t0,
        )
        return merged
