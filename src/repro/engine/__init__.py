"""Unified simulation engine: one discrete-time core, many frontends.

* :mod:`repro.engine.core` — the :class:`SimulationEngine` clock/event/
  trace loop shared by every end-to-end artefact;
* :mod:`repro.engine.components` — the pluggable physics blocks
  (rectifier rail, LSK/ASK power schedules, control-loop telemetry,
  firmware event feed);
* :mod:`repro.engine.scenario` — :class:`Scenario` /
  :class:`ScenarioBatch`: numpy-vectorized batch execution of many
  scenarios at once.
"""

from repro.engine.core import (
    SimComponent,
    SimEvent,
    SimulationEngine,
    SimulationResult,
)
from repro.engine.components import (
    AdaptiveDrive,
    AskPowerSource,
    ConstantSource,
    FirmwareEventFeed,
    RectifierRail,
    SignalSource,
    SubsteppedRail,
    TelemetryControl,
)
from repro.engine.scenario import (
    BatchControlResult,
    BatchEnvelopeResult,
    Scenario,
    ScenarioBatch,
)

__all__ = [
    "SimComponent",
    "SimEvent",
    "SimulationEngine",
    "SimulationResult",
    "AdaptiveDrive",
    "AskPowerSource",
    "ConstantSource",
    "FirmwareEventFeed",
    "RectifierRail",
    "SignalSource",
    "SubsteppedRail",
    "TelemetryControl",
    "BatchControlResult",
    "BatchEnvelopeResult",
    "Scenario",
    "ScenarioBatch",
]
