"""Unified simulation engine: one discrete-time core, many frontends.

* :mod:`repro.engine.core` — the :class:`SimulationEngine` clock/event/
  trace loop shared by every end-to-end artefact;
* :mod:`repro.engine.components` — the pluggable physics blocks
  (rectifier rail, LSK/ASK power schedules, control-loop telemetry,
  firmware event feed);
* :mod:`repro.engine.scenario` — :class:`Scenario` /
  :class:`ScenarioBatch`: numpy-vectorized batch execution of many
  scenarios at once, with electrical *and* physical sweep axes;
* :mod:`repro.engine.parallel` — :class:`SweepOrchestrator`: shards a
  batch over multiprocessing workers and merges the results;
* :mod:`repro.engine.store` — :class:`ResultStore`: content-addressed
  on-disk cache of per-scenario results;
* :mod:`repro.engine.diff` — :class:`StudyDiff` / :class:`DeltaReport`:
  cell-key deltas between study definitions, driving
  :meth:`SweepOrchestrator.run_delta` incremental recomputation.
"""

from repro.engine.core import (
    SimComponent,
    SimEvent,
    SimulationEngine,
    SimulationResult,
)
from repro.engine.components import (
    AdaptiveDrive,
    AskPowerSource,
    ConstantSource,
    FirmwareEventFeed,
    RectifierRail,
    SignalSource,
    SubsteppedRail,
    TelemetryControl,
)
from repro.engine.diff import DeltaReport, StudyDiff
from repro.engine.scenario import (
    SPICE_TEMPLATES,
    BatchControlResult,
    BatchEnvelopeResult,
    Scenario,
    ScenarioAxisError,
    ScenarioBatch,
    SpiceBatch,
    SpiceBatchResult,
    SpiceScenario,
)
from repro.engine.parallel import (
    SweepOrchestrator,
    SweepStats,
    charge_cell_keys,
    control_cell_keys,
    envelope_cell_keys,
    spice_cell_keys,
)
from repro.engine.store import ResultStore, StoreStats, canonical_key

__all__ = [
    "SimComponent",
    "SimEvent",
    "SimulationEngine",
    "SimulationResult",
    "AdaptiveDrive",
    "AskPowerSource",
    "ConstantSource",
    "FirmwareEventFeed",
    "RectifierRail",
    "SignalSource",
    "SubsteppedRail",
    "TelemetryControl",
    "BatchControlResult",
    "BatchEnvelopeResult",
    "Scenario",
    "ScenarioAxisError",
    "ScenarioBatch",
    "SPICE_TEMPLATES",
    "SpiceBatch",
    "SpiceBatchResult",
    "SpiceScenario",
    "DeltaReport",
    "StudyDiff",
    "SweepOrchestrator",
    "SweepStats",
    "charge_cell_keys",
    "control_cell_keys",
    "envelope_cell_keys",
    "spice_cell_keys",
    "ResultStore",
    "StoreStats",
    "canonical_key",
]
