"""Content-addressed on-disk result store for sweep orchestration.

Every scenario cell of a sweep is addressed by the SHA-256 of its full
physics fingerprint (scenario axes + system/controller parameters +
time grid — assembled in :mod:`repro.engine.parallel`), and its result
rows live in one ``.npz`` under a two-level sharded directory.  Repeated
sweeps, partially-overlapping grids, and CI bench reruns then skip every
already-computed cell; hit/miss counters are surfaced in sweep output.

Keys are content hashes, so a changed controller gain, tissue stack, or
engine constant simply misses — there is no invalidation protocol.  The
optional ``max_entries`` bound evicts least-recently-used cells (hits
touch the file mtime) so a long-lived cache directory cannot grow
without bound.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass

import numpy as np

#: Bump when the stored row layout or fingerprint layout changes; the
#: version participates in every key, so old cells simply stop matching.
STORE_SCHEMA_VERSION = 1


def _jsonable(obj):
    """Canonical-JSON fallback for numpy scalars and arrays."""
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"cannot fingerprint {type(obj).__name__!r} values")


def canonical_key(payload):
    """SHA-256 hex digest of a plain-data payload, via canonical JSON
    (sorted keys, no whitespace) so logically-equal fingerprints hash
    identically regardless of dict construction order."""
    blob = json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        default=_jsonable,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss accounting for one :class:`ResultStore` lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }


class ResultStore:
    """Scenario-hash -> ``.npz`` store rooted at ``root``.

    ``get``/``put`` move dicts of numpy arrays; writes go through a
    temp file + atomic rename so a crashed sweep never leaves a
    half-written cell that later reads as a corrupt hit.
    """

    def __init__(self, root, max_entries=None):
        self.root = os.path.expanduser(str(root))
        os.makedirs(self.root, exist_ok=True)
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.stats = StoreStats()
        # Approximate cell count so put() only pays a full directory
        # scan when the bound is actually exceeded; _evict resyncs it.
        self._count = None

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".npz")

    def _entries(self):
        """(mtime, path) for every stored cell."""
        out = []
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if not name.endswith(".npz"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    out.append((os.path.getmtime(path), path))
                except OSError:
                    continue
        return out

    def __len__(self):
        return len(self._entries())

    def get(self, key):
        """The stored arrays for ``key``, or None (counted as a miss).
        A hit refreshes the cell's LRU position."""
        path = self._path(key)
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, EOFError, KeyError):
            # Missing cell, or one corrupted mid-write by a hard kill:
            # either way it is a miss and will be recomputed.
            self.stats.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            # A concurrent process evicted the cell between the load
            # and the LRU touch; the data is already in hand.
            pass
        self.stats.hits += 1
        return arrays

    def put(self, key, arrays):
        """Store ``arrays`` (a dict of numpy arrays) under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        existed = os.path.exists(path)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.writes += 1
        if self.max_entries is not None:
            if self._count is None:
                self._count = len(self._entries())
            elif not existed:
                self._count += 1
            if self._count > self.max_entries:
                self._evict()

    def _evict(self):
        entries = sorted(self._entries())
        self._count = len(entries)
        excess = max(0, self._count - self.max_entries)
        for _, path in entries[:excess]:
            try:
                os.unlink(path)
                self.stats.evictions += 1
                self._count -= 1
            except OSError:
                continue

    def clear(self):
        """Drop every stored cell (keeps the root directory)."""
        for _, path in self._entries():
            try:
                os.unlink(path)
            except OSError:
                continue
        self._count = 0
