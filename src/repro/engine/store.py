"""Back-compat shim over :mod:`repro.storage`.

The content-addressed result store grew into the pluggable storage
subsystem (:mod:`repro.storage`): the npz-directory implementation
that used to live here is now
:class:`~repro.storage.directory.DirectoryBackend`, one of several
backends behind one :class:`~repro.storage.base.StoreBackend`
contract (``dir://``, ``sqlite://``, ``tiered://``, ``mem://`` — see
:func:`repro.storage.open_backend`).

Everything historically importable from this module keeps working:
``ResultStore`` *is* the directory backend (same constructor, same
on-disk layout, same LRU/atomic-write semantics), and
``canonical_key`` / ``StoreStats`` / ``STORE_SCHEMA_VERSION`` are the
shared storage-layer objects re-exported under their old names.
"""

from __future__ import annotations

from repro.storage.base import (  # noqa: F401 - re-exported surface
    STORE_SCHEMA_VERSION,
    StoreStats,
    _canonical_value,
    canonical_key,
)
from repro.storage.directory import DirectoryBackend


class ResultStore(DirectoryBackend):
    """The original scenario-hash -> ``.npz`` store, now an alias of
    :class:`~repro.storage.directory.DirectoryBackend` (see that class
    for the semantics; nothing changed on disk)."""
