"""Content-addressed on-disk result store for sweep orchestration.

Every scenario cell of a sweep is addressed by the SHA-256 of its full
physics fingerprint (scenario axes + system/controller parameters +
time grid — assembled in :mod:`repro.engine.parallel`), and its result
rows live in one ``.npz`` under a two-level sharded directory.  Repeated
sweeps, partially-overlapping grids, and CI bench reruns then skip every
already-computed cell; hit/miss counters are surfaced in sweep output.

Keys are content hashes, so a changed controller gain, tissue stack, or
engine constant simply misses — there is no invalidation protocol.  The
optional ``max_entries`` bound evicts least-recently-used cells so a
long-lived cache directory cannot grow without bound.  LRU order is
tracked in an in-memory index (rebuilt once per store instance from
file mtimes) so ``put`` never rescans the directory; hits still touch
the file mtime so a *future* store instance — or another process
sharing the directory — rebuilds the same order.

Writes go through a temp file + atomic rename, so two processes sharing
one cache directory can race on the same cell and both leave a complete
``.npz`` behind; a cell evicted under a concurrent reader's feet simply
reads as a miss and is recomputed.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass

import numpy as np

#: Bump when the stored row layout or fingerprint layout changes; the
#: version participates in every key, so old cells simply stop matching.
STORE_SCHEMA_VERSION = 1


def _canonical_value(obj):
    """Recursively reduce a fingerprint payload to canonical plain data.

    Beyond numpy scalars/arrays, non-finite floats are rewritten to a
    tagged one-key dict: ``json.dumps`` would otherwise emit bare
    ``NaN``/``Infinity`` tokens (invalid JSON, and a foot-gun for any
    non-Python consumer of the key scheme).  The tag is a dict — not a
    bare string — so a payload that legitimately contains the *string*
    ``"NaN"`` can never collide with a payload containing the float.
    """
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        obj = obj.item()
    if isinstance(obj, np.ndarray):
        obj = obj.tolist()
    if isinstance(obj, float) and not math.isfinite(obj):
        if math.isnan(obj):
            return {"__nonfinite__": "nan"}
        return {"__nonfinite__": "inf" if obj > 0 else "-inf"}
    if isinstance(obj, dict):
        return {str(k): _canonical_value(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical_value(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__!r} values")


def canonical_key(payload):
    """SHA-256 hex digest of a plain-data payload, via canonical JSON
    (sorted keys, no whitespace) so logically-equal fingerprints hash
    identically regardless of dict construction order.  Non-finite
    floats are canonicalized explicitly (``allow_nan=False`` guards
    against any slipping through as invalid JSON)."""
    blob = json.dumps(
        _canonical_value(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss accounting for one :class:`ResultStore` lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }


class ResultStore:
    """Scenario-hash -> ``.npz`` store rooted at ``root``.

    ``get``/``put`` move dicts of numpy arrays; writes go through a
    temp file + atomic rename so a crashed sweep never leaves a
    half-written cell that later reads as a corrupt hit.
    """

    def __init__(self, root, max_entries=None):
        self.root = os.path.expanduser(str(root))
        os.makedirs(self.root, exist_ok=True)
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.stats = StoreStats()
        # In-memory LRU index: {path: None}, oldest first.  Built once
        # (lazily) from file mtimes; after that every put/get is an
        # O(1) dict move instead of a directory rescan.
        self._index = None

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".npz")

    def _scan(self):
        """(mtime, path) for every stored cell — the startup scan."""
        out = []
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if not name.endswith(".npz"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    out.append((os.path.getmtime(path), path))
                except OSError:
                    continue
        return out

    def _lru(self):
        """The in-memory LRU index, rebuilt from disk on first use."""
        if self._index is None:
            self._index = {path: None for _, path in sorted(self._scan())}
        return self._index

    def _touch(self, path):
        """Move ``path`` to the most-recent end of the LRU index."""
        index = self._lru()
        index.pop(path, None)
        index[path] = None

    def __len__(self):
        # Directory truth, not the in-memory index: another process
        # sharing the root may have added or evicted cells since this
        # instance's index was built.
        return len(self._scan())

    def get(self, key):
        """The stored arrays for ``key``, or None (counted as a miss).
        A hit refreshes the cell's LRU position."""
        path = self._path(key)
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, EOFError, KeyError):
            # Missing cell, or one corrupted mid-write by a hard kill:
            # either way it is a miss and will be recomputed.
            self.stats.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            # A concurrent process evicted the cell between the load
            # and the LRU touch; the data is already in hand.
            pass
        self._touch(path)
        self.stats.hits += 1
        return arrays

    def put(self, key, arrays):
        """Store ``arrays`` (a dict of numpy arrays) under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.writes += 1
        self._touch(path)
        if self.max_entries is not None and len(self._index) > self.max_entries:
            self._evict()

    def _evict(self):
        """Drop oldest-known cells until the index fits the bound.

        A cell already removed by a concurrent process just falls out
        of the index without counting as an eviction here — the other
        process already accounted for it, so shared directories never
        double-count (or double-delete) a cell.
        """
        index = self._lru()
        excess = len(index) - self.max_entries
        for path in list(index)[:excess]:
            del index[path]
            try:
                os.unlink(path)
            except OSError:
                continue
            self.stats.evictions += 1

    def clear(self):
        """Drop every stored cell (keeps the root directory).  Scans
        the directory rather than trusting the index, so cells written
        by a concurrent process are dropped too."""
        for _, path in self._scan():
            try:
                os.unlink(path)
            except OSError:
                continue
        self._index = {}
