"""The unified discrete-time simulation core.

Every end-to-end artefact of this reproduction used to carry its own
hand-rolled Python time loop: the envelope integrator in
:mod:`repro.power.envelope`, the adaptive-control loop (with its stiff
inner Euler substeps) in :mod:`repro.core.control`, the Fig. 11 assembly
in :mod:`repro.core.system`, and the firmware measurement cycle in
:mod:`repro.patch.firmware`.  This module replaces all four with one
engine:

* a shared clock (an explicit, strictly increasing time grid);
* pluggable :class:`SimComponent` objects stepped in registration order,
  communicating through a per-step *signal bus*;
* a scheduled-event queue dispatched at exact event timestamps
  (interleaved with clock steps), for event-driven models such as the
  patch firmware state machine;
* trace recording — any signal a component marks for tracing becomes a
  sampled channel of the :class:`SimulationResult`.

The engine is deliberately *thin*: all physics lives in the components
(:mod:`repro.engine.components`), so the adapters that keep the legacy
public APIs alive (``RectifierEnvelopeModel.simulate``,
``AdaptivePowerController.run``, ``fig11_transient``,
``run_measurement_cycle``) reproduce the seed implementations' numerics
exactly.  Batch execution across many scenarios is handled separately by
:class:`repro.engine.scenario.ScenarioBatch`, which vectorizes the same
elementwise math with numpy.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.signals import Waveform
from repro.util import require_positive


@dataclass(frozen=True)
class SimEvent:
    """A named event dispatched to every component at an exact time."""

    time: float
    name: str
    payload: object = None


class SimComponent:
    """Base class for engine components.

    Components are stepped in registration order; a component may read
    any signal written earlier in the same step (or persisting from the
    previous step) via ``sim.signals``.
    """

    def start(self, sim):
        """Initialise state and publish initial signal values (called
        once, with the clock at the first grid time)."""

    def step(self, sim, k, t_prev, t):
        """Advance from ``t_prev`` to ``t`` (grid index ``k``)."""

    def handle_event(self, sim, event):
        """React to a dispatched :class:`SimEvent`."""

    def finish(self, sim):
        """Hook called after the last step."""


class SimulationResult:
    """Recorded output of one engine run: traces + event log."""

    def __init__(self, times, traces, events):
        self.t = np.asarray(times, dtype=float)
        self.traces = {name: np.asarray(vals, dtype=float)
                       for name, vals in traces.items()}
        self.events = list(events)

    def __getitem__(self, name):
        return self.traces[name]

    def waveform(self, name):
        """A traced signal as a :class:`~repro.signals.Waveform`."""
        return Waveform(self.t, self.traces[name])

    def event_times(self, name=None):
        """Dispatch times of the logged events (optionally filtered)."""
        return [e.time for e in self.events
                if name is None or e.name == name]


class SimulationEngine:
    """Steps a set of :class:`SimComponent` on a shared clock.

    Parameters
    ----------
    times : 1-D array of strictly increasing clock instants.
    record_initial : when True the signal values published by
        ``start()`` are recorded as the sample at ``times[0]`` and
        stepping covers ``times[1:]`` (an initial-value integrator grid);
        when False every grid instant is produced by a ``step()`` call
        (a sampled-controller grid).
    recorder : optional :class:`~repro.obs.recorder.MetricsRecorder`;
        when set, :meth:`run` emits one ``engine_run`` event (grid
        size, component count, events dispatched, wall time).
    """

    def __init__(self, times, record_initial=True, recorder=None):
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 1:
            raise ValueError("need a 1-D, non-empty time grid")
        if times.size > 1 and not np.all(np.diff(times) > 0):
            raise ValueError("time grid must be strictly increasing")
        self.times = times
        self.record_initial = bool(record_initial)
        self.recorder = recorder
        self.components = []
        self.signals = {}
        self._traced = []
        self._event_queue = []
        self._event_counter = itertools.count()
        self._event_log = []
        self._ran = False

    @classmethod
    def uniform(cls, t_stop, dt, t_start=0.0, record_initial=True):
        """The envelope integrator's grid: ``ceil(t_stop/dt)+1`` samples
        spanning ``[t_start, t_start+t_stop]`` (matches the legacy
        ``RectifierEnvelopeModel.simulate`` axis exactly)."""
        require_positive(t_stop, "t_stop")
        require_positive(dt, "dt")
        n = int(math.ceil(t_stop / dt)) + 1
        return cls(t_start + np.linspace(0.0, t_stop, n),
                   record_initial=record_initial)

    @classmethod
    def sampled(cls, t_stop, period, t_start=0.0):
        """The sampled-controller grid: ``max(1, round(t_stop/period))``
        instants at ``t_start + k*period`` (matches the legacy
        ``AdaptivePowerController.run`` clock exactly)."""
        require_positive(t_stop, "t_stop")
        require_positive(period, "period")
        n = max(1, int(round(t_stop / period)))
        return cls(t_start + np.arange(n) * period, record_initial=False)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def add(self, component):
        """Register a component (stepped in registration order)."""
        self.components.append(component)
        return component

    def trace(self, *names):
        """Mark signals for per-step recording."""
        for name in names:
            if name not in self._traced:
                self._traced.append(name)

    def schedule(self, time, name, payload=None):
        """Queue an event for exact-time dispatch during the run."""
        heapq.heappush(self._event_queue,
                       (float(time), next(self._event_counter),
                        SimEvent(float(time), str(name), payload)))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch_until(self, t_limit):
        while self._event_queue and self._event_queue[0][0] <= t_limit:
            _, _, event = heapq.heappop(self._event_queue)
            self._event_log.append(event)
            for comp in self.components:
                comp.handle_event(self, event)

    def _record(self, traces):
        for name in self._traced:
            traces[name].append(self.signals[name])

    def run(self):
        """Execute the run and return a :class:`SimulationResult`."""
        if self._ran:
            raise RuntimeError("an engine instance runs exactly once")
        self._ran = True
        t0_wall = time.perf_counter()
        t = self.times
        for comp in self.components:
            comp.start(self)
        traces = {name: [] for name in self._traced}
        recorded_times = []
        if self.record_initial:
            self._dispatch_until(t[0])
            self._record(traces)
            recorded_times.append(t[0])
            start_k = 1
        else:
            start_k = 0
        for k in range(start_k, t.size):
            t_prev = t[k - 1] if k > 0 else t[0]
            self._dispatch_until(t[k])
            for comp in self.components:
                comp.step(self, k, t_prev, t[k])
            self._record(traces)
            recorded_times.append(t[k])
        # Late events (at or past the final grid time) still fire.
        self._dispatch_until(float("inf"))
        for comp in self.components:
            comp.finish(self)
        if self.recorder is not None:
            self.recorder.emit(
                "engine_run",
                n_steps=int(t.size),
                n_components=len(self.components),
                n_events=len(self._event_log),
                elapsed_s=time.perf_counter() - t0_wall,
            )
        return SimulationResult(recorded_times, traces, self._event_log)
