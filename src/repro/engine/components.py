"""Pluggable components for the :class:`~repro.engine.core.SimulationEngine`.

Each component owns one slice of the physics that the legacy loops mixed
together, and communicates with its neighbours through named signals on
the engine bus:

``p_carrier``   available carrier power at the rectifier input (W)
``shorted``     LSK modulation state (input short-circuited)
``p_in``        effective input power after the LSK short
``i_load``      DC load current presented to the rectifier (A)
``v_rect``      rectifier output rail Vo (V)
``distance``    coil separation (m)
``drive_scale`` class-E drive scaling applied by the control loop
``v_reported``  quantized Vo telemetry seen by the patch
``saturated``   1.0 while the drive command is pinned at a rail

The numerics intentionally mirror the seed implementations step for
step, so the adapter methods that retain the legacy public APIs are
parity-exact (see tests/test_engine.py).
"""

from __future__ import annotations

import math

from repro.engine.core import SimComponent


class SignalSource(SimComponent):
    """Publishes ``name = func(t)`` at every grid instant."""

    def __init__(self, name, func, cast=float, trace=True):
        self.name = name
        self.func = func
        self.cast = cast
        self._trace = trace

    def start(self, sim):
        if self._trace:
            sim.trace(self.name)
        sim.signals[self.name] = self.cast(self.func(float(sim.times[0])))

    def step(self, sim, k, t_prev, t):
        sim.signals[self.name] = self.cast(self.func(float(t)))


class ConstantSource(SimComponent):
    """Publishes a constant signal value."""

    def __init__(self, name, value, trace=False):
        self.name = name
        self.value = value
        self._trace = trace

    def start(self, sim):
        if self._trace:
            sim.trace(self.name)
        sim.signals[self.name] = self.value


class AskPowerSource(SimComponent):
    """Carrier power under an ASK downlink: ``power_high``/``power_low``
    during the bit window, ``power_idle`` outside it (the Fig. 11
    downlink power schedule)."""

    def __init__(self, bits, bit_rate, power_high, power_low, power_idle,
                 start_time=0.0, name="p_carrier"):
        self.bits = bits
        self.t_bit = 1.0 / float(bit_rate)
        self.power_high = power_high
        self.power_low = power_low
        self.power_idle = power_idle
        self.start_time = start_time
        self.name = name

    def power_at(self, t):
        # floor, not int(): truncation toward zero would map the last
        # bit-time *before* start_time onto bit 0 (a latent off-by-one
        # in the legacy fig11 closure, fixed here).
        k = math.floor((t - self.start_time) / self.t_bit)
        if 0 <= k < len(self.bits):
            return self.power_high if self.bits[k] else self.power_low
        return self.power_idle

    def start(self, sim):
        sim.signals[self.name] = self.power_at(float(sim.times[0]))

    def step(self, sim, k, t_prev, t):
        sim.signals[self.name] = self.power_at(float(t))


class RectifierRail(SimComponent):
    """Forward-Euler envelope integrator of the rectifier + Co + clamp.

    Reads ``p_carrier``, ``i_load`` and (optionally) ``shorted``; writes
    ``v_rect`` and the effective ``p_in``.  While the input is shorted M2
    is open, so no power arrives and the clamp chain is disconnected from
    Co (the paper's anti-discharge measure).  The update is exactly the
    legacy ``RectifierEnvelopeModel.simulate`` inner loop:

        v[k] = max(v[k-1] + (i_rect - i_load - i_clamp) * dt / Co, 0)
    """

    def __init__(self, model, v0=0.0):
        self.model = model
        self.v0 = v0

    def start(self, sim):
        sim.trace("v_rect", "p_in", "i_load")
        sim.signals["v_rect"] = float(self.v0)
        # The t=0 sample logs the raw carrier power (legacy trace
        # convention: the short is only applied from the first update).
        sim.signals["p_in"] = float(sim.signals["p_carrier"])
        sim.signals["i_load"] = float(sim.signals["i_load"])

    def step(self, sim, k, t_prev, t):
        m = self.model
        shorted = bool(sim.signals.get("shorted", False))
        p_in = 0.0 if shorted else float(sim.signals["p_carrier"])
        i_load = float(sim.signals["i_load"])
        v_prev = sim.signals["v_rect"]
        i_rect = m.rectified_current(p_in, v_prev)
        i_clamp = 0.0 if shorted else m.clamp_current(v_prev)
        dv = (i_rect - i_load - i_clamp) * (t - t_prev) / m.c_out
        sim.signals["v_rect"] = max(v_prev + dv, 0.0)
        sim.signals["p_in"] = p_in


#: Substep count and clamp-ceiling margin of the stiff control-loop
#: rail integrator; ScenarioBatch.run_control uses the same values.
CONTROL_RAIL_SUBSTEPS = 128
CONTROL_RAIL_CEILING_MARGIN = 0.15


class SubsteppedRail(SimComponent):
    """The control loop's stiff rail integrator: ``n_sub`` forward-Euler
    substeps per engine step, pinned to ``[0, clamp_voltage + margin]``
    so the clamp exponential cannot drive Euler unstable.  Exactly the
    inner loop of the legacy ``AdaptivePowerController.run``."""

    def __init__(self, model, v0, period, n_sub=CONTROL_RAIL_SUBSTEPS,
                 ceiling_margin=CONTROL_RAIL_CEILING_MARGIN):
        self.model = model
        self.v0 = v0
        self.n_sub = int(n_sub)
        self.dt_inner = period / self.n_sub
        self.v_ceiling = model.clamp_voltage + ceiling_margin

    def start(self, sim):
        sim.trace("v_rect")
        sim.signals["v_rect"] = float(self.v0)

    def step(self, sim, k, t_prev, t):
        m = self.model
        p = float(sim.signals["p_delivered"])
        i_load = float(sim.signals["i_load"])
        v = sim.signals["v_rect"]
        for _ in range(self.n_sub):
            i_rect = m.rectified_current(p, v)
            i_clamp = m.clamp_current(v)
            v += (i_rect - i_load - i_clamp) * self.dt_inner / m.c_out
            v = min(max(v, 0.0), self.v_ceiling)
        sim.signals["v_rect"] = v


class AdaptiveDrive(SimComponent):
    """Patch-side drive stage: publishes the delivered power for the
    *current* drive scale at the *current* distance.

    ``power_func(i_tx_amplitude, distance)`` is the link model; power
    scales as the drive current squared.  The scale is advanced by a
    downstream :class:`TelemetryControl` after the rail has integrated
    the period (sample-then-actuate ordering, as in the legacy loop).
    """

    def __init__(self, power_func, i_tx, initial_scale=1.0):
        self.power_func = power_func
        self.i_tx = i_tx
        self.scale = float(initial_scale)

    def start(self, sim):
        sim.trace("distance", "drive_scale", "p_delivered")
        self._publish(sim, float(sim.times[0]))

    def _publish(self, sim, t):
        d = float(sim.signals["distance"])
        sim.signals["drive_scale"] = self.scale
        sim.signals["p_delivered"] = self.power_func(self.i_tx * self.scale,
                                                     d)

    def step(self, sim, k, t_prev, t):
        self._publish(sim, float(t))


class TelemetryControl(SimComponent):
    """Implant telemetry + patch control law, run after the rail update:
    quantizes Vo, computes the next drive scale, and applies it to the
    :class:`AdaptiveDrive` for the following period."""

    def __init__(self, controller, drive):
        self.controller = controller
        self.drive = drive

    def start(self, sim):
        sim.trace("v_reported", "saturated")
        sim.signals["v_reported"] = 0.0
        sim.signals["saturated"] = 0.0

    def step(self, sim, k, t_prev, t):
        ctrl = self.controller
        v_rep = ctrl.quantize_telemetry(sim.signals["v_rect"])
        new_scale = ctrl.next_scale(self.drive.scale, v_rep)
        sim.signals["v_reported"] = v_rep
        sim.signals["saturated"] = float(
            new_scale in (ctrl.min_scale, ctrl.max_scale))
        self.drive.scale = new_scale


class FirmwareEventFeed(SimComponent):
    """Adapter that forwards engine events to an event-driven state
    machine exposing ``handle(event, at_time)`` (the patch firmware)."""

    def __init__(self, machine, events=None):
        self.machine = machine
        self.accept = None if events is None else set(events)

    def handle_event(self, sim, event):
        if self.accept is None or event.name in self.accept:
            self.machine.handle(event.name, at_time=event.time)
