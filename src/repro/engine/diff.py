"""Study-definition deltas over content-addressed cell keys.

A study definition — mode + system/controller fingerprints + scenario
axes — reduces to one :func:`~repro.engine.store.canonical_key` per
cell (the ``*_cell_keys`` functions in :mod:`repro.engine.parallel`).
That makes "what changed between two studies?" a set problem:
:class:`StudyDiff` compares the previous run's key list against the
new one and classifies every new cell as *changed* (its content
address did not exist before) or *unchanged* (bitwise-same physics, so
its stored result can be replayed).  Because keys are content hashes,
reordering axes or relabelling scenarios changes nothing — only
physics changes do.

:meth:`SweepOrchestrator.run_delta <repro.engine.parallel.
SweepOrchestrator.run_delta>` executes the plan — recompute the
changed cells, replay the unchanged ones from the store — and returns
a :class:`DeltaReport` alongside the ordinary batch result.  "I moved
the coil 2 mm" then costs a handful of solves instead of a full sweep,
and the report says exactly which cells those were.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StudyDiff:
    """Cell-key delta between a previous study and the current one.

    Indices refer to positions in the *current* study's key list (the
    previous study's ordering is irrelevant — keys are content
    addresses).  Duplicate keys within a study count once per cell.
    """

    changed_indices: tuple
    unchanged_indices: tuple
    removed_keys: tuple
    n_prev: int
    n_cells: int

    @classmethod
    def between(cls, prev_keys, keys):
        """Classify ``keys`` (current study) against ``prev_keys``."""
        prev_keys = list(prev_keys)
        keys = list(keys)
        prev = set(prev_keys)
        current = set(keys)
        changed = tuple(i for i, key in enumerate(keys) if key not in prev)
        unchanged = tuple(i for i, key in enumerate(keys) if key in prev)
        seen = set()
        removed = []
        for key in prev_keys:
            if key not in current and key not in seen:
                seen.add(key)
                removed.append(key)
        return cls(
            changed_indices=changed,
            unchanged_indices=unchanged,
            removed_keys=tuple(removed),
            n_prev=len(prev_keys),
            n_cells=len(keys),
        )

    @property
    def n_changed(self):
        return len(self.changed_indices)

    @property
    def n_unchanged(self):
        return len(self.unchanged_indices)

    @property
    def n_removed(self):
        return len(self.removed_keys)

    def as_dict(self):
        return {
            "n_prev": self.n_prev,
            "n_cells": self.n_cells,
            "n_changed": self.n_changed,
            "n_unchanged": self.n_unchanged,
            "n_removed": self.n_removed,
            "changed_indices": list(self.changed_indices),
        }


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`~repro.engine.parallel.SweepOrchestrator.
    run_delta` actually did with a :class:`StudyDiff` plan.

    ``replayed`` are unchanged cells served from the store;
    ``replay_miss`` are unchanged cells that had to be recomputed
    anyway because their stored rows had been evicted — a nonzero
    count flags a store sized below the working set, not a physics
    change.
    """

    mode: str
    n_cells: int
    n_changed: int
    n_unchanged: int
    n_removed: int
    n_replayed: int
    n_replay_miss: int
    changed_indices: tuple = ()
    replayed_indices: tuple = ()
    replay_miss_indices: tuple = ()

    def as_dict(self):
        return {
            "mode": self.mode,
            "n_cells": self.n_cells,
            "n_changed": self.n_changed,
            "n_unchanged": self.n_unchanged,
            "n_removed": self.n_removed,
            "n_replayed": self.n_replayed,
            "n_replay_miss": self.n_replay_miss,
            "changed_indices": list(self.changed_indices),
            "replay_miss_indices": list(self.replay_miss_indices),
        }

    def summary(self):
        return (
            f"{self.n_cells} cells: {self.n_changed} changed (recomputed), "
            f"{self.n_replayed} replayed from store, "
            f"{self.n_replay_miss} replay miss, {self.n_removed} removed"
        )
