"""The `Circuit`: a named netlist of components plus node bookkeeping."""

from __future__ import annotations

from repro.spice.components import (
    Capacitor,
    Component,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    MutualCoupling,
    Resistor,
    Switch,
    Vcvs,
    Vccs,
    VoltageSource,
)

#: Names that resolve to the ground node.
GROUND_NAMES = {"0", "gnd", "GND", "ground"}


class Circuit:
    """A flat netlist.  Nodes are referenced by string name; ``"0"`` or
    ``"gnd"`` is ground.  Convenience ``add_*`` methods mirror SPICE
    element cards.

    >>> ckt = Circuit("divider")
    >>> _ = ckt.add_vsource("V1", "in", "0", 1.0)
    >>> _ = ckt.add_resistor("R1", "in", "out", 1e3)
    >>> _ = ckt.add_resistor("R2", "out", "0", 1e3)
    """

    def __init__(self, title="circuit"):
        self.title = str(title)
        self.components = []
        self._names = set()
        self._node_index = {}
        self._branch_owners = []
        self._dirty = True

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def add(self, component):
        """Add any :class:`Component`; returns it for chaining."""
        if not isinstance(component, Component):
            raise TypeError(f"not a Component: {component!r}")
        if component.name in self._names:
            raise ValueError(f"duplicate component name: {component.name}")
        self._names.add(component.name)
        self.components.append(component)
        self._dirty = True
        return component

    def add_resistor(self, name, n1, n2, resistance):
        return self.add(Resistor(name, n1, n2, resistance))

    def add_capacitor(self, name, n1, n2, capacitance, ic=None):
        return self.add(Capacitor(name, n1, n2, capacitance, ic=ic))

    def add_inductor(self, name, n1, n2, inductance, ic=0.0):
        return self.add(Inductor(name, n1, n2, inductance, ic=ic))

    def add_coupling(self, name, inductor1, inductor2, k):
        if isinstance(inductor1, str):
            inductor1 = self[inductor1]
        if isinstance(inductor2, str):
            inductor2 = self[inductor2]
        return self.add(MutualCoupling(name, inductor1, inductor2, k))

    def add_vsource(self, name, n1, n2, value):
        return self.add(VoltageSource(name, n1, n2, value))

    def add_isource(self, name, n1, n2, value):
        return self.add(CurrentSource(name, n1, n2, value))

    def add_diode(self, name, anode, cathode, **params):
        return self.add(Diode(name, anode, cathode, **params))

    def add_mosfet(self, name, drain, gate, source, **params):
        return self.add(Mosfet(name, drain, gate, source, **params))

    def add_switch(self, name, n1, n2, cp, cn, **params):
        return self.add(Switch(name, n1, n2, cp, cn, **params))

    def add_vcvs(self, name, n1, n2, cp, cn, gain):
        return self.add(Vcvs(name, n1, n2, cp, cn, gain))

    def add_vccs(self, name, n1, n2, cp, cn, gm):
        return self.add(Vccs(name, n1, n2, cp, cn, gm))

    def add_opamp(self, name, out, inp, inn, gain=1e5, r_out=10.0):
        """Behavioural op-amp: VCVS with finite gain plus output resistance.

        Creates internal node ``<name>_vo``.  Returns the VCVS.
        """
        internal = f"{name}_vo"
        e = self.add_vcvs(f"{name}_e", internal, "0", inp, inn, gain)
        self.add_resistor(f"{name}_ro", internal, out, r_out)
        return e

    def __getitem__(self, name):
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"no component named {name!r}")

    def __contains__(self, name):
        return name in self._names

    # ------------------------------------------------------------------
    # Index assignment
    # ------------------------------------------------------------------
    def build(self):
        """Resolve node names and branch indices.  Called automatically by
        the analyses; idempotent."""
        if not self._dirty:
            return
        self._node_index = {}
        for comp in self.components:
            for node in comp.node_names:
                if node in GROUND_NAMES:
                    continue
                if node not in self._node_index:
                    self._node_index[node] = len(self._node_index)
        n_nodes = len(self._node_index)
        self._branch_owners = []
        for comp in self.components:
            comp.nodes = [
                -1 if n in GROUND_NAMES else self._node_index[n]
                for n in comp.node_names
            ]
            if comp.needs_branch:
                comp.branch = n_nodes + len(self._branch_owners)
                self._branch_owners.append(comp)
        self._dirty = False

    @property
    def n_nodes(self):
        self.build()
        return len(self._node_index)

    @property
    def n_unknowns(self):
        self.build()
        return len(self._node_index) + len(self._branch_owners)

    def node_names(self):
        """Non-ground node names in index order."""
        self.build()
        return sorted(self._node_index, key=self._node_index.get)

    def node_index(self, name):
        """Index of a node in the solution vector (-1 for ground)."""
        self.build()
        if name in GROUND_NAMES:
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r} in circuit {self.title!r}")

    def branch_index(self, component_name):
        """Solution-vector index of a branch current (V sources, inductors).

        Raises :class:`ValueError` — never a bare :class:`KeyError` —
        both for unknown component names and for components that carry
        no branch current unknown, so ``branch_current`` accessors fail
        with an actionable message.
        """
        self.build()
        try:
            comp = self[component_name]
        except KeyError:
            raise ValueError(
                f"no component named {component_name!r} in circuit "
                f"{self.title!r}; branch currents exist for voltage "
                f"sources and inductors"
            ) from None
        if comp.branch is None:
            raise ValueError(
                f"{component_name} ({type(comp).__name__}) carries no "
                f"branch current; use device_current({component_name!r}) "
                f"for resistor/diode/switch currents"
            )
        return comp.branch

    def __repr__(self):
        return (
            f"Circuit({self.title!r}: {len(self.components)} components, "
            f"{self.n_nodes} nodes)"
        )
