"""Static circuit analysis: pre-solve netlist lint with structural-
singularity detection.

An ill-posed circuit — a floating node, a loop of ideal voltage
sources, a structurally singular MNA pattern — surfaces at runtime as
a :class:`~repro.spice.dc.ConvergenceError` deep inside the Newton
loop, after a factorization has already been attempted.  This module
inspects a :class:`~repro.spice.circuit.Circuit` *without solving it*
and emits typed :class:`Diagnostic` records with stable codes:

========  ========  ====================================================
code      severity  condition
========  ========  ====================================================
`SP101`   error     node(s) with no path to ground through any element
`SP102`   warning   loop of ideal voltage-defining branches (V/L/E)
`SP103`   warning   no *DC* path to ground (current-source/capacitor
                    cutset: the nodes are held only through C/I
                    elements, so the DC operating point rests on gmin)
`SP104`   error     structurally singular MNA pattern (maximum
                    bipartite matching on the assembler's CSR pattern
                    leaves unmatched rows)
`SP105`   varies    dangling or self-looped branch (error for
                    voltage-defining self-loops, warning otherwise)
`SP110`   warning   non-positive or implausibly scaled element value
========  ========  ====================================================

The severity split encodes what the solver stack actually tolerates:
an `SP102` voltage-source/inductor loop is deliberately regularized by
the inductor's tiny series resistance (see ``Inductor.stamp_dc``), and
an `SP103` cutset is a perfectly good *transient* circuit (a current
source charging a capacitor), so neither aborts a run under the
default ``check="error"`` pre-flight — only error-severity findings
do.

Structural rank (`SP104`) reuses the sparse assembler: the analyzed
pattern is :func:`~repro.spice.assembler.pattern_from_circuit` plus
the same nonlinear-device positions the solvers scatter into, so the
analysis shares the solver's exact sparsity pattern.  The maximum
bipartite matching is pure Python (Kuhn's augmenting paths) — scipy is
not required.
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field

from repro.spice.components import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    MutualCoupling,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)

#: Pre-flight modes accepted by ``dc_operating_point`` / ``transient``
#: / ``transient_batch``: ``"error"`` raises :class:`CircuitLintError`
#: on error-severity findings, ``"warn"`` emits every finding as a
#: :class:`CircuitLintWarning`, ``"off"`` skips the analysis entirely.
CHECK_MODES = ("error", "warn", "off")

#: Stable diagnostic codes and their one-line meanings (the README
#: table and ``repro lint`` legend are generated from this map).
DIAGNOSTIC_CODES = {
    "SP101": "node with no path to ground through any element",
    "SP102": "loop of ideal voltage-defining branches (V source/inductor)",
    "SP103": "no DC path to ground (current-source/capacitor cutset)",
    "SP104": "structurally singular MNA pattern (unmatched matrix rows)",
    "SP105": "dangling or self-looped branch",
    "SP110": "non-positive or implausibly scaled element value",
}

# Plausibility windows for SP110 (generous on purpose: anything outside
# is near-certainly a unit mistake, e.g. "10" farads for 10 pF).
_R_RANGE = (1e-6, 1e12)
_C_RANGE = (1e-18, 1.0)
_L_RANGE = (1e-12, 1e3)
_DIODE_IS_MAX = 1e-3


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``line`` is filled by :func:`analyze_netlist` when the circuit came
    from a netlist file (1-based line of the first involved card).
    """

    code: str
    severity: str  # "error" | "warning"
    message: str
    components: tuple = ()
    nodes: tuple = ()
    hint: str = ""
    line: int | None = field(default=None, compare=False)

    def format(self, source=None):
        """``[source:line:] CODE severity: message (hint)`` one-liner."""
        where = ""
        if source is not None:
            where = f"{source}:" if self.line is None else f"{source}:{self.line}:"
            where += " "
        tail = f"  hint: {self.hint}" if self.hint else ""
        return f"{where}{self.code} {self.severity}: {self.message}{tail}"

    def to_dict(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "components": list(self.components),
            "nodes": list(self.nodes),
            "hint": self.hint,
            "line": self.line,
        }


class CircuitLintError(ValueError):
    """Raised by the ``check="error"`` pre-flight when the analyzer
    finds error-severity diagnostics.  ``.diagnostics`` holds them."""

    def __init__(self, title, diagnostics):
        self.diagnostics = tuple(diagnostics)
        codes = ", ".join(sorted({d.code for d in self.diagnostics}))
        lines = "\n  ".join(d.format() for d in self.diagnostics)
        super().__init__(
            f"circuit {title!r} fails static analysis ({codes}):\n  {lines}"
        )


class CircuitLintWarning(UserWarning):
    """Category used by the ``check="warn"`` pre-flight."""


# ---------------------------------------------------------------------------
# topology helpers


def _two_terminal(comp):
    """(a, b) resolved node pair of a two-terminal element, else None."""
    if isinstance(
        comp, (Resistor, Capacitor, Inductor, VoltageSource, CurrentSource, Diode)
    ):
        return comp.nodes[0], comp.nodes[1]
    return None


def _dc_conductive_edges(comp):
    """Node pairs the element connects with finite DC conductance (or a
    DC branch constraint).  Unknown component types are conservatively
    treated as conducting between their first two nodes, so extension
    components never produce false SP101/SP103 alarms."""
    if isinstance(comp, (Capacitor, CurrentSource, Vccs, MutualCoupling)):
        return []
    if isinstance(comp, (Resistor, Inductor, VoltageSource, Diode, Vcvs, Switch)):
        return [(comp.nodes[0], comp.nodes[1])]
    if isinstance(comp, Mosfet):
        return [(comp.nodes[0], comp.nodes[2])]  # drain-source channel
    if len(comp.nodes) >= 2:  # pragma: no cover - extension components
        return [(comp.nodes[0], comp.nodes[1])]
    return []


def _ac_only_edges(comp):
    """Node pairs that conduct at AC but not DC (capacitors): used to
    tell an SP103 cutset (transient-solvable) from a truly floating
    SP101 island."""
    if isinstance(comp, Capacitor):
        return [(comp.nodes[0], comp.nodes[1])]
    return []


def _voltage_defined_edges(comp):
    """Branches that pin the voltage across their terminals: ideal V
    sources, inductors (DC shorts), and VCVS outputs.  A cycle of these
    is the classic 'voltage source/inductor loop'."""
    if isinstance(comp, (VoltageSource, Inductor, Vcvs)):
        return [(comp.nodes[0], comp.nodes[1])]
    return []


class _UnionFind:
    def __init__(self, n):
        self.parent = list(range(n))

    def find(self, i):
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, i, j):
        ri, rj = self.find(i), self.find(j)
        if ri == rj:
            return False
        self.parent[ri] = rj
        return True


def _unknown_names(circuit):
    """Human name of each MNA unknown: node voltages then branch
    currents, in solver order."""
    names = list(circuit.node_names())
    branches = {comp.branch: comp.name for comp in circuit.components
                if comp.branch is not None}
    for k in range(circuit.n_nodes, circuit.n_unknowns):
        names.append(f"I({branches.get(k, f'branch{k}')})")
    return names


def _structural_rank_unmatched(n, indptr, indices):
    """Rows left unmatched by a maximum bipartite matching of the CSR
    pattern (Kuhn's augmenting-path algorithm, iterative-friendly via a
    raised recursion limit; O(V*E) which is trivial at circuit sizes)."""
    match_col = [-1] * n  # column -> matched row
    match_row = [-1] * n  # row -> matched column

    # Greedy seed pass: MNA rows almost always own their diagonal (a
    # grounded node has a self-conductance; a regularized branch has a
    # (k, k) entry), so matching any free column up front leaves the
    # augmenting-path search with only the contested handful of rows.
    for row in range(n):
        for c in indices[indptr[row]:indptr[row + 1]]:
            if match_col[c] < 0:
                match_col[c] = row
                match_row[row] = c
                break

    def augment(row, seen):
        for c in indices[indptr[row]:indptr[row + 1]]:
            if not seen[c]:
                seen[c] = True
                if match_col[c] < 0 or augment(match_col[c], seen):
                    match_col[c] = row
                    match_row[row] = c
                    return True
        return False

    limit = sys.getrecursionlimit()
    unmatched = []
    try:
        sys.setrecursionlimit(max(limit, 2 * n + 100))
        for row in range(n):
            if match_row[row] < 0 and not augment(row, [False] * n):
                unmatched.append(row)
    finally:
        sys.setrecursionlimit(limit)
    return unmatched


def _nonlinear_positions(circuit):
    """Matrix positions the solvers scatter nonlinear-device stamps
    into (mirrors ``_init_diode_scatter`` and the Mosfet/Switch Newton
    stamps), so SP104 sees the same pattern the solver factorizes."""
    positions = []
    for comp in circuit.components:
        if isinstance(comp, Diode):
            a, b = comp.nodes
            pairs = ((a, a), (b, b), (a, b), (b, a))
        elif isinstance(comp, Switch):
            a, b = comp.nodes[0], comp.nodes[1]
            pairs = ((a, a), (b, b), (a, b), (b, a))
        elif isinstance(comp, Mosfet):
            d, g, s = comp.nodes
            # Union over the reversed (vds < 0) operating region.
            pairs = ((d, d), (d, g), (d, s), (s, s), (s, g), (s, d))
        else:
            continue
        positions.extend((i, j) for i, j in pairs if i >= 0 and j >= 0)
    return positions


# ---------------------------------------------------------------------------
# the individual checks


def _check_branches(circuit):
    """SP105: self-looped and dangling branches."""
    diagnostics = []
    degree = {}
    for comp in circuit.components:
        for node in set(comp.nodes):
            if node >= 0:
                degree[node] = degree.get(node, 0) + 1
    names = circuit.node_names()
    for comp in circuit.components:
        pair = _two_terminal(comp)
        if pair is None:
            continue
        a, b = pair
        if a == b:
            severity = (
                "error" if isinstance(comp, (VoltageSource, Inductor)) else "warning"
            )
            where = "ground" if a < 0 else names[a]
            diagnostics.append(Diagnostic(
                "SP105", severity,
                f"{comp.name} is self-looped: both terminals connect to "
                f"node {where!r}",
                components=(comp.name,),
                nodes=(where,),
                hint="connect the terminals to two distinct nodes or "
                     "remove the element",
            ))
            continue
        for node in (a, b):
            if node >= 0 and degree.get(node, 0) == 1:
                diagnostics.append(Diagnostic(
                    "SP105", "warning",
                    f"{comp.name} dangles: node {names[node]!r} connects "
                    f"to nothing else, so the branch carries no current",
                    components=(comp.name,),
                    nodes=(names[node],),
                    hint=f"connect node {names[node]!r} to the rest of "
                         f"the circuit or drop the branch",
                ))
    return diagnostics


def _check_ground_paths(circuit):
    """SP101 (no path to ground at all) and SP103 (no DC path: the
    island hangs off the circuit through capacitors/current sources
    only)."""
    n = circuit.n_nodes
    if n == 0:
        return []
    dc = _UnionFind(n + 1)  # vertex n = ground
    full = _UnionFind(n + 1)

    def vertex(node):
        return n if node < 0 else node

    for comp in circuit.components:
        for a, b in _dc_conductive_edges(comp):
            dc.union(vertex(a), vertex(b))
            full.union(vertex(a), vertex(b))
        for a, b in _ac_only_edges(comp):
            full.union(vertex(a), vertex(b))

    names = circuit.node_names()
    dc_islands, full_islands = {}, {}
    for i in range(n):
        if dc.find(i) != dc.find(n):
            dc_islands.setdefault(dc.find(i), []).append(i)
    for i in range(n):
        if full.find(i) != full.find(n):
            full_islands.setdefault(full.find(i), []).append(i)

    diagnostics = []
    floating = set()
    for nodes in full_islands.values():
        floating.update(nodes)
        labels = tuple(names[i] for i in nodes)
        diagnostics.append(Diagnostic(
            "SP101", "error",
            f"node{'s' if len(labels) > 1 else ''} "
            f"{', '.join(repr(x) for x in labels)} "
            f"ha{'ve' if len(labels) > 1 else 's'} no path to ground "
            f"through any element",
            nodes=labels,
            components=_island_components(circuit, set(nodes)),
            hint="reference the island to ground (a large resistor "
                 "suffices) or remove it",
        ))
    for nodes in dc_islands.values():
        island = [i for i in nodes if i not in floating]
        if not island:
            continue  # already reported as SP101
        labels = tuple(names[i] for i in island)
        diagnostics.append(Diagnostic(
            "SP103", "warning",
            f"node{'s' if len(labels) > 1 else ''} "
            f"{', '.join(repr(x) for x in labels)} "
            f"ha{'ve' if len(labels) > 1 else 's'} no DC path to ground "
            f"(held only through capacitors/current sources); the DC "
            f"operating point rests on the gmin regularization",
            nodes=labels,
            components=_island_components(circuit, set(island)),
            hint="add a DC leakage path (large resistor to ground) or "
                 "solve with use_ic=True and explicit initial conditions",
        ))
    return diagnostics


def _island_components(circuit, island):
    """Names of the components touching a set of node indices."""
    return tuple(
        comp.name for comp in circuit.components
        if any(node in island for node in comp.nodes)
    )


def _check_voltage_loops(circuit):
    """SP102: cycles in the multigraph of voltage-defining branches."""
    n = circuit.n_nodes
    uf = _UnionFind(n + 1)

    def vertex(node):
        return n if node < 0 else node

    names = circuit.node_names()
    diagnostics = []
    loop_members = []
    for comp in circuit.components:
        for a, b in _voltage_defined_edges(comp):
            if a == b:
                continue  # SP105 reports self-loops
            loop_members.append(comp)
            if not uf.union(vertex(a), vertex(b)):
                labels = tuple(
                    "0" if node < 0 else names[node] for node in (a, b)
                )
                diagnostics.append(Diagnostic(
                    "SP102", "warning",
                    f"{comp.name} closes a loop of ideal voltage-defining "
                    f"branches (V sources/inductors/VCVS outputs) between "
                    f"nodes {labels[0]!r} and {labels[1]!r}; the loop "
                    f"current is bounded only by the solver's tiny "
                    f"series regularization",
                    components=(comp.name,),
                    nodes=labels,
                    hint="break the loop with an explicit series "
                         "resistance",
                ))
    return diagnostics


def _check_values(circuit):
    """SP110: values that passed construction but look like unit
    mistakes, plus degenerate controlled-source/coupling gains."""
    diagnostics = []

    def flag(comp, text, hint):
        diagnostics.append(Diagnostic(
            "SP110", "warning", f"{comp.name}: {text}",
            components=(comp.name,), hint=hint,
        ))

    for comp in circuit.components:
        if isinstance(comp, Resistor):
            if not _R_RANGE[0] <= comp.resistance <= _R_RANGE[1]:
                flag(comp, f"resistance {comp.resistance:g} ohm is outside "
                           f"the plausible window [{_R_RANGE[0]:g}, "
                           f"{_R_RANGE[1]:g}]",
                     "check the unit (ohms expected)")
        elif isinstance(comp, Capacitor):
            if not _C_RANGE[0] <= comp.capacitance <= _C_RANGE[1]:
                flag(comp, f"capacitance {comp.capacitance:g} F is outside "
                           f"the plausible window [{_C_RANGE[0]:g}, "
                           f"{_C_RANGE[1]:g}]",
                     "check the unit (farads expected)")
        elif isinstance(comp, Inductor):
            if not _L_RANGE[0] <= comp.inductance <= _L_RANGE[1]:
                flag(comp, f"inductance {comp.inductance:g} H is outside "
                           f"the plausible window [{_L_RANGE[0]:g}, "
                           f"{_L_RANGE[1]:g}]",
                     "check the unit (henries expected)")
        elif isinstance(comp, Diode):
            if comp.i_s > _DIODE_IS_MAX:
                flag(comp, f"saturation current {comp.i_s:g} A is "
                           f"implausibly large (> {_DIODE_IS_MAX:g})",
                     "check the unit (amps expected; typical i_s is fA-nA)")
        elif isinstance(comp, Switch):
            if comp.r_on >= comp.r_off:
                flag(comp, f"r_on ({comp.r_on:g}) is not below r_off "
                           f"({comp.r_off:g}), so the switch never "
                           f"switches",
                     "swap or fix the on/off resistances")
        elif isinstance(comp, Vcvs):
            if comp.gain == 0.0:
                flag(comp, "gain is 0, the output is pinned to 0 V",
                     "set a nonzero gain or replace with a 0 V source")
        elif isinstance(comp, Vccs):
            if comp.gm == 0.0:
                flag(comp, "transconductance is 0, the source injects "
                           "nothing",
                     "set a nonzero gm or remove the element")
        elif isinstance(comp, MutualCoupling):
            if comp.k == 0.0:
                flag(comp, "coupling coefficient is 0, the coupling is "
                           "a no-op",
                     "set a nonzero k or remove the element")
    return diagnostics


def _check_structural_rank(circuit):
    """SP104: maximum bipartite matching on the assembler's CSR pattern
    (linear stamps plus the solvers' nonlinear scatter positions)."""
    from repro.spice import assembler

    n = circuit.n_unknowns
    if n == 0:
        return []
    extra = _nonlinear_positions(circuit)
    extra_positions = ()
    if extra:
        extra_positions = [(
            [i for i, _ in extra], [j for _, j in extra],
        )]
    try:
        pattern = assembler.pattern_from_circuit(
            circuit, extra_positions=extra_positions
        )
    except ValueError:
        # Nothing stamps the matrix at all (e.g. only current sources):
        # every row is structurally empty.
        unmatched = list(range(n))
    else:
        if pattern.n < n:  # pragma: no cover - defensive
            unmatched = list(range(n))
        else:
            unmatched = _structural_rank_unmatched(
                n, pattern.indptr, pattern.indices
            )
    if not unmatched:
        return []
    names = _unknown_names(circuit)
    labels = tuple(names[i] for i in unmatched)
    rank = n - len(unmatched)
    return [Diagnostic(
        "SP104", "error",
        f"MNA pattern is structurally singular: structural rank {rank} "
        f"< {n} unknowns; unmatched row{'s' if len(labels) > 1 else ''} "
        f"{', '.join(repr(x) for x in labels)}",
        nodes=labels,
        hint="the listed equations share too few matrix entries — look "
             "for parallel ideal sources or nodes driven only by "
             "current sources",
    )]


# ---------------------------------------------------------------------------
# front doors


def analyze_circuit(circuit):
    """Statically analyze ``circuit`` and return its diagnostics.

    Read-only (``circuit.build()`` is invoked, which is idempotent);
    never raises on findings — see :func:`check_circuit` for the
    raising pre-flight used by the solvers.
    """
    circuit.build()
    diagnostics = []
    diagnostics.extend(_check_branches(circuit))
    diagnostics.extend(_check_ground_paths(circuit))
    diagnostics.extend(_check_voltage_loops(circuit))
    diagnostics.extend(_check_values(circuit))
    diagnostics.extend(_check_structural_rank(circuit))
    order = {"error": 0, "warning": 1}
    diagnostics.sort(key=lambda d: (order.get(d.severity, 2), d.code))
    return diagnostics


def check_circuit(circuit, check="error", stacklevel=3):
    """Solver pre-flight.  ``check`` is one of :data:`CHECK_MODES`:

    * ``"error"`` — raise :class:`CircuitLintError` carrying the
      error-severity diagnostics (warnings stay silent: the solver
      stack handles those circuits on purpose);
    * ``"warn"`` — emit every finding as a :class:`CircuitLintWarning`;
    * ``"off"`` — skip the analysis entirely.

    Returns the diagnostics found (empty list when ``check="off"``).
    """
    if check not in CHECK_MODES:
        raise ValueError(
            f"unknown check mode {check!r}; known modes: {CHECK_MODES}"
        )
    if check == "off":
        return []
    diagnostics = analyze_circuit(circuit)
    if check == "warn":
        for diag in diagnostics:
            warnings.warn(diag.format(), CircuitLintWarning,
                          stacklevel=stacklevel)
        return diagnostics
    errors = [d for d in diagnostics if d.severity == "error"]
    if errors:
        raise CircuitLintError(circuit.title, errors)
    return diagnostics


def analyze_netlist(text, source=None):
    """Parse a netlist and analyze it, attributing diagnostics to
    source lines.

    Returns ``(circuit, diagnostics)``.  Parse failures raise the
    (line-carrying) :class:`~repro.spice.netlist_io.NetlistError`;
    ``source`` is only used for error messages by callers.
    """
    from repro.spice.netlist_io import parse_netlist

    circuit = parse_netlist(text)
    lines = getattr(circuit, "source_lines", {})
    diagnostics = []
    for diag in analyze_circuit(circuit):
        line = min(
            (lines[name] for name in diag.components if name in lines),
            default=None,
        )
        if line is not None:
            diag = Diagnostic(
                diag.code, diag.severity, diag.message,
                components=diag.components, nodes=diag.nodes,
                hint=diag.hint, line=line,
            )
        diagnostics.append(diag)
    return circuit, diagnostics
