"""Lockstep-batched transient analysis for circuit families.

A spice *study* sweeps one netlist template over parameter axes
(source amplitude, frequency, load), producing N structurally
identical circuits — same components in the same order, same node
indices, different element values.  Integrating them one at a time
repeats every numpy call N times on tiny arrays, so Python/numpy
dispatch overhead dominates.  :func:`transient_batch` instead advances
the whole family in lockstep:

* the per-``(dt, method)`` linear base matrices are stacked into one
  ``(N, n, n)`` tensor (prefactored to a batched inverse when the
  family is linear, so a step is a single batched matvec);
* capacitor/inductor companion states live in ``(N,)`` arrays updated
  with vectorized ops;
* every diode of every cell is evaluated as one ``(N, nd)`` block and
  scattered through two small matmuls;
* the damped Newton iteration solves all cells at once through
  numpy's batched ``linalg.solve``.

Step control is shared across the family (the worst cell's Newton
failure or local-truncation-error estimate drives the halving/doubling
decision), so all cells walk the same time grid — which is exactly
what makes a batched run comparable point-for-point against per-cell
fixed-step references (see tests/test_spice_batch.py).

``matrix="sparse"`` (or ``"auto"`` above the per-cell unknown
threshold) swaps the stacked dense solves for block-diagonal sparse
assembly on one frozen pattern: the symbolic factorization (fill +
static pivot order) is computed once for the whole family and every
Newton iteration refreshes only the numeric values
(:class:`~repro.spice.assembler.SharedPatternLU`).  The dense lockstep
path remains the default for small cells and the parity reference.
"""

from __future__ import annotations

import numpy as np

from repro.spice.components import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    VoltageSource,
)
from repro.spice.dc import ConvergenceError, _newton_solve, dc_operating_point
from repro.spice.transient import (
    ADAPTIVE_ATOL,
    ADAPTIVE_RTOL,
    ADAPTIVE_V_RELTOL,
    METHODS,
    TransientResult,
    _breakpoint_sources,
    _clamp_to_breakpoints,
    _diode_scatter_plan,
)


class BatchTransientResult:
    """Time-series output of a lockstep family run.

    ``x`` has shape ``(n_cells, n_points, n_unknowns)`` on the shared
    stored time grid; :meth:`result` gives cell ``i`` as an ordinary
    :class:`~repro.spice.transient.TransientResult`.
    """

    def __init__(self, circuits, times, x, stats=None):
        self.circuits = list(circuits)
        self.t = np.asarray(times, dtype=float)
        self.x = np.asarray(x, dtype=float)
        #: Solver-effort counters of the run that produced this family
        #: (accepted_steps / newton_iters / newton_rejects / lte_rejects),
        #: fed into the observability layer's ``solve`` events.
        self.stats = dict(stats) if stats is not None else {
            "accepted_steps": 0,
            "newton_iters": 0,
            "newton_rejects": 0,
            "lte_rejects": 0,
            "factorizations": 0,
            "pattern_reuses": 0,
        }

    def __len__(self):
        return len(self.circuits)

    def result(self, i):
        """Cell ``i`` as a single-circuit TransientResult."""
        return TransientResult(self.circuits[i], self.t, self.x[i])

    def voltage(self, node):
        """(n_cells, n_points) array of one node voltage (all cells
        share the template's node table)."""
        idx = self.circuits[0].node_index(node)
        if idx < 0:
            return np.zeros((len(self.circuits), self.t.size))
        return self.x[:, :, idx]


def _check_family(circuits):
    """Validate the circuits are structurally identical (same
    component classes, node indices and branch layout slot by slot)."""
    if not circuits:
        raise ValueError("transient_batch needs at least one circuit")
    for ckt in circuits:
        ckt.build()
    first = circuits[0]
    n = first.n_unknowns
    for ckt in circuits[1:]:
        if ckt.n_unknowns != n or len(ckt.components) != len(first.components):
            raise ValueError(
                f"circuit {ckt.title!r} is not structurally identical to "
                f"{first.title!r}; a lockstep batch needs one netlist "
                f"template instantiated at different element values"
            )
        for a, b in zip(first.components, ckt.components):
            if type(a) is not type(b) or a.nodes != b.nodes or a.branch != b.branch:
                raise ValueError(
                    f"component slot {a.name!r}/{b.name!r} differs between "
                    f"{first.title!r} and {ckt.title!r} (class or topology)"
                )


class _BatchSystem:
    """Stacked MNA workspace for one circuit family (see module doc)."""

    def __init__(self, circuits, gmin):
        self.circuits = circuits
        self.gmin = gmin
        self.N = len(circuits)
        first = circuits[0]
        self.n = first.n_unknowns
        self.nn = first.n_nodes
        slots = list(zip(*[c.components for c in circuits]))
        self.cap_slots = []     # (a, b, C (N,), v (N,), i (N,))
        self.ind_slots = []     # dict per slot
        self.vsrc_slots = []    # (branch, comps, const (N,) or None)
        self.isrc_slots = []
        self.diode_slots = []
        self.other_slots = []   # per-cell scalar fallback (Mosfet/Switch)
        self.matrix_slots = []  # linear, matrix-only contributions
        ind_index = {}
        for slot in slots:
            comp = slot[0]
            if isinstance(comp, Capacitor):
                self.cap_slots.append({
                    "a": comp.nodes[0], "b": comp.nodes[1],
                    "c": np.array([c.capacitance for c in slot]),
                    "v": np.zeros(self.N), "i": np.zeros(self.N),
                    "comps": slot,
                })
            elif isinstance(comp, Inductor):
                entry = {
                    "a": comp.nodes[0], "b": comp.nodes[1],
                    "k": comp.branch,
                    "l": np.array([c.inductance for c in slot]),
                    "i": np.zeros(self.N), "v": np.zeros(self.N),
                    "comps": slot, "couplings": [],
                }
                ind_index[id(comp)] = entry
                self.ind_slots.append(entry)
            elif isinstance(comp, VoltageSource):
                sources = [c.source for c in slot]
                const = (
                    np.array([s.dc_value for s in sources])
                    if all(s.label == "dc" for s in sources)
                    else None
                )
                self.vsrc_slots.append(
                    {"k": comp.branch, "sources": sources, "const": const, "vec": None}
                )
            elif isinstance(comp, CurrentSource):
                sources = [c.source for c in slot]
                const = (
                    np.array([s.dc_value for s in sources])
                    if all(s.label == "dc" for s in sources)
                    else None
                )
                self.isrc_slots.append(
                    {
                        "a": comp.nodes[0],
                        "b": comp.nodes[1],
                        "sources": sources,
                        "const": const,
                        "vec": None,
                    }
                )
            elif isinstance(comp, Diode):
                self.diode_slots.append(slot)
            elif not comp.linear_stamps:
                self.other_slots.append(slot)
            if comp.linear_stamps:
                self.matrix_slots.append(slot)
        # Couplings resolve against the slot entries of their partner
        # inductors; coupling lists are built in netlist order, so
        # position p pairs cellwise across the family.
        for entry in self.ind_slots:
            proto = entry["comps"][0]
            for p, (_m_val, other) in enumerate(proto.couplings):
                entry["couplings"].append(
                    {
                        "m": np.array([c.couplings[p][0] for c in entry["comps"]]),
                        "other": ind_index[id(other)],
                    }
                )
        self.is_linear = not self.diode_slots and not self.other_slots
        self.newton_iters = 0  # cumulative, read by transient_batch
        #: Factorization-reuse counters, per cell (a batched solve of N
        #: matrices counts N factorizations); the dense strategy never
        #: reuses a pattern, the sparse strategy reuses its frozen
        #: symbolic factorization on every refresh.
        self.factorizations = 0
        self.pattern_reuses = 0
        self._init_diodes()
        n, N = self.n, self.N
        # The (N, n, n) stacked workspace is the dense strategy's; it is
        # allocated on first use so the sparse strategy never pays the
        # O(N n^2) memory unless it falls back.
        self.G = None
        self.rhs = np.empty((N, n))
        self._rhs_base = np.empty((N, n))
        self._x_pad = np.zeros((N, n + 1))
        self._base = {}

    def _dense_workspace(self):
        if self.G is None:
            self.G = np.empty((self.N, self.n, self.n))
        return self.G

    # -- diode group ----------------------------------------------------
    def _init_diodes(self):
        slots = self.diode_slots
        self.nd = nd = len(slots)
        if not nd:
            return
        n = self.n
        protos = [s[0] for s in slots]
        a = np.array([c.nodes[0] for c in protos], dtype=np.intp)
        b = np.array([c.nodes[1] for c in protos], dtype=np.intp)
        self.d_ai = np.where(a < 0, n, a)
        self.d_bi = np.where(b < 0, n, b)
        self.d_is = np.array([[c.i_s for c in s] for s in slots]).T      # (N, nd)
        nvt = np.array([[c.n * c.vt for c in s] for s in slots]).T
        self.d_inv_nvt = 1.0 / nvt
        self.d_vmax = np.array([[c.v_max for c in s] for s in slots]).T
        e_knee = np.exp(self.d_vmax * self.d_inv_nvt)
        self.d_gknee = self.d_is * e_knee * self.d_inv_nvt
        self.d_iknee = self.d_is * (e_knee - 1.0)
        self.d_vmax_floor = float(self.d_vmax.min())
        self._init_diode_proj()

    def _init_diode_proj(self):
        """Dense scatter projections of the diode group (the sparse
        strategy overrides this with frozen-pattern index maps and never
        materializes the (n*n, nd) matrices)."""
        _ai, _bi, P_g, P_r = _diode_scatter_plan(
            [s[0] for s in self.diode_slots], self.n)
        self.dP_gT = np.ascontiguousarray(P_g.T)   # (nd, n*n)
        self.dP_rT = np.ascontiguousarray(P_r.T)   # (nd, n)

    def _diode_eval(self, x):
        """(g, ieq) of every diode of every cell — the shared piecewise
        model; the strategies differ only in how the result scatters."""
        xp = self._x_pad
        xp[:, : self.n] = x
        vd = xp[:, self.d_ai] - xp[:, self.d_bi]
        e = np.exp(np.minimum(vd, self.d_vmax) * self.d_inv_nvt)
        i = self.d_is * (e - 1.0)
        g = (i + self.d_is) * self.d_inv_nvt
        if vd.max() > self.d_vmax_floor:
            over = vd > self.d_vmax
            i = np.where(over, self.d_iknee + self.d_gknee * (vd - self.d_vmax), i)
            g = np.where(over, self.d_gknee, g)
        g += self.gmin
        ieq = i - g * vd
        return g, ieq

    def _stamp_diodes(self, G2, rhs, x):
        """One vectorized Newton stamp of every diode of every cell:
        ``G2`` is the matrix tensor viewed as (N, n*n)."""
        g, ieq = self._diode_eval(x)
        G2 += g @ self.dP_gT
        rhs += ieq @ self.dP_rT

    # -- state management ----------------------------------------------
    def init_states(self, x, use_ic):
        """Companion-model state arrays at t=0 (mirrors the single-cell
        ``init_state`` + use_ic override semantics)."""
        for slot in self.cap_slots:
            if use_ic:
                slot["v"] = np.array([
                    c.ic if c.ic is not None else 0.0 for c in slot["comps"]])
            else:
                slot["v"] = np.array([
                    c.ic if c.ic is not None else
                    self._vdiff_cell(x[j], slot["a"], slot["b"])
                    for j, c in enumerate(slot["comps"])])
            slot["i"] = np.zeros(self.N)
        for slot in self.ind_slots:
            if use_ic:
                slot["i"] = np.array([c.ic for c in slot["comps"]])
            else:
                slot["i"] = x[:, slot["k"]].copy()
            slot["v"] = np.zeros(self.N)

    @staticmethod
    def _vdiff_cell(x_row, a, b):
        va = 0.0 if a < 0 else x_row[a]
        vb = 0.0 if b < 0 else x_row[b]
        return va - vb

    def _vdiff(self, x, a, b):
        va = 0.0 if a < 0 else x[:, a]
        vb = 0.0 if b < 0 else x[:, b]
        return va - vb

    def update_states(self, x, dt, method):
        trap = method == "trap"
        for slot in self.cap_slots:
            geq = (2.0 if trap else 1.0) * slot["c"] / dt
            v_new = self._vdiff(x, slot["a"], slot["b"])
            if trap:
                slot["i"] = geq * (v_new - slot["v"]) - slot["i"]
            else:
                slot["i"] = geq * (v_new - slot["v"])
            slot["v"] = v_new
        for slot in self.ind_slots:
            slot["i"] = x[:, slot["k"]].copy()
            slot["v"] = self._vdiff(x, slot["a"], slot["b"])

    # -- assembly -------------------------------------------------------
    def base_for(self, dt, method):
        """(N, n, n) linear base for one ``(dt, method)`` — and, for a
        linear family, its batched inverse so every step is one
        batched matvec (factorization reuse across the whole run)."""
        key = (dt, method)
        entry = self._base.get(key)
        if entry is None:
            G = np.zeros((self.N, self.n, self.n))
            for slot in self.matrix_slots:
                for j, comp in enumerate(slot):
                    comp.stamp_tran_matrix(G[j], dt, method)
            inv = None
            if self.is_linear:
                try:
                    inv = np.linalg.inv(G)
                    self.factorizations += self.N
                except np.linalg.LinAlgError:
                    inv = None
            if len(self._base) >= 64:
                self._base.clear()
            entry = (G, inv)
            self._base[key] = entry
        return entry

    @staticmethod
    def _slot_values(slot, t):
        """Source values of one family slot at time ``t``: a constant
        array, a vectorized closed-form evaluation (sparse strategy),
        or N scalar calls."""
        if slot["const"] is not None:
            return slot["const"]
        if slot["vec"] is not None:
            return slot["vec"](t)
        return np.array([s(t) for s in slot["sources"]])

    def build_rhs(self, dt, method, t):
        rhs = self._rhs_base
        rhs[:] = 0.0
        trap = method == "trap"
        fac = 2.0 if trap else 1.0
        for slot in self.cap_slots:
            geq = fac * slot["c"] / dt
            ieq = geq * slot["v"] + (slot["i"] if trap else 0.0)
            a, b = slot["a"], slot["b"]
            if a >= 0:
                rhs[:, a] += ieq
            if b >= 0:
                rhs[:, b] -= ieq
        for slot in self.ind_slots:
            leq = fac * slot["l"] / dt
            k = slot["k"]
            if trap:
                rhs[:, k] += -slot["v"] - leq * slot["i"]
            else:
                rhs[:, k] += -leq * slot["i"]
            for coupling in slot["couplings"]:
                rhs[:, k] -= fac * coupling["m"] / dt * coupling["other"]["i"]
        for slot in self.vsrc_slots:
            vals = self._slot_values(slot, t)
            rhs[:, slot["k"]] += vals
        for slot in self.isrc_slots:
            vals = self._slot_values(slot, t)
            a, b = slot["a"], slot["b"]
            if a >= 0:
                rhs[:, a] -= vals
            if b >= 0:
                rhs[:, b] += vals
        return rhs

    # -- solves ---------------------------------------------------------
    def step_linear(self, dt, method, t):
        G, inv = self.base_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        if inv is not None:
            return np.einsum("nij,nj->ni", inv, rhs)
        try:
            self.factorizations += self.N
            return np.linalg.solve(G, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in batched family "
                f"({self.circuits[0].title!r}): {exc}") from exc

    def newton(
        self,
        x0,
        dt,
        method,
        t,
        max_newton=60,
        damping_limit=2.0,
        v_tol=1e-6,
        v_reltol=0.0,
        i_tol=1e-9,
        i_reltol=1e-6,
    ):
        """Damped lockstep Newton: all cells iterate together until
        every cell satisfies the (absolute + relative) criterion."""
        G_base, _ = self.base_for(dt, method)
        rhs_base = self.build_rhs(dt, method, t)
        G, rhs = self._dense_workspace(), self.rhs
        G2 = G.reshape(self.N, self.n * self.n)
        x = np.array(x0, dtype=float, copy=True)
        nn = self.nn
        has_branches = self.n > nn
        for _ in range(max_newton):
            self.newton_iters += 1
            self.factorizations += self.N
            np.copyto(G, G_base)
            np.copyto(rhs, rhs_base)
            if self.nd:
                self._stamp_diodes(G2, rhs, x)
            for slot in self.other_slots:
                for j, comp in enumerate(slot):
                    comp.stamp_tran(G[j], rhs[j], x[j], _SlotStates(self, j),
                                    dt, method, t, self.gmin)
            try:
                x_new = np.linalg.solve(G, rhs[:, :, None])[:, :, 0]
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular MNA matrix in batched family "
                    f"({self.circuits[0].title!r}): {exc}") from exc
            dxa = np.abs(x_new - x)
            row_max = dxa.max(axis=1)
            if row_max.max() > damping_limit:
                scale = np.minimum(1.0, damping_limit / np.maximum(
                    row_max, 1e-300))
                x = x + (x_new - x) * scale[:, None]
                dxa *= scale[:, None]
            else:
                x = x_new
            dv = dxa[:, :nn].max(axis=1)
            v_ok = dv < v_tol + v_reltol * np.abs(x[:, :nn]).max(axis=1)
            if has_branches:
                di = dxa[:, nn:].max(axis=1)
                i_ok = di < i_tol + i_reltol * np.abs(x[:, nn:]).max(axis=1)
                converged = bool((v_ok & i_ok).all())
            else:
                converged = bool(v_ok.all())
            if converged:
                return x
        raise ConvergenceError(
            f"lockstep Newton failed to converge in {max_newton} "
            f"iterations ({self.circuits[0].title!r} family)")


class _SlotStates:
    """Adapter handing a per-cell view of the slot state arrays to the
    scalar ``stamp_tran`` of non-vectorized devices (Mosfet/Switch use
    no states today, but the mapping stays correct if they grow some)."""

    def __init__(self, system, cell):
        self.system = system
        self.cell = cell

    def __getitem__(self, comp):
        for slot in self.system.cap_slots + self.system.ind_slots:
            if slot["comps"][self.cell] is comp:
                return {"v": slot["v"][self.cell], "i": slot["i"][self.cell]}
        raise KeyError(comp)


def _vectorized_source_eval(sources):
    """A ``t -> (N,)`` closure evaluating a whole family slot in closed
    form, or None when any source lacks vectorizable metadata (opaque
    callables, mixed waveform kinds) — the caller then keeps the scalar
    per-cell path."""
    params = [getattr(s, "vector_params", None) for s in sources]
    if any(p is None or p[0] != "sine" for p in params):
        return None
    w, phi, amp, off, delay = (
        np.array([p[k] for p in params]) for k in range(1, 6)
    )

    def eval_at(t):
        return np.where(t < delay, off,
                        off + amp * np.sin(w * (t - delay) + phi))

    return eval_at


class _SparseBatchSystem(_BatchSystem):
    """Block-diagonal sparse strategy for lockstep families.

    One CSR sparsity pattern is frozen for the whole family (every cell
    shares the template's topology) and one symbolic factorization —
    fill pattern plus static pivot order — is computed from a
    representative cell (:class:`~repro.spice.assembler.SharedPatternLU`).
    Per Newton iteration only the ``(N, nnz)`` numeric values are
    refreshed and refactorized through the shared elimination schedule;
    an iteration whose static pivot order breaks down for any cell
    falls back to the dense partial-pivoting batched solve.  The slot
    state/rhs kernels are inherited from the dense system (already
    vectorized over cells); source slots additionally evaluate in
    closed form when their waveform metadata allows it.
    """

    def __init__(self, circuits, gmin):
        from repro.spice import assembler

        if not assembler.SPARSE_AVAILABLE:  # pragma: no cover - guarded
            raise ValueError(
                "matrix='sparse' requires scipy; install it or use "
                "matrix='dense'"
            )
        self._asm = assembler
        super().__init__(circuits, gmin)
        if self.other_slots:
            raise ValueError(
                f"family {circuits[0].title!r} holds nonlinear devices "
                f"other than diodes; the sparse strategy supports "
                f"diode-only nonlinearity (use matrix='dense' or 'auto')"
            )
        extra = ()
        if self.nd:
            pos_r, pos_c = self._d_pos
            extra = [(pos_r, pos_c)]
        self._pattern = assembler.pattern_from_circuit(
            circuits[0], extra_positions=extra
        )
        if self.nd:
            self._d_slots = self._pattern.plan(*self._d_pos)
            self._rhs_off = None  # batch has no bypass path
        rows, cols = [], []
        for slot in self.matrix_slots:
            r, c, _ = slot[0].sparse_stamps(1.0, "be")
            rows.append(r)
            cols.append(c)
        self._lin_plan = self._pattern.plan(
            np.concatenate(rows), np.concatenate(cols)
        )
        self._data = np.empty((self.N, self._pattern.nnz))
        self._shared_lu = None
        for slot in self.vsrc_slots + self.isrc_slots:
            if slot["const"] is None:
                slot["vec"] = _vectorized_source_eval(slot["sources"])

    def _init_diode_proj(self):
        """Frozen-pattern index maps instead of the dense (n*n, nd)
        projections: one data slot, sign and diode index per matrix
        contribution; the plan itself resolves after the pattern is
        frozen (the pattern needs these positions first)."""
        signs, which, positions = [], [], []
        r_rows, r_signs, r_which = [], [], []
        for k, slot in enumerate(self.diode_slots):
            a, b = slot[0].nodes
            for i, j, sign in ((a, a, 1.0), (b, b, 1.0), (a, b, -1.0), (b, a, -1.0)):
                if i >= 0 and j >= 0:
                    positions.append((i, j))
                    signs.append(sign)
                    which.append(k)
            if a >= 0:
                r_rows.append(a)
                r_signs.append(-1.0)
                r_which.append(k)
            if b >= 0:
                r_rows.append(b)
                r_signs.append(1.0)
                r_which.append(k)
        self._d_pos = (
            np.array([p[0] for p in positions], dtype=np.intp),
            np.array([p[1] for p in positions], dtype=np.intp),
        )
        self._d_signs = np.array(signs)
        self._d_which = np.array(which, dtype=np.intp)
        self._dr_rows = np.array(r_rows, dtype=np.intp)
        self._dr_signs = np.array(r_signs)
        self._dr_which = np.array(r_which, dtype=np.intp)

    def _assemble_linear(self, dt, method):
        """(N, nnz) linear base values for one ``(dt, method)`` on the
        frozen pattern."""
        parts = [
            np.stack([comp.sparse_stamps(dt, method)[2] for comp in slot])
            for slot in self.matrix_slots
        ]
        vals = np.concatenate(parts, axis=1)
        data = np.zeros((self.N, self._pattern.nnz))
        np.add.at(data, (slice(None), self._lin_plan), vals)
        self.pattern_reuses += self.N
        return data

    def _factor_family(self, data):
        """Shared-schedule numeric factorization of all cells (builds
        the symbolic analysis lazily from the first cell's values).
        Raises PivotBreakdownError for the caller's dense fallback."""
        if self._shared_lu is None:
            try:
                self._shared_lu = self._asm.SharedPatternLU(
                    self._pattern, data[0]
                )
            except RuntimeError as exc:
                raise ConvergenceError(
                    f"singular MNA matrix in batched family "
                    f"({self.circuits[0].title!r}): {exc}"
                ) from exc
        work = self._shared_lu.factor(data)
        self.factorizations += self.N
        return work

    def _densify_all(self, data):
        """(N, n, n) dense matrices from the (N, nnz) data block — the
        partial-pivoting fallback for iterations the static pivot order
        cannot handle."""
        n = self.n
        G = np.zeros((self.N, n, n))
        flat = self._pattern.rows * n + self._pattern.cols
        G.reshape(self.N, -1)[:, flat] = data
        return G

    def _solve_dense_fallback(self, data, rhs):
        self.factorizations += self.N
        try:
            return np.linalg.solve(
                self._densify_all(data), rhs[:, :, None]
            )[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in batched family "
                f"({self.circuits[0].title!r}): {exc}") from exc

    def base_for(self, dt, method):
        """(N, nnz) linear base values and, for a linear family, the
        shared-pattern factor storage (None means dense fallback)."""
        key = (dt, method)
        entry = self._base.get(key)
        if entry is None:
            data = self._assemble_linear(dt, method)
            work = None
            if self.is_linear:
                try:
                    work = self._factor_family(data)
                except self._asm.PivotBreakdownError:
                    work = None
            if len(self._base) >= 64:
                self._base.clear()
            entry = (data, work)
            self._base[key] = entry
        return entry

    def step_linear(self, dt, method, t):
        data, work = self.base_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        if work is not None:
            self.pattern_reuses += self.N
            x = self._shared_lu.solve(work, rhs)
            if np.all(np.isfinite(x)):
                return x
        return self._solve_dense_fallback(data, rhs)

    def newton(
        self,
        x0,
        dt,
        method,
        t,
        max_newton=60,
        damping_limit=2.0,
        v_tol=1e-6,
        v_reltol=0.0,
        i_tol=1e-9,
        i_reltol=1e-6,
    ):
        """Damped lockstep Newton on the frozen pattern: identical
        damping and acceptance rules to the dense strategy — only the
        linear algebra differs (value scatter + shared-schedule
        refactorization, dense fallback per offending iteration)."""
        base, _ = self.base_for(dt, method)
        rhs_base = self.build_rhs(dt, method, t)
        data, rhs = self._data, self.rhs
        x = np.array(x0, dtype=float, copy=True)
        nn = self.nn
        has_branches = self.n > nn
        for _ in range(max_newton):
            self.newton_iters += 1
            np.copyto(data, base)
            np.copyto(rhs, rhs_base)
            if self.nd:
                g, ieq = self._diode_eval(x)
                np.add.at(
                    data,
                    (slice(None), self._d_slots),
                    self._d_signs * g[:, self._d_which],
                )
                np.add.at(
                    rhs,
                    (slice(None), self._dr_rows),
                    self._dr_signs * ieq[:, self._dr_which],
                )
            self.pattern_reuses += self.N
            x_new = None
            try:
                work = self._factor_family(data)
                x_new = self._shared_lu.solve(work, rhs)
                if not np.all(np.isfinite(x_new)):
                    x_new = None
            except self._asm.PivotBreakdownError:
                x_new = None
            if x_new is None:
                x_new = self._solve_dense_fallback(data, rhs)
            dxa = np.abs(x_new - x)
            row_max = dxa.max(axis=1)
            if row_max.max() > damping_limit:
                scale = np.minimum(1.0, damping_limit / np.maximum(
                    row_max, 1e-300))
                x = x + (x_new - x) * scale[:, None]
                dxa *= scale[:, None]
            else:
                x = x_new
            dv = dxa[:, :nn].max(axis=1)
            v_ok = dv < v_tol + v_reltol * np.abs(x[:, :nn]).max(axis=1)
            if has_branches:
                di = dxa[:, nn:].max(axis=1)
                i_ok = di < i_tol + i_reltol * np.abs(x[:, nn:]).max(axis=1)
                converged = bool((v_ok & i_ok).all())
            else:
                converged = bool(v_ok.all())
            if converged:
                return x
        raise ConvergenceError(
            f"lockstep Newton failed to converge in {max_newton} "
            f"iterations ({self.circuits[0].title!r} family)")


class _LTEKernel:
    """Preallocated trapezoidal-LTE kernel for the lockstep loop.

    Computes the same divided-difference estimate as
    :func:`repro.spice.transient._lte_trap` (identical operation order,
    so accept/reject decisions match the single-circuit reference bit
    for bit) into reused ``(N, n)`` buffers — the per-step cost is a
    flat sequence of in-place vector ops with zero allocations.

    NUMBA SEAM: ``ratio`` is pure elementwise arithmetic on
    preallocated arrays; an ``@numba.njit`` kernel taking the same
    buffers could drop in without touching the loop.  numba is not a
    dependency of this repo today, so it stays pure numpy.
    """

    def __init__(self, shape):
        self._d01 = np.empty(shape)
        self._d12 = np.empty(shape)
        self._d23 = np.empty(shape)
        self._tol = np.empty(shape)

    def ratio(self, hist_t, hist_x, t_new, x_new, h, atol, rtol):
        """max over cells/unknowns of LTE / (atol + rtol*|x|)."""
        t0, t1, t2 = hist_t[-3], hist_t[-2], hist_t[-1]
        x0, x1, x2 = hist_x[-3], hist_x[-2], hist_x[-1]
        d01, d12, d23 = self._d01, self._d12, self._d23
        np.subtract(x1, x0, out=d01)
        d01 /= t1 - t0
        np.subtract(x2, x1, out=d12)
        d12 /= t2 - t1
        np.subtract(x_new, x2, out=d23)
        d23 /= t_new - t2
        np.subtract(d12, d01, out=d01)   # dd1
        d01 /= t2 - t0
        np.subtract(d23, d12, out=d12)   # dd2
        d12 /= t_new - t1
        np.subtract(d12, d01, out=d01)   # dd3
        d01 /= t_new - t0
        np.abs(d01, out=d01)             # err = |dd3| * h^3/2
        d01 *= 0.5 * h**3
        np.abs(x_new, out=self._tol)
        self._tol *= rtol
        self._tol += atol
        d01 /= self._tol
        return float(d01.max())


def _pick_batch_matrix(matrix, circuits):
    """Resolve the batch ``matrix=`` argument (same policy as the
    single-circuit :func:`~repro.spice.transient._pick_matrix_mode`:
    the per-cell unknown count and diode-only nonlinearity drive the
    auto selection)."""
    from repro.spice.assembler import (
        MATRIX_MODES,
        SPARSE_AVAILABLE,
        SPARSE_AUTO_THRESHOLD,
    )

    if matrix not in MATRIX_MODES:
        raise ValueError(
            f"unknown matrix mode {matrix!r}; known modes: {MATRIX_MODES}"
        )
    if matrix != "auto":
        return matrix
    first = circuits[0]
    diode_only = all(
        c.linear_stamps or isinstance(c, Diode) for c in first.components
    )
    if (SPARSE_AVAILABLE and diode_only
            and first.n_unknowns >= SPARSE_AUTO_THRESHOLD):
        return "sparse"
    return "dense"


def transient_batch(
    circuits,
    t_stop,
    dt,
    t_start=0.0,
    method="adaptive",
    use_ic=False,
    x0=None,
    max_newton=60,
    store_every=1,
    atol=ADAPTIVE_ATOL,
    rtol=ADAPTIVE_RTOL,
    max_dt=None,
    min_dt=None,
    v_reltol=None,
    matrix="auto",
    check="error",
):
    """Run one lockstep transient over a family of circuits.

    Parameters mirror :func:`repro.spice.transient.transient`; the
    family walks a single shared time grid.  ``method="trap"``/``"be"``
    run fixed-step (halving only on Newton failure, regrowing toward
    the nominal ``dt`` — the same policy as the single-circuit
    reference path); ``"adaptive"`` adds the shared LTE step control
    (the worst cell decides).  ``x0``, when given, is an
    ``(n_cells, n_unknowns)`` array.  ``matrix`` selects the family's
    linear-algebra strategy (``"auto"``/``"dense"``/``"sparse"``, as in
    the single-circuit front door): sparse assembles all cells
    block-diagonally on one frozen pattern with a shared symbolic
    factorization; the strategies agree to solver rounding and walk
    identical accepted grids.  The fixed-step methods are the dense
    parity reference and reject ``matrix="sparse"``.

    ``check`` gates the static pre-flight (see
    :func:`repro.spice.analyze.check_circuit`).  The family is
    structurally identical (enforced by the lockstep contract), so the
    analysis runs **once per topology** on the representative first
    cell; ``"off"`` skips it entirely.

    Returns a :class:`BatchTransientResult`.
    """
    if method not in METHODS:
        raise ValueError(
            f"unknown integration method {method!r}; " f"known methods: {METHODS}"
        )
    if dt <= 0 or t_stop <= t_start:
        raise ValueError("need dt > 0 and t_stop > t_start")
    if int(store_every) < 1:
        raise ValueError("store_every must be >= 1")
    store_every = int(store_every)
    circuits = list(circuits)
    _check_family(circuits)
    if check != "off" and circuits:
        from repro.spice.analyze import check_circuit

        # The family shares one topology: analyze the representative.
        check_circuit(circuits[0], check)
    mode = _pick_batch_matrix(matrix, circuits)
    if mode == "sparse" and method != "adaptive":
        raise ValueError(
            "matrix='sparse' applies to the adaptive backend; the "
            "fixed-step methods are the dense parity reference"
        )
    gmin = 1e-12
    N = len(circuits)
    n = circuits[0].n_unknowns
    adaptive = method == "adaptive"
    base_method = "trap" if adaptive else method
    atol = float(atol)
    rtol = float(rtol)
    max_dt = (dt * 256.0 if max_dt is None else float(max_dt)) \
        if adaptive else dt
    min_dt = (
        (dt / 1024.0 if adaptive else dt / 64.0) if min_dt is None else float(min_dt)
    )
    v_reltol = (ADAPTIVE_V_RELTOL if v_reltol is None else float(v_reltol)) \
        if adaptive else 0.0

    # Initial solution per cell (DC seed or zero + initial conditions).
    if x0 is not None:
        x = np.array(x0, dtype=float, copy=True).reshape(N, n)
    elif use_ic:
        x = np.zeros((N, n))
    else:
        x = np.stack([dc_operating_point(c, check="off").x for c in circuits])

    if mode == "sparse":
        system = _SparseBatchSystem(circuits, gmin)
    else:
        system = _BatchSystem(circuits, gmin)
    system.init_states(x, use_ic)

    if use_ic:
        # Per-cell consistency micro-step (as in the single-circuit
        # path): pins node voltages to the imposed initial conditions.
        dt_micro = dt * 1e-9
        for j, ckt in enumerate(circuits):
            states = {}
            for comp in ckt.components:
                st = comp.init_state(None)
                if st is not None:
                    states[comp] = st
            for comp, st in states.items():
                if hasattr(comp, "ic") and comp.ic is not None and "v" in st:
                    st["v"] = comp.ic

            def warm_stamp(G, rhs, xg, g, _states=states, _ckt=ckt):
                for comp in _ckt.components:
                    comp.stamp_tran(G, rhs, xg, _states, dt_micro, "be",
                                    t_start, g)

            x[j] = _newton_solve(
                ckt, x[j], warm_stamp, gmin, max_iter=max_newton, damping_limit=5.0
            )

    # NOTE: this time loop mirrors transient._adaptive_loop (breakpoint
    # clamp, BE first step, predictor, LTE accept/reject, history ring,
    # store grid) with batch-specific differences: fixed-step lanes
    # regrow toward the nominal dt here, and the single-circuit loop
    # additionally carries the reverse-bias bypass and callbacks.  A
    # change to the step-control rules must land in both; the
    # batch-vs-single parity tests (tests/test_spice_batch.py) pin
    # them together.
    times = [t_start]
    solutions = [x.copy()]
    t = t_start
    h = dt
    hist_t = [t_start]
    hist_x = [x.copy()]
    accepted = 0
    newton_rejects = 0
    lte_rejects = 0
    first_step = True
    # Step-growth clamping at source discontinuities is an adaptive
    # concern; the fixed-step lanes mirror the single-circuit reference
    # path, which never grows past its nominal dt.
    bp_sources = _breakpoint_sources(circuits) if adaptive else []
    lte = _LTEKernel((N, n)) if adaptive else None
    while t < t_stop - 1e-15:
        step = min(h, t_stop - t)
        if bp_sources:
            step = _clamp_to_breakpoints(bp_sources, t, step)
        t_next = t + step
        step_method = "be" if first_step else base_method
        try:
            if system.is_linear:
                x_new = system.step_linear(step, step_method, t_next)
            else:
                if len(hist_t) >= 2:
                    guess = x + (x - hist_x[-2]) * (
                        step / (hist_t[-1] - hist_t[-2]))
                else:
                    guess = x
                x_new = system.newton(
                    guess,
                    step,
                    step_method,
                    t_next,
                    max_newton=max_newton,
                    v_reltol=v_reltol,
                )
        except ConvergenceError:
            if h / 2.0 < min_dt:
                raise ConvergenceError(
                    f"batched transient step failed at t={t_next:.4g}s even "
                    f"at minimum step {min_dt:.3g}s "
                    f"({circuits[0].title!r} family)")
            newton_rejects += 1
            h /= 2.0
            continue
        grow = False
        if adaptive and not first_step and len(hist_t) >= 3:
            # Same divided-difference estimate as the single-circuit
            # _lte_trap, through the preallocated (N, n) kernel.
            ratio = lte.ratio(hist_t, hist_x, t_next, x_new, step, atol, rtol)
            if ratio > 1.0 and step > min_dt * 1.000001:
                lte_rejects += 1
                h = max(step / 2.0, min_dt)
                continue
            grow = ratio < 1.0 / 16.0
        system.update_states(x_new, step, step_method)
        first_step = False
        x = x_new
        t = t_next
        accepted += 1
        hist_t.append(t)
        hist_x.append(x)
        if len(hist_t) > 4:
            hist_t.pop(0)
            hist_x.pop(0)
        if accepted % store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            solutions.append(x.copy())
        if adaptive:
            if grow:
                h = min(h * 2.0, max_dt)
        elif h < dt:
            # Fixed-step policy: regrow toward the nominal step.
            h = min(dt, h * 2.0)
    return BatchTransientResult(
        circuits, times, np.stack(solutions, axis=1),
        stats={
            "accepted_steps": accepted,
            "newton_iters": system.newton_iters,
            "newton_rejects": newton_rejects,
            "lte_rejects": lte_rejects,
            "factorizations": system.factorizations,
            "pattern_reuses": system.pattern_reuses,
        })
