"""Lockstep-batched transient analysis for circuit families.

A spice *study* sweeps one netlist template over parameter axes
(source amplitude, frequency, load), producing N structurally
identical circuits — same components in the same order, same node
indices, different element values.  Integrating them one at a time
repeats every numpy call N times on tiny arrays, so Python/numpy
dispatch overhead dominates.  :func:`transient_batch` instead advances
the whole family in lockstep:

* the per-``(dt, method)`` linear base matrices are stacked into one
  ``(N, n, n)`` tensor (prefactored to a batched inverse when the
  family is linear, so a step is a single batched matvec);
* capacitor/inductor companion states live in ``(N,)`` arrays updated
  with vectorized ops;
* every diode of every cell is evaluated as one ``(N, nd)`` block and
  scattered through two small matmuls;
* the damped Newton iteration solves all cells at once through
  numpy's batched ``linalg.solve``.

Step control is shared across the family (the worst cell's Newton
failure or local-truncation-error estimate drives the halving/doubling
decision), so all cells walk the same time grid — which is exactly
what makes a batched run comparable point-for-point against per-cell
fixed-step references (see tests/test_spice_batch.py).
"""

from __future__ import annotations

import numpy as np

from repro.spice.components import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    VoltageSource,
)
from repro.spice.dc import ConvergenceError, _newton_solve, dc_operating_point
from repro.spice.transient import (
    ADAPTIVE_ATOL,
    ADAPTIVE_RTOL,
    ADAPTIVE_V_RELTOL,
    METHODS,
    TransientResult,
    _breakpoint_sources,
    _clamp_to_breakpoints,
    _diode_scatter_plan,
    _lte_trap,
)


class BatchTransientResult:
    """Time-series output of a lockstep family run.

    ``x`` has shape ``(n_cells, n_points, n_unknowns)`` on the shared
    stored time grid; :meth:`result` gives cell ``i`` as an ordinary
    :class:`~repro.spice.transient.TransientResult`.
    """

    def __init__(self, circuits, times, x, stats=None):
        self.circuits = list(circuits)
        self.t = np.asarray(times, dtype=float)
        self.x = np.asarray(x, dtype=float)
        #: Solver-effort counters of the run that produced this family
        #: (accepted_steps / newton_iters / newton_rejects / lte_rejects),
        #: fed into the observability layer's ``solve`` events.
        self.stats = dict(stats) if stats is not None else {
            "accepted_steps": 0,
            "newton_iters": 0,
            "newton_rejects": 0,
            "lte_rejects": 0,
        }

    def __len__(self):
        return len(self.circuits)

    def result(self, i):
        """Cell ``i`` as a single-circuit TransientResult."""
        return TransientResult(self.circuits[i], self.t, self.x[i])

    def voltage(self, node):
        """(n_cells, n_points) array of one node voltage (all cells
        share the template's node table)."""
        idx = self.circuits[0].node_index(node)
        if idx < 0:
            return np.zeros((len(self.circuits), self.t.size))
        return self.x[:, :, idx]


def _check_family(circuits):
    """Validate the circuits are structurally identical (same
    component classes, node indices and branch layout slot by slot)."""
    if not circuits:
        raise ValueError("transient_batch needs at least one circuit")
    for ckt in circuits:
        ckt.build()
    first = circuits[0]
    n = first.n_unknowns
    for ckt in circuits[1:]:
        if ckt.n_unknowns != n or len(ckt.components) != len(first.components):
            raise ValueError(
                f"circuit {ckt.title!r} is not structurally identical to "
                f"{first.title!r}; a lockstep batch needs one netlist "
                f"template instantiated at different element values"
            )
        for a, b in zip(first.components, ckt.components):
            if type(a) is not type(b) or a.nodes != b.nodes or a.branch != b.branch:
                raise ValueError(
                    f"component slot {a.name!r}/{b.name!r} differs between "
                    f"{first.title!r} and {ckt.title!r} (class or topology)"
                )


class _BatchSystem:
    """Stacked MNA workspace for one circuit family (see module doc)."""

    def __init__(self, circuits, gmin):
        self.circuits = circuits
        self.gmin = gmin
        self.N = len(circuits)
        first = circuits[0]
        self.n = first.n_unknowns
        self.nn = first.n_nodes
        slots = list(zip(*[c.components for c in circuits]))
        self.cap_slots = []     # (a, b, C (N,), v (N,), i (N,))
        self.ind_slots = []     # dict per slot
        self.vsrc_slots = []    # (branch, comps, const (N,) or None)
        self.isrc_slots = []
        self.diode_slots = []
        self.other_slots = []   # per-cell scalar fallback (Mosfet/Switch)
        self.matrix_slots = []  # linear, matrix-only contributions
        ind_index = {}
        for slot in slots:
            comp = slot[0]
            if isinstance(comp, Capacitor):
                self.cap_slots.append({
                    "a": comp.nodes[0], "b": comp.nodes[1],
                    "c": np.array([c.capacitance for c in slot]),
                    "v": np.zeros(self.N), "i": np.zeros(self.N),
                    "comps": slot,
                })
            elif isinstance(comp, Inductor):
                entry = {
                    "a": comp.nodes[0], "b": comp.nodes[1],
                    "k": comp.branch,
                    "l": np.array([c.inductance for c in slot]),
                    "i": np.zeros(self.N), "v": np.zeros(self.N),
                    "comps": slot, "couplings": [],
                }
                ind_index[id(comp)] = entry
                self.ind_slots.append(entry)
            elif isinstance(comp, VoltageSource):
                sources = [c.source for c in slot]
                const = (np.array([s.dc_value for s in sources])
                         if all(s.label == "dc" for s in sources) else None)
                self.vsrc_slots.append(
                    {"k": comp.branch, "sources": sources, "const": const})
            elif isinstance(comp, CurrentSource):
                sources = [c.source for c in slot]
                const = (np.array([s.dc_value for s in sources])
                         if all(s.label == "dc" for s in sources) else None)
                self.isrc_slots.append(
                    {"a": comp.nodes[0], "b": comp.nodes[1],
                     "sources": sources, "const": const})
            elif isinstance(comp, Diode):
                self.diode_slots.append(slot)
            elif not comp.linear_stamps:
                self.other_slots.append(slot)
            if comp.linear_stamps:
                self.matrix_slots.append(slot)
        # Couplings resolve against the slot entries of their partner
        # inductors; coupling lists are built in netlist order, so
        # position p pairs cellwise across the family.
        for entry in self.ind_slots:
            proto = entry["comps"][0]
            for p, (_m_val, other) in enumerate(proto.couplings):
                entry["couplings"].append({
                    "m": np.array([c.couplings[p][0]
                                   for c in entry["comps"]]),
                    "other": ind_index[id(other)],
                })
        self.is_linear = not self.diode_slots and not self.other_slots
        self.newton_iters = 0  # cumulative, read by transient_batch
        self._init_diodes()
        n, N = self.n, self.N
        self.G = np.empty((N, n, n))
        self.rhs = np.empty((N, n))
        self._rhs_base = np.empty((N, n))
        self._x_pad = np.zeros((N, n + 1))
        self._base = {}

    # -- diode group ----------------------------------------------------
    def _init_diodes(self):
        slots = self.diode_slots
        self.nd = nd = len(slots)
        if not nd:
            return
        n = self.n
        # Topology plan shared with the single-circuit assembler (the
        # family is structurally identical, so slot 0 speaks for all).
        self.d_ai, self.d_bi, P_g, P_r = _diode_scatter_plan(
            [s[0] for s in slots], n)
        self.d_is = np.array([[c.i_s for c in s] for s in slots]).T      # (N, nd)
        nvt = np.array([[c.n * c.vt for c in s] for s in slots]).T
        self.d_inv_nvt = 1.0 / nvt
        self.d_vmax = np.array([[c.v_max for c in s] for s in slots]).T
        e_knee = np.exp(self.d_vmax * self.d_inv_nvt)
        self.d_gknee = self.d_is * e_knee * self.d_inv_nvt
        self.d_iknee = self.d_is * (e_knee - 1.0)
        self.d_vmax_floor = float(self.d_vmax.min())
        self.dP_gT = np.ascontiguousarray(P_g.T)   # (nd, n*n)
        self.dP_rT = np.ascontiguousarray(P_r.T)   # (nd, n)

    def _stamp_diodes(self, G2, rhs, x):
        """One vectorized Newton stamp of every diode of every cell:
        ``G2`` is the matrix tensor viewed as (N, n*n)."""
        xp = self._x_pad
        xp[:, : self.n] = x
        vd = xp[:, self.d_ai] - xp[:, self.d_bi]
        e = np.exp(np.minimum(vd, self.d_vmax) * self.d_inv_nvt)
        i = self.d_is * (e - 1.0)
        g = (i + self.d_is) * self.d_inv_nvt
        if vd.max() > self.d_vmax_floor:
            over = vd > self.d_vmax
            i = np.where(over,
                         self.d_iknee + self.d_gknee * (vd - self.d_vmax), i)
            g = np.where(over, self.d_gknee, g)
        g += self.gmin
        ieq = i - g * vd
        G2 += g @ self.dP_gT
        rhs += ieq @ self.dP_rT

    # -- state management ----------------------------------------------
    def init_states(self, x, use_ic):
        """Companion-model state arrays at t=0 (mirrors the single-cell
        ``init_state`` + use_ic override semantics)."""
        for slot in self.cap_slots:
            if use_ic:
                slot["v"] = np.array([
                    c.ic if c.ic is not None else 0.0 for c in slot["comps"]])
            else:
                slot["v"] = np.array([
                    c.ic if c.ic is not None else
                    self._vdiff_cell(x[j], slot["a"], slot["b"])
                    for j, c in enumerate(slot["comps"])])
            slot["i"] = np.zeros(self.N)
        for slot in self.ind_slots:
            if use_ic:
                slot["i"] = np.array([c.ic for c in slot["comps"]])
            else:
                slot["i"] = x[:, slot["k"]].copy()
            slot["v"] = np.zeros(self.N)

    @staticmethod
    def _vdiff_cell(x_row, a, b):
        va = 0.0 if a < 0 else x_row[a]
        vb = 0.0 if b < 0 else x_row[b]
        return va - vb

    def _vdiff(self, x, a, b):
        va = 0.0 if a < 0 else x[:, a]
        vb = 0.0 if b < 0 else x[:, b]
        return va - vb

    def update_states(self, x, dt, method):
        trap = method == "trap"
        for slot in self.cap_slots:
            geq = (2.0 if trap else 1.0) * slot["c"] / dt
            v_new = self._vdiff(x, slot["a"], slot["b"])
            if trap:
                slot["i"] = geq * (v_new - slot["v"]) - slot["i"]
            else:
                slot["i"] = geq * (v_new - slot["v"])
            slot["v"] = v_new
        for slot in self.ind_slots:
            slot["i"] = x[:, slot["k"]].copy()
            slot["v"] = self._vdiff(x, slot["a"], slot["b"])

    # -- assembly -------------------------------------------------------
    def base_for(self, dt, method):
        """(N, n, n) linear base for one ``(dt, method)`` — and, for a
        linear family, its batched inverse so every step is one
        batched matvec (factorization reuse across the whole run)."""
        key = (dt, method)
        entry = self._base.get(key)
        if entry is None:
            G = np.zeros((self.N, self.n, self.n))
            for slot in self.matrix_slots:
                for j, comp in enumerate(slot):
                    comp.stamp_tran_matrix(G[j], dt, method)
            inv = None
            if self.is_linear:
                try:
                    inv = np.linalg.inv(G)
                except np.linalg.LinAlgError:
                    inv = None
            if len(self._base) >= 64:
                self._base.clear()
            entry = (G, inv)
            self._base[key] = entry
        return entry

    def build_rhs(self, dt, method, t):
        rhs = self._rhs_base
        rhs[:] = 0.0
        trap = method == "trap"
        fac = 2.0 if trap else 1.0
        for slot in self.cap_slots:
            geq = fac * slot["c"] / dt
            ieq = geq * slot["v"] + (slot["i"] if trap else 0.0)
            a, b = slot["a"], slot["b"]
            if a >= 0:
                rhs[:, a] += ieq
            if b >= 0:
                rhs[:, b] -= ieq
        for slot in self.ind_slots:
            leq = fac * slot["l"] / dt
            k = slot["k"]
            if trap:
                rhs[:, k] += -slot["v"] - leq * slot["i"]
            else:
                rhs[:, k] += -leq * slot["i"]
            for coupling in slot["couplings"]:
                rhs[:, k] -= fac * coupling["m"] / dt * coupling["other"]["i"]
        for slot in self.vsrc_slots:
            vals = (slot["const"] if slot["const"] is not None
                    else np.array([s(t) for s in slot["sources"]]))
            rhs[:, slot["k"]] += vals
        for slot in self.isrc_slots:
            vals = (slot["const"] if slot["const"] is not None
                    else np.array([s(t) for s in slot["sources"]]))
            a, b = slot["a"], slot["b"]
            if a >= 0:
                rhs[:, a] -= vals
            if b >= 0:
                rhs[:, b] += vals
        return rhs

    # -- solves ---------------------------------------------------------
    def step_linear(self, dt, method, t):
        G, inv = self.base_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        if inv is not None:
            return np.einsum("nij,nj->ni", inv, rhs)
        try:
            return np.linalg.solve(G, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in batched family "
                f"({self.circuits[0].title!r}): {exc}") from exc

    def newton(self, x0, dt, method, t, max_newton=60, damping_limit=2.0,
               v_tol=1e-6, v_reltol=0.0, i_tol=1e-9, i_reltol=1e-6):
        """Damped lockstep Newton: all cells iterate together until
        every cell satisfies the (absolute + relative) criterion."""
        G_base, _ = self.base_for(dt, method)
        rhs_base = self.build_rhs(dt, method, t)
        G, rhs = self.G, self.rhs
        G2 = G.reshape(self.N, self.n * self.n)
        x = np.array(x0, dtype=float, copy=True)
        nn = self.nn
        has_branches = self.n > nn
        for _ in range(max_newton):
            self.newton_iters += 1
            np.copyto(G, G_base)
            np.copyto(rhs, rhs_base)
            if self.nd:
                self._stamp_diodes(G2, rhs, x)
            for slot in self.other_slots:
                for j, comp in enumerate(slot):
                    comp.stamp_tran(G[j], rhs[j], x[j], _SlotStates(self, j),
                                    dt, method, t, self.gmin)
            try:
                x_new = np.linalg.solve(G, rhs[:, :, None])[:, :, 0]
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular MNA matrix in batched family "
                    f"({self.circuits[0].title!r}): {exc}") from exc
            dxa = np.abs(x_new - x)
            row_max = dxa.max(axis=1)
            if row_max.max() > damping_limit:
                scale = np.minimum(1.0, damping_limit / np.maximum(
                    row_max, 1e-300))
                x = x + (x_new - x) * scale[:, None]
                dxa *= scale[:, None]
            else:
                x = x_new
            dv = dxa[:, :nn].max(axis=1)
            v_ok = dv < v_tol + v_reltol * np.abs(x[:, :nn]).max(axis=1)
            if has_branches:
                di = dxa[:, nn:].max(axis=1)
                i_ok = di < i_tol + i_reltol * np.abs(x[:, nn:]).max(axis=1)
                converged = bool((v_ok & i_ok).all())
            else:
                converged = bool(v_ok.all())
            if converged:
                return x
        raise ConvergenceError(
            f"lockstep Newton failed to converge in {max_newton} "
            f"iterations ({self.circuits[0].title!r} family)")


class _SlotStates:
    """Adapter handing a per-cell view of the slot state arrays to the
    scalar ``stamp_tran`` of non-vectorized devices (Mosfet/Switch use
    no states today, but the mapping stays correct if they grow some)."""

    def __init__(self, system, cell):
        self.system = system
        self.cell = cell

    def __getitem__(self, comp):
        for slot in self.system.cap_slots + self.system.ind_slots:
            if slot["comps"][self.cell] is comp:
                return {"v": slot["v"][self.cell], "i": slot["i"][self.cell]}
        raise KeyError(comp)


def transient_batch(
    circuits,
    t_stop,
    dt,
    t_start=0.0,
    method="adaptive",
    use_ic=False,
    x0=None,
    max_newton=60,
    store_every=1,
    atol=ADAPTIVE_ATOL,
    rtol=ADAPTIVE_RTOL,
    max_dt=None,
    min_dt=None,
    v_reltol=None,
):
    """Run one lockstep transient over a family of circuits.

    Parameters mirror :func:`repro.spice.transient.transient`; the
    family walks a single shared time grid.  ``method="trap"``/``"be"``
    run fixed-step (halving only on Newton failure, regrowing toward
    the nominal ``dt`` — the same policy as the single-circuit
    reference path); ``"adaptive"`` adds the shared LTE step control
    (the worst cell decides).  ``x0``, when given, is an
    ``(n_cells, n_unknowns)`` array.

    Returns a :class:`BatchTransientResult`.
    """
    if method not in METHODS:
        raise ValueError(f"unknown integration method {method!r}; "
                         f"known methods: {METHODS}")
    if dt <= 0 or t_stop <= t_start:
        raise ValueError("need dt > 0 and t_stop > t_start")
    if int(store_every) < 1:
        raise ValueError("store_every must be >= 1")
    store_every = int(store_every)
    circuits = list(circuits)
    _check_family(circuits)
    gmin = 1e-12
    N = len(circuits)
    n = circuits[0].n_unknowns
    adaptive = method == "adaptive"
    base_method = "trap" if adaptive else method
    atol = float(atol)
    rtol = float(rtol)
    max_dt = (dt * 256.0 if max_dt is None else float(max_dt)) \
        if adaptive else dt
    min_dt = ((dt / 1024.0 if adaptive else dt / 64.0)
              if min_dt is None else float(min_dt))
    v_reltol = (ADAPTIVE_V_RELTOL if v_reltol is None else float(v_reltol)) \
        if adaptive else 0.0

    # Initial solution per cell (DC seed or zero + initial conditions).
    if x0 is not None:
        x = np.array(x0, dtype=float, copy=True).reshape(N, n)
    elif use_ic:
        x = np.zeros((N, n))
    else:
        x = np.stack([dc_operating_point(c).x for c in circuits])

    system = _BatchSystem(circuits, gmin)
    system.init_states(x, use_ic)

    if use_ic:
        # Per-cell consistency micro-step (as in the single-circuit
        # path): pins node voltages to the imposed initial conditions.
        dt_micro = dt * 1e-9
        for j, ckt in enumerate(circuits):
            states = {}
            for comp in ckt.components:
                st = comp.init_state(None)
                if st is not None:
                    states[comp] = st
            for comp, st in states.items():
                if hasattr(comp, "ic") and comp.ic is not None and "v" in st:
                    st["v"] = comp.ic

            def warm_stamp(G, rhs, xg, g, _states=states, _ckt=ckt):
                for comp in _ckt.components:
                    comp.stamp_tran(G, rhs, xg, _states, dt_micro, "be",
                                    t_start, g)

            x[j] = _newton_solve(ckt, x[j], warm_stamp, gmin,
                                 max_iter=max_newton, damping_limit=5.0)

    # NOTE: this time loop mirrors transient._adaptive_loop (breakpoint
    # clamp, BE first step, predictor, LTE accept/reject, history ring,
    # store grid) with batch-specific differences: fixed-step lanes
    # regrow toward the nominal dt here, and the single-circuit loop
    # additionally carries the reverse-bias bypass and callbacks.  A
    # change to the step-control rules must land in both; the
    # batch-vs-single parity tests (tests/test_spice_batch.py) pin
    # them together.
    times = [t_start]
    solutions = [x.copy()]
    t = t_start
    h = dt
    hist_t = [t_start]
    hist_x = [x.copy()]
    accepted = 0
    newton_rejects = 0
    lte_rejects = 0
    first_step = True
    # Step-growth clamping at source discontinuities is an adaptive
    # concern; the fixed-step lanes mirror the single-circuit reference
    # path, which never grows past its nominal dt.
    bp_sources = _breakpoint_sources(circuits) if adaptive else []
    while t < t_stop - 1e-15:
        step = min(h, t_stop - t)
        if bp_sources:
            step = _clamp_to_breakpoints(bp_sources, t, step)
        t_next = t + step
        step_method = "be" if first_step else base_method
        try:
            if system.is_linear:
                x_new = system.step_linear(step, step_method, t_next)
            else:
                if len(hist_t) >= 2:
                    guess = x + (x - hist_x[-2]) * (
                        step / (hist_t[-1] - hist_t[-2]))
                else:
                    guess = x
                x_new = system.newton(guess, step, step_method, t_next,
                                      max_newton=max_newton,
                                      v_reltol=v_reltol)
        except ConvergenceError:
            if h / 2.0 < min_dt:
                raise ConvergenceError(
                    f"batched transient step failed at t={t_next:.4g}s even "
                    f"at minimum step {min_dt:.3g}s "
                    f"({circuits[0].title!r} family)")
            newton_rejects += 1
            h /= 2.0
            continue
        grow = False
        if adaptive and not first_step and len(hist_t) >= 3:
            # The single-circuit LTE estimator broadcasts unchanged
            # over the stacked (N, n) history arrays.
            err = _lte_trap(hist_t, hist_x, t_next, x_new, step)
            ratio = float(np.max(err / (atol + rtol * np.abs(x_new))))
            if ratio > 1.0 and step > min_dt * 1.000001:
                lte_rejects += 1
                h = max(step / 2.0, min_dt)
                continue
            grow = ratio < 1.0 / 16.0
        system.update_states(x_new, step, step_method)
        first_step = False
        x = x_new
        t = t_next
        accepted += 1
        hist_t.append(t)
        hist_x.append(x)
        if len(hist_t) > 4:
            hist_t.pop(0)
            hist_x.pop(0)
        if accepted % store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            solutions.append(x.copy())
        if adaptive:
            if grow:
                h = min(h * 2.0, max_dt)
        elif h < dt:
            # Fixed-step policy: regrow toward the nominal step.
            h = min(dt, h * 2.0)
    return BatchTransientResult(
        circuits, times, np.stack(solutions, axis=1),
        stats={
            "accepted_steps": accepted,
            "newton_iters": system.newton_iters,
            "newton_rejects": newton_rejects,
            "lte_rejects": lte_rejects,
        })
