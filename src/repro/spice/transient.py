"""Transient analysis: fixed-step companion-model integration.

Backward-Euler (robust, damped) and trapezoidal (second-order accurate)
methods are supported.  Each step solves the nonlinear system with damped
Newton; a failing step is retried with a halved step until ``min_dt``.
"""

from __future__ import annotations

import numpy as np

from repro.signals import Waveform
from repro.spice.dc import ConvergenceError, _newton_solve, dc_operating_point


class TransientResult:
    """Time-series output of a transient run.

    Node voltages are accessed with :meth:`voltage`, branch currents of
    voltage sources / inductors with :meth:`branch_current`; both return
    :class:`~repro.signals.Waveform`.
    """

    def __init__(self, circuit, times, solutions):
        self.circuit = circuit
        self.t = np.asarray(times, dtype=float)
        self.x = np.asarray(solutions, dtype=float)  # shape (n_steps, n_unknowns)

    def voltage(self, node):
        """Waveform of a node voltage."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return Waveform(self.t, np.zeros_like(self.t))
        return Waveform(self.t, self.x[:, idx])

    def branch_current(self, component_name):
        """Waveform of a branch current (through a V source or inductor)."""
        idx = self.circuit.branch_index(component_name)
        return Waveform(self.t, self.x[:, idx])

    def device_current(self, component_name):
        """Waveform of the current through a resistor, diode or switch.

        Components evaluate the whole ``(n_steps, n_unknowns)`` solution
        array in one vectorized call (no per-step Python loop).
        """
        comp = self.circuit[component_name]
        if not hasattr(comp, "current"):
            raise ValueError(f"{component_name} does not expose a current")
        values = np.asarray(comp.current(self.x), dtype=float)
        if values.ndim == 0:
            # Both terminals grounded: a constant (zero) branch.
            values = np.full(self.t.shape, float(values))
        return Waveform(self.t, values)

    def final_state(self):
        """Solution vector at the last time point."""
        return self.x[-1].copy()


def transient(
    circuit,
    t_stop,
    dt,
    t_start=0.0,
    method="trap",
    x0=None,
    use_ic=False,
    max_newton=60,
    store_every=1,
    callback=None,
):
    """Run a transient analysis.

    Parameters
    ----------
    circuit : Circuit
    t_stop, dt : float
        End time and nominal step.
    method : ``"trap"`` or ``"be"``.
    x0 : optional initial solution vector; when omitted the DC operating
        point (with all sources at their t=0 value) seeds the run.
    use_ic : bool
        When True, skip the DC solve and start from zero with component
        initial conditions (capacitor ``ic``, inductor ``ic``).
    store_every : int
        Keep every k-th accepted step (memory control for long runs).
    callback : optional ``f(t, x)`` invoked on each accepted step.
    """
    if method not in ("trap", "be"):
        raise ValueError(f"unknown integration method {method!r}")
    if dt <= 0 or t_stop <= t_start:
        raise ValueError("need dt > 0 and t_stop > t_start")
    circuit.build()
    gmin = 1e-12

    if x0 is not None:
        x = np.asarray(x0, dtype=float).copy()
    elif use_ic:
        x = np.zeros(circuit.n_unknowns)
    else:
        x = dc_operating_point(circuit).x.copy()

    states = {}
    for comp in circuit.components:
        st = comp.init_state(None if use_ic else x)
        if st is not None:
            states[comp] = st
    if use_ic:
        # Impose capacitor initial voltages on the state records.
        for comp, st in states.items():
            if hasattr(comp, "ic") and comp.ic is not None and "v" in st:
                st["v"] = comp.ic

    if use_ic:
        # Consistency solve: one backward-Euler micro-step pins the node
        # voltages to the imposed initial conditions (a zero vector is not
        # a valid circuit solution).  State updates are discarded — the
        # micro-step transfers negligible charge/flux.
        dt_micro = dt * 1e-9

        def warm_stamp(G, rhs, xg, g):
            for comp in circuit.components:
                comp.stamp_tran(G, rhs, xg, states, dt_micro, "be", t_start, g)

        x = _newton_solve(circuit, x, warm_stamp, gmin, max_iter=max_newton,
                          damping_limit=5.0)

    times = [t_start]
    solutions = [x.copy()]
    t = t_start
    min_dt = dt / 64.0
    step = dt
    stored = 0

    first_step = True
    while t < t_stop - 1e-15:
        step = min(step, t_stop - t)
        t_next = t + step
        # The initial reactive-element currents are unknown (not part of
        # the DC solution), so the very first step runs backward-Euler;
        # its update leaves consistent states for trapezoidal continuation.
        step_method = "be" if first_step else method

        def stamp(G, rhs, xg, g, _t=t_next, _dt=step, _m=step_method):
            for comp in circuit.components:
                comp.stamp_tran(G, rhs, xg, states, _dt, _m, _t, g)

        try:
            x_new = _newton_solve(
                circuit, x, stamp, gmin, max_iter=max_newton, damping_limit=2.0
            )
        except ConvergenceError:
            if step / 2.0 < min_dt:
                raise ConvergenceError(
                    f"transient step failed at t={t_next:.4g}s even at "
                    f"minimum step {min_dt:.3g}s ({circuit.title!r})"
                )
            step /= 2.0
            continue

        for comp in circuit.components:
            comp.update_state(x_new, states, step, step_method)
        first_step = False
        x = x_new
        t = t_next
        stored += 1
        if stored % store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            solutions.append(x.copy())
        if callback is not None:
            callback(t, x)
        # Grow the step back toward nominal after a successful solve.
        if step < dt:
            step = min(dt, step * 2.0)

    return TransientResult(circuit, times, solutions)
