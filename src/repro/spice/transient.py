"""Transient analysis: companion-model integration.

Three backends share one front door (:func:`transient`):

* ``"be"`` / ``"trap"`` — the fixed-step reference path: backward-Euler
  (robust, damped) or trapezoidal (second-order accurate), one damped
  Newton solve per step with a fresh dense assembly per iteration.  A
  failing step is retried with a halved step until ``min_dt``.  This
  path is kept deliberately simple: it is the parity reference the
  adaptive backend is tested (and benchmarked) against.
* ``"adaptive"`` — trapezoidal integration with local-truncation-error
  step control (step doubling/halving driven by the LTE estimate, not
  only by Newton failure) on top of a structure-aware assembler
  (:class:`_TransientSystem`): the linear (constant-coefficient) stamps
  are assembled once per unique ``(dt, method)`` and — for circuits
  with no nonlinear devices — LU-prefactorized once, so linear circuits
  bypass Newton entirely and each step is a single triangular solve.
  Nonlinear circuits restamp only their nonlinear devices into a
  preallocated copy of the prefactored base each Newton iteration, with
  all diodes evaluated as one vectorized group.
"""

from __future__ import annotations

import numpy as np

from repro.signals import Waveform
from repro.spice.components import Diode
from repro.spice.dc import ConvergenceError, _newton_solve, dc_operating_point

try:  # pragma: no cover - exercised indirectly via the linear bypass
    from scipy.linalg import lu_factor, lu_solve
    from scipy.linalg.lapack import dgesv as _dgesv
    from scipy.linalg.lapack import dgetrs as _dgetrs
except ImportError:  # pragma: no cover - scipy is a soft dependency here
    lu_factor = lu_solve = _dgesv = _dgetrs = None

#: Reverse-bias bypass threshold: a diode whose forward current would
#: stay below this is stamped as its constant reverse model (gmin in
#: parallel with -i_s), making the whole step linear and prefactorable.
#: The model error per bypassed diode is bounded by this current.
BYPASS_I_EPS = 1e-12

#: Integration backends accepted by :func:`transient`.
METHODS = ("trap", "be", "adaptive")

#: Adaptive-backend defaults, shared with the engine's spice study so
#: cache keys and solver behaviour agree (repro.engine.scenario).
ADAPTIVE_ATOL = 1e-6
ADAPTIVE_RTOL = 1e-3
ADAPTIVE_V_RELTOL = 1e-5


class TransientResult:
    """Time-series output of a transient run.

    Node voltages are accessed with :meth:`voltage`, branch currents of
    voltage sources / inductors with :meth:`branch_current`; both return
    :class:`~repro.signals.Waveform`.
    """

    def __init__(self, circuit, times, solutions):
        self.circuit = circuit
        self.t = np.asarray(times, dtype=float)
        self.x = np.asarray(solutions, dtype=float)  # shape (n_steps, n_unknowns)

    def voltage(self, node):
        """Waveform of a node voltage."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return Waveform(self.t, np.zeros_like(self.t))
        return Waveform(self.t, self.x[:, idx])

    def branch_current(self, component_name):
        """Waveform of a branch current (through a V source or inductor).

        Raises :class:`ValueError` (naming the component and pointing at
        :meth:`device_current`) for components without a branch current
        unknown — resistors, diodes, switches — and for unknown names.
        """
        idx = self.circuit.branch_index(component_name)
        return Waveform(self.t, self.x[:, idx])

    def device_current(self, component_name):
        """Waveform of the current through a resistor, diode or switch.

        Components evaluate the whole ``(n_steps, n_unknowns)`` solution
        array in one vectorized call (no per-step Python loop).
        """
        comp = self.circuit[component_name]
        if not hasattr(comp, "current"):
            raise ValueError(f"{component_name} does not expose a current")
        values = np.asarray(comp.current(self.x), dtype=float)
        if values.ndim == 0:
            # Both terminals grounded: a constant (zero) branch.
            values = np.full(self.t.shape, float(values))
        return Waveform(self.t, values)

    def final_state(self):
        """Solution vector at the last time point."""
        return self.x[-1].copy()


# ---------------------------------------------------------------------------
# Structure-aware assembly: the adaptive backend's workspace
# ---------------------------------------------------------------------------
class _TransientSystem:
    """Preallocated, structure-split Newton workspace for one run.

    Components with ``linear_stamps`` contribute a matrix block that is
    constant for a given ``(dt, method)``; it is assembled once per
    unique step size and cached (``base_for``).  Their right-hand-side
    contributions (source values, companion-model state terms) change
    per step but not per Newton iteration, so they are built once per
    step (``build_rhs``).  Nonlinear devices restamp into preallocated
    copies each iteration; all diodes are evaluated as one vectorized
    group through a precomputed scatter plan.
    """

    def __init__(self, circuit, states, gmin):
        self.circuit = circuit
        self.states = states
        self.gmin = gmin
        self.n = circuit.n_unknowns
        self.n_nodes = circuit.n_nodes
        comps = circuit.components
        self.linear = [c for c in comps if c.linear_stamps]
        nonlinear = [c for c in comps if not c.linear_stamps]
        self.diodes = [c for c in nonlinear if isinstance(c, Diode)]
        self.other_nl = [c for c in nonlinear if not isinstance(c, Diode)]
        self.is_linear = not nonlinear
        # Only sources and reactive elements contribute to the per-step
        # rhs; pure-matrix components (R, VCVS, VCCS, couplings) are
        # skipped, and the bound methods are extracted once.
        from repro.spice.components import (
            MutualCoupling,
            Resistor,
            Vccs,
            Vcvs,
        )

        self._rhs_stampers = [
            c.stamp_tran_rhs for c in self.linear
            if not isinstance(c, (Resistor, Vcvs, Vccs, MutualCoupling))
        ]
        self.G = np.empty((self.n, self.n))
        self.rhs = np.empty(self.n)
        self._rhs_base = np.empty(self.n)
        self._x_pad = np.zeros(self.n + 1)  # trailing slot: ground (0 V)
        self._base = {}  # (dt, method) -> (G_base, lu-or-None)
        self.can_bypass = False
        self.all_off = False
        if self.diodes:
            self._init_diode_group()

    def _init_diode_group(self):
        diodes = self.diodes
        n = self.n
        self.d_ai, self.d_bi, self.dP_g, self.dP_r = \
            _diode_scatter_plan(diodes, n)
        self.d_is = np.array([c.i_s for c in diodes])
        self.d_nvt = np.array([c.n * c.vt for c in diodes])
        self.d_vmax = np.array([c.v_max for c in diodes])
        e_knee = np.exp(self.d_vmax / self.d_nvt)
        self.d_gknee = self.d_is * e_knee / self.d_nvt
        self.d_iknee = self.d_is * (e_knee - 1.0)
        self.d_inv_nvt = 1.0 / self.d_nvt
        self.d_vmax_floor = float(self.d_vmax.min())
        nd = len(diodes)
        self._g_scratch = np.empty(n * n)
        self._r_scratch = np.empty(n)
        self._vd = np.empty(nd)
        self._va = np.empty(nd)
        self._e = np.empty(nd)
        self._ieq = np.empty(nd)
        # Reverse-bias bypass: below vd_off the diode current is under
        # BYPASS_I_EPS and the device is indistinguishable (to ~1e-12 A)
        # from its constant reverse model, so a step in which every
        # diode sits below its threshold is linear and solved with one
        # prefactored triangular solve instead of a Newton loop.  The
        # solve is verified afterwards (all vd still below threshold)
        # and falls back to Newton when conduction starts.
        self.d_vd_off = self.d_nvt * np.log(BYPASS_I_EPS / self.d_is)
        self._rhs_off = np.dot(self.dP_r, -self.d_is)
        self._off_base = {}  # (dt, method) -> (G_off, lu-or-None)
        self.can_bypass = not self.other_nl
        self.all_off = False

    def _stamp_diodes(self, G1d, rhs, x):
        """Vectorized Newton stamp of every diode (piecewise matching
        the scalar ``Diode.iv``: exponential region with underflow-safe
        reverse tail, linear continuation past the overflow knee).
        ``G1d`` is the raveled view of the working matrix."""
        xp = self._x_pad
        xp[: self.n] = x
        vd = np.take(xp, self.d_ai, out=self._vd)
        vd -= np.take(xp, self.d_bi, out=self._va)
        e = np.minimum(vd, self.d_vmax, out=self._e)
        e *= self.d_inv_nvt
        np.exp(e, out=e)
        i = e * self.d_is
        g = i * self.d_inv_nvt  # = i_s * e / nvt
        i -= self.d_is
        if vd.max() > self.d_vmax_floor:
            over = vd > self.d_vmax
            i = np.where(over,
                         self.d_iknee + self.d_gknee * (vd - self.d_vmax), i)
            g = np.where(over, self.d_gknee, g)
        g += self.gmin
        ieq = np.multiply(g, vd, out=self._ieq)
        np.subtract(i, ieq, out=ieq)
        G1d += np.dot(self.dP_g, g, out=self._g_scratch)
        rhs += np.dot(self.dP_r, ieq, out=self._r_scratch)

    def base_for(self, dt, method):
        """The cached linear base matrix (and, for linear circuits, its
        LU factorization) for one unique ``(dt, method)``."""
        key = (dt, method)
        entry = self._base.get(key)
        if entry is None:
            G = np.zeros((self.n, self.n))
            for comp in self.linear:
                comp.stamp_tran_matrix(G, dt, method)
            # Singular bases fall through to np.linalg.solve, which
            # surfaces the typed ConvergenceError at solve time.
            lu = _lu_factor_checked(G) if self.is_linear else None
            if len(self._base) >= 64:
                # Pathological dt churn (every step a new size) cannot
                # grow the cache without bound.
                self._base.clear()
            entry = (G, lu)
            self._base[key] = entry
        return entry

    def off_for(self, dt, method):
        """The cached all-diodes-off system for one ``(dt, method)``:
        the linear base plus every diode's constant reverse stamp
        (gmin), prefactored once."""
        key = (dt, method)
        entry = self._off_base.get(key)
        if entry is None:
            G_base, _ = self.base_for(dt, method)
            G = G_base + np.dot(
                self.dP_g, np.full(len(self.diodes), self.gmin)
            ).reshape(self.n, self.n)
            lu = _lu_factor_checked(G)
            if len(self._off_base) >= 64:
                self._off_base.clear()
            entry = (G, lu)
            self._off_base[key] = entry
        return entry

    def _diode_vd(self, x):
        xp = self._x_pad
        xp[: self.n] = x
        vd = np.take(xp, self.d_ai, out=self._vd)
        vd -= np.take(xp, self.d_bi, out=self._va)
        return vd

    def step_bypass(self, dt, method, t):
        """Attempt one all-diodes-off linear step; returns the solution
        or None when a diode would conduct (caller falls back to
        Newton).  The constant reverse model injects -i_s per diode, so
        the per-step deviation from the Newton path is bounded by
        BYPASS_I_EPS per device."""
        G, lu = self.off_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        rhs = rhs + self._rhs_off
        if lu is not None and _dgetrs is not None:
            x_new, info = _dgetrs(lu[0], lu[1], rhs)
            if info != 0:
                return None
        elif lu is not None:
            x_new = lu_solve(lu, rhs)
        else:
            try:
                x_new = np.linalg.solve(G, rhs)
            except np.linalg.LinAlgError:
                return None
        if bool((self._diode_vd(x_new) < self.d_vd_off).all()):
            return x_new
        return None

    def note_off_state(self, x):
        """Record whether every diode is reverse-biased at ``x`` (the
        next step then attempts the bypass path first)."""
        if self.can_bypass and self.diodes:
            self.all_off = bool((self._diode_vd(x) < self.d_vd_off).all())

    def build_rhs(self, dt, method, t):
        """Per-step x-independent right-hand side (sources + companion
        state terms), shared by every Newton iteration of the step."""
        rhs = self._rhs_base
        rhs[:] = 0.0
        states = self.states
        for stamp_rhs in self._rhs_stampers:
            stamp_rhs(rhs, states, dt, method, t)
        return rhs

    def step_linear(self, dt, method, t):
        """One step of a circuit with no nonlinear devices: no Newton,
        just the prefactored solve."""
        G, lu = self.base_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        if lu is not None:
            return lu_solve(lu, rhs)
        try:
            return np.linalg.solve(G, rhs)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in {self.circuit.title!r}: {exc}"
            ) from exc

    def newton(self, x0, dt, method, t, max_newton=60, damping_limit=2.0,
               v_tol=1e-6, v_reltol=0.0, i_tol=1e-9, i_reltol=1e-6):
        """Damped Newton on the preassembled base.

        Same damping semantics as :func:`repro.spice.dc._newton_solve`;
        the linear solve goes through the low-overhead LAPACK ``dgesv``
        wrapper when scipy is present.  ``v_reltol`` adds the classic
        SPICE relative voltage term to the acceptance test
        (``|dV| < v_tol + v_reltol*|V|max``); the fixed-step reference
        path keeps the stricter absolute-only criterion.
        """
        G_base, _ = self.base_for(dt, method)
        rhs_base = self.build_rhs(dt, method, t)
        G, rhs = self.G, self.rhs
        G1d = G.reshape(-1)
        states, gmin = self.states, self.gmin
        other_nl = self.other_nl
        stamp_diodes = self._stamp_diodes if self.diodes else None
        dgesv = _dgesv
        copyto = np.copyto
        x = np.array(x0, dtype=float, copy=True)
        nn = self.n_nodes
        for _ in range(max_newton):
            copyto(G, G_base)
            copyto(rhs, rhs_base)
            if stamp_diodes is not None:
                stamp_diodes(G1d, rhs, x)
            if other_nl:
                for comp in other_nl:
                    comp.stamp_tran(G, rhs, x, states, dt, method, t, gmin)
            if dgesv is not None:
                # dgesv overwrites G with its LU factors — G is rebuilt
                # from G_base next iteration anyway.
                _, _, x_new, info = dgesv(G, rhs, overwrite_a=1)
                if info != 0:
                    raise ConvergenceError(
                        f"singular MNA matrix in {self.circuit.title!r} "
                        f"(dgesv info={info})"
                    )
            else:
                try:
                    x_new = np.linalg.solve(G, rhs)
                except np.linalg.LinAlgError as exc:
                    raise ConvergenceError(
                        f"singular MNA matrix in {self.circuit.title!r}: "
                        f"{exc}"
                    ) from exc
            dxa = np.abs(x_new - x)
            dv = dxa[:nn].max(initial=0.0)
            di = dxa[nn:].max(initial=0.0)
            max_step = dv if dv >= di else di
            if max_step > damping_limit:
                scale = damping_limit / max_step
                x = x + (x_new - x) * scale
                dv *= scale
                di *= scale
            else:
                x = x_new
            if (dv < v_tol
                    or (v_reltol
                        and dv < v_tol
                        + v_reltol * np.abs(x[:nn]).max(initial=0.0))):
                if di < i_tol + i_reltol * np.abs(x[nn:]).max(initial=0.0):
                    return x
        raise ConvergenceError(
            f"Newton failed to converge in {max_newton} iterations "
            f"({self.circuit.title!r})"
        )


def _lu_factor_checked(G):
    """LU-prefactor ``G``, returning None when it is (numerically)
    singular.  scipy's ``lu_factor`` does not raise on an exactly
    singular matrix — it warns and returns factors with zero pivots,
    which would silently turn every later solve into inf/NaN — so the
    pivots are validated here and singular systems fall back to
    ``np.linalg.solve``, which raises the typed error the fixed-step
    path reports."""
    if lu_factor is None:
        return None
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            lu = lu_factor(G)
        except (np.linalg.LinAlgError, ValueError):
            return None
    pivots = np.abs(np.diag(lu[0]))
    if not np.all(np.isfinite(lu[0])) or pivots.min(initial=np.inf) \
            < np.finfo(float).tiny:
        return None
    return lu


def _diode_scatter_plan(diodes, n):
    """Shared topology plan of a vectorized diode group: padded gather
    indices for vd = V(a) - V(b) (ground mapped to the extra zero
    slot) and the dense scatter projections P_g (per-diode conductance
    -> raveled matrix entries, signed) and P_r (per-diode equivalent
    current -> rhs entries).  Used by both the single-circuit assembler
    and the lockstep batch (same topology across a family).
    """
    a = np.array([c.nodes[0] for c in diodes], dtype=np.intp)
    b = np.array([c.nodes[1] for c in diodes], dtype=np.intp)
    nd = len(diodes)
    P_g = np.zeros((n * n, nd))
    P_r = np.zeros((n, nd))
    for k in range(nd):
        for row, col, sign in ((a[k], a[k], 1.0), (b[k], b[k], 1.0),
                               (a[k], b[k], -1.0), (b[k], a[k], -1.0)):
            if row >= 0 and col >= 0:
                P_g[row * n + col, k] += sign
        if a[k] >= 0:
            P_r[a[k], k] -= 1.0
        if b[k] >= 0:
            P_r[b[k], k] += 1.0
    ai = np.where(a < 0, n, a)
    bi = np.where(b < 0, n, b)
    return ai, bi, P_g, P_r


def _breakpoint_sources(circuits):
    """Every source (of one circuit or a family) declaring waveform
    discontinuities — the adaptive loops clamp step growth to the next
    one so a grown step never jumps over a pulse or switching edge."""
    sources = []
    for circuit in circuits:
        for comp in circuit.components:
            src = getattr(comp, "source", None)
            if src is not None and \
                    getattr(src, "_bp_offsets", None) is not None:
                sources.append(src)
    return sources


def _clamp_to_breakpoints(sources, t, step):
    """Shrink ``step`` so ``t + step`` does not pass any source
    discontinuity (landing exactly on one is fine)."""
    for src in sources:
        bp = src.next_breakpoint(t)
        if bp is not None and bp - t < step * (1.0 - 1e-12):
            step = bp - t
    return step


def _lte_trap(hist_t, hist_x, t_new, x_new, h):
    """Per-unknown trapezoidal local-truncation-error estimate.

    LTE_trap = (h^3/12) x'''; the third derivative is estimated from
    the third divided difference over the last three accepted points
    plus the candidate (f[t0..t3] = x'''/6 for smooth x), so the
    estimate costs a handful of vector ops and no extra solves.
    """
    t0, t1, t2 = hist_t[-3], hist_t[-2], hist_t[-1]
    x0, x1, x2 = hist_x[-3], hist_x[-2], hist_x[-1]
    d01 = (x1 - x0) / (t1 - t0)
    d12 = (x2 - x1) / (t2 - t1)
    d23 = (x_new - x2) / (t_new - t2)
    dd1 = (d12 - d01) / (t2 - t0)
    dd2 = (d23 - d12) / (t_new - t1)
    dd3 = (dd2 - dd1) / (t_new - t0)
    return np.abs(dd3) * (0.5 * h**3)


def _adaptive_loop(circuit, system, x, t_start, t_stop, dt, max_newton,
                   store_every, callback, atol, rtol, max_dt, min_dt,
                   v_reltol):
    """The adaptive-backend time loop (see the module docstring).

    The lockstep family loop in :func:`repro.spice.batch.transient_batch`
    mirrors this step-control state machine — keep rule changes in
    sync (the batch parity tests pin the two together).
    """
    times = [t_start]
    solutions = [x.copy()]
    t = t_start
    h = dt
    hist_t = [t_start]
    hist_x = [x.copy()]
    accepted = 0
    first_step = True
    bp_sources = _breakpoint_sources([circuit])
    while t < t_stop - 1e-15:
        step = min(h, t_stop - t)
        if bp_sources:
            step = _clamp_to_breakpoints(bp_sources, t, step)
        t_next = t + step
        # As in the fixed path, the very first step runs backward-Euler
        # so the unknown reactive-element currents settle consistently.
        method = "be" if first_step else "trap"
        try:
            if system.is_linear:
                x_new = system.step_linear(step, method, t_next)
            else:
                x_new = None
                if system.all_off:
                    # All diodes reverse-biased at the last accepted
                    # point: the step is linear until proven otherwise.
                    x_new = system.step_bypass(step, method, t_next)
                if x_new is None:
                    # Linear extrapolation of the last accepted step
                    # seeds Newton one iteration closer than the
                    # previous solution alone (the converged result is
                    # tolerance-identical).
                    if len(hist_t) >= 2:
                        guess = x + (x - hist_x[-2]) * (
                            step / (hist_t[-1] - hist_t[-2]))
                    else:
                        guess = x
                    x_new = system.newton(guess, step, method, t_next,
                                          max_newton=max_newton,
                                          v_reltol=v_reltol)
                    system.note_off_state(x_new)
        except ConvergenceError:
            if h / 2.0 < min_dt:
                raise ConvergenceError(
                    f"transient step failed at t={t_next:.4g}s even at "
                    f"minimum step {min_dt:.3g}s ({circuit.title!r})"
                )
            h /= 2.0
            continue
        grow = False
        if not first_step and len(hist_t) >= 3:
            err = _lte_trap(hist_t, hist_x, t_next, x_new, step)
            ratio = float(np.max(err / (atol + rtol * np.abs(x_new))))
            if ratio > 1.0 and step > min_dt * 1.000001:
                # Reject: the step's truncation error is out of budget.
                h = max(step / 2.0, min_dt)
                continue
            # Doubling multiplies the trap LTE by 8; only grow with a
            # further 2x safety margin so the next step is not an
            # immediate rejection.
            grow = ratio < 1.0 / 16.0
        for comp in circuit.components:
            comp.update_state(x_new, system.states, step, method)
        first_step = False
        x = x_new
        t = t_next
        accepted += 1
        hist_t.append(t)
        hist_x.append(x)
        if len(hist_t) > 4:
            hist_t.pop(0)
            hist_x.pop(0)
        if accepted % store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            solutions.append(x.copy())
        if callback is not None:
            callback(t, x)
        if grow:
            h = min(h * 2.0, max_dt)
    return TransientResult(circuit, times, solutions)


def transient(
    circuit,
    t_stop,
    dt,
    t_start=0.0,
    method="trap",
    x0=None,
    use_ic=False,
    max_newton=60,
    store_every=1,
    callback=None,
    atol=ADAPTIVE_ATOL,
    rtol=ADAPTIVE_RTOL,
    max_dt=None,
    min_dt=None,
    v_reltol=None,
):
    """Run a transient analysis.

    Parameters
    ----------
    circuit : Circuit
    t_stop, dt : float
        End time and nominal step.  For ``method="adaptive"``, ``dt``
        is the initial step; the integrator then doubles/halves it
        under local-truncation-error control.
    method : ``"trap"``, ``"be"`` (fixed step) or ``"adaptive"``.
    x0 : optional initial solution vector; when omitted the DC operating
        point (with all sources at their t=0 value) seeds the run.
    use_ic : bool
        When True, skip the DC solve and start from zero with component
        initial conditions (capacitor ``ic``, inductor ``ic``).
    store_every : int
        Keep every k-th accepted step (memory control for long runs).
        The stored grid is: the first point, every k-th accepted step,
        and always the final point.
    callback : optional ``f(t, x)`` invoked on each accepted step.
    atol, rtol : adaptive only — the per-step LTE budget per unknown is
        ``atol + rtol*|x|``.
    max_dt : adaptive only — step-growth ceiling (default ``256*dt``).
    min_dt : smallest step retried after a failed/rejected step
        (default ``dt/64`` fixed, ``dt/1024`` adaptive).
    v_reltol : adaptive only — relative term of the Newton voltage
        acceptance test (``|dV| < 1e-6 + v_reltol*|V|max``, the classic
        SPICE RELTOL; default :data:`ADAPTIVE_V_RELTOL`).  The fixed
        reference path always converges to the absolute 1e-6.
    """
    if method not in METHODS:
        raise ValueError(f"unknown integration method {method!r}; "
                         f"known methods: {METHODS}")
    if dt <= 0 or t_stop <= t_start:
        raise ValueError("need dt > 0 and t_stop > t_start")
    if int(store_every) < 1:
        raise ValueError("store_every must be >= 1")
    store_every = int(store_every)
    circuit.build()
    gmin = 1e-12

    if x0 is not None:
        x = np.asarray(x0, dtype=float).copy()
    elif use_ic:
        x = np.zeros(circuit.n_unknowns)
    else:
        x = dc_operating_point(circuit).x.copy()

    states = {}
    for comp in circuit.components:
        st = comp.init_state(None if use_ic else x)
        if st is not None:
            states[comp] = st
    if use_ic:
        # Impose capacitor initial voltages on the state records.
        for comp, st in states.items():
            if hasattr(comp, "ic") and comp.ic is not None and "v" in st:
                st["v"] = comp.ic

    if use_ic:
        # Consistency solve: one backward-Euler micro-step pins the node
        # voltages to the imposed initial conditions (a zero vector is not
        # a valid circuit solution).  State updates are discarded — the
        # micro-step transfers negligible charge/flux.
        dt_micro = dt * 1e-9

        def warm_stamp(G, rhs, xg, g):
            for comp in circuit.components:
                comp.stamp_tran(G, rhs, xg, states, dt_micro, "be", t_start, g)

        x = _newton_solve(circuit, x, warm_stamp, gmin, max_iter=max_newton,
                          damping_limit=5.0)

    if method == "adaptive":
        system = _TransientSystem(circuit, states, gmin)
        return _adaptive_loop(
            circuit, system, x, t_start, t_stop, dt, max_newton,
            store_every, callback, float(atol), float(rtol),
            dt * 256.0 if max_dt is None else float(max_dt),
            dt / 1024.0 if min_dt is None else float(min_dt),
            ADAPTIVE_V_RELTOL if v_reltol is None else float(v_reltol),
        )

    times = [t_start]
    solutions = [x.copy()]
    t = t_start
    min_dt = dt / 64.0 if min_dt is None else float(min_dt)
    step = dt
    stored = 0

    first_step = True
    while t < t_stop - 1e-15:
        step = min(step, t_stop - t)
        t_next = t + step
        # The initial reactive-element currents are unknown (not part of
        # the DC solution), so the very first step runs backward-Euler;
        # its update leaves consistent states for trapezoidal continuation.
        step_method = "be" if first_step else method

        def stamp(G, rhs, xg, g, _t=t_next, _dt=step, _m=step_method):
            for comp in circuit.components:
                comp.stamp_tran(G, rhs, xg, states, _dt, _m, _t, g)

        try:
            x_new = _newton_solve(
                circuit, x, stamp, gmin, max_iter=max_newton, damping_limit=2.0
            )
        except ConvergenceError:
            if step / 2.0 < min_dt:
                raise ConvergenceError(
                    f"transient step failed at t={t_next:.4g}s even at "
                    f"minimum step {min_dt:.3g}s ({circuit.title!r})"
                )
            step /= 2.0
            continue

        for comp in circuit.components:
            comp.update_state(x_new, states, step, step_method)
        first_step = False
        x = x_new
        t = t_next
        stored += 1
        if stored % store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            solutions.append(x.copy())
        if callback is not None:
            callback(t, x)
        # Grow the step back toward nominal after a successful solve.
        if step < dt:
            step = min(dt, step * 2.0)

    return TransientResult(circuit, times, solutions)
