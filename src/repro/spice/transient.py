"""Transient analysis: companion-model integration.

Three backends share one front door (:func:`transient`):

* ``"be"`` / ``"trap"`` — the fixed-step reference path: backward-Euler
  (robust, damped) or trapezoidal (second-order accurate), one damped
  Newton solve per step with a fresh dense assembly per iteration.  A
  failing step is retried with a halved step until ``min_dt``.  This
  path is kept deliberately simple: it is the parity reference the
  adaptive backend is tested (and benchmarked) against.
* ``"adaptive"`` — trapezoidal integration with local-truncation-error
  step control (step doubling/halving driven by the LTE estimate, not
  only by Newton failure) on top of a structure-aware assembler
  (:class:`_TransientSystem`): the linear (constant-coefficient) stamps
  are assembled once per unique ``(dt, method)`` and — for circuits
  with no nonlinear devices — LU-prefactorized once, so linear circuits
  bypass Newton entirely and each step is a single triangular solve.
  Nonlinear circuits restamp only their nonlinear devices into a
  preallocated copy of the prefactored base each Newton iteration, with
  all diodes evaluated as one vectorized group.
"""

from __future__ import annotations

import numpy as np

from repro.signals import Waveform
from repro.spice.components import Diode
from repro.spice.dc import ConvergenceError, _newton_solve, dc_operating_point

try:  # pragma: no cover - exercised indirectly via the linear bypass
    from scipy.linalg import lu_factor, lu_solve
    from scipy.linalg.lapack import dgesv as _dgesv
    from scipy.linalg.lapack import dgetrs as _dgetrs
except ImportError:  # pragma: no cover - scipy is a soft dependency here
    lu_factor = lu_solve = _dgesv = _dgetrs = None

#: Reverse-bias bypass threshold: a diode whose forward current would
#: stay below this is stamped as its constant reverse model (gmin in
#: parallel with -i_s), making the whole step linear and prefactorable.
#: The model error per bypassed diode is bounded by this current.
BYPASS_I_EPS = 1e-12

#: Integration backends accepted by :func:`transient`.
METHODS = ("trap", "be", "adaptive")

#: Adaptive-backend defaults, shared with the engine's spice study so
#: cache keys and solver behaviour agree (repro.engine.scenario).
ADAPTIVE_ATOL = 1e-6
ADAPTIVE_RTOL = 1e-3
ADAPTIVE_V_RELTOL = 1e-5


class TransientResult:
    """Time-series output of a transient run.

    Node voltages are accessed with :meth:`voltage`, branch currents of
    voltage sources / inductors with :meth:`branch_current`; both return
    :class:`~repro.signals.Waveform`.
    """

    def __init__(self, circuit, times, solutions):
        self.circuit = circuit
        self.t = np.asarray(times, dtype=float)
        self.x = np.asarray(solutions, dtype=float)  # shape (n_steps, n_unknowns)

    def voltage(self, node):
        """Waveform of a node voltage."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return Waveform(self.t, np.zeros_like(self.t))
        return Waveform(self.t, self.x[:, idx])

    def branch_current(self, component_name):
        """Waveform of a branch current (through a V source or inductor).

        Raises :class:`ValueError` (naming the component and pointing at
        :meth:`device_current`) for components without a branch current
        unknown — resistors, diodes, switches — and for unknown names.
        """
        idx = self.circuit.branch_index(component_name)
        return Waveform(self.t, self.x[:, idx])

    def device_current(self, component_name):
        """Waveform of the current through a resistor, diode or switch.

        Components evaluate the whole ``(n_steps, n_unknowns)`` solution
        array in one vectorized call (no per-step Python loop).
        """
        comp = self.circuit[component_name]
        if not hasattr(comp, "current"):
            raise ValueError(f"{component_name} does not expose a current")
        values = np.asarray(comp.current(self.x), dtype=float)
        if values.ndim == 0:
            # Both terminals grounded: a constant (zero) branch.
            values = np.full(self.t.shape, float(values))
        return Waveform(self.t, values)

    def final_state(self):
        """Solution vector at the last time point."""
        return self.x[-1].copy()


# ---------------------------------------------------------------------------
# Structure-aware assembly: the adaptive backend's workspace
# ---------------------------------------------------------------------------
class _TransientSystem:
    """Preallocated, structure-split Newton workspace for one run.

    Components with ``linear_stamps`` contribute a matrix block that is
    constant for a given ``(dt, method)``; it is assembled once per
    unique step size and cached (``base_for``).  Their right-hand-side
    contributions (source values, companion-model state terms) change
    per step but not per Newton iteration, so they are built once per
    step (``build_rhs``).  Nonlinear devices restamp into preallocated
    copies each iteration; all diodes are evaluated as one vectorized
    group through a precomputed scatter plan.
    """

    def __init__(self, circuit, states, gmin):
        self.circuit = circuit
        self.states = states
        self.gmin = gmin
        self.n = circuit.n_unknowns
        self.n_nodes = circuit.n_nodes
        comps = circuit.components
        self.linear = [c for c in comps if c.linear_stamps]
        nonlinear = [c for c in comps if not c.linear_stamps]
        self.diodes = [c for c in nonlinear if isinstance(c, Diode)]
        self.other_nl = [c for c in nonlinear if not isinstance(c, Diode)]
        self.is_linear = not nonlinear
        # Only sources and reactive elements contribute to the per-step
        # rhs; pure-matrix components (R, VCVS, VCCS, couplings) are
        # skipped, and the bound methods are extracted once.
        from repro.spice.components import (
            MutualCoupling,
            Resistor,
            Vccs,
            Vcvs,
        )

        self._rhs_stampers = [
            c.stamp_tran_rhs for c in self.linear
            if not isinstance(c, (Resistor, Vcvs, Vccs, MutualCoupling))
        ]
        self.G = np.empty((self.n, self.n))
        self.rhs = np.empty(self.n)
        self._rhs_base = np.empty(self.n)
        self._x_pad = np.zeros(self.n + 1)  # trailing slot: ground (0 V)
        self._base = {}  # (dt, method) -> (G_base, lu-or-None)
        self.can_bypass = False
        self.all_off = False
        #: Factorization-reuse counters (observability): numeric
        #: factorizations performed, and solves/assemblies that reused a
        #: frozen sparsity pattern or cached factorization instead of
        #: re-analyzing.  The dense strategy factorizes afresh per solve
        #: (pattern_reuses stays 0); the sparse strategy reuses its
        #: frozen pattern on every refresh.
        self.factorizations = 0
        self.pattern_reuses = 0
        self.newton_iters = 0
        if self.diodes:
            self._init_diode_group()

    def _init_diode_group(self):
        self._init_diode_params()
        self._init_diode_scatter()

    def _init_diode_params(self):
        """Per-diode model parameter arrays and scratch, shared by the
        dense and sparse strategies."""
        diodes = self.diodes
        n = self.n
        a = np.array([c.nodes[0] for c in diodes], dtype=np.intp)
        b = np.array([c.nodes[1] for c in diodes], dtype=np.intp)
        self.d_ai = np.where(a < 0, n, a)
        self.d_bi = np.where(b < 0, n, b)
        self.d_is = np.array([c.i_s for c in diodes])
        self.d_nvt = np.array([c.n * c.vt for c in diodes])
        self.d_vmax = np.array([c.v_max for c in diodes])
        e_knee = np.exp(self.d_vmax / self.d_nvt)
        self.d_gknee = self.d_is * e_knee / self.d_nvt
        self.d_iknee = self.d_is * (e_knee - 1.0)
        self.d_inv_nvt = 1.0 / self.d_nvt
        self.d_vmax_floor = float(self.d_vmax.min())
        nd = len(diodes)
        self._vd = np.empty(nd)
        self._va = np.empty(nd)
        self._e = np.empty(nd)
        self._ieq = np.empty(nd)
        # Reverse-bias bypass: below vd_off the diode current is under
        # BYPASS_I_EPS and the device is indistinguishable (to ~1e-12 A)
        # from its constant reverse model, so a step in which every
        # diode sits below its threshold is linear and solved with one
        # prefactored triangular solve instead of a Newton loop.  The
        # solve is verified afterwards (all vd still below threshold)
        # and falls back to Newton when conduction starts.
        self.d_vd_off = self.d_nvt * np.log(BYPASS_I_EPS / self.d_is)
        self._off_base = {}  # (dt, method) -> (G_off, lu-or-None)
        self.can_bypass = not self.other_nl
        self.all_off = False

    def _init_diode_scatter(self):
        """Dense scatter projections of the diode group (the sparse
        strategy overrides this with frozen-pattern index maps)."""
        n = self.n
        _ai, _bi, self.dP_g, self.dP_r = \
            _diode_scatter_plan(self.diodes, n)
        self._g_scratch = np.empty(n * n)
        self._r_scratch = np.empty(n)
        self._rhs_off = np.dot(self.dP_r, -self.d_is)

    def _stamp_diodes(self, G1d, rhs, x):
        """Vectorized Newton stamp of every diode (piecewise matching
        the scalar ``Diode.iv``: exponential region with underflow-safe
        reverse tail, linear continuation past the overflow knee).
        ``G1d`` is the raveled view of the working matrix."""
        xp = self._x_pad
        xp[: self.n] = x
        vd = np.take(xp, self.d_ai, out=self._vd)
        vd -= np.take(xp, self.d_bi, out=self._va)
        e = np.minimum(vd, self.d_vmax, out=self._e)
        e *= self.d_inv_nvt
        np.exp(e, out=e)
        i = e * self.d_is
        g = i * self.d_inv_nvt  # = i_s * e / nvt
        i -= self.d_is
        if vd.max() > self.d_vmax_floor:
            over = vd > self.d_vmax
            i = np.where(over, self.d_iknee + self.d_gknee * (vd - self.d_vmax), i)
            g = np.where(over, self.d_gknee, g)
        g += self.gmin
        ieq = np.multiply(g, vd, out=self._ieq)
        np.subtract(i, ieq, out=ieq)
        G1d += np.dot(self.dP_g, g, out=self._g_scratch)
        rhs += np.dot(self.dP_r, ieq, out=self._r_scratch)

    def base_for(self, dt, method):
        """The cached linear base matrix (and, for linear circuits, its
        LU factorization) for one unique ``(dt, method)``."""
        key = (dt, method)
        entry = self._base.get(key)
        if entry is None:
            G = np.zeros((self.n, self.n))
            for comp in self.linear:
                comp.stamp_tran_matrix(G, dt, method)
            # Singular bases fall through to np.linalg.solve, which
            # surfaces the typed ConvergenceError at solve time.
            lu = _lu_factor_checked(G) if self.is_linear else None
            if lu is not None:
                self.factorizations += 1
            if len(self._base) >= 64:
                # Pathological dt churn (every step a new size) cannot
                # grow the cache without bound.
                self._base.clear()
            entry = (G, lu)
            self._base[key] = entry
        return entry

    def off_for(self, dt, method):
        """The cached all-diodes-off system for one ``(dt, method)``:
        the linear base plus every diode's constant reverse stamp
        (gmin), prefactored once."""
        key = (dt, method)
        entry = self._off_base.get(key)
        if entry is None:
            G_base, _ = self.base_for(dt, method)
            G = G_base + np.dot(
                self.dP_g, np.full(len(self.diodes), self.gmin)
            ).reshape(self.n, self.n)
            lu = _lu_factor_checked(G)
            if lu is not None:
                self.factorizations += 1
            if len(self._off_base) >= 64:
                self._off_base.clear()
            entry = (G, lu)
            self._off_base[key] = entry
        return entry

    def _diode_vd(self, x):
        xp = self._x_pad
        xp[: self.n] = x
        vd = np.take(xp, self.d_ai, out=self._vd)
        vd -= np.take(xp, self.d_bi, out=self._va)
        return vd

    def step_bypass(self, dt, method, t):
        """Attempt one all-diodes-off linear step; returns the solution
        or None when a diode would conduct (caller falls back to
        Newton).  The constant reverse model injects -i_s per diode, so
        the per-step deviation from the Newton path is bounded by
        BYPASS_I_EPS per device."""
        G, lu = self.off_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        rhs = rhs + self._rhs_off
        if lu is not None and _dgetrs is not None:
            x_new, info = _dgetrs(lu[0], lu[1], rhs)
            if info != 0:
                return None
        elif lu is not None:
            x_new = lu_solve(lu, rhs)
        else:
            try:
                x_new = np.linalg.solve(G, rhs)
            except np.linalg.LinAlgError:
                return None
        if bool((self._diode_vd(x_new) < self.d_vd_off).all()):
            return x_new
        return None

    def note_off_state(self, x):
        """Record whether every diode is reverse-biased at ``x`` (the
        next step then attempts the bypass path first)."""
        if self.can_bypass and self.diodes:
            self.all_off = bool((self._diode_vd(x) < self.d_vd_off).all())

    def build_rhs(self, dt, method, t):
        """Per-step x-independent right-hand side (sources + companion
        state terms), shared by every Newton iteration of the step."""
        rhs = self._rhs_base
        rhs[:] = 0.0
        states = self.states
        for stamp_rhs in self._rhs_stampers:
            stamp_rhs(rhs, states, dt, method, t)
        return rhs

    def update_states(self, x, dt, method):
        """Advance every companion-model state after an accepted step.

        The dense strategy keeps the per-component scalar hooks (this is
        the parity reference); the sparse strategy overrides this with
        hoisted slot kernels."""
        states = self.states
        for comp in self.circuit.components:
            comp.update_state(x, states, dt, method)

    def step_linear(self, dt, method, t):
        """One step of a circuit with no nonlinear devices: no Newton,
        just the prefactored solve."""
        G, lu = self.base_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        if lu is not None:
            return lu_solve(lu, rhs)
        try:
            return np.linalg.solve(G, rhs)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in {self.circuit.title!r}: {exc}"
            ) from exc

    def newton(
        self,
        x0,
        dt,
        method,
        t,
        max_newton=60,
        damping_limit=2.0,
        v_tol=1e-6,
        v_reltol=0.0,
        i_tol=1e-9,
        i_reltol=1e-6,
    ):
        """Damped Newton on the preassembled base.

        Same damping semantics as :func:`repro.spice.dc._newton_solve`;
        the linear solve goes through the low-overhead LAPACK ``dgesv``
        wrapper when scipy is present.  ``v_reltol`` adds the classic
        SPICE relative voltage term to the acceptance test
        (``|dV| < v_tol + v_reltol*|V|max``); the fixed-step reference
        path keeps the stricter absolute-only criterion.
        """
        G_base, _ = self.base_for(dt, method)
        rhs_base = self.build_rhs(dt, method, t)
        G, rhs = self.G, self.rhs
        G1d = G.reshape(-1)
        states, gmin = self.states, self.gmin
        other_nl = self.other_nl
        stamp_diodes = self._stamp_diodes if self.diodes else None
        dgesv = _dgesv
        copyto = np.copyto
        x = np.array(x0, dtype=float, copy=True)
        nn = self.n_nodes
        for _ in range(max_newton):
            self.newton_iters += 1
            self.factorizations += 1
            copyto(G, G_base)
            copyto(rhs, rhs_base)
            if stamp_diodes is not None:
                stamp_diodes(G1d, rhs, x)
            if other_nl:
                for comp in other_nl:
                    comp.stamp_tran(G, rhs, x, states, dt, method, t, gmin)
            if dgesv is not None:
                # dgesv overwrites G with its LU factors — G is rebuilt
                # from G_base next iteration anyway.
                _, _, x_new, info = dgesv(G, rhs, overwrite_a=1)
                if info != 0:
                    raise ConvergenceError(
                        f"singular MNA matrix in {self.circuit.title!r} "
                        f"(dgesv info={info})"
                    )
            else:
                try:
                    x_new = np.linalg.solve(G, rhs)
                except np.linalg.LinAlgError as exc:
                    raise ConvergenceError(
                        f"singular MNA matrix in {self.circuit.title!r}: "
                        f"{exc}"
                    ) from exc
            dxa = np.abs(x_new - x)
            dv = dxa[:nn].max(initial=0.0)
            di = dxa[nn:].max(initial=0.0)
            max_step = dv if dv >= di else di
            if max_step > damping_limit:
                scale = damping_limit / max_step
                x = x + (x_new - x) * scale
                dv *= scale
                di *= scale
            else:
                x = x_new
            if (dv < v_tol
                    or (v_reltol
                        and dv < v_tol
                        + v_reltol * np.abs(x[:nn]).max(initial=0.0))):
                if di < i_tol + i_reltol * np.abs(x[nn:]).max(initial=0.0):
                    return x
        raise ConvergenceError(
            f"Newton failed to converge in {max_newton} iterations "
            f"({self.circuit.title!r})"
        )


class _SparseTransientSystem(_TransientSystem):
    """Sparse strategy: the same Newton workspace interface as the dense
    :class:`_TransientSystem`, assembled on a frozen CSR pattern.

    The pattern (linear stamps united with the diode-group slots) is
    frozen once; per ``(dt, method)`` only the linear *values* are
    refreshed, and per Newton iteration only the diode values are
    scattered into a preallocated copy of that base vector.  Solves go
    through SuperLU on the frozen CSC layout — for linear and
    all-diodes-off systems the factorization itself is cached per
    ``(dt, method)`` and every later step is a pair of triangular
    solves.  Selected by ``transient(..., matrix="sparse")`` (or
    ``"auto"`` above :data:`~repro.spice.assembler.SPARSE_AUTO_THRESHOLD`
    unknowns); nonlinear devices other than diodes keep the dense
    strategy (their scalar restamps would dominate either way).
    """

    def __init__(self, circuit, states, gmin):
        from repro.spice import assembler

        if not assembler.SPARSE_AVAILABLE:  # pragma: no cover - guarded
            raise ValueError(
                "matrix='sparse' requires scipy; install it or use "
                "matrix='dense'"
            )
        self._asm = assembler
        super().__init__(circuit, states, gmin)
        if self.other_nl:
            raise ValueError(
                f"circuit {circuit.title!r} holds nonlinear devices "
                f"other than diodes; the sparse strategy supports "
                f"diode-only nonlinearity (use matrix='dense' or 'auto')"
            )
        if not self.diodes:
            self._freeze_pattern(())
        self._init_step_kernels()

    def _init_step_kernels(self):
        """Hoist the per-step scalar hooks (``stamp_tran_rhs`` /
        ``update_state``) of the stock reactive elements and sources
        into preallocated slot-array kernels.

        On large netlists these Python loops, not the linear algebra,
        dominate the step cost.  Only exact stock types are hoisted —
        subclasses and third-party components keep their scalar hooks
        through the residual lists, so overridden behaviour is never
        bypassed.  Ground maps to the trailing pad slot of the length
        ``n + 1`` gather/scatter buffers and is discarded.
        """
        from repro.spice.components import (
            Capacitor,
            Component,
            CurrentSource,
            Inductor,
            VoltageSource,
        )

        n = self.n
        states = self.states

        def _pad(idx):
            return np.array([n if i < 0 else i for i in idx], dtype=np.intp)

        caps = [c for c in self.linear if type(c) is Capacitor]
        inds = [c for c in self.linear if type(c) is Inductor]
        # A coupled partner outside the hoisted set would read a stale
        # slot state; such inductors (and their partners) stay scalar.
        ind_ids = {id(c) for c in inds}
        demote = {
            id(c) for c in inds
            if any(id(other) not in ind_ids for _, other in c.couplings)
        }
        while True:
            grew = {
                id(c) for c in inds
                if id(c) not in demote
                and any(id(other) in demote for _, other in c.couplings)
            }
            if not grew:
                break
            demote |= grew
        inds = [c for c in inds if id(c) not in demote]
        vsrc = [c for c in self.linear if type(c) is VoltageSource]
        isrc = [c for c in self.linear if type(c) is CurrentSource]
        kernel = set(caps) | set(inds) | set(vsrc) | set(isrc)

        self._cap_a = _pad([c.nodes[0] for c in caps])
        self._cap_b = _pad([c.nodes[1] for c in caps])
        self._cap_c = np.array([c.capacitance for c in caps])
        self._cap_v = np.array([states[c]["v"] for c in caps])
        self._cap_i = np.array([states[c]["i"] for c in caps])

        self._ind_k = np.array([c.branch for c in inds], dtype=np.intp)
        self._ind_a = _pad([c.nodes[0] for c in inds])
        self._ind_b = _pad([c.nodes[1] for c in inds])
        self._ind_l = np.array([c.inductance for c in inds])
        self._ind_i = np.array([states[c]["i"] for c in inds])
        self._ind_v = np.array([states[c]["v"] for c in inds])
        slot_of = {id(c): j for j, c in enumerate(inds)}
        coup = [
            (c.branch, slot_of[id(other)], m_val)
            for c in inds for m_val, other in c.couplings
        ]
        self._coup_rows = np.array([r for r, _, _ in coup], dtype=np.intp)
        self._coup_other = np.array([s for _, s, _ in coup], dtype=np.intp)
        self._coup_m = np.array([m for _, _, m in coup])

        self._vs_k = np.array([c.branch for c in vsrc], dtype=np.intp)
        self._vs_sources = [c.source for c in vsrc]
        self._vs_const = (
            np.array([s.dc_value for s in self._vs_sources])
            if all(s.label == "dc" for s in self._vs_sources) else None
        )
        self._cs_a = _pad([c.nodes[0] for c in isrc])
        self._cs_b = _pad([c.nodes[1] for c in isrc])
        self._cs_sources = [c.source for c in isrc]
        self._cs_const = (
            np.array([s.dc_value for s in self._cs_sources])
            if all(s.label == "dc" for s in self._cs_sources) else None
        )

        self._resid_rhs = [
            m for m in self._rhs_stampers if m.__self__ not in kernel
        ]
        self._resid_update = [
            c for c in self.circuit.components
            if c not in kernel
            and type(c).update_state is not Component.update_state
        ]
        self._rhs_pad = np.zeros(n + 1)

    def build_rhs(self, dt, method, t):
        """Hoisted per-step rhs: slot kernels for stock elements, the
        scalar hooks for everything else.  Elementwise formulas match
        the scalar stamps exactly; only the accumulation order differs
        (grouped by element kind instead of netlist order)."""
        rp = self._rhs_pad
        rp[:] = 0.0
        trap = method == "trap"
        factor = 2.0 if trap else 1.0
        if self._cap_c.size:
            geq = factor * self._cap_c / dt
            ieq = geq * self._cap_v
            if trap:
                ieq += self._cap_i
            np.add.at(rp, self._cap_a, ieq)
            np.add.at(rp, self._cap_b, -ieq)
        if self._ind_l.size:
            leq = factor * self._ind_l / dt
            val = -leq * self._ind_i
            if trap:
                val -= self._ind_v
            rp[self._ind_k] += val  # branch rows are unique per inductor
            if self._coup_m.size:
                meq = factor * self._coup_m / dt
                np.add.at(rp, self._coup_rows, -meq * self._ind_i[self._coup_other])
        if self._vs_k.size:
            vals = (self._vs_const if self._vs_const is not None
                    else np.array([s(t) for s in self._vs_sources]))
            rp[self._vs_k] += vals  # branch rows are unique per source
        if len(self._cs_sources):
            vals = (self._cs_const if self._cs_const is not None
                    else np.array([s(t) for s in self._cs_sources]))
            np.add.at(rp, self._cs_a, -vals)
            np.add.at(rp, self._cs_b, vals)
        rhs = self._rhs_base
        rhs[:] = rp[: self.n]
        if self._resid_rhs:
            states = self.states
            for stamp_rhs in self._resid_rhs:
                stamp_rhs(rhs, states, dt, method, t)
        return rhs

    def update_states(self, x, dt, method):
        """Hoisted state advance (same formulas as the scalar
        ``Capacitor.update_state`` / ``Inductor.update_state``)."""
        xp = self._x_pad
        xp[: self.n] = x
        trap = method == "trap"
        if self._cap_c.size:
            v_new = xp[self._cap_a] - xp[self._cap_b]
            geq = (2.0 if trap else 1.0) * self._cap_c / dt
            i_new = geq * (v_new - self._cap_v)
            if trap:
                i_new -= self._cap_i
            self._cap_v = v_new
            self._cap_i = i_new
        if self._ind_l.size:
            self._ind_i = x[self._ind_k]
            self._ind_v = xp[self._ind_a] - xp[self._ind_b]
        if self._resid_update:
            states = self.states
            for comp in self._resid_update:
                comp.update_state(x, states, dt, method)

    def _freeze_pattern(self, extra_positions):
        """Freeze the union pattern and the per-component linear plan
        (positions recorded once; later refreshes gather values only)."""
        asm = self._asm
        self._pattern = asm.pattern_from_circuit(
            self.circuit, extra_positions=extra_positions
        )
        rows, cols = [], []
        for comp in self.linear:
            r, c, _ = comp.sparse_stamps(1.0, "be")
            rows.append(r)
            cols.append(c)
        self._lin_plan = self._pattern.plan(
            np.concatenate(rows), np.concatenate(cols)
        )
        self._data = np.empty(self._pattern.nnz)

    def _init_diode_scatter(self):
        """Frozen-pattern index maps of the diode group: one data slot,
        sign and diode index per matrix contribution (replaces the dense
        ``(n*n, nd)`` projection, which is what caps the dense strategy
        at small circuits)."""
        slots, signs, which = [], [], []
        r_rows, r_signs, r_which = [], [], []
        positions = []
        for k, comp in enumerate(self.diodes):
            a, b = comp.nodes
            for i, j, sign in ((a, a, 1.0), (b, b, 1.0), (a, b, -1.0), (b, a, -1.0)):
                if i >= 0 and j >= 0:
                    positions.append((i, j))
                    signs.append(sign)
                    which.append(k)
            if a >= 0:
                r_rows.append(a)
                r_signs.append(-1.0)
                r_which.append(k)
            if b >= 0:
                r_rows.append(b)
                r_signs.append(1.0)
                r_which.append(k)
        pos_r = np.array([p[0] for p in positions], dtype=np.intp)
        pos_c = np.array([p[1] for p in positions], dtype=np.intp)
        self._freeze_pattern([(pos_r, pos_c)])
        self._d_slots = self._pattern.plan(pos_r, pos_c)
        self._d_signs = np.array(signs)
        self._d_which = np.array(which, dtype=np.intp)
        self._dr_rows = np.array(r_rows, dtype=np.intp)
        self._dr_signs = np.array(r_signs)
        self._dr_which = np.array(r_which, dtype=np.intp)
        self._rhs_off = np.zeros(self.n)
        np.add.at(
            self._rhs_off, self._dr_rows,
            self._dr_signs * (-self.d_is)[self._dr_which],
        )
        self._g_scratch = np.empty(self._d_slots.size)
        self._r_scratch = np.empty(self._dr_rows.size)

    def _scatter_diodes(self, data, rhs, g, ieq):
        """Scatter per-diode conductances / equivalent currents into the
        frozen-pattern data vector and the rhs."""
        np.multiply(self._d_signs, g[self._d_which], out=self._g_scratch)
        np.add.at(data, self._d_slots, self._g_scratch)
        np.multiply(self._dr_signs, ieq[self._dr_which],
                    out=self._r_scratch)
        np.add.at(rhs, self._dr_rows, self._r_scratch)

    def _diode_g_ieq(self, x):
        """Vectorized diode model evaluation (identical piecewise rules
        to the dense `_stamp_diodes`, without the dense scatter)."""
        xp = self._x_pad
        xp[: self.n] = x
        vd = np.take(xp, self.d_ai, out=self._vd)
        vd -= np.take(xp, self.d_bi, out=self._va)
        e = np.minimum(vd, self.d_vmax, out=self._e)
        e *= self.d_inv_nvt
        np.exp(e, out=e)
        i = e * self.d_is
        g = i * self.d_inv_nvt
        i -= self.d_is
        if vd.max() > self.d_vmax_floor:
            over = vd > self.d_vmax
            i = np.where(over, self.d_iknee + self.d_gknee * (vd - self.d_vmax), i)
            g = np.where(over, self.d_gknee, g)
        g += self.gmin
        ieq = np.multiply(g, vd, out=self._ieq)
        np.subtract(i, ieq, out=ieq)
        return g, ieq

    def _assemble_linear(self, dt, method):
        """Value refresh of the linear stamps onto the frozen pattern."""
        vals = np.concatenate(
            [comp.sparse_stamps(dt, method)[2] for comp in self.linear]
        )
        self.pattern_reuses += 1
        return self._pattern.accumulate(self._lin_plan, vals)

    def _factor(self, data):
        """SuperLU factorization of one data vector; singularity
        surfaces as the engine's typed ConvergenceError."""
        try:
            lu = self._asm.splu_factor(self._pattern, data)
        except RuntimeError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in {self.circuit.title!r}: {exc}"
            ) from exc
        self.factorizations += 1
        return lu

    def base_for(self, dt, method):
        key = (dt, method)
        entry = self._base.get(key)
        if entry is None:
            data = self._assemble_linear(dt, method)
            lu = self._factor(data) if self.is_linear else None
            if len(self._base) >= 64:
                self._base.clear()
            entry = (data, lu)
            self._base[key] = entry
        return entry

    def off_for(self, dt, method):
        key = (dt, method)
        entry = self._off_base.get(key)
        if entry is None:
            base, _ = self.base_for(dt, method)
            data = base.copy()
            np.add.at(
                data, self._d_slots,
                self._d_signs * np.full(len(self.diodes), self.gmin
                                        )[self._d_which],
            )
            self.pattern_reuses += 1
            lu = self._factor(data)
            if len(self._off_base) >= 64:
                self._off_base.clear()
            entry = (data, lu)
            self._off_base[key] = entry
        return entry

    def step_bypass(self, dt, method, t):
        _, lu = self.off_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        x_new = lu.solve(rhs + self._rhs_off)
        self.pattern_reuses += 1
        if not np.all(np.isfinite(x_new)):
            return None
        if bool((self._diode_vd(x_new) < self.d_vd_off).all()):
            return x_new
        return None

    def step_linear(self, dt, method, t):
        _, lu = self.base_for(dt, method)
        rhs = self.build_rhs(dt, method, t)
        self.pattern_reuses += 1
        x = lu.solve(rhs)
        if not np.all(np.isfinite(x)):
            raise ConvergenceError(
                f"singular MNA matrix in {self.circuit.title!r} "
                f"(non-finite sparse solve)"
            )
        return x

    def newton(
        self,
        x0,
        dt,
        method,
        t,
        max_newton=60,
        damping_limit=2.0,
        v_tol=1e-6,
        v_reltol=0.0,
        i_tol=1e-9,
        i_reltol=1e-6,
    ):
        """Damped Newton with frozen-pattern assembly: identical damping
        and acceptance rules to the dense strategy — only the linear
        algebra differs (value scatter + SuperLU refactorization)."""
        base, _ = self.base_for(dt, method)
        rhs_base = self.build_rhs(dt, method, t)
        data, rhs = self._data, self.rhs
        x = np.array(x0, dtype=float, copy=True)
        nn = self.n_nodes
        for _ in range(max_newton):
            self.newton_iters += 1
            np.copyto(data, base)
            np.copyto(rhs, rhs_base)
            g, ieq = self._diode_g_ieq(x)
            self._scatter_diodes(data, rhs, g, ieq)
            self.pattern_reuses += 1
            lu = self._factor(data)
            x_new = lu.solve(rhs)
            if not np.all(np.isfinite(x_new)):
                raise ConvergenceError(
                    f"singular MNA matrix in {self.circuit.title!r} "
                    f"(non-finite sparse solve)"
                )
            dxa = np.abs(x_new - x)
            dv = dxa[:nn].max(initial=0.0)
            di = dxa[nn:].max(initial=0.0)
            max_step = dv if dv >= di else di
            if max_step > damping_limit:
                scale = damping_limit / max_step
                x = x + (x_new - x) * scale
                dv *= scale
                di *= scale
            else:
                x = x_new
            if (dv < v_tol
                    or (v_reltol
                        and dv < v_tol
                        + v_reltol * np.abs(x[:nn]).max(initial=0.0))):
                if di < i_tol + i_reltol * np.abs(x[nn:]).max(initial=0.0):
                    return x
        raise ConvergenceError(
            f"Newton failed to converge in {max_newton} iterations "
            f"({self.circuit.title!r})"
        )


def _pick_matrix_mode(matrix, circuit):
    """Resolve the ``matrix=`` front-door argument to a strategy name.

    ``auto`` selects sparse only above the node-count threshold, with
    dense forced for small systems (LAPACK on a tiny dense matrix beats
    SuperLU's per-call overhead), for circuits whose nonlinear devices
    are not all diodes, and when scipy is unavailable.
    """
    from repro.spice.assembler import (
        MATRIX_MODES,
        SPARSE_AVAILABLE,
        SPARSE_AUTO_THRESHOLD,
    )

    if matrix not in MATRIX_MODES:
        raise ValueError(
            f"unknown matrix mode {matrix!r}; known modes: {MATRIX_MODES}"
        )
    if matrix != "auto":
        return matrix
    diode_only = all(
        c.linear_stamps or isinstance(c, Diode) for c in circuit.components
    )
    if (SPARSE_AVAILABLE and diode_only
            and circuit.n_unknowns >= SPARSE_AUTO_THRESHOLD):
        return "sparse"
    return "dense"


def _lu_factor_checked(G):
    """LU-prefactor ``G``, returning None when it is (numerically)
    singular.  scipy's ``lu_factor`` does not raise on an exactly
    singular matrix — it warns and returns factors with zero pivots,
    which would silently turn every later solve into inf/NaN — so the
    pivots are validated here and singular systems fall back to
    ``np.linalg.solve``, which raises the typed error the fixed-step
    path reports."""
    if lu_factor is None:
        return None
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            lu = lu_factor(G)
        except (np.linalg.LinAlgError, ValueError):
            return None
    pivots = np.abs(np.diag(lu[0]))
    if not np.all(np.isfinite(lu[0])) or pivots.min(initial=np.inf) \
            < np.finfo(float).tiny:
        return None
    return lu


def _diode_scatter_plan(diodes, n):
    """Shared topology plan of a vectorized diode group: padded gather
    indices for vd = V(a) - V(b) (ground mapped to the extra zero
    slot) and the dense scatter projections P_g (per-diode conductance
    -> raveled matrix entries, signed) and P_r (per-diode equivalent
    current -> rhs entries).  Used by both the single-circuit assembler
    and the lockstep batch (same topology across a family).
    """
    a = np.array([c.nodes[0] for c in diodes], dtype=np.intp)
    b = np.array([c.nodes[1] for c in diodes], dtype=np.intp)
    nd = len(diodes)
    P_g = np.zeros((n * n, nd))
    P_r = np.zeros((n, nd))
    for k in range(nd):
        for row, col, sign in (
            (a[k], a[k], 1.0),
            (b[k], b[k], 1.0),
            (a[k], b[k], -1.0),
            (b[k], a[k], -1.0),
        ):
            if row >= 0 and col >= 0:
                P_g[row * n + col, k] += sign
        if a[k] >= 0:
            P_r[a[k], k] -= 1.0
        if b[k] >= 0:
            P_r[b[k], k] += 1.0
    ai = np.where(a < 0, n, a)
    bi = np.where(b < 0, n, b)
    return ai, bi, P_g, P_r


def _breakpoint_sources(circuits):
    """Every source (of one circuit or a family) declaring waveform
    discontinuities — the adaptive loops clamp step growth to the next
    one so a grown step never jumps over a pulse or switching edge."""
    sources = []
    for circuit in circuits:
        for comp in circuit.components:
            src = getattr(comp, "source", None)
            if src is not None and \
                    getattr(src, "_bp_offsets", None) is not None:
                sources.append(src)
    return sources


def _clamp_to_breakpoints(sources, t, step):
    """Shrink ``step`` so ``t + step`` does not pass any source
    discontinuity (landing exactly on one is fine)."""
    for src in sources:
        bp = src.next_breakpoint(t)
        if bp is not None and bp - t < step * (1.0 - 1e-12):
            step = bp - t
    return step


def _lte_trap(hist_t, hist_x, t_new, x_new, h):
    """Per-unknown trapezoidal local-truncation-error estimate.

    LTE_trap = (h^3/12) x'''; the third derivative is estimated from
    the third divided difference over the last three accepted points
    plus the candidate (f[t0..t3] = x'''/6 for smooth x), so the
    estimate costs a handful of vector ops and no extra solves.
    """
    t0, t1, t2 = hist_t[-3], hist_t[-2], hist_t[-1]
    x0, x1, x2 = hist_x[-3], hist_x[-2], hist_x[-1]
    d01 = (x1 - x0) / (t1 - t0)
    d12 = (x2 - x1) / (t2 - t1)
    d23 = (x_new - x2) / (t_new - t2)
    dd1 = (d12 - d01) / (t2 - t0)
    dd2 = (d23 - d12) / (t_new - t1)
    dd3 = (dd2 - dd1) / (t_new - t0)
    return np.abs(dd3) * (0.5 * h**3)


def _adaptive_loop(
    circuit,
    system,
    x,
    t_start,
    t_stop,
    dt,
    max_newton,
    store_every,
    callback,
    atol,
    rtol,
    max_dt,
    min_dt,
    v_reltol,
    stats=None,
):
    """The adaptive-backend time loop (see the module docstring).

    The lockstep family loop in :func:`repro.spice.batch.transient_batch`
    mirrors this step-control state machine — keep rule changes in
    sync (the batch parity tests pin the two together).
    """
    times = [t_start]
    solutions = [x.copy()]
    t = t_start
    h = dt
    hist_t = [t_start]
    hist_x = [x.copy()]
    accepted = 0
    first_step = True
    bp_sources = _breakpoint_sources([circuit])
    while t < t_stop - 1e-15:
        step = min(h, t_stop - t)
        if bp_sources:
            step = _clamp_to_breakpoints(bp_sources, t, step)
        t_next = t + step
        # As in the fixed path, the very first step runs backward-Euler
        # so the unknown reactive-element currents settle consistently.
        method = "be" if first_step else "trap"
        try:
            if system.is_linear:
                x_new = system.step_linear(step, method, t_next)
            else:
                x_new = None
                if system.all_off:
                    # All diodes reverse-biased at the last accepted
                    # point: the step is linear until proven otherwise.
                    x_new = system.step_bypass(step, method, t_next)
                if x_new is None:
                    # Linear extrapolation of the last accepted step
                    # seeds Newton one iteration closer than the
                    # previous solution alone (the converged result is
                    # tolerance-identical).
                    if len(hist_t) >= 2:
                        guess = x + (x - hist_x[-2]) * (
                            step / (hist_t[-1] - hist_t[-2]))
                    else:
                        guess = x
                    x_new = system.newton(
                        guess,
                        step,
                        method,
                        t_next,
                        max_newton=max_newton,
                        v_reltol=v_reltol,
                    )
                    system.note_off_state(x_new)
        except ConvergenceError:
            if h / 2.0 < min_dt:
                raise ConvergenceError(
                    f"transient step failed at t={t_next:.4g}s even at "
                    f"minimum step {min_dt:.3g}s ({circuit.title!r})"
                )
            h /= 2.0
            continue
        grow = False
        if not first_step and len(hist_t) >= 3:
            err = _lte_trap(hist_t, hist_x, t_next, x_new, step)
            ratio = float(np.max(err / (atol + rtol * np.abs(x_new))))
            if ratio > 1.0 and step > min_dt * 1.000001:
                # Reject: the step's truncation error is out of budget.
                h = max(step / 2.0, min_dt)
                continue
            # Doubling multiplies the trap LTE by 8; only grow with a
            # further 2x safety margin so the next step is not an
            # immediate rejection.
            grow = ratio < 1.0 / 16.0
        system.update_states(x_new, step, method)
        first_step = False
        x = x_new
        t = t_next
        accepted += 1
        hist_t.append(t)
        hist_x.append(x)
        if len(hist_t) > 4:
            hist_t.pop(0)
            hist_x.pop(0)
        if accepted % store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            solutions.append(x.copy())
        if callback is not None:
            callback(t, x)
        if grow:
            h = min(h * 2.0, max_dt)
    if stats is not None:
        stats["accepted_steps"] = accepted
        stats["newton_iters"] = system.newton_iters
        stats["factorizations"] = system.factorizations
        stats["pattern_reuses"] = system.pattern_reuses
    return TransientResult(circuit, times, solutions)


def transient(
    circuit,
    t_stop,
    dt,
    t_start=0.0,
    method="trap",
    x0=None,
    use_ic=False,
    max_newton=60,
    store_every=1,
    callback=None,
    atol=ADAPTIVE_ATOL,
    rtol=ADAPTIVE_RTOL,
    max_dt=None,
    min_dt=None,
    v_reltol=None,
    matrix="auto",
    stats_out=None,
    check="error",
):
    """Run a transient analysis.

    Parameters
    ----------
    circuit : Circuit
    t_stop, dt : float
        End time and nominal step.  For ``method="adaptive"``, ``dt``
        is the initial step; the integrator then doubles/halves it
        under local-truncation-error control.
    method : ``"trap"``, ``"be"`` (fixed step) or ``"adaptive"``.
    x0 : optional initial solution vector; when omitted the DC operating
        point (with all sources at their t=0 value) seeds the run.
    use_ic : bool
        When True, skip the DC solve and start from zero with component
        initial conditions (capacitor ``ic``, inductor ``ic``).
    store_every : int
        Keep every k-th accepted step (memory control for long runs).
        The stored grid is: the first point, every k-th accepted step,
        and always the final point.
    callback : optional ``f(t, x)`` invoked on each accepted step.
    atol, rtol : adaptive only — the per-step LTE budget per unknown is
        ``atol + rtol*|x|``.
    max_dt : adaptive only — step-growth ceiling (default ``256*dt``).
    min_dt : smallest step retried after a failed/rejected step
        (default ``dt/64`` fixed, ``dt/1024`` adaptive).
    v_reltol : adaptive only — relative term of the Newton voltage
        acceptance test (``|dV| < 1e-6 + v_reltol*|V|max``, the classic
        SPICE RELTOL; default :data:`ADAPTIVE_V_RELTOL`).  The fixed
        reference path always converges to the absolute 1e-6.
    matrix : ``"auto"``, ``"dense"`` or ``"sparse"`` — the adaptive
        backend's linear-algebra strategy.  ``"sparse"`` assembles on a
        frozen CSR pattern and factorizes with SuperLU (see
        :mod:`repro.spice.assembler`); ``"auto"`` picks it above
        :data:`~repro.spice.assembler.SPARSE_AUTO_THRESHOLD` unknowns
        and keeps small systems dense.  The strategies agree to solver
        rounding (the equivalence tests pin them); the fixed-step
        methods are the dense parity reference and reject
        ``matrix="sparse"``.
    stats_out : optional dict — adaptive only; filled with the run's
        solver counters (``accepted_steps``, ``newton_iters``,
        ``factorizations``, ``pattern_reuses``).
    check : ``"error"`` | ``"warn"`` | ``"off"`` — static pre-flight
        (see :func:`repro.spice.analyze.check_circuit`).  The default
        rejects structurally broken circuits with a typed
        :class:`~repro.spice.analyze.CircuitLintError` before any
        factorization; ``"off"`` skips the (read-only) analysis and is
        bitwise-identical to the pre-analyzer behaviour.
    """
    if method not in METHODS:
        raise ValueError(
            f"unknown integration method {method!r}; " f"known methods: {METHODS}"
        )
    if dt <= 0 or t_stop <= t_start:
        raise ValueError("need dt > 0 and t_stop > t_start")
    if int(store_every) < 1:
        raise ValueError("store_every must be >= 1")
    store_every = int(store_every)
    circuit.build()
    if check != "off":
        from repro.spice.analyze import check_circuit

        check_circuit(circuit, check)
    mode = _pick_matrix_mode(matrix, circuit)
    if mode == "sparse" and method != "adaptive":
        raise ValueError(
            "matrix='sparse' applies to the adaptive backend; the "
            "fixed-step methods are the dense parity reference"
        )
    gmin = 1e-12

    if x0 is not None:
        x = np.asarray(x0, dtype=float).copy()
    elif use_ic:
        x = np.zeros(circuit.n_unknowns)
    else:
        x = dc_operating_point(circuit, check="off").x.copy()

    states = {}
    for comp in circuit.components:
        st = comp.init_state(None if use_ic else x)
        if st is not None:
            states[comp] = st
    if use_ic:
        # Impose capacitor initial voltages on the state records.
        for comp, st in states.items():
            if hasattr(comp, "ic") and comp.ic is not None and "v" in st:
                st["v"] = comp.ic

    if use_ic:
        # Consistency solve: one backward-Euler micro-step pins the node
        # voltages to the imposed initial conditions (a zero vector is not
        # a valid circuit solution).  State updates are discarded — the
        # micro-step transfers negligible charge/flux.
        dt_micro = dt * 1e-9

        def warm_stamp(G, rhs, xg, g):
            for comp in circuit.components:
                comp.stamp_tran(G, rhs, xg, states, dt_micro, "be", t_start, g)

        x = _newton_solve(
            circuit, x, warm_stamp, gmin, max_iter=max_newton, damping_limit=5.0
        )

    if method == "adaptive":
        if mode == "sparse":
            system = _SparseTransientSystem(circuit, states, gmin)
        else:
            system = _TransientSystem(circuit, states, gmin)
        return _adaptive_loop(
            circuit, system, x, t_start, t_stop, dt, max_newton,
            store_every, callback, float(atol), float(rtol),
            dt * 256.0 if max_dt is None else float(max_dt),
            dt / 1024.0 if min_dt is None else float(min_dt),
            ADAPTIVE_V_RELTOL if v_reltol is None else float(v_reltol),
            stats=stats_out,
        )

    times = [t_start]
    solutions = [x.copy()]
    t = t_start
    min_dt = dt / 64.0 if min_dt is None else float(min_dt)
    step = dt
    stored = 0

    first_step = True
    while t < t_stop - 1e-15:
        step = min(step, t_stop - t)
        t_next = t + step
        # The initial reactive-element currents are unknown (not part of
        # the DC solution), so the very first step runs backward-Euler;
        # its update leaves consistent states for trapezoidal continuation.
        step_method = "be" if first_step else method

        def stamp(G, rhs, xg, g, _t=t_next, _dt=step, _m=step_method):
            for comp in circuit.components:
                comp.stamp_tran(G, rhs, xg, states, _dt, _m, _t, g)

        try:
            x_new = _newton_solve(
                circuit, x, stamp, gmin, max_iter=max_newton, damping_limit=2.0
            )
        except ConvergenceError:
            if step / 2.0 < min_dt:
                raise ConvergenceError(
                    f"transient step failed at t={t_next:.4g}s even at "
                    f"minimum step {min_dt:.3g}s ({circuit.title!r})"
                )
            step /= 2.0
            continue

        for comp in circuit.components:
            comp.update_state(x_new, states, step, step_method)
        first_step = False
        x = x_new
        t = t_next
        stored += 1
        if stored % store_every == 0 or t >= t_stop - 1e-15:
            times.append(t)
            solutions.append(x.copy())
        if callback is not None:
            callback(t, x)
        # Grow the step back toward nominal after a successful solve.
        if step < dt:
            step = min(dt, step * 2.0)

    return TransientResult(circuit, times, solutions)
