"""A compact SPICE-like circuit simulator (the reproduction's substrate).

The paper evaluates its power-management module "by means of simulations";
this package is that simulator: modified nodal analysis with Newton
iteration, supporting

* linear elements: R, L, C, coupled inductors (K), controlled sources
  (VCVS/VCCS), independent V/I sources with time-varying waveforms;
* nonlinear elements: junction diodes, level-1 MOSFETs, voltage-controlled
  switches;
* analyses: DC operating point (with gmin and source stepping), AC
  small-signal sweep, and transient (fixed-step backward-Euler or
  trapezoidal, plus an adaptive-timestep backend with LTE step control,
  linear-part factorization reuse and a lockstep batched runner for
  circuit families — see :mod:`repro.spice.transient` and
  :mod:`repro.spice.batch`);
* static analysis: a pre-solve netlist lint with structural-
  singularity detection (:mod:`repro.spice.analyze`), wired into the
  solver front doors as the opt-out ``check=`` pre-flight.

Circuits here are small (tens of nodes), so dense numpy linear algebra is
used throughout.
"""

from repro.spice.circuit import Circuit
from repro.spice.components import (
    Resistor,
    Capacitor,
    Inductor,
    MutualCoupling,
    VoltageSource,
    CurrentSource,
    Diode,
    Mosfet,
    Switch,
    Vcvs,
    Vccs,
)
from repro.spice.sources import dc_source, sine, pulse, pwl, square, ask_carrier
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.transient import METHODS, TransientResult, transient
from repro.spice.batch import BatchTransientResult, transient_batch
from repro.spice.ac import ACResult, ac_sweep
from repro.spice.netlist_io import parse_netlist, write_netlist, NetlistError
from repro.spice.sweep import dc_sweep, DCSweepResult, operating_point_report
from repro.spice.analyze import (
    CHECK_MODES,
    DIAGNOSTIC_CODES,
    CircuitLintError,
    CircuitLintWarning,
    Diagnostic,
    analyze_circuit,
    analyze_netlist,
    check_circuit,
)

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualCoupling",
    "VoltageSource",
    "CurrentSource",
    "Diode",
    "Mosfet",
    "Switch",
    "Vcvs",
    "Vccs",
    "dc_source",
    "sine",
    "pulse",
    "pwl",
    "square",
    "ask_carrier",
    "OperatingPoint",
    "dc_operating_point",
    "METHODS",
    "TransientResult",
    "transient",
    "BatchTransientResult",
    "transient_batch",
    "ACResult",
    "ac_sweep",
    "parse_netlist",
    "write_netlist",
    "NetlistError",
    "dc_sweep",
    "DCSweepResult",
    "operating_point_report",
    "CHECK_MODES",
    "DIAGNOSTIC_CODES",
    "CircuitLintError",
    "CircuitLintWarning",
    "Diagnostic",
    "analyze_circuit",
    "analyze_netlist",
    "check_circuit",
]
