"""Time-domain source waveform factories for independent sources.

Each factory returns a callable ``f(t) -> value`` plus metadata used by the
DC analysis (the value at t=0) and the AC analysis (the small-signal
magnitude).  Sources are plain callables so users may also pass any
function of time directly.
"""

from __future__ import annotations

import math

import numpy as np


class SourceFunction:
    """A callable source with a DC value and an AC magnitude.

    ``func`` is evaluated at arbitrary times by the transient engine.
    ``ac_mag`` (default 0) is the small-signal excitation used in AC
    analysis; set it to 1 on the input source of interest.

    ``breakpoints`` optionally declares the waveform's discontinuity
    times as ``(offsets, period)`` — a sorted array of event offsets,
    repeated every ``period`` seconds (``period=None`` for a one-shot
    list).  The adaptive transient backend clamps its step growth to
    the next breakpoint so a grown step can never silently jump over a
    narrow pulse or a switching edge; sources built from plain
    callables carry none (the integrator then only sees what its LTE
    estimate samples — pick ``max_dt`` accordingly).
    """

    def __init__(
        self,
        func,
        dc_value=None,
        ac_mag=0.0,
        label="source",
        breakpoints=None,
        vector_params=None,
    ):
        self._func = func
        self.ac_mag = float(ac_mag)
        self.label = label
        self.dc_value = float(func(0.0)) if dc_value is None else float(dc_value)
        #: Optional ``(kind, *params)`` tuple describing the waveform in
        #: closed form (e.g. ``("sine", w, phi, amp, offset, delay)``).
        #: The lockstep batch solver uses it to evaluate a whole family
        #: slot of same-kind sources as one vectorized expression
        #: instead of N scalar calls; sources built from opaque
        #: callables carry None and keep the scalar path.
        self.vector_params = vector_params
        if breakpoints is None:
            self._bp_offsets = None
            self._bp_period = None
        else:
            offsets, period = breakpoints
            self._bp_offsets = np.sort(np.asarray(offsets, dtype=float))
            self._bp_period = None if period is None else float(period)

    def __call__(self, t):
        return self._func(t)

    def next_breakpoint(self, t):
        """The earliest declared discontinuity strictly after ``t``
        (None when there is none, or none were declared)."""
        offs = self._bp_offsets
        if offs is None or offs.size == 0:
            return None
        # Strictness guard: an event at exactly t must not be returned
        # again (the integrator just landed on it).
        t_eps = t + 1e-15 + abs(t) * 1e-12
        if self._bp_period is None:
            idx = np.searchsorted(offs, t_eps, side="right")
            return float(offs[idx]) if idx < offs.size else None
        # Periodic events exist for cycle indices >= 0 only (waveforms
        # hold their initial level before the first declared offset).
        k = max(math.floor((t_eps - offs[0]) / self._bp_period), 0)
        for base in (k, k + 1):
            candidates = offs + base * self._bp_period
            after = candidates[candidates > t_eps]
            if after.size:
                return float(after[0])
        return None  # pragma: no cover - unreachable for period > 0

    def __repr__(self):
        return f"SourceFunction({self.label}, dc={self.dc_value:g})"


def _as_source(value):
    """Coerce a number or callable into a SourceFunction."""
    if isinstance(value, SourceFunction):
        return value
    if callable(value):
        return SourceFunction(value, label="callable")
    level = float(value)
    return SourceFunction(lambda t: level, dc_value=level, label="dc")


def dc(value, ac_mag=0.0):
    """Constant source."""
    level = float(value)
    return SourceFunction(lambda t: level, dc_value=level, ac_mag=ac_mag, label="dc")


#: Collision-free alias: the package also contains a ``dc`` analysis module.
dc_source = dc


def sine(amplitude, freq, offset=0.0, phase_deg=0.0, delay=0.0, ac_mag=0.0):
    """``offset + amplitude*sin(2*pi*freq*(t-delay) + phase)`` (0 before delay)."""
    w = 2.0 * math.pi * float(freq)
    phi = math.radians(phase_deg)
    amp = float(amplitude)
    off = float(offset)
    d = float(delay)

    def f(t):
        if t < d:
            return off
        return off + amp * math.sin(w * (t - d) + phi)

    return SourceFunction(
        f,
        dc_value=off,
        ac_mag=ac_mag,
        label="sine",
        breakpoints=([d], None) if d > 0 else None,
        vector_params=("sine", w, phi, amp, off, d),
    )


def pulse(v1, v2, delay=0.0, rise=1e-9, fall=1e-9, width=1e-6, period=2e-6):
    """SPICE-style periodic trapezoidal pulse between ``v1`` and ``v2``."""
    v1, v2 = float(v1), float(v2)
    delay, rise, fall = float(delay), max(float(rise), 1e-15), max(float(fall), 1e-15)
    width, period = float(width), float(period)
    if period <= 0:
        raise ValueError("pulse period must be positive")
    if rise + width + fall > period:
        raise ValueError("pulse rise+width+fall exceeds period")

    def f(t):
        if t < delay:
            return v1
        tau = (t - delay) % period
        if tau < rise:
            return v1 + (v2 - v1) * tau / rise
        if tau < rise + width:
            return v2
        if tau < rise + width + fall:
            return v2 + (v1 - v2) * (tau - rise - width) / fall
        return v1

    # Slope discontinuities of every cycle: start of rise, top, start
    # of fall, back to v1.
    corners = [delay, delay + rise, delay + rise + width, delay + rise + width + fall]
    return SourceFunction(f, dc_value=v1, label="pulse", breakpoints=(corners, period))


def square(v1, v2, freq, duty=0.5, delay=0.0, transition_frac=0.01):
    """Square wave convenience wrapper around :func:`pulse`.

    ``transition_frac`` sets rise/fall as a fraction of the period, which
    keeps transient integration well behaved.
    """
    period = 1.0 / float(freq)
    tr = max(period * float(transition_frac), 1e-12)
    width = max(period * float(duty) - tr, tr)
    return pulse(v1, v2, delay=delay, rise=tr, fall=tr, width=width, period=period)


def pwl(points, after="hold"):
    """Piece-wise-linear source through ``points`` = [(t0, v0), (t1, v1)...].

    ``after`` is ``"hold"`` (keep last value) or ``"repeat"``.
    """
    pts = sorted((float(t), float(v)) for t, v in points)
    if len(pts) < 2:
        raise ValueError("pwl needs at least two points")
    ts = np.array([p[0] for p in pts])
    vs = np.array([p[1] for p in pts])
    if np.any(np.diff(ts) <= 0):
        raise ValueError("pwl times must be strictly increasing")
    span = ts[-1] - ts[0]

    def f(t):
        if after == "repeat" and t > ts[-1]:
            t = ts[0] + (t - ts[0]) % span
        return float(np.interp(t, ts, vs))

    return SourceFunction(
        f, dc_value=vs[0], label="pwl",
        breakpoints=(ts, span if after == "repeat" else None))


def ask_carrier(amplitude, freq, bits, bit_rate, depth, delay=0.0, offset=0.0):
    """Amplitude-shift-keyed sinusoidal carrier.

    A logic-1 bit transmits full ``amplitude``; a logic-0 bit transmits
    ``amplitude*(1-depth)``.  Before ``delay`` and after the bitstream the
    carrier runs unmodulated (logic 1), matching how the paper's patch
    idles at full power between frames.
    """
    if not 0.0 <= depth <= 1.0:
        raise ValueError("ASK depth must be in [0, 1]")
    bits = [int(b) for b in bits]
    if any(b not in (0, 1) for b in bits):
        raise ValueError("bits must be 0/1")
    w = 2.0 * math.pi * float(freq)
    tbit = 1.0 / float(bit_rate)
    amp = float(amplitude)
    lo = amp * (1.0 - float(depth))

    def f(t):
        carrier = math.sin(w * t)
        k = int(math.floor((t - delay) / tbit))
        if 0 <= k < len(bits):
            level = amp if bits[k] else lo
        else:
            level = amp
        return offset + level * carrier

    # Amplitude switches at every bit boundary of the frame.
    edges = [delay + k * tbit for k in range(len(bits) + 1)]
    return SourceFunction(f, dc_value=offset, label="ask", breakpoints=(edges, None))
