"""DC operating-point analysis: Newton-Raphson with gmin stepping fallback."""

from __future__ import annotations

import numpy as np


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails to converge."""


class OperatingPoint:
    """Solved DC operating point: node voltages and branch currents."""

    def __init__(self, circuit, x):
        self.circuit = circuit
        self.x = np.asarray(x, dtype=float)

    def voltage(self, node):
        """Node voltage (0.0 for ground)."""
        idx = self.circuit.node_index(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def branch_current(self, component_name):
        """Branch current through a voltage source or inductor.

        Raises :class:`ValueError` (naming the component and pointing
        at ``device_current``) for components that carry no branch
        current unknown — resistors, diodes, switches — and for names
        that are not in the circuit at all.
        """
        return float(self.x[self.circuit.branch_index(component_name)])

    def voltages(self):
        """Dict of all node voltages."""
        return {name: self.voltage(name) for name in self.circuit.node_names()}

    def __repr__(self):
        volts = ", ".join(
            f"{k}={v:.4g}" for k, v in sorted(self.voltages().items())
        )
        return f"OperatingPoint({volts})"


def newton_converged(dx, x, n_nodes, v_tol=1e-6, i_tol=1e-9, i_reltol=1e-6):
    """Absolute+relative convergence test on one Newton update.

    Voltages converge when the update is below ``v_tol``; branch
    currents when the update is below ``i_tol + i_reltol * |I|max``.
    The historical criterion ``i_tol * max(1, |I|max/i_tol)``
    algebraically collapses to ``max(i_tol, |I|max)`` — a 100% relative
    tolerance that let a damped iterate whose *step* equalled the
    branch current pass as "converged" while being off by 2x or more
    (see tests/test_spice_dc.py::TestNewtonConvergence).
    """
    if np.max(np.abs(dx[:n_nodes]), initial=0.0) >= v_tol:
        return False
    di = np.max(np.abs(dx[n_nodes:]), initial=0.0)
    return di < i_tol + i_reltol * np.max(np.abs(x[n_nodes:]), initial=0.0)


def _newton_solve(
    circuit,
    x0,
    stamp,
    gmin,
    max_iter=150,
    v_tol=1e-6,
    i_tol=1e-9,
    i_reltol=1e-6,
    damping_limit=1.0,
):
    """Generic damped Newton loop over a stamping closure.

    ``stamp(G, rhs, x, gmin)`` must fill the linearised system.  Returns
    the converged solution or raises :class:`ConvergenceError`.
    """
    n = circuit.n_unknowns
    n_nodes = circuit.n_nodes
    x = np.array(x0, dtype=float, copy=True)
    for _ in range(max_iter):
        G = np.zeros((n, n))
        rhs = np.zeros(n)
        stamp(G, rhs, x, gmin)
        try:
            x_new = np.linalg.solve(G, rhs)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in {circuit.title!r}: {exc}"
            ) from exc
        dx = x_new - x
        # Damping: limit the per-iteration voltage step to keep the
        # exponential devices inside their linearised region.
        max_step = np.max(np.abs(dx)) if dx.size else 0.0
        if max_step > damping_limit:
            dx *= damping_limit / max_step
        x = x + dx
        if newton_converged(dx, x, n_nodes, v_tol, i_tol, i_reltol):
            return x
    raise ConvergenceError(
        f"Newton failed to converge in {max_iter} iterations "
        f"({circuit.title!r})"
    )


def dc_operating_point(circuit, gmin=1e-12, x0=None, check="error"):
    """Solve the DC operating point.

    Strategy: plain Newton from ``x0`` (zeros by default); on failure,
    gmin stepping from 1e-2 down to ``gmin`` reusing each level's solution
    as the next starting point.

    ``check`` gates the static pre-flight (see
    :func:`repro.spice.analyze.check_circuit`): ``"error"`` (default)
    rejects structurally broken circuits with a typed
    :class:`~repro.spice.analyze.CircuitLintError` before any solve,
    ``"warn"`` reports findings as warnings, ``"off"`` skips the
    analysis (bitwise-identical to the pre-analyzer behaviour).
    """
    circuit.build()
    if check != "off":
        from repro.spice.analyze import check_circuit

        check_circuit(circuit, check)

    def stamp(G, rhs, x, g):
        for comp in circuit.components:
            comp.stamp_dc(G, rhs, x, g)

    x0 = np.zeros(circuit.n_unknowns) if x0 is None else np.asarray(x0, float)
    try:
        x = _newton_solve(circuit, x0, stamp, gmin)
        return OperatingPoint(circuit, x)
    except ConvergenceError:
        pass
    # gmin stepping
    x = x0.copy()
    level = 1e-2
    while level >= gmin * 0.99:
        x = _newton_solve(circuit, x, stamp, level, max_iter=300)
        level /= 10.0
    return OperatingPoint(circuit, x)
