"""DC operating-point analysis: Newton-Raphson with gmin stepping fallback."""

from __future__ import annotations

import numpy as np


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails to converge."""


class OperatingPoint:
    """Solved DC operating point: node voltages and branch currents."""

    def __init__(self, circuit, x):
        self.circuit = circuit
        self.x = np.asarray(x, dtype=float)

    def voltage(self, node):
        """Node voltage (0.0 for ground)."""
        idx = self.circuit.node_index(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def branch_current(self, component_name):
        """Branch current through a voltage source or inductor."""
        return float(self.x[self.circuit.branch_index(component_name)])

    def voltages(self):
        """Dict of all node voltages."""
        return {name: self.voltage(name) for name in self.circuit.node_names()}

    def __repr__(self):
        volts = ", ".join(
            f"{k}={v:.4g}" for k, v in sorted(self.voltages().items())
        )
        return f"OperatingPoint({volts})"


def _newton_solve(
    circuit,
    x0,
    stamp,
    gmin,
    max_iter=150,
    v_tol=1e-6,
    i_tol=1e-9,
    damping_limit=1.0,
):
    """Generic damped Newton loop over a stamping closure.

    ``stamp(G, rhs, x, gmin)`` must fill the linearised system.  Returns
    the converged solution or raises :class:`ConvergenceError`.
    """
    n = circuit.n_unknowns
    x = np.array(x0, dtype=float, copy=True)
    for _ in range(max_iter):
        G = np.zeros((n, n))
        rhs = np.zeros(n)
        stamp(G, rhs, x, gmin)
        try:
            x_new = np.linalg.solve(G, rhs)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix in {circuit.title!r}: {exc}"
            ) from exc
        dx = x_new - x
        # Damping: limit the per-iteration voltage step to keep the
        # exponential devices inside their linearised region.
        max_step = np.max(np.abs(dx)) if dx.size else 0.0
        if max_step > damping_limit:
            dx *= damping_limit / max_step
        x = x + dx
        if np.max(np.abs(dx[: circuit.n_nodes]), initial=0.0) < v_tol and np.max(
            np.abs(dx[circuit.n_nodes :]), initial=0.0
        ) < i_tol * max(1.0, np.max(np.abs(x[circuit.n_nodes :]), initial=0.0) / i_tol):
            return x
    raise ConvergenceError(
        f"Newton failed to converge in {max_iter} iterations "
        f"({circuit.title!r})"
    )


def dc_operating_point(circuit, gmin=1e-12, x0=None):
    """Solve the DC operating point.

    Strategy: plain Newton from ``x0`` (zeros by default); on failure,
    gmin stepping from 1e-2 down to ``gmin`` reusing each level's solution
    as the next starting point.
    """
    circuit.build()

    def stamp(G, rhs, x, g):
        for comp in circuit.components:
            comp.stamp_dc(G, rhs, x, g)

    x0 = np.zeros(circuit.n_unknowns) if x0 is None else np.asarray(x0, float)
    try:
        x = _newton_solve(circuit, x0, stamp, gmin)
        return OperatingPoint(circuit, x)
    except ConvergenceError:
        pass
    # gmin stepping
    x = x0.copy()
    level = 1e-2
    while level >= gmin * 0.99:
        x = _newton_solve(circuit, x, stamp, level, max_iter=300)
        level /= 10.0
    return OperatingPoint(circuit, x)
