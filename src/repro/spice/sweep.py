"""DC sweep analysis: transfer curves and bias-point families.

Sweeps an independent source (or any component attribute) across a value
grid, re-solving the operating point at each step with warm starts —
the workhorse for transfer characteristics (e.g. the rectifier's I/V, a
MOSFET's output family) and for extracting code-transition voltages of
converters.
"""

from __future__ import annotations

import numpy as np

from repro.spice.components import CurrentSource, VoltageSource
from repro.spice.dc import dc_operating_point
from repro.spice.sources import dc_source


class DCSweepResult:
    """Operating points over a swept value grid."""

    def __init__(self, circuit, values, points):
        self.circuit = circuit
        self.values = np.asarray(values, dtype=float)
        self.points = list(points)

    def voltage(self, node):
        """Array of a node voltage across the sweep."""
        return np.array([p.voltage(node) for p in self.points])

    def branch_current(self, component_name):
        """Array of a branch current across the sweep."""
        return np.array([p.branch_current(component_name) for p in self.points])

    def device_current(self, component_name):
        """Array of a two-terminal device current across the sweep."""
        comp = self.circuit[component_name]
        if not hasattr(comp, "current"):
            raise ValueError(f"{component_name} exposes no current")
        return np.array([comp.current(p.x) for p in self.points])

    def transfer_gain(self, node):
        """Numerical d(V_node)/d(swept value) along the sweep.

        A gradient needs at least two sweep points; a degenerate
        (single-point) grid raises a typed :class:`ValueError` instead
        of numpy's bare ``IndexError`` from inside ``np.gradient``.
        """
        if self.values.size < 2:
            raise ValueError(
                f"transfer_gain needs at least 2 sweep points, got "
                f"{self.values.size} ({self.circuit.title!r}); sweep a "
                f"grid to differentiate along"
            )
        return np.gradient(self.voltage(node), self.values)

    def find_crossing(self, node, level):
        """Swept value at which V(node) crosses ``level`` (first hit,
        linear interpolation); None if it never does.  A degenerate
        (fewer than 2 points) grid has no interval to bracket a
        crossing and returns None."""
        if self.values.size < 2:
            return None
        v = self.voltage(node)
        sign = np.sign(v - level)
        hits = np.nonzero(np.diff(sign) != 0)[0]
        if hits.size == 0:
            return None
        i = hits[0]
        v0, v1 = v[i], v[i + 1]
        x0, x1 = self.values[i], self.values[i + 1]
        if v1 == v0:
            return float(x0)
        return float(x0 + (x1 - x0) * (level - v0) / (v1 - v0))

    def __len__(self):
        return len(self.points)


def dc_sweep(circuit, source_name, values, gmin=1e-12):
    """Sweep an independent V or I source and solve DC at each value.

    The source's value object is replaced per step; each solve warm-
    starts from the previous solution, which makes tight nonlinear
    sweeps (diode knees, MOS transitions) fast and robust.
    """
    circuit.build()
    comp = circuit[source_name]
    if not isinstance(comp, (VoltageSource, CurrentSource)):
        raise TypeError(
            f"{source_name} is not an independent source")
    values = np.asarray(values, dtype=float)
    if values.size < 1:
        raise ValueError("empty sweep grid")
    original = comp.source
    points = []
    x_prev = None
    try:
        check = "error"
        for value in values:
            comp.source = dc_source(float(value))
            op = dc_operating_point(circuit, gmin=gmin, x0=x_prev, check=check)
            # The topology never changes across the sweep: the static
            # pre-flight runs once, on the first point only.
            check = "off"
            points.append(op)
            x_prev = op.x
    finally:
        comp.source = original
    return DCSweepResult(circuit, values, points)


def operating_point_report(op, currents_of=()):
    """Readable multi-line report of an operating point.

    ``currents_of`` optionally lists two-terminal component names whose
    currents should be included.
    """
    lines = [f"Operating point of {op.circuit.title!r}:"]
    for name, volts in sorted(op.voltages().items()):
        lines.append(f"  V({name}) = {volts:.6g} V")
    for name in currents_of:
        comp = op.circuit[name]
        if hasattr(comp, "current"):
            lines.append(f"  I({name}) = {comp.current(op.x):.6g} A")
        elif comp.branch is not None:
            lines.append(
                f"  I({name}) = {op.branch_current(name):.6g} A")
    return "\n".join(lines)
