"""SPICE-card netlist reader/writer for `repro.spice` circuits.

A pragmatic subset of the classic card format, so circuits can live in
files and be diffed/reviewed like the rest of the design:

    * title line (first line, kept as the circuit title)
    R<name> n1 n2 value
    C<name> n1 n2 value [IC=v]
    L<name> n1 n2 value [IC=i]
    K<name> L<name1> L<name2> k
    V<name> n1 n2 DC value | SIN(offset ampl freq) | PULSE(v1 v2 ...)
    I<name> n1 n2 DC value
    D<name> anode cathode [IS=..] [N=..]
    M<name> d g s [TYPE=n|p] [VTO=..] [KP=..] [W=..] [L=..] [LAMBDA=..]
    S<name> n1 n2 cp cn [VT=..] [RON=..] [ROFF=..]
    E<name> n1 n2 cp cn gain
    G<name> n1 n2 cp cn gm
    .end  (optional)

Values accept engineering notation ("100n", "4.7k", "5MEG").  Comment
lines start with ``*`` or ``;``; continuation lines start with ``+``.
"""

from __future__ import annotations

import re

from repro.spice.circuit import Circuit
from repro.spice.sources import pulse as pulse_src, sine as sine_src
from repro.util import parse_eng


class NetlistError(ValueError):
    """Raised for unparsable netlist input.

    Carries the 1-based source ``line`` number and the offending
    ``card`` text (the full logical card, continuations joined) when
    the failure can be attributed to one; both are ``None`` otherwise.
    The line number is prefixed to the message, so plain ``str(exc)``
    already reads ``line 7: bad card ...``.
    """

    def __init__(self, message, line=None, card=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
        self.card = card


def _parse_kwargs(tokens):
    """Split trailing KEY=value tokens into a dict (values eng-parsed)."""
    kwargs = {}
    rest = []
    for tok in tokens:
        if "=" in tok:
            key, _, val = tok.partition("=")
            try:
                kwargs[key.upper()] = parse_eng(val)
            except ValueError:
                # Non-numeric values (e.g. TYPE=p) pass through as text.
                kwargs[key.upper()] = val
        else:
            rest.append(tok)
    return rest, kwargs


def _parse_source_value(tokens, line):
    """DC value, SIN(...), or PULSE(...) card tail -> source object."""
    joined = " ".join(tokens).strip()
    if not joined:
        raise NetlistError(f"source card missing a value: {line!r}")
    upper = joined.upper()
    if upper.startswith("DC"):
        return parse_eng(joined[2:].strip())
    match = re.match(r"SIN\s*\((.*)\)\s*$", joined, re.IGNORECASE)
    if match:
        args = [parse_eng(a) for a in match.group(1).split()]
        if len(args) < 3:
            raise NetlistError(f"SIN needs (offset ampl freq): {line!r}")
        offset, ampl, freq = args[:3]
        delay = args[3] if len(args) > 3 else 0.0
        return sine_src(ampl, freq, offset=offset, delay=delay)
    match = re.match(r"PULSE\s*\((.*)\)\s*$", joined, re.IGNORECASE)
    if match:
        args = [parse_eng(a) for a in match.group(1).split()]
        if len(args) < 7:
            raise NetlistError(
                f"PULSE needs (v1 v2 delay rise fall width period): "
                f"{line!r}")
        v1, v2, delay, rise, fall, width, period = args[:7]
        return pulse_src(
            v1, v2, delay=delay, rise=rise, fall=fall, width=width, period=period
        )
    # Bare number.
    return parse_eng(joined)


def _logical_lines(text):
    """Strip comments, join continuations, drop blanks and directives we
    ignore.  Returns ``(lineno, card)`` pairs: the 1-based source line
    each logical card *starts* on (continuations attribute to the card
    they extend)."""
    merged = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].rstrip()
        if not line.strip():
            continue
        if line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+"):
            if not merged:
                raise NetlistError(
                    "continuation line with nothing before",
                    line=lineno, card=line.strip(),
                )
            start, card = merged[-1]
            merged[-1] = (start, card + " " + line.lstrip()[1:])
        else:
            merged.append((lineno, line.strip()))
    return merged


def parse_netlist(text):
    """Parse SPICE-card text into a :class:`~repro.spice.Circuit`.

    Parse failures raise :class:`NetlistError` carrying the 1-based
    source line and the offending card.  The returned circuit carries a
    ``source_lines`` attribute — ``{component name: line number}`` —
    used by :func:`repro.spice.analyze.analyze_netlist` for file:line
    diagnostic attribution.
    """
    lines = _logical_lines(text)
    if not lines:
        raise NetlistError("empty netlist")
    title = lines[0][1]
    ckt = Circuit(title)
    source_lines = {}
    pending_couplings = []
    for lineno, line in lines[1:]:
        if line.lower() in (".end", ".ends"):
            break
        if line.startswith("."):
            continue  # other directives are ignored
        tokens = line.split()
        name = tokens[0]
        kind = name[0].upper()
        source_lines[name] = lineno
        try:
            if kind == "R":
                ckt.add_resistor(name, tokens[1], tokens[2], parse_eng(tokens[3]))
            elif kind == "C":
                rest, kw = _parse_kwargs(tokens[3:])
                ckt.add_capacitor(
                    name, tokens[1], tokens[2], parse_eng(tokens[3]), ic=kw.get("IC")
                )
            elif kind == "L":
                rest, kw = _parse_kwargs(tokens[3:])
                ckt.add_inductor(
                    name,
                    tokens[1],
                    tokens[2],
                    parse_eng(tokens[3]),
                    ic=kw.get("IC", 0.0),
                )
            elif kind == "K":
                pending_couplings.append(
                    (lineno, line, name, tokens[1], tokens[2],
                     parse_eng(tokens[3])))
            elif kind == "V":
                ckt.add_vsource(name, tokens[1], tokens[2],
                                _parse_source_value(tokens[3:], line))
            elif kind == "I":
                ckt.add_isource(name, tokens[1], tokens[2],
                                _parse_source_value(tokens[3:], line))
            elif kind == "D":
                rest, kw = _parse_kwargs(tokens[3:])
                ckt.add_diode(
                    name,
                    tokens[1],
                    tokens[2],
                    i_s=kw.get("IS", 1e-14),
                    n=kw.get("N", 1.0),
                )
            elif kind == "M":
                rest, kw = _parse_kwargs(tokens[4:])
                polarity = "p" if str(
                    kw.pop("TYPE", "n")).lower().startswith(
                        ("p", "-")) else "n"
                ckt.add_mosfet(
                    name, tokens[1], tokens[2], tokens[3],
                    polarity=polarity,
                    vto=kw.get("VTO", 0.5), kp=kw.get("KP", 200e-6),
                    w=kw.get("W", 10e-6), l=kw.get("L", 1e-6),
                    lam=kw.get("LAMBDA", 0.01))
            elif kind == "S":
                rest, kw = _parse_kwargs(tokens[5:])
                ckt.add_switch(
                    name, tokens[1], tokens[2], tokens[3], tokens[4],
                    v_threshold=kw.get("VT", 0.5),
                    r_on=kw.get("RON", 1.0), r_off=kw.get("ROFF", 1e9))
            elif kind == "E":
                ckt.add_vcvs(
                    name,
                    tokens[1],
                    tokens[2],
                    tokens[3],
                    tokens[4],
                    parse_eng(tokens[5]),
                )
            elif kind == "G":
                ckt.add_vccs(
                    name,
                    tokens[1],
                    tokens[2],
                    tokens[3],
                    tokens[4],
                    parse_eng(tokens[5]),
                )
            else:
                raise NetlistError(
                    f"unknown element kind {kind!r}", line=lineno, card=line
                )
        except NetlistError as exc:
            if exc.line is None:
                # Attribute errors raised deeper down (e.g. a bad
                # source value) to the card being parsed.
                raise NetlistError(
                    str(exc), line=lineno, card=line
                ) from exc
            raise
        except (IndexError, ValueError, KeyError) as exc:
            raise NetlistError(
                f"bad card {line!r}: {exc}", line=lineno, card=line
            ) from exc
    for lineno, line, name, l1, l2, k in pending_couplings:
        source_lines[name] = lineno
        try:
            ckt.add_coupling(name, l1, l2, k)
        except KeyError as exc:
            raise NetlistError(
                f"coupling {name} references unknown inductor: {exc}",
                line=lineno, card=line,
            ) from exc
        except ValueError as exc:
            raise NetlistError(
                f"bad coupling card: {exc}", line=lineno, card=line
            ) from exc
    ckt.source_lines = source_lines
    return ckt


def write_netlist(circuit):
    """Serialize a circuit back to card text (sources as DC of their
    t=0 value; a lossy but diffable representation)."""
    from repro.spice import components as comps

    lines = [circuit.title]
    for c in circuit.components:
        if isinstance(c, comps.Resistor):
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} " f"{c.resistance:g}"
            )
        elif isinstance(c, comps.Capacitor):
            ic = f" IC={c.ic:g}" if c.ic is not None else ""
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} "
                f"{c.capacitance:g}{ic}"
            )
        elif isinstance(c, comps.Inductor):
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} "
                f"{c.inductance:g} IC={c.ic:g}"
            )
        elif isinstance(c, comps.MutualCoupling):
            lines.append(f"{c.name} {c.l1.name} {c.l2.name} {c.k:g}")
        elif isinstance(c, comps.VoltageSource):
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} "
                f"DC {c.source.dc_value:g}"
            )
        elif isinstance(c, comps.CurrentSource):
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} "
                f"DC {c.source.dc_value:g}"
            )
        elif isinstance(c, comps.Diode):
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} "
                f"IS={c.i_s:g} N={c.n:g}"
            )
        elif isinstance(c, comps.Mosfet):
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} "
                f"{c.node_names[2]} TYPE={c.polarity} VTO={c.vto:g} "
                f"KP={c.kp:g} W={c.w:g} L={c.l:g} LAMBDA={c.lam:g}")
        elif isinstance(c, comps.Switch):
            lines.append(
                f"{c.name} {c.node_names[0]} {c.node_names[1]} "
                f"{c.node_names[2]} {c.node_names[3]} "
                f"VT={c.v_threshold:g} RON={c.r_on:g} ROFF={c.r_off:g}")
        elif isinstance(c, comps.Vcvs):
            lines.append(f"{c.name} " + " ".join(c.node_names) + f" {c.gain:g}")
        elif isinstance(c, comps.Vccs):
            lines.append(f"{c.name} " + " ".join(c.node_names) + f" {c.gm:g}")
        else:
            raise NetlistError(
                f"cannot serialize component type {type(c).__name__}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
