"""Sparse MNA assembly: frozen sparsity patterns and shared-pattern LU.

The dense transient engine restamps an ``(n, n)`` matrix per Newton
iteration and pays O(n^2) memory and O(n^3) solve time.  MNA matrices
are sparse with a *fixed* sparsity pattern per circuit family: every
component always writes the same ``(row, col)`` slots, only the values
change.  This module exploits that in three layers:

* :class:`COORecorder` — a matrix-shaped adapter that records
  ``M[i, j] += v`` increments as COO triplets.  It is what the default
  :meth:`~repro.spice.components.Component.sparse_stamps` hook feeds a
  component's existing dense ``stamp_tran_matrix`` into, so third-party
  components keep working on the sparse path unmodified.
* :class:`SparsePattern` — the frozen CSR pattern of one circuit
  family, built once from the union of every component's triplets plus
  the nonlinear-device slots.  Per Newton iteration only the numeric
  values are refreshed (:meth:`accumulate` is one ``bincount`` scatter);
  the index arrays, the CSC permutation for SuperLU and the dense
  scatter map never change.
* :class:`SharedPatternLU` — a vectorized LU kernel for lockstep
  families: the *symbolic* analysis (fill pattern + static pivot order)
  runs once per family, and the numeric factorization of all N cells
  executes as a short precompiled schedule of vectorized numpy ops over
  ``(N, nnz)`` value arrays — one factorization pattern shared by every
  cell, as opposed to N independent pivoting decisions.

scipy is a soft dependency: :data:`SPARSE_AVAILABLE` gates the sparse
strategies, and the dense path remains the default (and the parity
reference) everywhere.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised indirectly by the sparse strategies
    from scipy.sparse import csc_matrix, csr_matrix
    from scipy.sparse.linalg import splu as _splu
except ImportError:  # pragma: no cover - scipy is a soft dependency
    csc_matrix = csr_matrix = _splu = None

#: True when scipy.sparse is importable; the transient/batch front doors
#: fall back to (or insist on) the dense strategy when it is not.
SPARSE_AVAILABLE = _splu is not None

#: ``matrix=`` modes accepted by the transient and batch front doors.
MATRIX_MODES = ("auto", "dense", "sparse")

#: ``matrix="auto"`` switches a single circuit to the sparse strategy at
#: this many MNA unknowns.  Below it the dense path wins: LAPACK on a
#: tiny dense matrix beats SuperLU's per-call overhead, and the paper's
#: own cells (~10 unknowns) must keep their measured dense performance.
SPARSE_AUTO_THRESHOLD = 64

#: Relative pivot floor of the static-pivot family kernel: a numeric
#: factorization whose smallest pivot magnitude falls under
#: ``PIVOT_RTOL * max|A|`` for any cell is rejected (the caller falls
#: back to a partial-pivoting dense solve for that iteration).
PIVOT_RTOL = 1e-14


class COORecorder:
    """Matrix-shaped adapter recording ``M[i, j] += v`` as COO triplets.

    The stamping helpers mutate matrices only through in-place adds, so
    ``__getitem__`` returns 0.0 and each ``__setitem__`` therefore
    receives exactly the increment.  Negative (ground) indices are
    dropped on read-out, mirroring the dense helpers' ground skip.
    Duplicate positions are kept — they sum on accumulation, exactly as
    repeated dense ``+=`` would.
    """

    __slots__ = ("_rows", "_cols", "_vals")

    def __init__(self):
        self._rows = []
        self._cols = []
        self._vals = []

    def __getitem__(self, key):
        return 0.0

    def __setitem__(self, key, value):
        i, j = key
        self._rows.append(i)
        self._cols.append(j)
        self._vals.append(value)

    def triplets(self):
        """``(rows, cols, values)`` arrays of the recorded increments
        (ground slots dropped)."""
        rows = np.asarray(self._rows, dtype=np.intp)
        cols = np.asarray(self._cols, dtype=np.intp)
        vals = np.asarray(self._vals, dtype=float)
        keep = (rows >= 0) & (cols >= 0)
        if not keep.all():
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        return rows, cols, vals


class SparsePattern:
    """Frozen CSR sparsity pattern of one circuit (family).

    Built once from the union of stamp positions; value refreshes reuse
    the same index arrays forever.  ``plan`` maps a fixed triplet
    ordering onto data slots, ``accumulate`` folds triplet values into a
    data vector (duplicates sum in triplet order, matching the dense
    ``+=`` accumulation order bit for bit).
    """

    def __init__(self, n, rows, cols):
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        if rows.size == 0:
            raise ValueError("cannot freeze an empty sparsity pattern")
        keys = rows * n + cols
        uniq = np.unique(keys)
        self.n = int(n)
        self.nnz = int(uniq.size)
        self.rows = (uniq // n).astype(np.intp)
        self.cols = (uniq % n).astype(np.intp)
        self.indices = self.cols.copy()
        self.indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(self.indptr, self.rows + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self._entry_lookup = uniq
        # CSC layout (SuperLU wants column-major): a static permutation
        # of the CSR data vector.  Index arrays are int32 (scipy's
        # native index dtype) so the per-refresh csc view never pays a
        # downcast copy.
        order = np.lexsort((self.rows, self.cols))
        self.csc_perm = order
        self.csc_indices = self.rows[order].astype(np.int32)
        csc_indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(csc_indptr, self.cols + 1, 1)
        np.cumsum(csc_indptr, out=csc_indptr)
        self.csc_indptr = csc_indptr.astype(np.int32)
        self._csc_workspace = None

    def plan(self, rows, cols):
        """Data-slot index per triplet position (a fixed gather map for
        one stamping pass whose positions never change)."""
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        keys = rows * self.n + cols
        idx = np.searchsorted(self._entry_lookup, keys)
        # A key past the last entry searchsorts to lookup.size; clip
        # before the gather so the mismatch check (not an IndexError)
        # reports it.
        clipped = np.minimum(idx, self._entry_lookup.size - 1)
        if idx.size and not np.array_equal(self._entry_lookup[clipped], keys):
            raise ValueError(
                "stamp positions outside the frozen sparsity pattern "
                "(component stamp positions must not depend on values)"
            )
        return idx

    def accumulate(self, plan, values, out=None):
        """Fold triplet ``values`` into a dense data vector through a
        precomputed ``plan``; duplicates sum in triplet order."""
        acc = np.bincount(plan, weights=values, minlength=self.nnz)
        if out is None:
            return acc
        out += acc
        return out

    def csr(self, data):
        """scipy CSR view of one data vector (index arrays shared)."""
        return csr_matrix(
            (data, self.indices, self.indptr), shape=(self.n, self.n)
        )

    def csc(self, data):
        """scipy CSC view (the layout SuperLU factorizes without an
        internal conversion); data is gathered through the frozen
        permutation.

        The returned matrix is a reused workspace — its value buffer is
        overwritten by the next :meth:`csc` call (SuperLU copies what it
        needs during factorization, so this is safe for the solver
        paths; callers that keep the matrix must copy it)."""
        ws = self._csc_workspace
        if ws is None:
            ws = csc_matrix(
                (data[self.csc_perm], self.csc_indices, self.csc_indptr),
                shape=(self.n, self.n),
            )
            # Mark canonical once so splu never re-checks or re-sorts.
            ws.has_canonical_format = True
            ws.has_sorted_indices = True
            self._csc_workspace = ws
        else:
            np.take(data, self.csc_perm, out=ws.data)
        return ws

    def densify(self, data, out=None):
        """Scatter a data vector back to a dense matrix (the dense
        fallback path and the equivalence tests)."""
        if out is None:
            out = np.zeros((self.n, self.n))
        else:
            out[:] = 0.0
        out[self.rows, self.cols] = data
        return out


def pattern_from_circuit(circuit, extra_positions=()):
    """Freeze the union sparsity pattern of one built circuit: every
    ``linear_stamps`` component's :meth:`sparse_stamps` positions plus
    ``extra_positions`` (nonlinear-device slots, gmin diagonals...).
    """
    rows, cols = [], []
    for comp in circuit.components:
        if comp.linear_stamps:
            r, c, _ = comp.sparse_stamps(1.0, "be")
            rows.append(r)
            cols.append(c)
    for r, c in extra_positions:
        rows.append(np.asarray(r, dtype=np.intp))
        cols.append(np.asarray(c, dtype=np.intp))
    if not rows:
        raise ValueError(f"circuit {circuit.title!r} has nothing to stamp")
    return SparsePattern(
        circuit.n_unknowns, np.concatenate(rows), np.concatenate(cols)
    )


def splu_factor(pattern, data):
    """SuperLU factorization of one data vector on a frozen pattern;
    raises the caller's typed error path via RuntimeError on exactly
    singular matrices (SuperLU's behaviour).

    MNA matrices are structurally symmetric, so the minimum-degree
    ordering on A^T + A beats the unsymmetric COLAMD default (less
    fill, ~25-30% faster numeric factorization on ladder/mesh
    structures)."""
    return _splu(pattern.csc(data), permc_spec="MMD_AT_PLUS_A")


class PivotBreakdownError(RuntimeError):
    """The static-pivot family kernel hit a pivot under the relative
    floor for at least one cell; callers fall back to a partial-pivoting
    dense solve for the offending iteration."""


class SharedPatternLU:
    """Vectorized LU over N cells sharing one sparsity pattern.

    Symbolic analysis runs once: a fill-reducing static pivot order is
    taken from SuperLU's factorization of a *representative* cell, the
    fill-in pattern is propagated symbolically, and the elimination is
    flattened into a schedule of per-pivot index arrays.  The numeric
    factorization then executes that schedule with vectorized numpy ops
    over ``(N, nnz)`` value arrays — every cell walks the identical
    pivot order, which is what makes the batch a handful of large array
    ops instead of N independent factorizations.

    Static pivoting cannot react to a cell whose operating point
    degrades the chosen order, so :meth:`factor` enforces a relative
    pivot floor and raises :class:`PivotBreakdownError` for the caller
    to fall back to a dense partial-pivoting solve.

    NUMBA SEAM: ``factor``/``solve`` walk a per-pivot schedule of small
    vectorized ops; the schedule arrays (``_sched``, ``_fwd``, ``_bwd``)
    are plain int arrays and the inner loops are pure numpy, so a
    ``@numba.njit`` kernel taking (schedule arrays, data) could replace
    the Python-level loop without touching any caller.  numba is not a
    dependency of this repo today, so the loop stays pure numpy.
    """

    def __init__(self, pattern, repr_data):
        if not SPARSE_AVAILABLE:  # pragma: no cover - guarded by callers
            raise ValueError("scipy is required for the sparse path")
        self.pattern = pattern
        n = pattern.n
        self.n = n
        lu0 = _splu(pattern.csc(np.asarray(repr_data, dtype=float)))
        # Empirically (and per the SuperLU docs):
        #   A[argsort(perm_r)][:, argsort(perm_c)] == L @ U
        self._row_src = np.argsort(lu0.perm_r)
        self._col_src = np.argsort(lu0.perm_c)
        inv_row = np.empty(n, dtype=np.intp)
        inv_row[self._row_src] = np.arange(n)
        inv_col = np.empty(n, dtype=np.intp)
        inv_col[self._col_src] = np.arange(n)
        # Permuted structural pattern, diagonal forced present (static
        # pivot slots must exist even when a value crosses zero).
        perm_rows = inv_row[pattern.rows]
        perm_cols = inv_col[pattern.cols]
        patt = [set() for _ in range(n)]
        for i, j in zip(perm_rows, perm_cols):
            patt[i].add(int(j))
        for k in range(n):
            patt[k].add(k)
        # Symbolic fill-in under the fixed order: eliminating pivot k
        # spreads row k's upper entries into every row holding (i, k).
        for k in range(n):
            upper = {j for j in patt[k] if j > k}
            if not upper:
                continue
            for i in range(k + 1, n):
                if k in patt[i]:
                    patt[i] |= upper
        entry = {}
        pos = 0
        row_entries = []
        for i in range(n):
            cols_i = sorted(patt[i])
            row_entries.append(cols_i)
            for j in cols_i:
                entry[(i, j)] = pos
                pos += 1
        self.nnz_factor = pos
        # Flattened elimination schedule: one record per pivot.
        self._sched = []
        for k in range(n):
            li = [i for i in range(k + 1, n) if (i, k) in entry]
            uj = [j for j in row_entries[k] if j > k]
            l_idx = np.array([entry[(i, k)] for i in li], dtype=np.intp)
            u_idx = np.array([entry[(k, j)] for j in uj], dtype=np.intp)
            t_idx = np.array(
                [[entry[(i, j)] for j in uj] for i in li], dtype=np.intp
            ).reshape(len(li), len(uj))
            self._sched.append(
                (
                    entry[(k, k)],
                    np.array(li, dtype=np.intp),
                    l_idx,
                    u_idx,
                    np.array(uj, dtype=np.intp),
                    t_idx,
                )
            )
        self._piv_idx = np.array(
            [entry[(k, k)] for k in range(n)], dtype=np.intp
        )
        # Scatter map: pattern entry -> factor-storage slot.
        self._in_dst = np.array(
            [entry[(int(i), int(j))] for i, j in zip(perm_rows, perm_cols)],
            dtype=np.intp,
        )

    def factor(self, data):
        """Numeric factorization of ``data`` with shape (N, pattern.nnz);
        returns the (N, nnz_factor) factor storage."""
        data = np.atleast_2d(data)
        n_cells = data.shape[0]
        work = np.zeros((n_cells, self.nnz_factor))
        work[:, self._in_dst] = data
        scale = np.abs(data).max(axis=1)
        for piv, _li, l_idx, u_idx, _uj, t_idx in self._sched:
            if l_idx.size == 0:
                continue
            lv = work[:, l_idx] / work[:, piv][:, None]
            work[:, l_idx] = lv
            if u_idx.size:
                work[:, t_idx.reshape(-1)] -= (
                    lv[:, :, None] * work[:, u_idx][:, None, :]
                ).reshape(n_cells, -1)
        piv_floor = PIVOT_RTOL * scale
        piv_min = np.abs(work[:, self._piv_idx]).min(axis=1)
        if not bool(np.all(piv_min > piv_floor)):
            raise PivotBreakdownError(
                "static pivot order broke down "
                f"(min pivot {piv_min.min():.3e})"
            )
        return work

    def solve(self, work, b):
        """Triangular solves against a factor from :meth:`factor`;
        ``b`` has shape (N, n)."""
        y = np.ascontiguousarray(b[:, self._row_src])
        for k, (_piv, li, l_idx, _u, _uj, _t) in enumerate(self._sched):
            if l_idx.size:
                y[:, li] -= work[:, l_idx] * y[:, k][:, None]
        for k in range(self.n - 1, -1, -1):
            piv, _li, _l, u_idx, uj, _t = self._sched[k]
            if u_idx.size:
                y[:, k] -= np.einsum(
                    "nj,nj->n", work[:, u_idx], y[:, uj]
                )
            y[:, k] /= work[:, piv]
        out = np.empty_like(y)
        out[:, self._col_src] = y
        return out
