"""AC small-signal analysis: complex MNA linearised at the DC point."""

from __future__ import annotations

import numpy as np

from repro.spice.dc import dc_operating_point


class ACResult:
    """Frequency sweep result: complex node voltages vs frequency."""

    def __init__(self, circuit, freqs, solutions):
        self.circuit = circuit
        self.f = np.asarray(freqs, dtype=float)
        self.x = np.asarray(solutions, dtype=complex)

    def voltage(self, node):
        """Complex node voltage array over the sweep."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return np.zeros_like(self.f, dtype=complex)
        return self.x[:, idx]

    def magnitude(self, node):
        return np.abs(self.voltage(node))

    def magnitude_db(self, node):
        mag = self.magnitude(node)
        return 20.0 * np.log10(np.maximum(mag, 1e-30))

    def phase_deg(self, node):
        return np.degrees(np.angle(self.voltage(node)))

    def branch_current(self, component_name):
        return self.x[:, self.circuit.branch_index(component_name)]

    def peak_frequency(self, node):
        """Frequency of maximum magnitude (resonance finder)."""
        return float(self.f[int(np.argmax(self.magnitude(node)))])


def ac_sweep(circuit, freqs, op=None):
    """Sweep the small-signal response over ``freqs`` (Hz array).

    Sources excite the circuit with their ``ac_mag``; nonlinear devices are
    linearised around the DC operating point (``op``, solved when omitted).
    """
    circuit.build()
    freqs = np.asarray(freqs, dtype=float)
    if np.any(freqs <= 0):
        raise ValueError("AC frequencies must be positive")
    if op is None:
        op = dc_operating_point(circuit)
    n = circuit.n_unknowns
    solutions = np.empty((freqs.size, n), dtype=complex)
    for i, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        Y = np.zeros((n, n), dtype=complex)
        rhs = np.zeros(n, dtype=complex)
        for comp in circuit.components:
            comp.stamp_ac(Y, rhs, omega, op.x)
        solutions[i] = np.linalg.solve(Y, rhs)
    return ACResult(circuit, freqs, solutions)


def logspace_frequencies(f_start, f_stop, points_per_decade=20):
    """Logarithmically spaced frequency grid, inclusive of endpoints."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n)
